#!/usr/bin/env bash
# Runs the concurrency benchmark (bench/bench_concurrency.cc) and captures
# the google-benchmark JSON as BENCH_concurrency.json — the machine-readable
# ops/s record (items_per_second) for tracking lock-regime throughput across
# PRs. The console table still prints for humans.
#
# Usage: tools/run_bench.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    configured build directory (default: build)
#   OUTPUT_JSON  where to write the JSON (default: BENCH_concurrency.json
#                in the repository root)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUTPUT_JSON="${2:-$REPO_ROOT/BENCH_concurrency.json}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "run_bench: build directory '$BUILD_DIR' not found;" \
       "configure with: cmake -B '$BUILD_DIR' -S '$REPO_ROOT'" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target bench_concurrency -j "$(nproc)"

"$BUILD_DIR/bench/bench_concurrency" \
  --benchmark_format=console \
  --benchmark_out="$OUTPUT_JSON" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "run_bench: wrote $OUTPUT_JSON"
