#!/usr/bin/env bash
# Runs the tracked benchmarks and captures their google-benchmark JSON:
#
#   bench/bench_concurrency.cc -> BENCH_concurrency.json
#       ops/s record (items_per_second) for lock-regime throughput
#   bench/bench_recovery.cc    -> BENCH_recovery.json
#       reopen latency vs model count, serial (recovery_threads=1) vs
#       parallel (recovery_threads=0) shard replay. On a single-core host
#       both configurations degenerate to serial — the JSON's num_cpus
#       field records the machine so readers can tell.
#   bench/bench_serving.cc     -> BENCH_serving.json
#       statement throughput (items_per_second) and p50/p95/p99 latency
#       counters through the framed wire protocol at 1/8/32 concurrent
#       sessions, plus graceful-drain latency with idle sessions attached.
#
# The console tables still print for humans.
#
# Usage: tools/run_bench.sh [BUILD_DIR] [OUTPUT_DIR]
#   BUILD_DIR   configured build directory (default: build)
#   OUTPUT_DIR  where to write the JSON files (default: repository root)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUTPUT_DIR="${2:-$REPO_ROOT}"
mkdir -p "$OUTPUT_DIR"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "run_bench: build directory '$BUILD_DIR' not found;" \
       "configure with: cmake -B '$BUILD_DIR' -S '$REPO_ROOT'" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" \
  --target bench_concurrency bench_recovery bench_serving \
  -j "$(nproc)"

"$BUILD_DIR/bench/bench_concurrency" \
  --benchmark_format=console \
  --benchmark_out="$OUTPUT_DIR/BENCH_concurrency.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "run_bench: wrote $OUTPUT_DIR/BENCH_concurrency.json"

"$BUILD_DIR/bench/bench_recovery" \
  --benchmark_format=console \
  --benchmark_out="$OUTPUT_DIR/BENCH_recovery.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "run_bench: wrote $OUTPUT_DIR/BENCH_recovery.json"

"$BUILD_DIR/bench/bench_serving" \
  --benchmark_format=console \
  --benchmark_out="$OUTPUT_DIR/BENCH_serving.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

echo "run_bench: wrote $OUTPUT_DIR/BENCH_serving.json"
