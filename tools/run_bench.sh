#!/usr/bin/env bash
# Runs the tracked benchmarks and captures their google-benchmark JSON:
#
#   bench/bench_concurrency.cc -> BENCH_concurrency.json
#       ops/s record (items_per_second) for lock-regime throughput
#   bench/bench_recovery.cc    -> BENCH_recovery.json
#       reopen latency vs model count, serial (recovery_threads=1) vs
#       parallel (recovery_threads=0) shard replay. On a single-core host
#       both configurations degenerate to serial — the JSON's num_cpus
#       field records the machine so readers can tell.
#   bench/bench_serving.cc     -> BENCH_serving.json
#       statement throughput (items_per_second) and p50/p95/p99 latency
#       counters through the framed wire protocol at 1/8/32 concurrent
#       sessions, plus graceful-drain latency with idle sessions attached.
#   bench/bench_hotpath.cc     -> BENCH_hotpath.json
#       allocs/row + bytes/row for the guard-checkpointed hot loops
#       (scan+filter, SHAPE indexing, InsertCases, per-service prediction
#       join). Needs -DDMX_ALLOC_STATS=ON for live counters, so this one
#       builds in its own BUILD_DIR-alloc tree (configured on demand).
#
# The console tables still print for humans.
#
# The BENCH_*.json files are append-only histories (see tools/bench_append.py
# for the schema): each run adds a timestamped, commit-keyed record, so the
# committed numbers accumulate across machines instead of being overwritten
# by whichever host ran last.
#
# Usage: tools/run_bench.sh [BUILD_DIR] [OUTPUT_DIR]
#   BUILD_DIR   configured build directory (default: build)
#   OUTPUT_DIR  where the BENCH_*.json histories live (default: repo root)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUTPUT_DIR="${2:-$REPO_ROOT}"
mkdir -p "$OUTPUT_DIR"

COMMIT="$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

append() {
  python3 "$REPO_ROOT/tools/bench_append.py" \
    --history "$OUTPUT_DIR/BENCH_$1.json" --run "$TMP_DIR/$1.json" \
    --commit "$COMMIT" --timestamp "$STAMP"
}

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "run_bench: build directory '$BUILD_DIR' not found;" \
       "configure with: cmake -B '$BUILD_DIR' -S '$REPO_ROOT'" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" \
  --target bench_concurrency bench_recovery bench_serving \
  -j "$(nproc)"

"$BUILD_DIR/bench/bench_concurrency" \
  --benchmark_format=console \
  --benchmark_out="$TMP_DIR/concurrency.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

append concurrency

"$BUILD_DIR/bench/bench_recovery" \
  --benchmark_format=console \
  --benchmark_out="$TMP_DIR/recovery.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

append recovery

"$BUILD_DIR/bench/bench_serving" \
  --benchmark_format=console \
  --benchmark_out="$TMP_DIR/serving.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

append serving

# Allocation accounting needs the counting operators compiled in, which the
# main build tree deliberately leaves off (zero-overhead default). Configure
# a sibling tree once and reuse it across runs.
ALLOC_BUILD_DIR="${BUILD_DIR%/}-alloc"
if [[ ! -f "$ALLOC_BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$ALLOC_BUILD_DIR" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=Release -DDMX_ALLOC_STATS=ON
fi
cmake --build "$ALLOC_BUILD_DIR" --target bench_hotpath -j "$(nproc)"

"$ALLOC_BUILD_DIR/bench/bench_hotpath" \
  --benchmark_format=console \
  --benchmark_out="$TMP_DIR/hotpath.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

append hotpath
