#!/usr/bin/env bash
# Static analysis driver for OpenDMX.
#
# Two gates, both expected to pass clean:
#   1. A full -Werror build (-Wall -Wextra -Wpedantic, DMX_WERROR=ON).
#   2. clang-tidy over every translation unit, using the curated check set
#      in .clang-tidy with WarningsAsErrors enabled.
#
# Gate 2 is skipped (with a notice) when clang-tidy is not installed, so the
# script stays usable in minimal containers; CI installs clang-tidy and runs
# both gates.
#
# Usage: tools/run_static_analysis.sh [build-dir]   (default: build-lint)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"

echo "== Gate 1: -Werror build =="
cmake -B "$BUILD_DIR" -S . \
  -DDMX_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
echo "-Werror build: clean"

echo
echo "== Gate 2: clang-tidy =="
TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "clang-tidy not found on PATH; skipping tidy gate." >&2
  echo "Install clang-tidy (or run in CI) for full coverage." >&2
  exit 0
fi

# run-clang-tidy parallelises across the compilation database when present;
# otherwise fall back to invoking clang-tidy per file.
RUNNER="$(command -v run-clang-tidy || command -v run-clang-tidy.py || true)"
mapfile -t SOURCES < <(git ls-files 'src/**/*.cc' 'tools/*.cpp' \
                                    'examples/*.cc' 'bench/*.cc' 'tests/*.cc')
if [[ -n "$RUNNER" ]]; then
  "$RUNNER" -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
else
  "$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
fi
echo "clang-tidy: clean"
