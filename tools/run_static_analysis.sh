#!/usr/bin/env bash
# Static analysis driver for OpenDMX.
#
# Eight gates, all expected to pass clean (keep this list in sync with the
# gate table in README.md — lint_rule_coverage.py counts both):
#   1. The project-invariant linter (tools/dmx_lint.py): guard checkpoints in
#      algorithm loops, no raw sync/file primitives outside the seams,
#      WithContext on boundary Status returns — plus its own self-test
#      against the seeded fixtures.
#   2. A full -Werror build (-Wall -Wextra -Wpedantic, DMX_WERROR=ON, which
#      also promotes ignored [[nodiscard]] Status/Result to errors).
#   3. Clang Thread Safety Analysis: a clang build with
#      -Werror=thread-safety, verifying the lock regime annotations
#      (GUARDED_BY / REQUIRES / ...) machine-check. Skipped without clang.
#   4. clang-tidy over every translation unit, using the curated check set
#      in .clang-tidy with WarningsAsErrors enabled. Skipped without
#      clang-tidy.
#   5. The dynamic lock-regime verification (DESIGN.md §11): the full test
#      suite built with -DDMX_DEBUG_LOCKS=ON — runtime lockdep (lock-order
#      graph, real Assert*Held ownership checks) plus the deterministic
#      schedule explorer sweeping seed-enumerated interleavings. Any lock
#      ordering the static gates cannot see trips here.
#   6. Fuzz smoke (DESIGN.md §12): the three fuzz targets built under
#      -DDMX_FUZZ=ON with ASan, each replaying the committed corpus and
#      fixed findings plus a short grammar-mutation run. The full
#      time-budgeted campaign lives in tools/run_fuzz.sh; this gate keeps
#      the harness building and the oracles green.
#   7. Hot-path hygiene (DESIGN.md §14): an allocation-counting build
#      (-DDMX_ALLOC_STATS=ON) running the AllocStats unit tests and the
#      allocation-budget regression tests, locking per-operation allocs/row
#      ceilings over the dmx-hot-marked loops that gate 1 checks statically.
#   8. Whole-program deep lint (DESIGN.md §15, tools/dmx_deep_lint.py): a
#      project-wide call-graph analysis — blocking calls transitively
#      reachable under the catalog lock, row-scale loops reachable from
#      Execute with no guard checkpoint in their cycle, views escaping
#      their owning frame. Consumes gate 2's compile_commands.json for its
#      clang AST frontend when clang is present; otherwise its internal
#      token-stream frontend covers the tree.
#
# The clang gates are skipped (with a notice) in minimal containers; CI
# installs clang and runs everything.
#
# Usage: tools/run_static_analysis.sh [build-dir]   (default: build-lint)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"

echo "== Gate 1: dmx_lint (project invariants) =="
python3 tools/dmx_lint.py --self-test
python3 tools/dmx_lint.py

echo
echo "== Gate 2: -Werror build =="
cmake -B "$BUILD_DIR" -S . \
  -DDMX_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"
echo "-Werror build: clean"

echo
echo "== Gate 3: clang thread-safety analysis =="
CLANGXX="$(command -v clang++ || true)"
if [[ -z "$CLANGXX" ]]; then
  echo "clang++ not found on PATH; skipping thread-safety gate." >&2
  echo "Install clang (or run in CI) for full coverage." >&2
else
  cmake -B "$BUILD_DIR-tsa" -S . \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DCMAKE_CXX_FLAGS="-Werror=thread-safety" >/dev/null
  cmake --build "$BUILD_DIR-tsa" -j "$(nproc)"
  echo "thread-safety analysis: clean"
fi

echo
echo "== Gate 4: clang-tidy =="
TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "clang-tidy not found on PATH; skipping tidy gate." >&2
  echo "Install clang-tidy (or run in CI) for full coverage." >&2
else
  # run-clang-tidy parallelises across the compilation database when present;
  # otherwise fall back to invoking clang-tidy per file.
  RUNNER="$(command -v run-clang-tidy || command -v run-clang-tidy.py || true)"
  mapfile -t SOURCES < <(git ls-files 'src/**/*.cc' 'tools/*.cpp' \
                                      'examples/*.cc' 'bench/*.cc' \
                                      'tests/*.cc')
  if [[ -n "$RUNNER" ]]; then
    "$RUNNER" -p "$BUILD_DIR" -quiet "${SOURCES[@]}"
  else
    "$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
  fi
  echo "clang-tidy: clean"
fi

echo
echo "== Gate 5: dynamic lock-regime verification (lockdep + explorer) =="
cmake -B "$BUILD_DIR-lockdep" -S . -DDMX_DEBUG_LOCKS=ON >/dev/null
cmake --build "$BUILD_DIR-lockdep" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR-lockdep" --output-on-failure -j "$(nproc)"
echo "lockdep suite: clean"

echo
echo "== Gate 6: fuzz smoke (corpus replay + short mutation run) =="
tools/run_fuzz.sh "${FUZZ_SMOKE_SECONDS:-10}" "$BUILD_DIR-fuzz"
echo "fuzz smoke: clean"

echo
echo "== Gate 7: allocation budgets (DMX_ALLOC_STATS build) =="
cmake -B "$BUILD_DIR-alloc" -S . -DDMX_ALLOC_STATS=ON >/dev/null
cmake --build "$BUILD_DIR-alloc" -j "$(nproc)" \
  --target alloc_stats_test alloc_budget_test
ctest --test-dir "$BUILD_DIR-alloc" --output-on-failure \
  -R 'AllocStats|AllocBudget'
echo "allocation budgets: clean"

echo
echo "== Gate 8: whole-program deep lint (call-graph analysis) =="
python3 tools/dmx_deep_lint.py --self-test
python3 tools/dmx_deep_lint.py \
  --compdb "$BUILD_DIR/compile_commands.json" \
  --cache-dir "$BUILD_DIR/ast-cache"
echo "deep lint: clean"
