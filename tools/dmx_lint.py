#!/usr/bin/env python3
"""dmx_lint: the project-invariant linter.

Checks invariants that neither the compiler nor clang-tidy can express,
because they are *project* rules, not language rules (DESIGN.md "Static
enforcement"):

  guarded-loops       Every training/prediction entry point in
                      src/algorithms/*.cc (Train / Predict / ConsumeCase /
                      InsertCases) that contains a for/while loop must call a
                      guard checkpoint (GuardCheck / GuardChargeOutputRows /
                      GuardChargeWorkingSet) somewhere in its body — otherwise
                      deadlines and cancellation cannot trip inside it.

  raw-sync-primitive  Raw std synchronization primitives (std::mutex,
                      std::shared_timed_mutex, condition_variable, lock
                      adapters) and raw file streams (fopen, std::ofstream,
                      ...) are forbidden in src/ and tools/ outside the two
                      seams: src/common/mutex.h (annotated wrappers the
                      thread-safety analysis understands) and
                      src/common/env.cc (the fault-injectable I/O layer).

  raw-sleep           std::this_thread::sleep_for / sleep_until and usleep
                      are forbidden in src/ and tools/: waiting must go
                      through CondVar or guard deadlines so the deterministic
                      scheduler (common/det_sched.h) can control time and
                      deadlines/cancellation can trip the wait. This covers
                      src/server/ too — client retry backoff must sleep via
                      the injectable RetryClock (server/transport.h), never a
                      bare sleep_for. Tests may sleep (tests/ is outside the
                      linted tree).

  status-context      In cross-layer boundary files, `return <expr>.status();`
                      must attach a WithContext frame — a Status that crosses
                      a subsystem boundary without context is undiagnosable
                      by the time it reaches the user.

  bad-suppression     A `dmx-lint: allow(...)` comment naming an unknown rule
                      id (catches typos that would otherwise silently
                      suppress nothing).

  unused-suppression  A well-formed `dmx-lint: allow(...)` that silences no
                      violation — the code it excused was fixed or moved, so
                      the comment is stale and must be deleted.

Hot-path hygiene (DESIGN.md §14). Regions bracketed by `// dmx-hot-begin(name)`
and `// dmx-hot-end` mark the guard-checkpointed inner loops (scan/filter,
SHAPE case assembly, InsertCases, prediction join scoring, the algorithms'
train/predict loops). Inside a marked region a token-stream analyzer — real
tokens with loop-body tracking, not line regexes — enforces:

  hot-loop-alloc      No allocating construction per iteration: declaring a
                      std::string/std::vector/std::map/Row/Rowset/DataCase
                      (or `new`) inside a loop body, or push_back/emplace_back
                      on a container that is never reserve()d. Fix: hoist the
                      object out of the loop and clear()/reuse it, or reserve
                      before the loop.

  hot-value-copy      No Value/Row/DataCase/std::string taken by value in a
                      range-for, and no [=] default copy-capture. Fix: iterate
                      by const reference; capture exactly what the lambda
                      needs, by reference.

  hot-string-key      No per-row name-keyed lookups: ResolveColumn/FindColumn/
                      Get/find/count/at with a string(-literal) key inside a
                      loop body. Fix: resolve the column index once per
                      statement (Schema::ResolveColumns) and index by it.

  hot-tostring        No Value::ToString()/std::to_string() formatting inside
                      a loop body. Fix: precompute the formatted values or
                      move formatting out of the per-row path.

  hot-missing-guard   A marked region that loops but never calls GuardCheck /
                      GuardChargeOutputRows / GuardChargeWorkingSet: deadlines
                      and cancellation cannot trip inside it.

  hot-marker          Malformed region markers: dmx-hot-end without a begin,
                      nested or unterminated dmx-hot-begin.

Suppression: append `// dmx-lint: allow(<rule-id>)` to the violating line, or
put it on the line immediately above (with a comment explaining why). Every
suppression must name a known rule id.

Usage:
  tools/dmx_lint.py [--root DIR]   lint the tree rooted at DIR (default: the
                                   repository containing this script);
                                   exit 1 if any violation is found
  tools/dmx_lint.py --self-test    lint each fixture tree under
                                   tools/lint_fixtures/ and verify it yields
                                   exactly the violations its EXPECT file
                                   declares; exit 1 on any mismatch
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule ids (stable: referenced by allow() comments, EXPECT files and docs).
# ---------------------------------------------------------------------------

GUARDED_LOOPS = "guarded-loops"
RAW_SYNC_PRIMITIVE = "raw-sync-primitive"
RAW_SLEEP = "raw-sleep"
STATUS_CONTEXT = "status-context"
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"
HOT_LOOP_ALLOC = "hot-loop-alloc"
HOT_VALUE_COPY = "hot-value-copy"
HOT_STRING_KEY = "hot-string-key"
HOT_TOSTRING = "hot-tostring"
HOT_MISSING_GUARD = "hot-missing-guard"
HOT_MARKER = "hot-marker"

ALL_RULES = (GUARDED_LOOPS, RAW_SYNC_PRIMITIVE, RAW_SLEEP, STATUS_CONTEXT,
             BAD_SUPPRESSION, UNUSED_SUPPRESSION, HOT_LOOP_ALLOC,
             HOT_VALUE_COPY, HOT_STRING_KEY, HOT_TOSTRING, HOT_MISSING_GUARD,
             HOT_MARKER)

# Files the status-context rule applies to: the cross-layer boundaries where
# a Status hops subsystems (core <-> store, core <-> relational, UI <-> core,
# and the serving front end where a Status crosses the wire).
BOUNDARY_FILES = (
    "src/core/provider.cc",
    "src/core/prediction_join.cc",
    "src/core/caseset_source.cc",
    "src/core/schema_rowsets.cc",
    "src/store/store.cc",
    "src/server/server.cc",
    "src/server/client.cc",
)

# The only files allowed to touch raw sync/file primitives. lockdep and
# det-sched are the DMX_DEBUG_LOCKS instrumentation behind the mutex.h seam:
# their internal state cannot use dmx::Mutex (its hooks would re-enter them).
RAW_PRIMITIVE_SEAMS = (
    "src/common/mutex.h",
    "src/common/env.cc",
    "src/common/lockdep.cc",
    "src/common/det_sched.cc",
)

# Training / prediction entry points the guarded-loops rule inspects.
ENTRY_POINT_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*\b(?:\w+::)(Train|Predict|ConsumeCase|"
    r"InsertCases)\s*\(", re.MULTILINE)

LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
GUARD_CALL_RE = re.compile(
    r"\bGuard(?:Check|ChargeOutputRows|ChargeWorkingSet)\s*\(")

RAW_PRIMITIVE_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_|shared_timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bfopen\s*\("
    r"|std::[oif]?fstream\b")

RAW_SLEEP_RE = re.compile(
    r"std::this_thread::sleep_(?:for|until)\s*\("
    r"|\busleep\s*\(")

SUPPRESS_RE = re.compile(r"//\s*dmx-lint:\s*allow\(([a-z-]+)\)")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line  # 1-based
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Source scrubbing: blank out comments and string/char literals so rule
# regexes never match inside them. Line structure (offsets, count) is kept.
# ---------------------------------------------------------------------------

def scrub(text):
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        two = text[i:i + 2]
        if state is None:
            if two == "//":
                state = "line"
                out.append("  ")
                i += 2
            elif two == "/*":
                state = "block"
                out.append("  ")
                i += 2
            elif c in "\"'":
                state = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if two == "*/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if two == "\\" + state or two == "\\\\":
                out.append("  ")
                i += 2
            elif c == state:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def find_matching_brace(text, open_index):
    """Index just past the `}` matching the `{` at open_index, or len(text)."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------------------
# Token-stream analyzer for the hot-path rules. Operates on scrubbed text
# (comments/strings blanked, the quote characters themselves preserved) so a
# token is never a comment or literal fragment; region markers are read from
# the raw lines because they *are* comments.
# ---------------------------------------------------------------------------

class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # "ident" | "num" | "str" | "chr" | "op"
        self.text = text
        self.line = line  # 1-based

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line})"


TOKEN_RE = re.compile(
    r"(?P<ident>[A-Za-z_]\w*)"
    r"|(?P<num>\.?\d[\w.]*)"
    r"|(?P<str>\"[^\"]*\")"          # scrub() blanks contents, keeps quotes
    r"|(?P<chr>'[^']*')"
    r"|(?P<op>::|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\.\.\."
    r"|[{}()\[\];,<>=&|*+\-/.!?:~^%#\\])")


def tokenize(scrubbed):
    """Scrubbed C++ source -> list of Tokens with 1-based line numbers."""
    tokens = []
    line = 1
    pos = 0
    for match in TOKEN_RE.finditer(scrubbed):
        line += scrubbed.count("\n", pos, match.start())
        pos = match.start()
        kind = match.lastgroup
        tokens.append(Token(kind, match.group(), line))
    return tokens


HOT_BEGIN_RE = re.compile(r"//\s*dmx-hot-begin\((?P<name>[A-Za-z0-9_.-]+)\)")
HOT_END_RE = re.compile(r"//\s*dmx-hot-end\b")


def parse_hot_regions(lines):
    """Raw lines -> ([(name, begin_line, end_line)], [marker Violations' (line, msg)]).

    Regions do not nest; an unterminated begin extends to EOF and is
    reported as malformed.
    """
    regions = []
    errors = []
    open_name, open_line = None, None
    for line_no, line in enumerate(lines, start=1):
        begin = HOT_BEGIN_RE.search(line)
        end = HOT_END_RE.search(line)
        if begin:
            if open_name is not None:
                errors.append((line_no,
                               f"dmx-hot-begin({begin.group('name')}) inside "
                               f"still-open region '{open_name}' (line "
                               f"{open_line}); regions do not nest"))
            else:
                open_name, open_line = begin.group("name"), line_no
        elif end:
            if open_name is None:
                errors.append((line_no, "dmx-hot-end without a matching "
                                        "dmx-hot-begin"))
            else:
                regions.append((open_name, open_line, line_no))
                open_name, open_line = None, None
    if open_name is not None:
        errors.append((open_line, f"dmx-hot-begin({open_name}) never closed "
                                  "by a dmx-hot-end"))
        regions.append((open_name, open_line, len(lines)))
    return regions, errors


def find_loop_spans(tokens):
    """Token-index spans of every for/while/do loop: (kw, hdr_end, body_end).

    kw is the loop keyword's index; the loop's full span is tokens[kw ..
    body_end] inclusive, its body tokens[hdr_end+1 .. body_end]. A braceless
    body runs to the next top-level `;`.
    """

    def match_forward(start, open_tok, close_tok):
        depth = 0
        for i in range(start, len(tokens)):
            if tokens[i].text == open_tok:
                depth += 1
            elif tokens[i].text == close_tok:
                depth -= 1
                if depth == 0:
                    return i
        return len(tokens) - 1

    spans = []
    for i, tok in enumerate(tokens):
        if tok.kind != "ident":
            continue
        if tok.text in ("for", "while"):
            j = i + 1
            if j >= len(tokens) or tokens[j].text != "(":
                continue
            hdr_end = match_forward(j, "(", ")")
            body_start = hdr_end + 1
            if body_start < len(tokens) and tokens[body_start].text == "{":
                body_end = match_forward(body_start, "{", "}")
            else:
                body_end = body_start
                while (body_end < len(tokens)
                       and tokens[body_end].text != ";"):
                    body_end += 1
            spans.append((i, hdr_end, body_end))
        elif tok.text == "do":
            j = i + 1
            if j < len(tokens) and tokens[j].text == "{":
                spans.append((i, i, match_forward(j, "{", "}")))
    return spans


# Container/string types whose construction inside a hot loop body means a
# fresh heap allocation (or growth towards one) every iteration.
ALLOCATING_TYPES = {
    "string", "vector", "map", "multimap", "unordered_map",
    "unordered_multimap", "set", "unordered_set", "deque", "list",
}
ALLOCATING_PROJECT_TYPES = {"Row", "Rowset", "DataCase", "Rows"}

# Types too heavy to pass through a range-for by value.
HEAVY_COPY_TYPES = {
    "Value", "Row", "Rowset", "DataCase", "CaseItem", "ScoredValue",
    "AttributePrediction", "CasePrediction", "string",
}

# Name-keyed lookups that must be pre-resolved outside the loop.
STRING_KEY_CALLS = {"ResolveColumn", "FindColumn", "ResolveColumns", "Get",
                    "find", "count", "at", "contains"}

GUARD_TOKENS = {"GuardCheck", "GuardChargeOutputRows",
                "GuardChargeWorkingSet"}

LOOP_KEYWORDS = {"for", "while", "do"}


class HotAnalyzer:
    """Runs the hot-path rules over one file's token stream."""

    def __init__(self, relpath, tokens, regions):
        self.relpath = relpath
        self.tokens = tokens
        self.regions = regions  # [(name, begin_line, end_line)]
        spans = find_loop_spans(tokens)
        # A loop is "hot" when its keyword sits inside a marked region.
        self.hot_spans = [s for s in spans
                          if self.region_of(tokens[s[0]].line)]
        n = len(tokens)
        self.in_hot_body = [False] * n
        self.in_hot_loop = [False] * n  # header + body
        for kw, hdr_end, body_end in self.hot_spans:
            for i in range(kw, min(body_end + 1, n)):
                self.in_hot_loop[i] = True
            for i in range(hdr_end + 1, min(body_end + 1, n)):
                self.in_hot_body[i] = True

    def region_of(self, line):
        for name, begin, end in self.regions:
            if begin <= line <= end:
                return name
        return None

    def violations(self):
        yield from self.check_loop_alloc()
        yield from self.check_value_copy()
        yield from self.check_string_key()
        yield from self.check_tostring()
        yield from self.check_missing_guard()

    # -- helpers ----------------------------------------------------------

    def skip_template_args(self, i):
        """Index just past a balanced <...> starting at i, else i."""
        if i >= len(self.tokens) or self.tokens[i].text != "<":
            return i
        depth = 0
        for j in range(i, len(self.tokens)):
            t = self.tokens[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t == ">>":  # closes two template levels
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif t in (";", "{", "}"):  # not template args after all
                return i
        return i

    def match_type_head(self, i):
        """If tokens[i:] starts an ALLOCATING_TYPES/-PROJECT type name
        (optionally std::-qualified, optionally followed by template args),
        return (index_past_type, type_name); else None. `const` prefixes are
        handled by the caller's scan."""
        toks = self.tokens
        name = None
        if (toks[i].kind == "ident" and toks[i].text == "std"
                and i + 2 < len(toks) and toks[i + 1].text == "::"
                and toks[i + 2].text in ALLOCATING_TYPES):
            name = "std::" + toks[i + 2].text
            j = i + 3
        elif (toks[i].kind == "ident"
              and toks[i].text in ALLOCATING_PROJECT_TYPES):
            name = toks[i].text
            j = i + 1
        else:
            return None
        return self.skip_template_args(j), name

    # -- rules ------------------------------------------------------------

    def check_loop_alloc(self):
        toks = self.tokens
        reported_lines = set()
        for i, tok in enumerate(toks):
            if not self.in_hot_body[i]:
                continue
            # `new` expressions.
            if tok.kind == "ident" and tok.text == "new":
                yield Violation(
                    HOT_LOOP_ALLOC, self.relpath, tok.line,
                    "`new` inside a hot loop body allocates every iteration; "
                    "hoist the object out of the loop or use an arena")
                continue
            # Declarations / temporaries of allocating types. Preceding `.`,
            # `->` or `::` means this is a member/qualified name, not a type
            # head; a following `&` or `*` declares a reference/pointer.
            if tok.kind != "ident":
                continue
            if i > 0 and toks[i - 1].text in (".", "->", "::"):
                continue
            head = self.match_type_head(i)
            if head is None:
                continue
            j, type_name = head
            if j < len(toks) and toks[j].text in ("&", "*"):
                continue  # reference binding / pointer declaration
            if j < len(toks) and (toks[j].kind == "ident"
                                  or toks[j].text in ("(", "{")):
                if tok.line in reported_lines:
                    continue
                reported_lines.add(tok.line)
                yield Violation(
                    HOT_LOOP_ALLOC, self.relpath, tok.line,
                    f"{type_name} constructed inside a hot loop body "
                    "(one allocation per iteration); hoist it out of the "
                    "loop and clear()/reuse it")
        # push_back / emplace_back on receivers that are never reserve()d.
        reserved = set()
        for i, tok in enumerate(toks):
            if (tok.kind == "ident" and tok.text == "reserve"
                    and i >= 2 and toks[i - 1].text in (".", "->")
                    and toks[i - 2].kind == "ident"):
                reserved.add(toks[i - 2].text)
        for i, tok in enumerate(toks):
            if not self.in_hot_body[i]:
                continue
            if (tok.kind == "ident"
                    and tok.text in ("push_back", "emplace_back")
                    and i >= 2 and toks[i - 1].text in (".", "->")
                    and toks[i - 2].kind == "ident"
                    and toks[i - 2].text not in reserved):
                yield Violation(
                    HOT_LOOP_ALLOC, self.relpath, tok.line,
                    f"{toks[i - 2].text}.{tok.text}() in a hot loop with no "
                    f"{toks[i - 2].text}.reserve() anywhere in this file; "
                    "reserve the expected size before the loop")

    def check_value_copy(self):
        toks = self.tokens
        for i, tok in enumerate(toks):
            # Default copy-capture anywhere in a region: hot lambdas must
            # name what they take, by reference.
            if (tok.text == "[" and i + 2 < len(toks)
                    and toks[i + 1].text == "="
                    and toks[i + 2].text == "]"
                    and self.region_of(tok.line)):
                yield Violation(
                    HOT_VALUE_COPY, self.relpath, tok.line,
                    "[=] default copy-capture in a hot region; capture the "
                    "specific variables, by reference")
                continue
            # Range-for taking a heavy element type by value.
            if not (tok.kind == "ident" and tok.text == "for"
                    and self.region_of(tok.line)):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            j = i + 2
            if j < len(toks) and toks[j].text == "const":
                j += 1
            name = None
            if (j + 2 < len(toks) and toks[j].text == "std"
                    and toks[j + 1].text == "::"
                    and toks[j + 2].text in HEAVY_COPY_TYPES):
                name = "std::" + toks[j + 2].text
                j = self.skip_template_args(j + 3)
            elif toks[j].kind == "ident" and toks[j].text in HEAVY_COPY_TYPES:
                name = toks[j].text
                j = self.skip_template_args(j + 1)
            else:
                continue
            if j < len(toks) and toks[j].text in ("&", "*"):
                continue
            # ident then ':' confirms a by-value range-for binding.
            if (j + 1 < len(toks) and toks[j].kind == "ident"
                    and toks[j + 1].text == ":"):
                yield Violation(
                    HOT_VALUE_COPY, self.relpath, tok.line,
                    f"range-for copies each {name} in a hot region; iterate "
                    "by const reference")

    def check_string_key(self):
        toks = self.tokens
        for i, tok in enumerate(toks):
            if not self.in_hot_body[i]:
                continue
            if not (tok.kind == "ident" and tok.text in STRING_KEY_CALLS
                    and i + 1 < len(toks) and toks[i + 1].text == "("):
                continue
            # Method or qualified call only: plain `find(` could be any
            # helper, but `x.find(` / `x->find(` / `Schema::Get(` is a
            # container/schema lookup.
            if not (i >= 1 and toks[i - 1].text in (".", "->", "::")):
                continue
            # A string literal or std::string temporary in the argument list
            # means the key is (re)built per row.
            depth = 0
            has_string_key = False
            for j in range(i + 1, len(toks)):
                t = toks[j]
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t.kind == "str":
                    has_string_key = True
            # Schema lookups are name-keyed by definition.
            if tok.text in ("ResolveColumn", "FindColumn", "ResolveColumns"):
                has_string_key = True
            if has_string_key:
                yield Violation(
                    HOT_STRING_KEY, self.relpath, tok.line,
                    f"{tok.text}() with a string key inside a hot loop; "
                    "resolve the column/key to an index once per statement "
                    "(Schema::ResolveColumns) and use the index here")

    def check_tostring(self):
        toks = self.tokens
        for i, tok in enumerate(toks):
            if not self.in_hot_body[i]:
                continue
            if tok.kind != "ident":
                continue
            if (tok.text == "ToString" and i >= 1
                    and toks[i - 1].text in (".", "->")):
                yield Violation(
                    HOT_TOSTRING, self.relpath, tok.line,
                    "ToString() inside a hot loop formats every iteration; "
                    "precompute the formatted value outside the loop")
            elif (tok.text == "to_string" and i >= 2
                  and toks[i - 1].text == "::" and toks[i - 2].text == "std"):
                yield Violation(
                    HOT_TOSTRING, self.relpath, tok.line,
                    "std::to_string() inside a hot loop allocates and "
                    "formats every iteration; precompute it outside the "
                    "loop")

    def check_missing_guard(self):
        for name, begin, end in self.regions:
            has_loop = False
            has_guard = False
            for tok in self.tokens:
                if tok.line < begin or tok.line > end:
                    continue
                if tok.kind == "ident":
                    if tok.text in LOOP_KEYWORDS:
                        has_loop = True
                    elif tok.text in GUARD_TOKENS:
                        has_guard = True
            if has_loop and not has_guard:
                yield Violation(
                    HOT_MISSING_GUARD, self.relpath, begin,
                    f"hot region '{name}' loops but never calls GuardCheck/"
                    "GuardCharge*; deadlines and cancellation cannot trip "
                    "inside it")


def check_hot_rules(relpath, lines, scrubbed):
    if not relpath.startswith("src/"):
        return
    regions, marker_errors = parse_hot_regions(lines)
    for line_no, message in marker_errors:
        yield Violation(HOT_MARKER, relpath, line_no, message)
    if not regions:
        return
    analyzer = HotAnalyzer(relpath, tokenize(scrubbed), regions)
    yield from analyzer.violations()


# ---------------------------------------------------------------------------
# Rules. Each takes (relpath, raw_lines, scrubbed_text) and yields Violations.
# ---------------------------------------------------------------------------

def check_guarded_loops(relpath, lines, scrubbed):
    if not re.fullmatch(r"src/algorithms/[^/]+\.cc", relpath):
        return
    for match in ENTRY_POINT_RE.finditer(scrubbed):
        if match.start() != 0 and scrubbed[match.start() - 1] != "\n":
            continue  # not at the start of a line: not a definition
        name = match.group(1)
        def_line = scrubbed.count("\n", 0, match.start()) + 1
        open_brace = scrubbed.find("{", match.end())
        semi = scrubbed.find(";", match.end())
        if open_brace < 0 or (0 <= semi < open_brace):
            continue  # declaration, not a definition
        body = scrubbed[open_brace:find_matching_brace(scrubbed, open_brace)]
        if LOOP_RE.search(body) and not GUARD_CALL_RE.search(body):
            yield Violation(
                GUARDED_LOOPS, relpath, def_line,
                f"{name}() contains a loop but never calls GuardCheck/"
                "GuardCharge*; deadlines and cancellation cannot trip here")


def check_raw_sync_primitive(relpath, lines, scrubbed):
    if relpath in RAW_PRIMITIVE_SEAMS:
        return
    if not (relpath.startswith("src/") or relpath.startswith("tools/")):
        return
    for line_no, line in enumerate(scrubbed.split("\n"), start=1):
        match = RAW_PRIMITIVE_RE.search(line)
        if match:
            yield Violation(
                RAW_SYNC_PRIMITIVE, relpath, line_no,
                f"raw primitive '{match.group(0).strip()}' outside the "
                "common/mutex.h / common/env.cc seams; use the annotated "
                "wrappers or Env")


def check_raw_sleep(relpath, lines, scrubbed):
    if not (relpath.startswith("src/") or relpath.startswith("tools/")):
        return
    for line_no, line in enumerate(scrubbed.split("\n"), start=1):
        match = RAW_SLEEP_RE.search(line)
        if match:
            yield Violation(
                RAW_SLEEP, relpath, line_no,
                f"raw sleep '{match.group(0).strip().rstrip('(').strip()}' "
                "in production code; wait on a CondVar or a guard deadline "
                "so det-sched can control time and cancellation can trip")


def check_status_context(relpath, lines, scrubbed):
    if relpath not in BOUNDARY_FILES:
        return
    # Walk `return ... ;` statements (joined across lines) in scrubbed text.
    for match in re.finditer(r"\breturn\b([^;]*);", scrubbed):
        stmt = match.group(1)
        if ".status()" in stmt and ".WithContext(" not in stmt:
            line_no = scrubbed.count("\n", 0, match.start()) + 1
            yield Violation(
                STATUS_CONTEXT, relpath, line_no,
                "a Status crossing this boundary must carry .WithContext(...) "
                "so the failure is diagnosable downstream")


RULE_CHECKS = (check_guarded_loops, check_raw_sync_primitive,
               check_raw_sleep, check_status_context, check_hot_rules)


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def lint_file(root, path):
    relpath = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    scrubbed = scrub(text)

    # Suppressions: each allow() entry silences its own line and the one
    # below it, and must actually silence something — an allow() whose
    # violation is gone is stale documentation and gets flagged itself.
    suppressions = []  # [rule, comment line, covered lines, used]
    violations = []
    for line_no, line in enumerate(lines, start=1):
        for rule in SUPPRESS_RE.findall(line):
            if rule not in ALL_RULES:
                violations.append(Violation(
                    BAD_SUPPRESSION, relpath, line_no,
                    f"allow() names unknown rule '{rule}' (known: "
                    f"{', '.join(ALL_RULES)})"))
                continue
            suppressions.append([rule, line_no, (line_no, line_no + 1),
                                 False])

    for check in RULE_CHECKS:
        for violation in check(relpath, lines, scrubbed):
            hit = False
            for entry in suppressions:
                if violation.rule == entry[0] and violation.line in entry[2]:
                    entry[3] = True
                    hit = True
            if not hit:
                violations.append(violation)
    for rule, line_no, _covered, used in suppressions:
        if not used:
            violations.append(Violation(
                UNUSED_SUPPRESSION, relpath, line_no,
                f"allow({rule}) silences nothing here (the violation it "
                f"excused is gone; delete the comment)"))
    return violations


def lint_tree(root):
    violations = []
    for subdir in ("src", "tools"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cc", ".h", ".cpp") and path.is_file():
                if "lint_fixtures" in path.relative_to(root).parts:
                    continue  # fixtures are deliberately in violation
                violations.extend(lint_file(root, path))
    return violations


# ---------------------------------------------------------------------------
# Self-test: every directory under tools/lint_fixtures/ is a miniature tree
# whose EXPECT file lists the exact violations it must produce, one per line
# as `<rule-id>:<relpath>:<line>`, or the single word `clean`.
# ---------------------------------------------------------------------------

def self_test(fixtures_dir):
    if not fixtures_dir.is_dir():
        print(f"dmx_lint: no fixtures at {fixtures_dir}", file=sys.stderr)
        return 1
    failures = 0
    cases = sorted(p for p in fixtures_dir.iterdir() if p.is_dir())
    if not cases:
        print("dmx_lint: fixture directory is empty", file=sys.stderr)
        return 1
    for case in cases:
        expect_file = case / "EXPECT"
        if not expect_file.is_file():
            print(f"FAIL {case.name}: missing EXPECT file")
            failures += 1
            continue
        expected = set()
        for line in expect_file.read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#") and line != "clean":
                expected.add(line)
        actual = {
            f"{v.rule}:{v.path}:{v.line}" for v in lint_tree(case)
        }
        if actual == expected:
            print(f"PASS {case.name}: "
                  f"{len(actual) or 'no'} violation(s), as expected")
        else:
            failures += 1
            print(f"FAIL {case.name}:")
            for missing in sorted(expected - actual):
                print(f"  expected but not reported: {missing}")
            for extra in sorted(actual - expected):
                print(f"  reported but not expected: {extra}")
    if failures:
        print(f"dmx_lint self-test: {failures}/{len(cases)} case(s) failed")
        return 1
    print(f"dmx_lint self-test: all {len(cases)} case(s) passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="tree to lint (default: this repository)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against the seeded fixtures")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "lint_fixtures")

    violations = lint_tree(args.root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"dmx_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("dmx_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
