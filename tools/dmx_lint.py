#!/usr/bin/env python3
"""dmx_lint: the project-invariant linter.

Checks invariants that neither the compiler nor clang-tidy can express,
because they are *project* rules, not language rules (DESIGN.md "Static
enforcement"):

  guarded-loops       Every training/prediction entry point in
                      src/algorithms/*.cc (Train / Predict / ConsumeCase /
                      InsertCases) that contains a for/while loop must call a
                      guard checkpoint (GuardCheck / GuardChargeOutputRows /
                      GuardChargeWorkingSet) somewhere in its body — otherwise
                      deadlines and cancellation cannot trip inside it.

  raw-sync-primitive  Raw std synchronization primitives (std::mutex,
                      std::shared_timed_mutex, condition_variable, lock
                      adapters) and raw file streams (fopen, std::ofstream,
                      ...) are forbidden in src/ and tools/ outside the two
                      seams: src/common/mutex.h (annotated wrappers the
                      thread-safety analysis understands) and
                      src/common/env.cc (the fault-injectable I/O layer).

  raw-sleep           std::this_thread::sleep_for / sleep_until and usleep
                      are forbidden in src/ and tools/: waiting must go
                      through CondVar or guard deadlines so the deterministic
                      scheduler (common/det_sched.h) can control time and
                      deadlines/cancellation can trip the wait. This covers
                      src/server/ too — client retry backoff must sleep via
                      the injectable RetryClock (server/transport.h), never a
                      bare sleep_for. Tests may sleep (tests/ is outside the
                      linted tree).

  status-context      In cross-layer boundary files, `return <expr>.status();`
                      must attach a WithContext frame — a Status that crosses
                      a subsystem boundary without context is undiagnosable
                      by the time it reaches the user.

  bad-suppression     A `dmx-lint: allow(...)` comment naming an unknown rule
                      id (catches typos that would otherwise silently
                      suppress nothing).

Suppression: append `// dmx-lint: allow(<rule-id>)` to the violating line, or
put it on the line immediately above (with a comment explaining why). Every
suppression must name a known rule id.

Usage:
  tools/dmx_lint.py [--root DIR]   lint the tree rooted at DIR (default: the
                                   repository containing this script);
                                   exit 1 if any violation is found
  tools/dmx_lint.py --self-test    lint each fixture tree under
                                   tools/lint_fixtures/ and verify it yields
                                   exactly the violations its EXPECT file
                                   declares; exit 1 on any mismatch
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule ids (stable: referenced by allow() comments, EXPECT files and docs).
# ---------------------------------------------------------------------------

GUARDED_LOOPS = "guarded-loops"
RAW_SYNC_PRIMITIVE = "raw-sync-primitive"
RAW_SLEEP = "raw-sleep"
STATUS_CONTEXT = "status-context"
BAD_SUPPRESSION = "bad-suppression"

ALL_RULES = (GUARDED_LOOPS, RAW_SYNC_PRIMITIVE, RAW_SLEEP, STATUS_CONTEXT,
             BAD_SUPPRESSION)

# Files the status-context rule applies to: the cross-layer boundaries where
# a Status hops subsystems (core <-> store, core <-> relational, UI <-> core,
# and the serving front end where a Status crosses the wire).
BOUNDARY_FILES = (
    "src/core/provider.cc",
    "src/core/prediction_join.cc",
    "src/core/caseset_source.cc",
    "src/core/schema_rowsets.cc",
    "src/store/store.cc",
    "src/server/server.cc",
    "src/server/client.cc",
)

# The only files allowed to touch raw sync/file primitives. lockdep and
# det-sched are the DMX_DEBUG_LOCKS instrumentation behind the mutex.h seam:
# their internal state cannot use dmx::Mutex (its hooks would re-enter them).
RAW_PRIMITIVE_SEAMS = (
    "src/common/mutex.h",
    "src/common/env.cc",
    "src/common/lockdep.cc",
    "src/common/det_sched.cc",
)

# Training / prediction entry points the guarded-loops rule inspects.
ENTRY_POINT_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*\b(?:\w+::)(Train|Predict|ConsumeCase|"
    r"InsertCases)\s*\(", re.MULTILINE)

LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
GUARD_CALL_RE = re.compile(
    r"\bGuard(?:Check|ChargeOutputRows|ChargeWorkingSet)\s*\(")

RAW_PRIMITIVE_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_|shared_timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bfopen\s*\("
    r"|std::[oif]?fstream\b")

RAW_SLEEP_RE = re.compile(
    r"std::this_thread::sleep_(?:for|until)\s*\("
    r"|\busleep\s*\(")

SUPPRESS_RE = re.compile(r"//\s*dmx-lint:\s*allow\(([a-z-]+)\)")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line  # 1-based
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Source scrubbing: blank out comments and string/char literals so rule
# regexes never match inside them. Line structure (offsets, count) is kept.
# ---------------------------------------------------------------------------

def scrub(text):
    out = []
    i, n = 0, len(text)
    state = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        c = text[i]
        two = text[i:i + 2]
        if state is None:
            if two == "//":
                state = "line"
                out.append("  ")
                i += 2
            elif two == "/*":
                state = "block"
                out.append("  ")
                i += 2
            elif c in "\"'":
                state = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if two == "*/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if two == "\\" + state or two == "\\\\":
                out.append("  ")
                i += 2
            elif c == state:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def find_matching_brace(text, open_index):
    """Index just past the `}` matching the `{` at open_index, or len(text)."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# ---------------------------------------------------------------------------
# Rules. Each takes (relpath, raw_lines, scrubbed_text) and yields Violations.
# ---------------------------------------------------------------------------

def check_guarded_loops(relpath, lines, scrubbed):
    if not re.fullmatch(r"src/algorithms/[^/]+\.cc", relpath):
        return
    for match in ENTRY_POINT_RE.finditer(scrubbed):
        if match.start() != 0 and scrubbed[match.start() - 1] != "\n":
            continue  # not at the start of a line: not a definition
        name = match.group(1)
        def_line = scrubbed.count("\n", 0, match.start()) + 1
        open_brace = scrubbed.find("{", match.end())
        semi = scrubbed.find(";", match.end())
        if open_brace < 0 or (0 <= semi < open_brace):
            continue  # declaration, not a definition
        body = scrubbed[open_brace:find_matching_brace(scrubbed, open_brace)]
        if LOOP_RE.search(body) and not GUARD_CALL_RE.search(body):
            yield Violation(
                GUARDED_LOOPS, relpath, def_line,
                f"{name}() contains a loop but never calls GuardCheck/"
                "GuardCharge*; deadlines and cancellation cannot trip here")


def check_raw_sync_primitive(relpath, lines, scrubbed):
    if relpath in RAW_PRIMITIVE_SEAMS:
        return
    if not (relpath.startswith("src/") or relpath.startswith("tools/")):
        return
    for line_no, line in enumerate(scrubbed.split("\n"), start=1):
        match = RAW_PRIMITIVE_RE.search(line)
        if match:
            yield Violation(
                RAW_SYNC_PRIMITIVE, relpath, line_no,
                f"raw primitive '{match.group(0).strip()}' outside the "
                "common/mutex.h / common/env.cc seams; use the annotated "
                "wrappers or Env")


def check_raw_sleep(relpath, lines, scrubbed):
    if not (relpath.startswith("src/") or relpath.startswith("tools/")):
        return
    for line_no, line in enumerate(scrubbed.split("\n"), start=1):
        match = RAW_SLEEP_RE.search(line)
        if match:
            yield Violation(
                RAW_SLEEP, relpath, line_no,
                f"raw sleep '{match.group(0).strip().rstrip('(').strip()}' "
                "in production code; wait on a CondVar or a guard deadline "
                "so det-sched can control time and cancellation can trip")


def check_status_context(relpath, lines, scrubbed):
    if relpath not in BOUNDARY_FILES:
        return
    # Walk `return ... ;` statements (joined across lines) in scrubbed text.
    for match in re.finditer(r"\breturn\b([^;]*);", scrubbed):
        stmt = match.group(1)
        if ".status()" in stmt and ".WithContext(" not in stmt:
            line_no = scrubbed.count("\n", 0, match.start()) + 1
            yield Violation(
                STATUS_CONTEXT, relpath, line_no,
                "a Status crossing this boundary must carry .WithContext(...) "
                "so the failure is diagnosable downstream")


RULE_CHECKS = (check_guarded_loops, check_raw_sync_primitive,
               check_raw_sleep, check_status_context)


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def lint_file(root, path):
    relpath = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    scrubbed = scrub(text)

    # Suppressions: rule -> set of line numbers it silences (the comment's
    # own line and the one below it).
    suppressed = {}
    violations = []
    for line_no, line in enumerate(lines, start=1):
        for rule in SUPPRESS_RE.findall(line):
            if rule not in ALL_RULES:
                violations.append(Violation(
                    BAD_SUPPRESSION, relpath, line_no,
                    f"allow() names unknown rule '{rule}' (known: "
                    f"{', '.join(ALL_RULES)})"))
                continue
            suppressed.setdefault(rule, set()).update((line_no, line_no + 1))

    for check in RULE_CHECKS:
        for violation in check(relpath, lines, scrubbed):
            if violation.line in suppressed.get(violation.rule, ()):
                continue
            violations.append(violation)
    return violations


def lint_tree(root):
    violations = []
    for subdir in ("src", "tools"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cc", ".h", ".cpp") and path.is_file():
                if "lint_fixtures" in path.relative_to(root).parts:
                    continue  # fixtures are deliberately in violation
                violations.extend(lint_file(root, path))
    return violations


# ---------------------------------------------------------------------------
# Self-test: every directory under tools/lint_fixtures/ is a miniature tree
# whose EXPECT file lists the exact violations it must produce, one per line
# as `<rule-id>:<relpath>:<line>`, or the single word `clean`.
# ---------------------------------------------------------------------------

def self_test(fixtures_dir):
    if not fixtures_dir.is_dir():
        print(f"dmx_lint: no fixtures at {fixtures_dir}", file=sys.stderr)
        return 1
    failures = 0
    cases = sorted(p for p in fixtures_dir.iterdir() if p.is_dir())
    if not cases:
        print("dmx_lint: fixture directory is empty", file=sys.stderr)
        return 1
    for case in cases:
        expect_file = case / "EXPECT"
        if not expect_file.is_file():
            print(f"FAIL {case.name}: missing EXPECT file")
            failures += 1
            continue
        expected = set()
        for line in expect_file.read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#") and line != "clean":
                expected.add(line)
        actual = {
            f"{v.rule}:{v.path}:{v.line}" for v in lint_tree(case)
        }
        if actual == expected:
            print(f"PASS {case.name}: "
                  f"{len(actual) or 'no'} violation(s), as expected")
        else:
            failures += 1
            print(f"FAIL {case.name}:")
            for missing in sorted(expected - actual):
                print(f"  expected but not reported: {missing}")
            for extra in sorted(actual - expected):
                print(f"  reported but not expected: {extra}")
    if failures:
        print(f"dmx_lint self-test: {failures}/{len(cases)} case(s) failed")
        return 1
    print(f"dmx_lint self-test: all {len(cases)} case(s) passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="tree to lint (default: this repository)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against the seeded fixtures")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "lint_fixtures")

    violations = lint_tree(args.root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"dmx_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("dmx_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
