#!/usr/bin/env python3
"""OpenDMX whole-program analyzer (gate 8): interprocedural lock/guard/view rules.

Where tools/dmx_lint.py (gates 1 and 7) is deliberately token-local, this
tool builds a project-wide call graph plus per-function facts and runs three
interprocedural rules:

  lock-blocking-call    a blocking operation (Env/WritableFile/Transport
                        I/O, CondVar::WaitFor on another mutex, sleeps,
                        fsync) is transitively reachable while an exclusive
                        DMX_REQUIRES capability or an exclusive RAII lock
                        scope is held. The store's own mutex exists to
                        serialize I/O and the journal-after-success WAL
                        entry points are the design, so both are sanctioned
                        (see SANCTIONED_BLOCKING / IO_CAPS below); unused
                        sanction entries are flagged as stale-sanction.
  guard-unreachable-loop  a row-scale loop (its header draws from a rowset/
                        caseset source) reachable from the execution roots
                        (Connection::Execute and the serving session loop)
                        with no guard checkpoint in its cycle — neither a
                        direct GuardCheck/GuardCharge* nor a call to a
                        function that transitively reaches one.
  view-escape           a borrowed view (string_view/span/Span, or a raw
                        pointer/reference return) rooted in an owning local
                        or by-value parameter escapes via the return value
                        or a store to a view-typed member.

Plus three self-policing rules: bad-suppression (allow() naming an unknown
rule), unused-suppression (an allow() that silences nothing), and
stale-sanction (a SANCTIONED_BLOCKING / IO_CAPS entry matching nothing in
the scanned program).

Function facts come from one of two frontends producing the same IR:

  clang     parses `clang++ -Xclang -ast-dump=json` for every TU listed in
            compile_commands.json. Facts (not raw ASTs) are cached under
            <build>/ast-cache/ keyed by content hash + compiler version.
  internal  a token-stream C++ reader built on dmx_lint's scrubber, used
            where clang is unavailable (minimal containers) and as the
            per-TU fallback when a clang dump fails to parse.

`--frontend=auto` (the default) prefers clang when both clang++ and a
compilation database are present. Fixture replay (`--self-test`) always
uses the internal frontend so results are reproducible without a compiler.

Findings print as `path:line: [rule] message`; EXPECT files use
`rule:path:line`. Suppress locally with `// dmx-deep-lint: allow(rule)` on
the finding's line or the line above.
"""

import argparse
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from dmx_lint import (  # noqa: E402
    Token, Violation, find_loop_spans, scrub, tokenize,
)

# Cache-key component: bump whenever the fact schema or extraction changes.
FACTS_VERSION = "dmx-deep-lint-facts-v2"

# ---------------------------------------------------------------------------
# Rule ids (stable: referenced by allow() comments, EXPECT files and docs).
# ---------------------------------------------------------------------------

LOCK_BLOCKING_CALL = "lock-blocking-call"
GUARD_UNREACHABLE_LOOP = "guard-unreachable-loop"
VIEW_ESCAPE = "view-escape"
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"
STALE_SANCTION = "stale-sanction"

ALL_RULES = (LOCK_BLOCKING_CALL, GUARD_UNREACHABLE_LOOP, VIEW_ESCAPE,
             BAD_SUPPRESSION, UNUSED_SUPPRESSION, STALE_SANCTION)

SUPPRESS_RE = re.compile(r"//\s*dmx-deep-lint:\s*allow\(([a-z-]+)\)")

# ---------------------------------------------------------------------------
# Analysis configuration. Everything here is overridable per fixture via a
# CONFIG.json in the fixture directory (keys: roots, sanctioned, io_caps,
# check_sanctions) so the rules themselves stay data-driven and testable.
# ---------------------------------------------------------------------------

# Entry points for reachability (guard-unreachable-loop). Matched as
# qualified-name suffixes.
DEFAULT_ROOTS = (
    "Connection::Execute",
    "Connection::ExecuteGuarded",
    "DmxServer::RunSession",
)

# Receiver types whose I/O-shaped methods block (syscalls, disk, wire).
BLOCKING_TYPES = {
    "Env", "PosixEnv", "WritableFile", "Transport", "TcpTransport",
    "TcpListener", "CondVar", "RetryClock", "SystemRetryClock",
}

# Method/function names that always denote a blocking primitive, no matter
# the receiver (names unique to the blocking seams, plus raw syscalls the
# raw-sleep/raw-sync token rules also police).
ALWAYS_BLOCKING_CALLS = {
    "NewWritableFile", "ReadFileToString", "AtomicWriteFile",
    "WriteStringToFile", "RenameFile", "DeleteFile", "TruncateFile",
    "CreateDir", "SyncDir", "ListDir", "GetFileSize", "FileExists",
    "SleepMs", "WaitFor", "Accept",
    "fsync", "fdatasync", "usleep", "nanosleep", "sleep_for", "sleep_until",
    "poll", "select",
}

# Names that block only when the receiver is one of BLOCKING_TYPES (the same
# names also appear on Rowset/std containers, where they are pure memory).
RECEIVER_BLOCKING_CALLS = {
    "Read", "Write", "Append", "Sync", "Flush", "Close", "Connect",
    "Listen", "ShutdownWrite",
}

# Functions allowed to block from their callers' point of view: the WAL
# protocol journals *under* the exclusive catalog lock by design (DESIGN.md
# §7 — a mutation is not visible until its record is durable), and
# checkpoint/recovery hold it for the same reason. Matched as
# qualified-name suffixes; entries that match nothing are stale-sanction.
SANCTIONED_BLOCKING = {
    "DurableStore::JournalStatement":
        "WAL journal-after-success: mutations journal under the catalog "
        "lock so no reader sees un-durable state (DESIGN.md §7)",
    "DurableStore::JournalModelStatement":
        "per-model WAL shard journaling, same protocol (DESIGN.md §13)",
    "DurableStore::JournalModelBlob":
        "snapshot-once blob journaling for TRAIN/IMPORT (DESIGN.md §13)",
    "DurableStore::Checkpoint":
        "checkpoint quiesces the catalog by design; bounded by its own "
        "fsync budget, not a per-row path",
    "DurableStore::Open":
        "recovery replays shards before the provider serves traffic",
    "DurableStore::Repair":
        "quarantine repair re-reads shards while writes are fenced",
}

# Capabilities that exist to serialize I/O: holding them *while* doing I/O
# is their entire purpose, so rule 1 does not count them as held state.
IO_CAPS = {"DurableStore::mu_"}

# Loop-header identifiers that mark a loop as row-scale (it iterates a
# rowset/caseset-shaped source, so its trip count is data-dependent).
# Deliberately absent: "group"/"groups" — attribute groups (AttributeSet,
# PMML serialization) are schema-scale, bounded by model width. Row *groups*
# (GROUP BY partitions) are still caught by their element type below.
ROW_SOURCE_IDS = {
    "rows", "mutable_rows", "num_rows", "nested_rows",
    "cases", "num_cases", "selection",
}

# Range-for element types that mark a loop as row-scale regardless of the
# range expression's name: iterating Row/DataCase elements is iterating
# data, whatever the container is called.
ROW_ELEM_TYPES = {"Row", "DataCase"}

# Free guard checkpoints plus the ExecGuard methods behind them.
GUARD_FREE_CALLS = {"GuardCheck", "GuardChargeOutputRows",
                    "GuardChargeWorkingSet"}
GUARD_METHOD_CALLS = {"Check", "ChargeOutputRows", "ChargeWorkingSet"}

# RAII lock holders (src/common/mutex.h): type name -> exclusive?
EXCLUSIVE_LOCK_TYPES = {"MutexLock", "WriterMutexLock", "AdoptedWriterLock"}
SHARED_LOCK_TYPES = {"ReaderMutexLock", "AdoptedReaderLock"}
LOCK_TYPES = EXCLUSIVE_LOCK_TYPES | SHARED_LOCK_TYPES

# Owning value types: a view rooted in a local/by-value parameter of one of
# these dies with the frame.
OWNING_TYPES = {
    "string", "vector", "deque", "map", "unordered_map", "set",
    "unordered_set", "ostringstream", "stringstream", "array",
    "Row", "Rowset", "Value", "DataCase", "Schema", "ColumnDef",
}

# View-shaped type names (for member classification).
VIEW_TYPE_IDS = {"string_view", "span", "Span"}

# Type-name wrappers skipped when reducing a type token list to its core
# type (std::unique_ptr<store::DurableStore> -> DurableStore).
TYPE_WRAPPERS = {
    "std", "store", "rel", "dmx", "unique_ptr", "shared_ptr", "optional",
    "vector", "deque", "const", "volatile", "mutable", "static", "inline",
    "constexpr", "typename", "Result",
}

CPP_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "decltype",
    "new", "delete", "throw", "try", "catch", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "co_return", "co_await", "co_yield",
    "operator", "this", "nullptr", "true", "false", "static_assert",
    "defined", "assert", "not", "and", "or",
}

MACRO_NAME_RE = re.compile(r"[A-Z][A-Z0-9_]*$")


def is_macro_name(name):
    return bool(MACRO_NAME_RE.fullmatch(name)) and ("_" in name or
                                                    name.isupper())


# ---------------------------------------------------------------------------
# The fact IR shared by both frontends. Everything is plain dict/list so it
# round-trips through the JSON fact cache untouched.
# ---------------------------------------------------------------------------


def make_call(name, chain, receiver, receiver_receiver, line, first_arg,
              is_guard):
    return {
        "name": name,                    # last component, e.g. "Append"
        "chain": chain,                  # full chain, e.g. ["rel","Execute"]
        "recv": receiver,                # receiver identifier or None
        "recv2": receiver_receiver,      # receiver's receiver or None
        "line": line,
        "arg0": first_arg,               # last ident of the first argument
        "guard": is_guard,
    }


def make_function(qualname, relpath, line):
    return {
        "qual": qualname,        # "dmx::Connection::ExecuteGuarded"
        "file": relpath,
        "line": line,
        "requires": [],          # [[cap, recv, exclusive]]
        "acquires": [],          # [[cap, recv, exclusive, line, end_line]]
        "calls": [],             # [make_call...]
        "loops": [],             # [[line, row_ident|None, guarded, [call idx]]]
        "locals": {},            # name -> core type
        "params": {},            # name -> [core type, by_value]
        "view_return": False,    # return type is a view/pointer/reference
        "returns": [],           # [[line, [ident...]]]
        "member_stores": [],     # [[line, member, [ident...]]]
        "lambdas": {},           # local name -> lambda qualname
    }


def make_file_facts(relpath):
    return {
        "file": relpath,
        "functions": [],         # [make_function...]
        "decl_requires": {},     # "Class::method" -> [[cap, recv, excl]]
        "member_types": {},      # member/global name -> core type
        "view_members": {},      # member name -> "Class" (view-typed member)
    }


# ---------------------------------------------------------------------------
# Internal frontend: a token-stream C++ reader. It does not try to be a
# parser; it recognizes the project's house style (one of the things the
# token gates already enforce) and extracts the IR above.
# ---------------------------------------------------------------------------


class TokenCursor:
    """Shared helpers over one file's token list."""

    def __init__(self, tokens):
        self.toks = tokens
        self.match = {}          # open index -> close index for () {} []
        stack = {"(": [], "{": [], "[": []}
        pairs = {")": "(", "}": "{", "]": "["}
        for i, t in enumerate(tokens):
            if t.text in stack:
                stack[t.text].append(i)
            elif t.text in pairs and stack[pairs[t.text]]:
                self.match[stack[pairs[t.text]].pop()] = i

    def close(self, i):
        return self.match.get(i, len(self.toks) - 1)


def strip_preprocessor(tokens):
    """Drop preprocessor directives (with backslash continuations)."""
    out = []
    i, n = 0, len(tokens)
    while i < n:
        if tokens[i].text == "#":
            line = tokens[i].line
            i += 1
            while i < n and tokens[i].line <= line:
                if tokens[i].text == "\\" and tokens[i].line == line:
                    line += 1
                i += 1
            continue
        out.append(tokens[i])
        i += 1
    return out


def core_type(type_tokens):
    """Reduce a type token list to its payload type name."""
    ids = [t.text for t in type_tokens if t.kind == "ident"]
    for name in reversed(ids):
        if name not in TYPE_WRAPPERS and name not in CPP_KEYWORDS:
            return name
    return ids[-1] if ids else ""


def is_view_type(type_tokens):
    texts = [t.text for t in type_tokens]
    if any(t in VIEW_TYPE_IDS for t in texts):
        return True
    return "*" in texts


def split_top_commas(tokens, cursor, start, end):
    """Token-index slices of `tokens[start:end]` split on depth-0 commas."""
    parts = []
    depth = 0
    part_start = start
    i = start
    while i < end:
        t = tokens[i].text
        if t in ("(", "{", "["):
            i = cursor.close(i)
        elif t == "," and depth == 0:
            parts.append((part_start, i))
            part_start = i + 1
        elif t == "<":
            depth += 1
        elif t == ">" and depth > 0:
            depth -= 1
        i += 1
    if part_start < end:
        parts.append((part_start, end))
    return parts


def last_ident(tokens, start, end):
    for i in range(end - 1, start - 1, -1):
        if tokens[i].kind == "ident":
            return tokens[i].text
    return None


def cap_from_tokens(tokens, start, end):
    """`&provider_->catalog_mu_` -> ("catalog_mu_", "provider_")."""
    ids = [t.text for t in tokens[start:end] if t.kind == "ident"]
    if not ids:
        return None, None
    return ids[-1], (ids[-2] if len(ids) >= 2 else None)


class InternalFrontend:
    """Parses one file into FileFacts using the token stream."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        self.toks = strip_preprocessor(tokenize(scrub(text)))
        self.cur = TokenCursor(self.toks)
        self.facts = make_file_facts(relpath)

    def parse(self):
        self._scope(0, len(self.toks), [])
        return self.facts

    # -- declarations -------------------------------------------------------

    def _skip_angle(self, i):
        """Index past a balanced template argument list starting at `<`."""
        depth = 0
        while i < len(self.toks):
            t = self.toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in ("(", "{", "["):
                i = self.cur.close(i)
            elif t == ";":
                return i  # malformed; bail out
            i += 1
        return i

    def _scope(self, start, end, stack):
        toks = self.toks
        i = start
        while i < end:
            t = toks[i]
            if t.kind != "ident":
                i += 1
                continue
            if t.text == "template":
                i += 1
                if i < end and toks[i].text == "<":
                    i = self._skip_angle(i)
                continue
            if t.text == "namespace":
                j = i + 1
                name = ""
                while j < end and toks[j].text != "{" and toks[j].text != ";":
                    if toks[j].kind == "ident":
                        name = toks[j].text
                    j += 1
                if j < end and toks[j].text == "{":
                    body_end = self.cur.close(j)
                    self._scope(j + 1, body_end,
                                stack + ([name] if name else []))
                    i = body_end + 1
                else:
                    i = j + 1
                continue
            if t.text in ("class", "struct"):
                j = i + 1
                name = None
                while j < end and toks[j].text not in ("{", ";"):
                    if toks[j].kind == "ident" and name is None and \
                            not is_macro_name(toks[j].text):
                        name = toks[j].text
                    if toks[j].text == "<":
                        j = self._skip_angle(j)
                        continue
                    j += 1
                if j < end and toks[j].text == "{" and name:
                    body_end = self.cur.close(j)
                    self._scope(j + 1, body_end, stack + [name])
                    i = body_end + 1
                else:
                    i = j + 1
                continue
            if t.text == "enum":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    j = self.cur.close(j) + 1
                while j < end and toks[j].text != ";":
                    j += 1
                i = j + 1
                continue
            if t.text in ("using", "typedef", "friend", "extern",
                          "static_assert", "public", "private", "protected"):
                j = i + 1
                while j < end and toks[j].text not in (";", ":"):
                    if toks[j].text in ("(", "{"):
                        j = self.cur.close(j)
                    j += 1
                i = j + 1
                continue
            i = self._declaration(i, end, stack)

    def _declaration(self, start, end, stack):
        """Parse one declaration/definition starting at `start`."""
        toks = self.toks
        first_paren = None
        i = start
        while i < end:
            t = toks[i].text
            if t == "(":
                prev = toks[i - 1] if i > 0 else None
                if (first_paren is None and prev is not None and
                        prev.kind == "ident" and
                        not is_macro_name(prev.text) and
                        prev.text not in CPP_KEYWORDS):
                    first_paren = i
                i = self.cur.close(i) + 1
                continue
            if t == "<":
                i = self._skip_angle(i)
                continue
            if t == "[":
                i = self.cur.close(i) + 1
                continue
            if t == ";":
                self._finish_declaration(start, i, first_paren, stack)
                return i + 1
            if t == "{":
                if first_paren is None:
                    # Brace initializer in a variable declaration.
                    i = self.cur.close(i) + 1
                    continue
                body_open = self._body_open(first_paren, i, end)
                if body_open is None:
                    i = self.cur.close(i) + 1
                    continue
                body_close = self.cur.close(body_open)
                self._function_def(start, first_paren, body_open, body_close,
                                   stack)
                return body_close + 1
            i += 1
        return end

    def _body_open(self, first_paren, brace, end):
        """Decide whether the `{` at `brace` opens a function body.

        Walks from the parameter list's close, consuming a constructor
        initializer list if present; returns the body's `{` index or None
        if `brace` belongs to an initializer entry.
        """
        toks = self.toks
        i = self.cur.close(first_paren) + 1
        while i < end:
            t = toks[i].text
            if t == "{":
                return i
            if t == ":" and (i + 1 < end and toks[i + 1].kind == "ident"):
                # Constructor initializer list.
                i += 1
                while i < end:
                    while i < end and (toks[i].kind == "ident" or
                                       toks[i].text in ("::", "<", ">")):
                        if toks[i].text == "<":
                            i = self._skip_angle(i)
                        else:
                            i += 1
                    if i < end and toks[i].text in ("(", "{"):
                        i = self.cur.close(i) + 1
                    if i < end and toks[i].text == ",":
                        i += 1
                        continue
                    break
                continue
            if t == "(":  # noexcept(...), macro annotation args
                i = self.cur.close(i) + 1
                continue
            if t == ";":
                return None
            i += 1
        return None

    def _name_chain(self, first_paren):
        """Walk back from `(` collecting the `A::B::name` chain."""
        toks = self.toks
        chain = [toks[first_paren - 1].text]
        i = first_paren - 2
        while i > 0 and toks[i].text == "::" and toks[i - 1].kind == "ident":
            chain.insert(0, toks[i - 1].text)
            i -= 2
        return chain, i + 1  # chain + index of its first token

    def _annotations(self, start, end):
        """DMX_REQUIRES[_SHARED](caps...) occurrences in tokens[start:end)."""
        toks = self.toks
        out = []
        i = start
        while i < end:
            if toks[i].kind == "ident" and \
                    toks[i].text in ("DMX_REQUIRES", "DMX_REQUIRES_SHARED"):
                exclusive = toks[i].text == "DMX_REQUIRES"
                if i + 1 < end and toks[i + 1].text == "(":
                    close = self.cur.close(i + 1)
                    for (s, e) in split_top_commas(toks, self.cur, i + 2,
                                                   close):
                        cap, recv = cap_from_tokens(toks, s, e)
                        if cap:
                            out.append([cap, recv, exclusive])
                    i = close
            i += 1
        return out

    def _finish_declaration(self, start, semi, first_paren, stack):
        toks = self.toks
        if first_paren is not None:
            chain, _ = self._name_chain(first_paren)
            caps = self._annotations(self.cur.close(first_paren) + 1, semi)
            if caps:
                qual = "::".join(stack + chain)
                self.facts["decl_requires"].setdefault(qual, []).extend(caps)
            return
        # Variable/member declaration: find the declared name (last ident
        # before the terminator, skipping annotation macro arguments).
        name_idx = None
        i = start
        stop = semi
        while i < stop:
            t = toks[i]
            if t.text in ("=", "{"):
                stop = i
                break
            if t.kind == "ident" and is_macro_name(t.text):
                stop = i
                break
            i += 1
        for i in range(stop - 1, start - 1, -1):
            if toks[i].kind == "ident" and toks[i].text not in CPP_KEYWORDS:
                name_idx = i
                break
        if name_idx is None or name_idx == start:
            return
        type_toks = toks[start:name_idx]
        name = toks[name_idx].text
        ctype = core_type(type_toks)
        if ctype and ctype != name:
            self.facts["member_types"][name] = ctype
            # Only true view types count as view members: raw-pointer
            # members are routinely non-owning references to long-lived
            # objects (Env*, Provider*), not borrowed frame state.
            if stack and any(t.text in VIEW_TYPE_IDS for t in type_toks):
                self.facts["view_members"][name] = stack[-1]

    # -- function bodies ----------------------------------------------------

    def _function_def(self, start, first_paren, body_open, body_close, stack):
        toks = self.toks
        chain, chain_start = self._name_chain(first_paren)
        if chain[-1] in CPP_KEYWORDS or is_macro_name(chain[-1]):
            return
        qual = "::".join(stack + chain)
        fn = make_function(qual, self.relpath, toks[chain_start].line)
        ret_toks = toks[start:chain_start]
        fn["view_return"] = is_view_type(ret_toks) or \
            (len(ret_toks) > 0 and ret_toks[-1].text == "&")
        self._parse_params(fn, first_paren)
        fn["requires"] = self._annotations(self.cur.close(first_paren) + 1,
                                           body_open)
        self._parse_body(fn, body_open, body_close, stack)
        self.facts["functions"].append(fn)

    def _parse_params(self, fn, first_paren):
        toks = self.toks
        close = self.cur.close(first_paren)
        for (s, e) in split_top_commas(toks, self.cur, first_paren + 1,
                                       close):
            # Drop a default argument if present.
            for i in range(s, e):
                if toks[i].text == "=":
                    e = i
                    break
            name = last_ident(toks, s, e)
            if name is None or name in CPP_KEYWORDS:
                continue
            texts = [t.text for t in toks[s:e]]
            by_value = "&" not in texts and "*" not in texts
            type_end = e - 1
            while type_end > s and toks[type_end].kind != "ident":
                type_end -= 1
            ctype = core_type(toks[s:type_end])
            if ctype:
                fn["params"][name] = [ctype, by_value]

    def _type_of(self, fn, name):
        if name in fn["locals"]:
            return fn["locals"][name]
        if name in fn["params"]:
            return fn["params"][name][0]
        return self.facts["member_types"].get(name)

    def _parse_body(self, fn, body_open, body_close, stack):
        toks = self.toks
        cur = self.cur
        block_stack = []         # open-brace indices enclosing position i
        lambda_ranges = []       # (open, close) token spans of local lambdas
        manual_locks = []        # [cap, recv, exclusive, line] open Lock()s
        i = body_open + 1
        stmt_start = True
        while i < body_close:
            t = toks[i]
            if t.text == "{":
                block_stack.append(i)
                i += 1
                stmt_start = True
                continue
            if t.text == "}":
                if block_stack:
                    block_stack.pop()
                i += 1
                stmt_start = True
                continue
            if t.text == ";":
                i += 1
                stmt_start = True
                continue
            if t.kind != "ident":
                stmt_start = stmt_start and t.text in (":",)
                i += 1
                continue

            # Local lambda: `auto name = [..](..) .. { body }`.
            if (stmt_start and t.text == "auto" and i + 3 < body_close and
                    toks[i + 1].kind == "ident" and
                    toks[i + 2].text == "=" and toks[i + 3].text == "["):
                lam = self._parse_lambda(fn, toks[i + 1].text, i + 3,
                                         body_close, stack)
                if lam is not None:
                    lambda_ranges.append((lam[0], lam[1]))
                    i = lam[1] + 1
                    stmt_start = True
                    continue

            # RAII lock scope: `MutexLock lock(&mu);`
            if (stmt_start and t.text in LOCK_TYPES and
                    i + 2 < body_close and toks[i + 1].kind == "ident" and
                    toks[i + 2].text == "("):
                close = cur.close(i + 2)
                cap, recv = cap_from_tokens(toks, i + 3, close)
                if cap:
                    scope_close = cur.close(block_stack[-1]) if block_stack \
                        else body_close
                    fn["acquires"].append(
                        [cap, recv, t.text in EXCLUSIVE_LOCK_TYPES,
                         t.line, toks[scope_close].line])
                i = close + 1
                stmt_start = False
                continue

            # return statement: collect referenced identifiers. The cursor
            # is NOT advanced past the expression — calls inside it must
            # still be recorded by the main walk.
            if t.text == "return":
                j = i + 1
                idents = []
                while j < body_close and toks[j].text != ";":
                    if toks[j].text in ("(", "{", "["):
                        inner_close = cur.close(j)
                        # Identifiers inside a call's argument list are the
                        # call's inputs, not the returned object's root; a
                        # subscript's index is a key, not the storage. The
                        # one exception is a view-type constructor, whose
                        # argument IS the borrowed storage. Grouping parens
                        # (no callee) stay transparent.
                        callee = toks[j - 1].text \
                            if (toks[j].text == "(" and j > i + 1 and
                                toks[j - 1].kind == "ident") else None
                        transparent = (
                            toks[j].text == "{" or
                            (toks[j].text == "(" and callee is None) or
                            (callee is not None and callee in VIEW_TYPE_IDS))
                        if transparent:
                            idents.extend(tok.text
                                          for tok in toks[j + 1:inner_close]
                                          if tok.kind == "ident")
                        j = inner_close + 1
                        continue
                    if toks[j].kind == "ident":
                        idents.append(toks[j].text)
                    j += 1
                fn["returns"].append([t.line, idents])
                i += 1
                stmt_start = False
                continue

            # Member store: `member_ = expr;` / `obj->member_ = expr;`
            if (toks[i].kind == "ident" and i + 1 < body_close and
                    toks[i + 1].text == "=" and
                    (i + 2 >= body_close or toks[i + 2].text != "=") and
                    toks[i].text.endswith("_") and
                    toks[i].text not in fn["locals"] and
                    toks[i].text not in fn["params"]):
                j = i + 2
                idents = []
                while j < body_close and toks[j].text != ";":
                    if toks[j].kind == "ident":
                        idents.append(toks[j].text)
                    if toks[j].text in ("(", "{", "["):
                        inner_close = cur.close(j)
                        idents.extend(tok.text
                                      for tok in toks[j + 1:inner_close]
                                      if tok.kind == "ident")
                        j = inner_close + 1
                        continue
                    j += 1
                fn["member_stores"].append([toks[i].line, toks[i].text,
                                            idents])
                i += 2  # past `name =`; calls in the RHS still get scanned
                stmt_start = False
                continue

            # Call site?
            if i + 1 < body_close and toks[i + 1].text == "(" and \
                    t.text not in CPP_KEYWORDS and t.text not in LOCK_TYPES:
                self._record_call(fn, i, block_stack, manual_locks,
                                  body_close)
            elif stmt_start and t.text not in CPP_KEYWORDS:
                self._maybe_local_decl(fn, i, body_close)
            stmt_start = False
            i += 1

        # Unmatched manual Lock()s extend to the function's end.
        for cap, recv, exclusive, line in manual_locks:
            fn["acquires"].append([cap, recv, exclusive, line,
                                   toks[body_close].line])

        # Loops (excluding those owned by local lambda bodies).
        body = toks[body_open + 1:body_close]
        offset = body_open + 1
        call_index = {c["line"]: k for k, c in enumerate(fn["calls"])}
        for (kw, hdr_end, body_end) in find_loop_spans(body):
            abs_kw, abs_hdr, abs_end = kw + offset, hdr_end + offset, \
                body_end + offset
            if any(lo <= abs_kw <= hi for (lo, hi) in lambda_ranges):
                continue
            header_ids = [tok.text for tok in toks[abs_kw:abs_hdr + 1]
                          if tok.kind == "ident"]
            row_ident = next((h for h in header_ids if h in ROW_SOURCE_IDS),
                             None)
            if row_ident is None:
                row_ident = self._range_elem(abs_kw, abs_hdr)
            lo_line = toks[abs_kw].line
            hi_line = toks[abs_end].line
            span_calls = [k for k, c in enumerate(fn["calls"])
                          if lo_line <= c["line"] <= hi_line]
            guarded = any(fn["calls"][k]["guard"] for k in span_calls)
            fn["loops"].append([toks[abs_kw].line, row_ident, guarded,
                                span_calls])
        del call_index

    def _parse_lambda(self, fn, name, bracket, limit, stack):
        """`[caps](params) ... { body }` -> analyze as a nested function."""
        toks = self.toks
        cur = self.cur
        i = cur.close(bracket) + 1
        if i < limit and toks[i].text == "(":
            i = cur.close(i) + 1
        while i < limit and toks[i].text not in ("{", ";"):
            if toks[i].text == "(":
                i = cur.close(i) + 1
                continue
            i += 1
        if i >= limit or toks[i].text != "{":
            return None
        body_close = cur.close(i)
        lam_qual = fn["qual"] + "::" + name
        lam = make_function(lam_qual, self.relpath, toks[bracket].line)
        self._parse_body(lam, i, body_close, stack)
        self.facts["functions"].append(lam)
        fn["lambdas"][name] = lam_qual
        return (bracket, body_close)

    def _record_call(self, fn, i, block_stack, manual_locks, body_close):
        toks = self.toks
        chain = [toks[i].text]
        j = i - 1
        while j > 0 and toks[j].text == "::" and toks[j - 1].kind == "ident":
            chain.insert(0, toks[j - 1].text)
            j -= 2
        name = chain[-1]
        if is_macro_name(name):
            return
        receiver = receiver2 = None
        if j >= 0 and toks[j].text in (".", "->") and j > 0 and \
                toks[j - 1].kind == "ident":
            receiver = toks[j - 1].text
            if j - 2 > 0 and toks[j - 2].text in (".", "->") and \
                    toks[j - 3].kind == "ident":
                receiver2 = toks[j - 3].text

        close = self.cur.close(i + 1)
        parts = split_top_commas(toks, self.cur, i + 2, close)
        arg0 = last_ident(toks, *parts[0]) if parts else None

        # Assertions and manual lock calls become acquisition facts.
        if name in ("AssertHeld", "AssertReaderHeld") and receiver:
            scope_close = self.cur.close(block_stack[-1]) if block_stack \
                else body_close
            fn["acquires"].append([receiver, receiver2,
                                   name == "AssertHeld",
                                   toks[i].line, toks[scope_close].line])
            return
        if name in ("Lock", "LockShared") and receiver:
            manual_locks.append([receiver, receiver2, name == "Lock",
                                 toks[i].line])
            return
        if name in ("Unlock", "UnlockShared") and receiver:
            for k, (cap, recv, _excl, line) in enumerate(manual_locks):
                if cap == receiver:
                    fn["acquires"].append([cap, recv, _excl, line,
                                           toks[i].line])
                    del manual_locks[k]
                    break
            return

        is_guard = name in GUARD_FREE_CALLS or (
            name in GUARD_METHOD_CALLS and receiver is not None and
            "guard" in receiver.lower())
        fn["calls"].append(make_call(name, chain, receiver, receiver2,
                                     toks[i].line, arg0, is_guard))

    def _range_elem(self, kw, hdr_end):
        """Row-scale element type of a range-for header, or None.

        `for (const Row* row : per_key_group)` iterates data no matter what
        the range is called; the declared element type gives it away.
        """
        toks = self.toks
        if toks[kw].text != "for" or kw + 1 > hdr_end or \
                toks[kw + 1].text != "(":
            return None
        depth = 0
        j = kw + 2
        elems = []
        while j < hdr_end:
            text = toks[j].text
            if text in ("(", "[", "{"):
                depth += 1
            elif text in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and text == ";":
                return None  # classic for loop: no element declaration
            elif depth == 0 and text == ":":
                return next((e for e in elems if e in ROW_ELEM_TYPES), None)
            elif toks[j].kind == "ident":
                elems.append(text)
            j += 1
        return None

    def _maybe_local_decl(self, fn, i, body_close):
        """`Type name = ...;` / `Type name;` / `auto name = ...` local."""
        toks = self.toks
        j = i
        type_toks = []
        while j < body_close:
            t = toks[j]
            if t.kind == "ident" and t.text not in CPP_KEYWORDS:
                type_toks.append(t)
                j += 1
                if j < body_close and toks[j].text == "<":
                    k = self._skip_angle(j)
                    type_toks.extend(toks[j:k])
                    j = k
                continue
            if t.text in ("::", "&", "*", "const"):
                type_toks.append(t)
                j += 1
                continue
            break
        if len(type_toks) < 2 or j >= body_close:
            return
        if toks[j].text not in ("=", ";", "{"):
            return
        name_tok = type_toks[-1]
        if name_tok.kind != "ident":
            return
        # Function-local statics outlive the frame; views rooted in them
        # never dangle, so they are not tracked as frame locals at all.
        if any(tk.text == "static" for tk in type_toks):
            return
        decl_type = core_type(type_toks[:-1])
        if decl_type and decl_type != "auto":
            fn["locals"][name_tok.text] = decl_type


def parse_internal(relpath, text):
    return InternalFrontend(relpath, text).parse()


# ---------------------------------------------------------------------------
# Clang frontend: extracts the same FileFacts from `-Xclang -ast-dump=json`
# output. The dump is huge (hundreds of MB per TU), so the TranslationUnit's
# top-level declarations are decoded one at a time with raw_decode and
# non-project subtrees are dropped immediately. Clang omits repeated
# file/line fields in source locations; the visitor tracks them statefully
# in traversal order.
# ---------------------------------------------------------------------------


class ClangVisitor:
    def __init__(self, repo_root):
        self.repo_root = str(repo_root)
        self.files = {}          # relpath -> FileFacts
        self.cur_file = None
        self.cur_line = 0

    def facts(self):
        return list(self.files.values())

    def _track(self, node):
        """Update stateful file/line from a loc/range node."""
        for key in ("loc", "range"):
            loc = node.get(key)
            if not isinstance(loc, dict):
                continue
            spelling = loc.get("begin", loc)
            if isinstance(spelling, dict):
                spelling = spelling.get("spellingLoc", spelling)
                if "file" in spelling:
                    self.cur_file = self._rel(spelling["file"])
                if "line" in spelling:
                    self.cur_line = spelling["line"]

    def _rel(self, path):
        path = os.path.normpath(path)
        if path.startswith(self.repo_root + os.sep):
            return os.path.relpath(path, self.repo_root).replace(os.sep, "/")
        return None

    def _file_facts(self):
        if self.cur_file is None:
            return None
        if self.cur_file not in self.files:
            self.files[self.cur_file] = make_file_facts(self.cur_file)
        return self.files[self.cur_file]

    def visit_tu(self, node, prefix=()):
        for decl in node.get("inner", ()):
            self.visit_decl(decl, prefix)

    def visit_decl(self, decl, prefix):
        if not isinstance(decl, dict):
            return
        self._track(decl)
        kind = decl.get("kind", "")
        name = decl.get("name", "")
        if kind in ("NamespaceDecl", "LinkageSpecDecl",
                    "ExternCContextDecl"):
            self.visit_tu(decl, prefix + ((name,) if name else ()))
            return
        if kind == "CXXRecordDecl":
            if decl.get("completeDefinition") and name:
                self.visit_tu(decl, prefix + (name,))
            return
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl", "CXXConversionDecl"):
            self.visit_function(decl, prefix)
            return
        if kind == "FieldDecl" and name:
            ff = self._file_facts()
            if ff is not None:
                qual_type = (decl.get("type") or {}).get("qualType", "")
                ff["member_types"][name] = self._core(qual_type)
                # Members: only true view types (see the internal frontend).
                if "string_view" in qual_type or "Span<" in qual_type or \
                        "span<" in qual_type:
                    ff["view_members"][name] = prefix[-1] if prefix else ""
            return
        if kind == "VarDecl" and name and prefix:
            ff = self._file_facts()
            if ff is not None:
                qual_type = (decl.get("type") or {}).get("qualType", "")
                ff["member_types"][name] = self._core(qual_type)

    @staticmethod
    def _core(qual_type):
        ids = re.findall(r"[A-Za-z_]\w*", qual_type)
        for name in reversed(ids):
            if name not in TYPE_WRAPPERS and name not in CPP_KEYWORDS:
                return name
        return ids[-1] if ids else ""

    @staticmethod
    def _is_view(qual_type):
        return ("string_view" in qual_type or "Span<" in qual_type or
                "span<" in qual_type or qual_type.rstrip().endswith("*") or
                qual_type.rstrip().endswith("&"))

    def visit_function(self, decl, prefix):
        self._track(decl)
        name = decl.get("name", "")
        if not name:
            return
        ff = self._file_facts()
        body = None
        attrs = []
        for child in decl.get("inner", ()):
            if not isinstance(child, dict):
                continue
            if child.get("kind") == "CompoundStmt":
                body = child
            elif child.get("kind", "").endswith("Attr"):
                attrs.append(child)
        qual = "::".join(prefix + (name,))
        caps = []
        for attr in attrs:
            kind = attr.get("kind", "")
            if "RequiresCapability" in kind or "ExclusiveLocksRequired" in \
                    kind or "SharedLocksRequired" in kind:
                exclusive = "Shared" not in kind and \
                    "shared" not in json.dumps(attr.get("spelling", ""))
                for cap, recv in self._attr_caps(attr):
                    caps.append([cap, recv, exclusive])
        if body is None:
            if caps and ff is not None:
                ff["decl_requires"].setdefault(qual, []).extend(caps)
            return
        if ff is None:
            # Definition in a system header / outside the repo.
            self._scan_skip(body)
            return
        fn = make_function(qual, ff["file"], self.cur_line)
        fn["requires"] = caps
        ret_type = (decl.get("type") or {}).get("qualType", "")
        ret = ret_type.split("(")[0].strip()
        fn["view_return"] = self._is_view(ret)
        for child in decl.get("inner", ()):
            if isinstance(child, dict) and child.get("kind") == "ParmVarDecl":
                self._track(child)
                pname = child.get("name")
                ptype = (child.get("type") or {}).get("qualType", "")
                if pname:
                    by_value = "*" not in ptype and "&" not in ptype
                    fn["params"][pname] = [self._core(ptype), by_value]
        self.stmt_ctx = {"fn": fn, "scope_ends": []}
        self.visit_stmt(body, fn, in_loop=None)
        ff["functions"].append(fn)

    def _attr_caps(self, attr):
        out = []

        def walk(node):
            if isinstance(node, dict):
                if node.get("kind") == "MemberExpr" and node.get("name"):
                    out.append((node["name"].lstrip("->."), None))
                    return
                if node.get("kind") == "DeclRefExpr":
                    ref = node.get("referencedDecl") or {}
                    if ref.get("name"):
                        out.append((ref["name"], None))
                        return
                for child in node.get("inner", ()):
                    walk(child)

        walk(attr)
        return out

    def _scan_skip(self, node):
        """Visit a skipped subtree only to keep file/line state in sync."""
        if not isinstance(node, dict):
            return
        self._track(node)
        for child in node.get("inner", ()):
            self._scan_skip(child)

    # -- statements ---------------------------------------------------------

    def visit_stmt(self, node, fn, in_loop):
        if not isinstance(node, dict):
            return
        self._track(node)
        kind = node.get("kind", "")
        line = self.cur_line
        if kind in ("ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"):
            names = []
            self._collect_names(node, names, limit=40)
            row_ident = next((n for n in names if n in ROW_SOURCE_IDS), None)
            if row_ident is None and kind == "CXXForRangeStmt":
                row_ident = self._range_elem(node)
            loop = [line, row_ident, False, []]
            fn["loops"].append(loop)
            for child in node.get("inner", ()):
                self.visit_stmt(child, fn, in_loop=loop)
            return
        if kind == "VarDecl":
            name = node.get("name")
            qual_type = (node.get("type") or {}).get("qualType", "")
            ctype = self._core(qual_type)
            # Function-local statics outlive the frame — not frame locals.
            if name and node.get("storageClass") != "static":
                fn["locals"][name] = ctype
            if ctype in LOCK_TYPES:
                caps = []
                self._collect_names(node, caps, limit=10)
                caps = [c for c in caps if c not in LOCK_TYPES and
                        c != name]
                if caps:
                    fn["acquires"].append(
                        [caps[-1], caps[-2] if len(caps) > 1 else None,
                         ctype in EXCLUSIVE_LOCK_TYPES, line, line + 10000])
        if kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
            self._record_call(node, fn, line, in_loop)
        if kind == "ReturnStmt":
            idents = []
            self._return_roots(node, idents)
            fn["returns"].append([line, idents])
        if kind == "BinaryOperator" and node.get("opcode") == "=":
            inner = [c for c in node.get("inner", ())
                     if isinstance(c, dict)]
            if inner and inner[0].get("kind") == "MemberExpr" and \
                    inner[0].get("name"):
                member = inner[0]["name"].lstrip("->.")
                idents = []
                for rhs in inner[1:]:
                    self._collect_names(rhs, idents, limit=30)
                fn["member_stores"].append([line, member, idents])
        if kind == "LambdaExpr":
            # Attribute the lambda body to the enclosing function: calls in
            # it are reachable whenever the lambda runs, and the common
            # pattern here is define-then-call within the same function.
            pass
        for child in node.get("inner", ()):
            self.visit_stmt(child, fn, in_loop)

    def _range_elem(self, node):
        """Row-scale element type of a CXXForRangeStmt, or None."""
        for child in node.get("inner", ()):
            if not isinstance(child, dict) or child.get("kind") != "VarDecl":
                continue
            name = child.get("name", "")
            if name.startswith("__"):
                continue  # compiler-synthesized __range/__begin/__end
            ctype = self._core((child.get("type") or {}).get("qualType", ""))
            if ctype in ROW_ELEM_TYPES:
                return ctype
        return None

    def _return_roots(self, node, out, limit=30):
        """Collect identifiers a return expression can borrow storage from.

        Mirrors the internal frontend: a call's arguments and a subscript's
        index are not the returned object's root — except a view-type
        constructor, whose argument IS the borrowed storage.
        """
        if len(out) >= limit or not isinstance(node, dict):
            return
        self._track(node)
        kind = node.get("kind", "")
        inner = [c for c in node.get("inner", ()) if isinstance(c, dict)]
        if kind == "ArraySubscriptExpr":
            if inner:
                self._return_roots(inner[0], out, limit)
            return
        if kind == "CXXMemberCallExpr":
            # Receiver chain only (inner[0] is the MemberExpr): the call's
            # result may alias its receiver, never its arguments.
            if inner:
                self._return_roots(inner[0], out, limit)
            return
        if kind in ("CallExpr", "CXXOperatorCallExpr"):
            ctype = self._core((node.get("type") or {}).get("qualType", ""))
            if ctype not in VIEW_TYPE_IDS:
                return
        if kind == "MemberExpr" and node.get("name"):
            out.append(node["name"].lstrip("->."))
        ref = node.get("referencedDecl")
        if isinstance(ref, dict) and ref.get("name"):
            out.append(ref["name"])
        for child in inner:
            self._return_roots(child, out, limit)

    def _collect_names(self, node, out, limit):
        if len(out) >= limit or not isinstance(node, dict):
            return
        self._track(node)
        if node.get("kind") == "MemberExpr" and node.get("name"):
            out.append(node["name"].lstrip("->."))
        ref = node.get("referencedDecl")
        if isinstance(ref, dict) and ref.get("name"):
            out.append(ref["name"])
        for child in node.get("inner", ()):
            self._collect_names(child, out, limit)

    def _record_call(self, node, fn, line, in_loop):
        callee = None
        recv_type = None
        inner = [c for c in node.get("inner", ()) if isinstance(c, dict)]
        if not inner:
            return

        def find_callee(n, depth=0):
            nonlocal callee, recv_type
            if not isinstance(n, dict) or depth > 6 or callee:
                return
            if n.get("kind") == "MemberExpr" and n.get("name"):
                callee = n["name"].lstrip("->.")
                for c in n.get("inner", ()):
                    if isinstance(c, dict):
                        qt = (c.get("type") or {}).get("qualType", "")
                        if qt:
                            recv_type = self._core(qt)
                        break
                return
            ref = n.get("referencedDecl")
            if isinstance(ref, dict) and ref.get("name") and \
                    n.get("kind") == "DeclRefExpr":
                callee = ref["name"]
                return
            for c in n.get("inner", ()):
                find_callee(c, depth + 1)

        find_callee(inner[0])
        if not callee or callee == "operator()":
            return
        arg_names = []
        for arg in inner[1:2]:
            self._collect_names(arg, arg_names, limit=5)
        is_guard = callee in GUARD_FREE_CALLS or (
            callee in GUARD_METHOD_CALLS and recv_type == "ExecGuard")
        chain = [recv_type, callee] if recv_type else [callee]
        call = make_call(callee, chain, None, None, line,
                         arg_names[-1] if arg_names else None, is_guard)
        call["recv_type"] = recv_type
        fn["calls"].append(call)
        if in_loop is not None:
            in_loop[3].append(len(fn["calls"]) - 1)
            if is_guard:
                in_loop[2] = True


def clang_version(clangxx):
    try:
        out = subprocess.run([clangxx, "--version"], capture_output=True,
                             text=True, timeout=30)
        return out.stdout.splitlines()[0] if out.stdout else "unknown"
    except Exception:  # noqa: BLE001
        return "unknown"


def parse_clang_tu(clangxx, entry, repo_root):
    """Run clang on one compile_commands entry, return [FileFacts...]."""
    args = entry.get("arguments")
    if not args:
        args = shlex.split(entry.get("command", ""))
    cmd = [clangxx]
    skip_next = False
    for arg in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o",):
            skip_next = True
            continue
        if arg in ("-c",):
            continue
        cmd.append(arg)
    cmd += ["-fsyntax-only", "-Xclang", "-ast-dump=json",
            "-Wno-everything"]
    proc = subprocess.run(cmd, cwd=entry.get("directory", str(repo_root)),
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0 or not proc.stdout:
        raise RuntimeError(
            f"clang ast-dump failed for {entry.get('file')}: "
            f"{proc.stderr.strip()[:400]}")
    visitor = ClangVisitor(repo_root)
    dump = proc.stdout
    # Stream the TranslationUnitDecl's inner array one declaration at a
    # time so peak memory tracks the largest top-level subtree, not the
    # whole dump.
    marker = dump.find('"inner"')
    start = dump.find("[", marker) + 1 if marker >= 0 else -1
    if start <= 0:
        raise RuntimeError("unrecognized ast-dump shape")
    decoder = json.JSONDecoder()
    i = start
    n = len(dump)
    while i < n:
        while i < n and dump[i] in " \t\r\n,":
            i += 1
        if i >= n or dump[i] == "]":
            break
        decl, i = decoder.raw_decode(dump, i)
        visitor.visit_decl(decl, ())
    return visitor.facts()


# ---------------------------------------------------------------------------
# Fact cache: extracted FileFacts keyed by content hash (+ frontend id and
# compiler version), stored under <cache-dir>/ (default
# build-lint/ast-cache/). Raw AST dumps are never kept.
# ---------------------------------------------------------------------------


class FactCache:
    def __init__(self, cache_dir):
        self.dir = Path(cache_dir) if cache_dir else None
        if self.dir is not None:
            self.dir.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def key(*parts):
        h = hashlib.sha256()
        for p in parts:
            h.update(p.encode() if isinstance(p, str) else p)
            h.update(b"\x00")
        return h.hexdigest()

    def get(self, key):
        if self.dir is None:
            return None
        path = self.dir / f"{key}.json"
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def put(self, key, value):
        if self.dir is None:
            return
        tmp = self.dir / f".{key}.tmp"
        tmp.write_text(json.dumps(value))
        tmp.replace(self.dir / f"{key}.json")


# ---------------------------------------------------------------------------
# Whole-program model: merge per-file facts, resolve calls, run fixpoints.
# ---------------------------------------------------------------------------


class Program:
    def __init__(self, file_facts, config):
        self.config = config
        self.files = file_facts                  # relpath -> FileFacts
        self.functions = []                      # flat list of fn dicts
        self.by_suffix = {}                      # last component -> [fn]
        self.member_types = {}                   # name -> {types}
        self.view_members = {}                   # name -> class
        for ff in file_facts.values():
            self.functions.extend(ff["functions"])
            for name, ctype in ff["member_types"].items():
                self.member_types.setdefault(name, set()).add(ctype)
            self.view_members.update(ff["view_members"])
        for fn in self.functions:
            comps = fn["qual"].split("::")
            self.by_suffix.setdefault(comps[-1], []).append(fn)
            fn["_comps"] = comps
        self._apply_decl_requires()
        self._resolve_all()
        self._fixpoint_guard()
        self._fixpoint_block()
        self._reachability()

    # -- helpers ------------------------------------------------------------

    def _apply_decl_requires(self):
        decls = {}
        for ff in self.files.values():
            for qual, caps in ff["decl_requires"].items():
                decls.setdefault(tuple(qual.split("::")[-2:]), []).extend(
                    caps)
        for fn in self.functions:
            suffix = tuple(fn["_comps"][-2:])
            if suffix in decls:
                known = {tuple(c[:2]) for c in fn["requires"]}
                for cap in decls[suffix]:
                    if tuple(cap[:2]) not in known:
                        fn["requires"].append(cap)

    def _suffix_match(self, chain):
        """All functions whose qualified name ends with `chain`."""
        out = []
        for fn in self.by_suffix.get(chain[-1], ()):
            if fn["_comps"][-len(chain):] == list(chain):
                out.append(fn)
        return out

    def type_of(self, fn, name):
        if name is None:
            return None
        if name in fn["locals"]:
            return fn["locals"][name]
        if name in fn["params"]:
            return fn["params"][name][0]
        types = self.member_types.get(name)
        if types and len(types) == 1:
            return next(iter(types))
        return None

    def resolve(self, fn, call):
        if "_resolved" in call:
            return call["_resolved"]
        out = []
        name = call["name"]
        if name in fn["lambdas"]:
            out = [f for f in self.functions
                   if f["qual"] == fn["lambdas"][name]]
        elif len(call["chain"]) >= 2 and call["chain"][0]:
            out = self._suffix_match(call["chain"])
            if not out:
                out = self._suffix_match(call["chain"][1:])
        if not out:
            recv_type = call.get("recv_type") or \
                self.type_of(fn, call.get("recv"))
            if recv_type:
                out = self._suffix_match([recv_type, name])
            elif call.get("recv") is None:
                # Unqualified free call: resolve when unambiguous, trying
                # the enclosing class's own methods first.
                if len(fn["_comps"]) >= 2:
                    out = self._suffix_match([fn["_comps"][-2], name])
                if not out:
                    candidates = self.by_suffix.get(name, ())
                    if len(candidates) == 1:
                        out = list(candidates)
        call["_resolved"] = out
        return out

    def sanctioned(self, fn):
        for key in self.config["sanctioned"]:
            chain = key.split("::")
            if fn["_comps"][-len(chain):] == chain:
                return True
        return False

    def cap_key(self, fn, cap, recv):
        """Qualify a capability name by its owner's type when known."""
        owner = self.type_of(fn, recv) if recv else None
        if owner is None and len(fn["_comps"]) >= 2:
            owner = fn["_comps"][-2]
        return f"{owner}::{cap}" if owner else cap

    def is_blocking_primitive(self, fn, call):
        if call["name"] in ALWAYS_BLOCKING_CALLS:
            return True
        if call["name"] in RECEIVER_BLOCKING_CALLS:
            recv_type = call.get("recv_type") or \
                self.type_of(fn, call.get("recv"))
            if recv_type in BLOCKING_TYPES:
                return True
        return False

    # -- fixpoints ----------------------------------------------------------

    def _resolve_all(self):
        for fn in self.functions:
            for call in fn["calls"]:
                self.resolve(fn, call)

    def _fixpoint_guard(self):
        for fn in self.functions:
            fn["_guard"] = (fn["_comps"][-1] in GUARD_FREE_CALLS or
                            (len(fn["_comps"]) >= 2 and
                             fn["_comps"][-2] == "ExecGuard") or
                            any(c["guard"] for c in fn["calls"]))
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if fn["_guard"]:
                    continue
                for call in fn["calls"]:
                    if any(g["_guard"] for g in call["_resolved"]):
                        fn["_guard"] = True
                        changed = True
                        break

    def _fixpoint_block(self):
        for fn in self.functions:
            fn["_block"] = None
            for call in fn["calls"]:
                if self.is_blocking_primitive(fn, call):
                    fn["_block"] = (call, None)
                    break
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if fn["_block"] is not None:
                    continue
                for call in fn["calls"]:
                    for g in call["_resolved"]:
                        if g["_block"] is not None and \
                                not self.sanctioned(g):
                            fn["_block"] = (call, g)
                            changed = True
                            break
                    if fn["_block"] is not None:
                        break

    def _reachability(self):
        roots = []
        for root in self.config["roots"]:
            roots.extend(self._suffix_match(root.split("::")))
        seen = set()
        work = list(roots)
        while work:
            fn = work.pop()
            if id(fn) in seen:
                continue
            seen.add(id(fn))
            for call in fn["calls"]:
                work.extend(call["_resolved"])
        for fn in self.functions:
            fn["_reach"] = id(fn) in seen

    def block_chain(self, fn_or_pair, depth=5):
        """Human-readable witness chain for a blocking verdict."""
        names = []
        call, nxt = fn_or_pair
        while depth > 0:
            names.append(call["name"])
            if nxt is None or nxt["_block"] is None:
                break
            call, nxt = nxt["_block"]
            depth -= 1
        return " -> ".join(names)


# ---------------------------------------------------------------------------
# Rules.
# ---------------------------------------------------------------------------


def check_lock_blocking(program):
    io_caps = program.config["io_caps"]
    used_io_caps = set()
    for fn in program.functions:
        intervals = []
        for cap, recv, exclusive in fn["requires"]:
            key = program.cap_key(fn, cap, recv)
            if key in io_caps:
                used_io_caps.add(key)
                continue
            if exclusive:
                intervals.append((key, 0, 10 ** 9))
        for cap, recv, exclusive, line, end_line in fn["acquires"]:
            key = program.cap_key(fn, cap, recv)
            if key in io_caps:
                used_io_caps.add(key)
                continue
            if exclusive:
                intervals.append((key, line, end_line))
        if not intervals:
            continue
        for call in fn["calls"]:
            held = [key for (key, lo, hi) in intervals
                    if lo <= call["line"] <= hi]
            if call["name"] == "WaitFor" and call["arg0"]:
                held = [k for k in held
                        if k.split("::")[-1] != call["arg0"]]
            if not held:
                continue
            reason = None
            if program.is_blocking_primitive(fn, call):
                reason = f"'{call['name']}' blocks"
            else:
                for g in call["_resolved"]:
                    if g["_block"] is not None and not program.sanctioned(g):
                        chain = program.block_chain(g["_block"])
                        reason = (f"'{g['qual']}' may block "
                                  f"(via {chain})")
                        break
            if reason:
                yield Violation(
                    LOCK_BLOCKING_CALL, fn["file"], call["line"],
                    f"{reason} while '{held[0]}' is held exclusively in "
                    f"{fn['qual']}; hoist the I/O outside the critical "
                    f"section or sanction the protocol in "
                    f"SANCTIONED_BLOCKING")
    program.config["_used_io_caps"] = used_io_caps


def check_guard_loops(program):
    for fn in program.functions:
        if not fn["_reach"]:
            continue
        for line, row_ident, guarded, call_idx in fn["loops"]:
            if row_ident is None or guarded:
                continue
            if any(g["_guard"]
                   for k in call_idx
                   for g in fn["calls"][k]["_resolved"]):
                continue
            yield Violation(
                GUARD_UNREACHABLE_LOOP, fn["file"], line,
                f"row-scale loop (over '{row_ident}') in {fn['qual']} is "
                f"reachable from an execution root but no guard checkpoint "
                f"(GuardCheck/GuardCharge*) is reachable in its cycle; add "
                f"one per iteration so deadlines and row budgets trip")


def check_view_escape(program):
    for fn in program.functions:
        owning = {n for n, t in fn["locals"].items() if t in OWNING_TYPES}
        owning |= {n for n, (t, by_value) in fn["params"].items()
                   if by_value and t in OWNING_TYPES}
        if fn["view_return"]:
            for line, idents in fn["returns"]:
                roots = [n for n in idents if n in owning]
                if roots:
                    yield Violation(
                        VIEW_ESCAPE, fn["file"], line,
                        f"{fn['qual']} returns a view/pointer rooted in "
                        f"frame-local '{roots[0]}' which dies with the "
                        f"call; return an owning value or take the buffer "
                        f"from the caller")
        for line, member, idents in fn["member_stores"]:
            if member not in program.view_members:
                continue
            roots = [n for n in idents if n in owning]
            if roots:
                yield Violation(
                    VIEW_ESCAPE, fn["file"], line,
                    f"{fn['qual']} stores a view of frame-local "
                    f"'{roots[0]}' into view-typed member '{member}' "
                    f"(outlives the frame); copy into owned storage")


def check_sanctions(program, config_path):
    """stale-sanction: sanctioned entries that match nothing scanned."""
    for key in sorted(program.config["sanctioned"]):
        chain = key.split("::")
        if not program._suffix_match(chain):
            yield Violation(
                STALE_SANCTION, config_path, 1,
                f"SANCTIONED_BLOCKING entry '{key}' matches no function in "
                f"the scanned tree; remove or fix the entry")
    used = program.config.get("_used_io_caps", set())
    seen_caps = set()
    for fn in program.functions:
        for cap, recv, _ in fn["requires"]:
            seen_caps.add(program.cap_key(fn, cap, recv))
        for cap, recv, _, _, _ in fn["acquires"]:
            seen_caps.add(program.cap_key(fn, cap, recv))
    for cap in sorted(program.config["io_caps"]):
        if cap not in used and cap not in seen_caps:
            yield Violation(
                STALE_SANCTION, config_path, 1,
                f"IO_CAPS entry '{cap}' matches no capability in the "
                f"scanned tree; remove or fix the entry")


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------


def discover_sources(root):
    src = root / "src"
    out = []
    for base in (src,):
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cc", ".h") and path.is_file():
                rel = path.relative_to(root).as_posix()
                if "lint_fixtures" in rel or "deep_lint_fixtures" in rel:
                    continue
                out.append(rel)
    return out


def load_config(root):
    config = {
        "roots": list(DEFAULT_ROOTS),
        "sanctioned": dict(SANCTIONED_BLOCKING),
        "io_caps": set(IO_CAPS),
        "check_sanctions": True,
        "config_path": "tools/dmx_deep_lint.py",
    }
    override = root / "CONFIG.json"
    if override.is_file():
        data = json.loads(override.read_text())
        if "roots" in data:
            config["roots"] = data["roots"]
        if "sanctioned" in data:
            config["sanctioned"] = data["sanctioned"]
        if "io_caps" in data:
            config["io_caps"] = set(data["io_caps"])
        if "check_sanctions" in data:
            config["check_sanctions"] = data["check_sanctions"]
        config["config_path"] = "CONFIG.json"
    return config


def gather_facts(root, frontend, compdb_path, cache_dir, verbose=False):
    """Returns (relpath -> FileFacts, frontend actually used)."""
    clangxx = shutil.which("clang++")
    use_clang = False
    entries = []
    if frontend in ("clang", "auto") and clangxx and compdb_path and \
            Path(compdb_path).is_file():
        entries = [e for e in json.loads(Path(compdb_path).read_text())
                   if Path(e.get("file", "")).suffix == ".cc" and
                   "/src/" in e.get("file", "")]
        use_clang = bool(entries)
    if frontend == "clang" and not use_clang:
        raise SystemExit("dmx_deep_lint: --frontend=clang needs clang++ on "
                         "PATH and a compile_commands.json (--compdb)")

    cache = FactCache(cache_dir)
    files = {}
    sources = discover_sources(root)
    texts = {rel: (root / rel).read_text(encoding="utf-8", errors="replace")
             for rel in sources}
    covered = set()

    if use_clang:
        version = clang_version(clangxx)
        headers_digest = FactCache.key(*(texts[r] for r in sorted(texts)
                                         if r.endswith(".h")))
        for entry in entries:
            rel = os.path.relpath(os.path.normpath(entry["file"]),
                                  str(root)).replace(os.sep, "/")
            if rel not in texts:
                continue
            key = FactCache.key(FACTS_VERSION, "clang", version,
                                json.dumps(entry, sort_keys=True),
                                texts[rel], headers_digest)
            cached = cache.get(key)
            if cached is None:
                try:
                    cached = parse_clang_tu(clangxx, entry, root)
                except (RuntimeError, subprocess.SubprocessError,
                        ValueError, OSError) as err:
                    print(f"dmx_deep_lint: clang frontend failed on {rel} "
                          f"({err}); using internal frontend", file=sys.stderr)
                    cached = None
                if cached is not None:
                    cache.put(key, cached)
            if cached is not None:
                for ff in cached:
                    if ff["file"]:
                        merge_file_facts(files, ff)
                        covered.add(ff["file"])
                if verbose:
                    print(f"  clang: {rel}")

    for rel in sources:
        if rel in covered:
            continue
        key = FactCache.key(FACTS_VERSION, "internal", texts[rel], rel)
        cached = cache.get(key)
        if cached is None:
            cached = parse_internal(rel, texts[rel])
            cache.put(key, cached)
        merge_file_facts(files, cached)
        if verbose:
            print(f"  internal: {rel}")

    return files, ("clang+internal" if use_clang else "internal")


def merge_file_facts(files, ff):
    """Merge facts for one file, deduping functions by (file, line, qual)."""
    rel = ff["file"]
    if rel not in files:
        files[rel] = ff
        return
    dst = files[rel]
    seen = {(f["qual"], f["line"]) for f in dst["functions"]}
    for fn in ff["functions"]:
        if (fn["qual"], fn["line"]) not in seen:
            dst["functions"].append(fn)
    for key in ("member_types", "view_members"):
        dst[key].update(ff[key])
    for qual, caps in ff["decl_requires"].items():
        dst["decl_requires"].setdefault(qual, []).extend(caps)


def collect_suppressions(root, sources):
    """relpath -> [(rule, comment_line, {lines silenced})], plus bad ones."""
    table = {}
    bad = []
    for rel in sources:
        text = (root / rel).read_text(encoding="utf-8", errors="replace")
        entries = []
        for line_no, line in enumerate(text.split("\n"), start=1):
            for rule in SUPPRESS_RE.findall(line):
                if rule not in ALL_RULES:
                    bad.append(Violation(
                        BAD_SUPPRESSION, rel, line_no,
                        f"allow() names unknown rule '{rule}' (known: "
                        f"{', '.join(ALL_RULES)})"))
                    continue
                entries.append([rule, line_no, {line_no, line_no + 1},
                                False])
        if entries:
            table[rel] = entries
    return table, bad


def run_analysis(root, frontend="internal", compdb=None, cache_dir=None,
                 verbose=False):
    root = Path(root).resolve()
    config = load_config(root)
    files, _used = gather_facts(root, frontend, compdb, cache_dir, verbose)
    program = Program(files, config)

    raw = []
    raw.extend(check_lock_blocking(program))
    raw.extend(check_guard_loops(program))
    raw.extend(check_view_escape(program))
    if config["check_sanctions"]:
        raw.extend(check_sanctions(program, config["config_path"]))

    suppress_table, bad = collect_suppressions(root, discover_sources(root))
    violations = list(bad)
    for v in raw:
        entries = suppress_table.get(v.path, ())
        silenced = False
        for entry in entries:
            if entry[0] == v.rule and v.line in entry[2]:
                entry[3] = True
                silenced = True
        if not silenced:
            violations.append(v)
    for rel, entries in suppress_table.items():
        for rule, line_no, _lines, used in entries:
            if not used:
                violations.append(Violation(
                    UNUSED_SUPPRESSION, rel, line_no,
                    f"dmx-deep-lint allow({rule}) silences nothing; remove "
                    f"it (stale suppressions hide future regressions)"))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def self_test(fixtures_dir, cache_dir=None):
    if not fixtures_dir.is_dir():
        print(f"dmx_deep_lint: no fixtures at {fixtures_dir}",
              file=sys.stderr)
        return 1
    failures = 0
    cases = sorted(p for p in fixtures_dir.iterdir() if p.is_dir())
    if not cases:
        print("dmx_deep_lint: fixture directory is empty", file=sys.stderr)
        return 1
    for case in cases:
        expect_file = case / "EXPECT"
        if not expect_file.is_file():
            print(f"FAIL {case.name}: missing EXPECT file")
            failures += 1
            continue
        expected = set()
        for line in expect_file.read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#") and line != "clean":
                expected.add(line)
        actual = {f"{v.rule}:{v.path}:{v.line}"
                  for v in run_analysis(case, frontend="internal",
                                        cache_dir=None)}
        if actual == expected:
            print(f"PASS {case.name}: "
                  f"{len(actual) or 'no'} finding(s), as expected")
        else:
            failures += 1
            print(f"FAIL {case.name}:")
            for missing in sorted(expected - actual):
                print(f"  expected but not reported: {missing}")
            for extra in sorted(actual - expected):
                print(f"  reported but not expected: {extra}")
    if failures:
        print(f"dmx_deep_lint self-test: {failures}/{len(cases)} case(s) "
              f"failed")
        return 1
    print(f"dmx_deep_lint self-test: all {len(cases)} case(s) passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="tree to analyze (default: this repository)")
    parser.add_argument("--frontend", choices=("auto", "clang", "internal"),
                        default="auto",
                        help="fact frontend (auto: clang when available)")
    parser.add_argument("--compdb", type=Path, default=None,
                        help="compile_commands.json for the clang frontend "
                             "(default: <root>/build-lint/"
                             "compile_commands.json)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="fact cache directory (default: "
                             "<root>/build-lint/ast-cache)")
    parser.add_argument("--self-test", action="store_true",
                        help="replay the seeded fixtures")
    parser.add_argument("--verbose", action="store_true",
                        help="log per-file frontend choice")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(Path(__file__).resolve().parent /
                         "deep_lint_fixtures")

    root = args.root.resolve()
    compdb = args.compdb or (root / "build-lint" / "compile_commands.json")
    cache_dir = args.cache_dir or (root / "build-lint" / "ast-cache")
    violations = run_analysis(root, frontend=args.frontend, compdb=compdb,
                              cache_dir=cache_dir, verbose=args.verbose)
    for violation in violations:
        print(violation)
    if violations:
        print(f"dmx_deep_lint: {len(violations)} finding(s)",
              file=sys.stderr)
        return 1
    print("dmx_deep_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
