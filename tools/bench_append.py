#!/usr/bin/env python3
"""Appends one google-benchmark run to a committed benchmark history file.

The tracked BENCH_*.json files are append-only histories, not snapshots:
every `tools/run_bench.sh` invocation adds a timestamped, commit-keyed
record instead of overwriting the previous machine's numbers. Schema:

    {
      "schema": "dmx-bench-history-v1",
      "records": [
        {
          "commit":     "<git short sha the run was taken at>",
          "timestamp":  "<UTC ISO-8601>",
          "context":    <google-benchmark context object>,
          "benchmarks": <google-benchmark benchmarks array>
        },
        ...
      ]
    }

A history file still holding a raw google-benchmark document (the
pre-history format: top-level "context"/"benchmarks") is migrated in
place — the raw run becomes the first record, keyed by its own context
date and the commit marker "pre-history".

Usage:
    bench_append.py --history BENCH_foo.json --run /tmp/foo.json \
        --commit abc1234 --timestamp 2026-08-09T12:00:00Z
    bench_append.py --history BENCH_foo.json --migrate-only
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "dmx-bench-history-v1"


def load_history(path):
    """Reads a history file, migrating the pre-history raw format."""
    if not path.exists():
        return {"schema": SCHEMA, "records": []}
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("schema") == SCHEMA and isinstance(doc.get("records"), list):
        return doc
    if "benchmarks" in doc and "context" in doc:
        return {
            "schema": SCHEMA,
            "records": [{
                "commit": "pre-history",
                "timestamp": (doc.get("context") or {}).get("date", ""),
                "context": doc.get("context"),
                "benchmarks": doc.get("benchmarks"),
            }],
        }
    raise SystemExit(f"bench_append: {path} is neither a {SCHEMA} history "
                     "nor a raw google-benchmark document")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", type=Path, required=True,
                        help="committed BENCH_*.json history file")
    parser.add_argument("--run", type=Path,
                        help="raw google-benchmark JSON of one fresh run")
    parser.add_argument("--commit", default="unknown",
                        help="git short sha the run was taken at")
    parser.add_argument("--timestamp", default="",
                        help="UTC ISO-8601 time of the run")
    parser.add_argument("--migrate-only", action="store_true",
                        help="rewrite a pre-history file in place; no --run")
    args = parser.parse_args(argv)

    history = load_history(args.history)

    if args.migrate_only:
        if args.run is not None:
            parser.error("--migrate-only takes no --run")
    else:
        if args.run is None:
            parser.error("--run is required unless --migrate-only")
        run = json.loads(args.run.read_text(encoding="utf-8"))
        if "benchmarks" not in run:
            raise SystemExit(f"bench_append: {args.run} has no 'benchmarks' "
                             "array; is it google-benchmark JSON output?")
        history["records"].append({
            "commit": args.commit,
            "timestamp": args.timestamp,
            "context": run.get("context"),
            "benchmarks": run["benchmarks"],
        })

    args.history.write_text(json.dumps(history, indent=1) + "\n",
                            encoding="utf-8")
    print(f"bench_append: {args.history} now holds "
          f"{len(history['records'])} record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
