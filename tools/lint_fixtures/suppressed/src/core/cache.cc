// Fixture: the same raw-mutex violation as the raw_sync case, but carrying a
// correctly spelled allow() on the preceding line. Must lint clean.
#include <mutex>

namespace dmx {

class Cache {
 private:
  // Justified exception for the fixture's sake.
  // dmx-lint: allow(raw-sync-primitive)
  std::mutex mu_;
};

}  // namespace dmx
