// Fixture: an allow() comment naming a rule that does not exist. Must trip
// bad-suppression — a typo here would otherwise silently suppress nothing.
#include "common/status.h"

namespace dmx {

// dmx-lint: allow(guraded-loops)
inline int Answer() { return 42; }

}  // namespace dmx
