// Fixture: a compliant hot region — hoisted temporaries, reserve before
// push_back, pre-resolved indices, by-reference iteration, a guard
// checkpoint — plus one justified suppression. Must lint clean.

#include "core/scorer.h"

namespace dmx {

// dmx-hot-begin(clean-scorer)
Status ScoreAll(const Rowset& in, size_t age_idx, Rowset* out) {
  std::vector<Row> scored;
  scored.reserve(in.rows().size());
  Row scratch;
  for (const Row& row : in.rows()) {
    DMX_RETURN_IF_ERROR(GuardCheck());
    scratch.clear();
    scratch.insert(scratch.end(), row.begin(), row.end());
    benchmark_sink(row[age_idx]);
    scored.push_back(std::move(scratch));
  }
  // The terminal summary formats once per *statement*, not per row — the
  // loop below runs over the handful of output columns.
  // dmx-lint: allow(hot-tostring)
  for (const Row& row : scored) summary_ += row[0].ToString();
  return Status::Ok();
}
// dmx-hot-end

}  // namespace dmx
