// Fixture: a raw std::mutex outside the common/mutex.h seam. Must trip
// raw-sync-primitive — the wrapper types carry the thread-safety
// annotations; raw primitives are invisible to the analysis.
#include <mutex>

namespace dmx {

class Cache {
 private:
  std::mutex mu_;
};

}  // namespace dmx
