// Fixture: a training entry point that loops over cases without ever
// consulting the execution guard. Must trip guarded-loops at the definition.
#include "common/status.h"

namespace dmx {

Result<int> ToyService::Train(const std::vector<DataCase>& cases) {
  int sum = 0;
  for (const DataCase& c : cases) {
    sum += static_cast<int>(c.weight);  // unbounded work, no GuardCheck
  }
  return sum;
}

}  // namespace dmx
