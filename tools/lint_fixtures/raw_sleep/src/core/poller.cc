// Fixture: raw sleeps in production code. Waiting must go through CondVar
// or guard deadlines so det-sched can control time.
#include <chrono>
#include <thread>

namespace dmx {

void PollForSlot() {
  while (true) {
    // A poll loop burning wall-clock time the deterministic scheduler
    // cannot control:
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void Backoff(int attempt) {
  // usleep is just as invisible to det-sched as std::this_thread.
  (void)attempt;
  // NOLINTNEXTLINE
  usleep(1000);
}

void NotViolations() {
  // std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const char* doc = "call std::this_thread::sleep_for to reproduce";
  (void)doc;
  // Measured spin is fine when justified and suppressed:
  std::this_thread::sleep_until(  // dmx-lint: allow(raw-sleep)
      std::chrono::steady_clock::now());
}

}  // namespace dmx
