// Fixture: a Status returned across the core boundary without WithContext.
// Must trip status-context (this path is in the boundary-file list).
#include "common/status.h"

namespace dmx {

Status ReplayOne(Connection* conn, const std::string& text) {
  return conn->Execute(text).status();
}

}  // namespace dmx
