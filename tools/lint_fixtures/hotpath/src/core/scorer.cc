// Fixture: every hot-path rule fires inside the marked region; the same
// constructs outside the region (Prelude below) must NOT be reported.

#include "core/scorer.h"

namespace dmx {

// Outside any region: allocations and lookups here are not hot-path
// violations.
void Prelude(const Rowset& in) {
  for (const Row& row : in.rows()) {
    std::string name = "unhot";
    auto v = in.Get(0, "Age");
    (void)name;
    (void)v;
  }
}

// dmx-hot-begin(scorer-loop)
Status ScoreAll(const Rowset& in, Rowset* out) {
  std::vector<Row> scored;
  for (Row row : in.rows()) {
    DMX_RETURN_IF_ERROR(GuardCheck());
    std::string key = "Age";
    auto idx = in.schema()->ResolveColumn("Age");
    auto hist = counts_.find("Age");
    Row copy(row.size());
    double* buf = new double[row.size()];
    std::string label = row[0].ToString();
    std::string suffix = std::to_string(row.size());
    auto emit = [=] { return key + label; };
    scored.push_back(std::move(copy));
    (void)idx;
    (void)hist;
    (void)buf;
    (void)emit;
    (void)suffix;
  }
  return Status::Ok();
}
// dmx-hot-end

// dmx-hot-begin(unguarded-drain)
void Drain(const Rowset& in) {
  for (size_t i = 0; i < in.rows().size(); ++i) {
    Consume(in.rows()[i]);
  }
}
// dmx-hot-end

// dmx-hot-end
// dmx-hot-begin(never-closed)
void Tail() {}

}  // namespace dmx
