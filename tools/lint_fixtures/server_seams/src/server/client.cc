// Fixture: the serving front end is inside the lint perimeter. A client
// retry loop that sleeps with bare sleep_for (instead of the injectable
// RetryClock), guards its state with a raw std::mutex (instead of
// dmx::Mutex), or lets a Status cross the wire boundary without a
// WithContext frame must all be reported.
#include <chrono>
#include <mutex>
#include <thread>

namespace dmx {

struct Status {
  bool ok() const { return true; }
};
template <typename T>
struct Result {
  Status status() const { return Status(); }
  Status WithContext(const char*) const { return Status(); }
};

std::mutex g_backoff_mu;  // raw primitive outside the mutex.h seam

Status ExecuteWithRetry(int attempts) {
  Result<int> rows;
  for (int i = 0; i < attempts; ++i) {
    std::lock_guard<std::mutex> lock(g_backoff_mu);
    // Backoff invisible to det-sched and fault injection:
    std::this_thread::sleep_for(std::chrono::milliseconds(50 << i));
  }
  // A wire-boundary Status with no context frame is undiagnosable by the
  // time it reaches the remote user:
  return rows.status();
}

Status ExecuteOnce() {
  Result<int> rows;
  // The compliant shape: context attached at the boundary.
  return rows.status().WithContext("executing remote statement");
}

}  // namespace dmx
