// Fixture: a correctly spelled allow() whose violation no longer exists.
// Must trip unused-suppression — stale excuses hide real regressions.
#include "common/status.h"

namespace dmx {

// dmx-lint: allow(raw-sync-primitive)
inline int Answer() { return 42; }

}  // namespace dmx
