// Fixture: a guarded training loop and a string literal that *mentions*
// std::mutex (the scrubber must not lint inside literals or comments —
// neither must "fopen(" here, nor the std::ofstream below).
#include "common/exec_guard.h"
#include "common/status.h"

namespace dmx {

Result<int> ToyService::Train(const std::vector<DataCase>& cases) {
  int sum = 0;
  for (const DataCase& c : cases) {
    DMX_RETURN_IF_ERROR(GuardCheck());
    sum += static_cast<int>(c.weight);
  }
  const char* doc = "never use std::mutex or std::ofstream directly";
  (void)doc;
  return sum;
}

}  // namespace dmx
