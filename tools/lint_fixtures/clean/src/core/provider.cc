// Fixture: a Status crossing the core boundary *with* a WithContext frame —
// the status-context rule must stay quiet on the contexted form.
#include "common/status.h"

namespace dmx {

Status ReplayOne(Connection* conn, const std::string& text) {
  return conn->Execute(text).status().WithContext("replaying statement");
}

}  // namespace dmx
