#!/usr/bin/env python3
"""Meta-test: every lint rule has both firing and clean fixture coverage.

The two linters (tools/dmx_lint.py, tools/dmx_deep_lint.py) are themselves
tested against seeded fixture trees, but nothing used to stop a new rule from
shipping with no fixture at all — or with only a firing fixture, so a later
refactor that makes the rule fire on *compliant* code would go unnoticed.
This script closes that gap. For every rule id in each linter's ALL_RULES it
asserts:

  * firing coverage — at least one fixture EXPECT file names the rule in a
    `rule:path:line` line (the linter's --self-test replays these, so the
    rule demonstrably still detects its violation);
  * clean coverage — at least one clean fixture (EXPECT == "clean") lists
    the rule in its COVERS file, declaring that the fixture contains code in
    the rule's domain that must NOT be reported.

It also validates the fixture metadata itself: COVERS files may only appear
in clean fixtures, and both EXPECT and COVERS may only name rule ids the
owning linter actually defines (a misspelled id here would silently provide
no coverage).

With --check-gates it additionally cross-checks the static-analysis gate
list: the `== Gate N:` markers in tools/run_static_analysis.sh must be
numbered 1..N with no gaps, and the gate table in README.md must have
exactly one row per gate.

Exit status 0 when everything holds; 1 with a per-problem report otherwise.
Registered in ctest as lint_rule_coverage.
"""

import argparse
import importlib.util
import re
import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOLS_DIR.parent

# (linter module file, fixtures directory) — ALL_RULES is read from the
# module so a rule added to a linter fails here until its fixtures exist.
LINTERS = (
    ("dmx_lint.py", "lint_fixtures"),
    ("dmx_deep_lint.py", "deep_lint_fixtures"),
)


def load_rules(module_file):
    """Imports a linter module and returns its ALL_RULES tuple."""
    path = TOOLS_DIR / module_file
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return tuple(module.ALL_RULES)


def parse_expect(path):
    """Returns (is_clean, firing_rule_ids) for one EXPECT file."""
    is_clean = False
    rules = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "clean":
            is_clean = True
            continue
        rules.add(line.split(":", 1)[0])
    return is_clean, rules


def parse_covers(path):
    """Returns the declared rule ids from one COVERS file."""
    rules = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rules.add(line)
    return rules


def check_linter(module_file, fixtures_name, problems):
    rules = load_rules(module_file)
    fixtures_dir = TOOLS_DIR / fixtures_name
    firing = {}   # rule -> [fixture names]
    covered = {}  # rule -> [fixture names]

    for fixture in sorted(p for p in fixtures_dir.iterdir() if p.is_dir()):
        expect = fixture / "EXPECT"
        rel = f"tools/{fixtures_name}/{fixture.name}"
        if not expect.is_file():
            problems.append(f"{rel}: fixture has no EXPECT file")
            continue
        is_clean, expect_rules = parse_expect(expect)
        if is_clean and expect_rules:
            problems.append(f"{rel}/EXPECT: mixes 'clean' with rule lines")
        for rule in expect_rules:
            if rule not in rules:
                problems.append(f"{rel}/EXPECT: unknown rule id '{rule}' "
                                f"(not in {module_file} ALL_RULES)")
            else:
                firing.setdefault(rule, []).append(fixture.name)

        covers = fixture / "COVERS"
        if covers.is_file():
            if not is_clean:
                problems.append(f"{rel}/COVERS: COVERS files belong in clean "
                                "fixtures only (this EXPECT lists findings)")
            for rule in parse_covers(covers):
                if rule not in rules:
                    problems.append(f"{rel}/COVERS: unknown rule id '{rule}' "
                                    f"(not in {module_file} ALL_RULES)")
                else:
                    covered.setdefault(rule, []).append(fixture.name)

    for rule in rules:
        if rule not in firing:
            problems.append(
                f"{module_file}: rule '{rule}' has no firing fixture — no "
                f"EXPECT under tools/{fixtures_name}/ names it")
        if rule not in covered:
            problems.append(
                f"{module_file}: rule '{rule}' has no clean coverage — no "
                f"clean fixture's COVERS under tools/{fixtures_name}/ "
                "declares it")
    return len(rules)


def check_gates(problems):
    """Gate markers in the driver script must match the README gate table."""
    script = REPO_ROOT / "tools" / "run_static_analysis.sh"
    markers = re.findall(r"^echo \"== Gate (\d+):",
                         script.read_text(encoding="utf-8"), re.MULTILINE)
    numbers = [int(n) for n in markers]
    if numbers != list(range(1, len(numbers) + 1)):
        problems.append(f"run_static_analysis.sh: gate markers {numbers} are "
                        "not numbered 1..N without gaps")

    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    rows = re.findall(r"^\| *(\d+) *\|", readme, re.MULTILINE)
    table = [int(n) for n in rows]
    if table != numbers:
        problems.append(
            f"README.md gate table rows {table} do not match the "
            f"`== Gate N:` markers {numbers} in run_static_analysis.sh — "
            "keep the two lists in sync")
    return len(numbers)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-gates", action="store_true",
                        help="also cross-check the static-analysis gate list "
                             "against the README gate table")
    args = parser.parse_args(argv)

    problems = []
    total = 0
    for module_file, fixtures_name in LINTERS:
        total += check_linter(module_file, fixtures_name, problems)
    gates = check_gates(problems) if args.check_gates else None

    if problems:
        for problem in problems:
            print(f"lint_rule_coverage: {problem}", file=sys.stderr)
        print(f"lint_rule_coverage: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    suffix = f", {gates} gates consistent" if gates is not None else ""
    print(f"lint_rule_coverage: {total} rules covered (firing + clean)"
          f"{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
