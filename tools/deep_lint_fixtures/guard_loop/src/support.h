// Minimal stand-ins for the guard fixtures.
struct Status {
  static Status OK();
};
struct Row {};
struct Rows {
  const Row* begin() const;
  const Row* end() const;
};
struct Rowset {
  const Rows& rows() const;
};
void Consume(const Row& row);
void Tick(int i);
Status GuardCheck();
Status GuardChargeOutputRows(int n);
namespace std {
template <typename T> struct vector {
  const T* begin() const;
  const T* end() const;
};
}  // namespace std
