// Firing fixture: a row-scale loop reachable from the execution root with
// no guard checkpoint anywhere in its cycle. The counter loop below it is
// bounded (not row-scale) and must stay clean.
#include "support.h"

namespace fx {

Status Helper(const Rowset& input) {
  for (const Row& row : input.rows()) {
    Consume(row);
  }
  for (int i = 0; i < 8; ++i) {
    Tick(i);
  }
  return Status::OK();
}

// The range's name says nothing row-ish, but the element type does: a loop
// over Row elements is row-scale no matter what the container is called.
Status Partitioned(const std::vector<const Row*>& per_key_batch) {
  for (const Row* row : per_key_batch) {
    Consume(*row);
  }
  return Status::OK();
}

class Conn {
 public:
  Status Execute(const Rowset& input) {
    Partitioned({});
    return Helper(input);
  }
};

}  // namespace fx
