// Firing fixture: views rooted in frame-local storage escaping through a
// return value, a pointer into a by-value parameter, and a store into a
// view-typed member.
#include "support.h"

namespace fx {

std::string_view BadView() {
  std::string buffer = Render();
  return std::string_view(buffer);
}

const Row* BadRow(Rowset rows_by_value) {
  return &rows_by_value.rows()[0];
}

class Cache {
 public:
  void Remember(const std::string& key) {
    std::string owned = Canonical(key);
    label_ = owned;
  }

 private:
  std::string_view label_;
};

}  // namespace fx
