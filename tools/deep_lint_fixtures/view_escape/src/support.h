// Minimal stand-ins for the view fixtures.
#include <string>
#include <string_view>
#include <vector>

struct Row {};
struct Rows {
  const Row& operator[](unsigned i) const;
};
struct Rowset {
  const Rows& rows() const;
};
std::string Render();
std::string Canonical(const std::string& key);
