// Clean fixture: borrowed views are fine when rooted in caller-owned
// storage (reference parameters, members); returning an owning value or
// copying into owned members never fires.
#include "support.h"

namespace fx {

std::string_view NameOf(const Model& model) {
  return model.label();
}

std::string CopyOut() {
  std::string buffer = Render();
  return buffer;
}

// A function-local static outlives every frame; a reference to it is safe.
const std::string& Fallback(bool have) {
  static const std::string kEmpty;
  std::string local = Render();
  return have ? Accept(local) : kEmpty;
}

class Table {
 public:
  const Row* At(unsigned i) { return &rows_[i]; }

  // The local is a *key* into member storage (subscript index) — the
  // returned pointer roots in rows_, not in the key.
  const Row* Find(unsigned hint) {
    unsigned key = hint + 1;
    return &rows_[key];
  }

  // The local is an *argument* to the call — the returned reference roots
  // in whatever Intern aliases (member storage), not in the argument.
  const std::string& Label(std::string fallback) {
    return Intern(std::move(fallback));
  }

  void Remember(std::string label) { label_ = std::move(label); }

 private:
  const std::string& Intern(std::string value) {
    label_ = std::move(value);
    return label_;
  }

  std::vector<Row> rows_;
  std::string label_;
};

}  // namespace fx
