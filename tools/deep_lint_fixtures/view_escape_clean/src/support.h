// Minimal stand-ins for the view fixtures.
#include <string>
#include <string_view>
#include <vector>

struct Row {};
struct Model {
  std::string_view label() const;
};
std::string Render();
const std::string& Accept(const std::string& s);
