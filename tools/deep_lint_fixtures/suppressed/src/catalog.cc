// Clean fixture: a real finding silenced by a scoped allow() — the
// suppression is consumed, so neither the finding nor unused-suppression
// fires.
#include "support.h"

namespace fx {

class Catalog {
 public:
  void Rebuild() {
    WriterMutexLock lock(&mu_);
    // dmx-deep-lint: allow(lock-blocking-call)
    env_->WriteStringToFile("catalog", "x");
  }

 private:
  SharedMutex mu_;
  Env* env_;
};

}  // namespace fx
