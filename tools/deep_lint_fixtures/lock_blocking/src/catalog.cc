// Firing fixture: blocking work transitively reachable while an exclusive
// capability is held — once through an RAII writer lock, once through a
// DMX_REQUIRES-annotated method defined out of line.
#include "support.h"

namespace fx {

class Catalog {
 public:
  void Rebuild() {
    WriterMutexLock lock(&mu_);
    Persist();
  }

  int Persist() { return env_->WriteStringToFile("catalog", "x"); }

 private:
  SharedMutex mu_;
  Env* env_;
};

class Journal {
 public:
  void AppendLocked(const char* record) DMX_REQUIRES(mu_);

  Mutex mu_;
  Env* env_;
};

void Journal::AppendLocked(const char* record) {
  env_->WriteStringToFile("journal", record);
}

}  // namespace fx
