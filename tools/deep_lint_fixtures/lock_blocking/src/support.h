// Minimal stand-ins: the analyzer keys on the project's type and macro
// names, so fixture stubs only need the shapes.
struct Env {
  int WriteStringToFile(const char* path, const char* data);
};
struct Mutex {};
struct SharedMutex {};
struct WriterMutexLock {
  explicit WriterMutexLock(SharedMutex* mu);
};
