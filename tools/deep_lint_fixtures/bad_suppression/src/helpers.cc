// Firing fixture: an allow() naming an unknown rule, and a well-formed
// allow() that silences nothing.
namespace fx {

int Helper() {
  // dmx-deep-lint: allow(no-such-rule)
  int x = 1;
  // dmx-deep-lint: allow(view-escape)
  return x;
}

}  // namespace fx
