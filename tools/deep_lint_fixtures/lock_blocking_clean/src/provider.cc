// Clean fixture: the same shapes as lock_blocking, kept clean the three
// sanctioned ways — I/O hoisted before the critical section, a condition
// wait that releases its own mutex, and the journal protocol sanctioned
// via CONFIG.json (whose io_cap covers the store's I/O-serializing mutex).
#include "support.h"

namespace fx {

class Store {
 public:
  int Journal(const char* record) DMX_REQUIRES(mu_) {
    return env_->WriteStringToFile("wal", record);
  }

  Mutex mu_;
  Env* env_;
};

class Provider {
 public:
  void Mutate(const char* record) {
    BuildPayload(record);
    WriterMutexLock lock(&catalog_mu_);
    store_->Journal(record);
  }

  void WaitForWork() {
    MutexLock lock(&wake_mu_);
    cv_.WaitFor(&wake_mu_, 10);
  }

  void BuildPayload(const char* record) { payload_size_ = Measure(record); }

  int Measure(const char* record);

 private:
  SharedMutex catalog_mu_;
  Mutex wake_mu_;
  CondVar cv_;
  Store* store_;
  int payload_size_;
};

}  // namespace fx
