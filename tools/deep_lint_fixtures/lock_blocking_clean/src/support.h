// Minimal stand-ins: the analyzer keys on the project's type and macro
// names, so fixture stubs only need the shapes.
struct Env {
  int WriteStringToFile(const char* path, const char* data);
};
struct Mutex {};
struct SharedMutex {};
struct MutexLock {
  explicit MutexLock(Mutex* mu);
};
struct WriterMutexLock {
  explicit WriterMutexLock(SharedMutex* mu);
};
struct CondVar {
  bool WaitFor(Mutex* mu, int timeout_ms);
};
