// Firing fixture: CONFIG.json sanctions a function and an io-cap that do
// not exist in the scanned tree; both entries must be flagged stale.
namespace fx {

int Touch() { return 0; }

}  // namespace fx
