// Clean fixture: every row-scale loop reachable from the root has a guard
// checkpoint in its cycle — directly, through a callee, or through a local
// lambda. The last loop is row-scale but unreachable from any root.
#include "support.h"

namespace fx {

Status Scan(const Rowset& input) {
  for (const Row& row : input.rows()) {
    GuardCheck();
    Consume(row);
  }
  return Status::OK();
}

Status ChargeAll(const Rowset& input) {
  auto emit = [&](const Row& row) {
    GuardChargeOutputRows(1);
    Consume(row);
  };
  for (const Row& row : input.rows()) {
    emit(row);
  }
  return Status::OK();
}

Status Deep(const Rowset& input) {
  for (const Row& row : input.rows()) {
    Scan(input);
  }
  return Status::OK();
}

// Attribute groups are schema-scale (bounded by model width), so a loop
// over them needs no checkpoint even though it says "group" twice.
Status Serialize(const AttributeSet& attrs) {
  for (const NestedGroup& group : attrs.groups) {
    Consume2(group);
  }
  return Status::OK();
}

void Unreached(const Rowset& input) {
  for (const Row& row : input.rows()) {
    Consume(row);
  }
}

class Conn {
 public:
  Status Execute(const Rowset& input) {
    Scan(input);
    ChargeAll(input);
    Serialize({});
    return Deep(input);
  }
};

}  // namespace fx
