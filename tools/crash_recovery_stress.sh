#!/usr/bin/env bash
# Crash-recovery stress for the sharded durable store: run an idempotent
# multi-model workload through dmxsh --store — catalog DDL/DML plus a
# blob-journaled Clustering model and an incrementally-journaled Naive_Bayes
# model, so kills land across three WAL shards in different states — SIGKILL
# the shell at staggered points mid-session, reopen after every kill, and
# finally assert that the table and both models recovered with working
# predictions and no quarantined shards.
#
#   tools/crash_recovery_stress.sh <path-to-dmxsh> [rounds]
set -u

DMXSH="${1:?usage: crash_recovery_stress.sh <path-to-dmxsh> [rounds]}"
ROUNDS="${2:-8}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
STORE="$WORK/store"
ROWS=200

# Idempotent workload: every statement either applies or fails harmlessly
# against recovered state, so the script can be replayed after any kill
# point and always converge to the same catalog. [M] journals as a model
# blob (shard rotation), [NB] journals incremental training statements —
# between them plus the catalog shard, a kill can strand any combination of
# shards mid-write.
workload() {
  echo "DROP MINING MODEL [M];"   # error on the first run; fine
  echo "DROP MINING MODEL [NB];"  # ditto
  echo "CREATE TABLE T (Id LONG, Age DOUBLE, Loyalty LONG);"  # ditto later
  echo "DELETE FROM T;"
  for i in $(seq 1 "$ROWS"); do
    echo "INSERT INTO T VALUES ($i, $((20 + i % 50)), $((i % 2)));"
  done
  echo "CREATE MINING MODEL [M] ([Id] LONG KEY, [Age] DOUBLE CONTINUOUS," \
       "[Loyalty] LONG DISCRETE PREDICT)" \
       "USING Clustering(CLUSTER_COUNT = 2, SEED = 3);"
  echo "INSERT INTO [M] SELECT [Id], [Age], [Loyalty] FROM T;"
  echo "CREATE MINING MODEL [NB] ([Id] LONG KEY, [Age] DOUBLE DISCRETIZED," \
       "[Loyalty] LONG DISCRETE PREDICT) USING Naive_Bayes;"
  # Three incremental rounds: each journals a statement into NB's own shard.
  echo "INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] FROM T;"
  echo "INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] FROM T;"
  echo "INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] FROM T;"
}

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

echo "== kill-replay loop ($ROUNDS rounds) =="
for round in $(seq 1 "$ROUNDS"); do
  workload | "$DMXSH" --store "$STORE" --quiet >"$WORK/run.log" 2>&1 &
  pid=$!
  # Stagger the kill so different rounds die in different phases: journal
  # appends, blob rotations, auto-checkpoints, model training.
  sleep "0.0${round}"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  # Reopening after the kill must never report corruption, and a plain
  # process death must never quarantine a shard (quarantine is for damaged
  # files, not torn tails).
  out="$(echo '\store-status' | "$DMXSH" --store "$STORE" 2>&1)" ||
    fail "round $round: reopen exited non-zero:
$out"
  case "$out" in
    *Corruption*) fail "round $round: reopen reported corruption:
$out" ;;
    *QUARANTINED*) fail "round $round: SIGKILL quarantined a shard:
$out" ;;
  esac
  echo "round $round: killed pid $pid, reopen OK"
done

echo "== final clean run =="
workload | "$DMXSH" --store "$STORE" --quiet >"$WORK/final.log" 2>&1 ||
  fail "final workload run exited non-zero: $(cat "$WORK/final.log")"

echo "== verification =="
for model in M NB; do
  verify="$(echo "SELECT t.[Id], Predict([Loyalty]) AS L FROM [$model] \
NATURAL PREDICTION JOIN (SELECT [Id], [Age] FROM T) AS t;" |
    "$DMXSH" --store "$STORE" --quiet 2>&1)" ||
    fail "verification run for [$model] exited non-zero:
$verify"
  case "$verify" in
    *Corruption*) fail "verification of [$model] reported corruption:
$verify" ;;
    *"($ROWS rows"*) ;;
    *) fail "expected predictions for $ROWS rows from [$model], got:
$verify" ;;
  esac
done

status="$(echo '\store-status' | "$DMXSH" --store "$STORE" 2>&1)" ||
  fail "final store-status exited non-zero:
$status"
case "$status" in
  *QUARANTINED*|*degraded*) fail "store left degraded after recovery:
$status" ;;
esac

echo "PASS: store recovered through $ROUNDS kills;" \
     "predictions for $ROWS rows from [M] and [NB]; no quarantined shards"
