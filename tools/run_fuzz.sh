#!/usr/bin/env bash
# Time-budgeted fuzzing driver for the three DMX fuzz targets (DESIGN.md §12):
#
#   fuzz_dmx_statement    differential analyzer/executor oracle
#   fuzz_store_recovery   fault-injected durability + recovery oracle
#   fuzz_tokenizer_parser tokenizer/parser/analyzer robustness
#
# Configures a -DDMX_FUZZ=ON build (ASan by default), builds the targets,
# then runs each for the given time budget seeded from the committed corpus
# in fuzz/corpus/<target> plus the fixed findings in fuzz/regressions/<target>.
# Under clang this is real coverage-guided libFuzzer; under GCC the bundled
# standalone driver replays + grammar-mutates with the same command line.
#
# Any crash leaves a crash-<target>-<hash> reproducer in WORK_DIR and fails
# the run. Triage: replay it (`build-fuzz/fuzz/<target> <file>`), fix the bug
# (or allowlist the divergence in fuzz/fuzz_targets.cc with a DESIGN.md §12
# justification), then commit the input under fuzz/regressions/<target>/ so
# tests/fuzz_regression_test.cc pins it in the default build forever.
#
# Usage: tools/run_fuzz.sh [SECONDS_PER_TARGET] [BUILD_DIR]
#   SECONDS_PER_TARGET  time budget per target (default: 60)
#   BUILD_DIR           fuzz build directory (default: build-fuzz)
# Environment:
#   DMX_FUZZ_SANITIZE   sanitizer config to build with (default: address)
#   DMX_FUZZ_TARGETS    space-separated subset to run (default: all four)

set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"
BUDGET="${1:-60}"
BUILD_DIR="${2:-build-fuzz}"
[[ "$BUILD_DIR" = /* ]] || BUILD_DIR="$REPO_ROOT/$BUILD_DIR"
SANITIZE="${DMX_FUZZ_SANITIZE:-address}"
TARGETS="${DMX_FUZZ_TARGETS:-fuzz_dmx_statement fuzz_store_recovery fuzz_tokenizer_parser fuzz_wire_protocol}"

cmake -B "$BUILD_DIR" -S . -DDMX_FUZZ=ON -DDMX_SANITIZE="$SANITIZE" >/dev/null
# shellcheck disable=SC2086
cmake --build "$BUILD_DIR" --target $TARGETS -j "$(nproc)"

WORK_DIR="$BUILD_DIR/fuzz-artifacts"
mkdir -p "$WORK_DIR"

FAILED=0
for target in $TARGETS; do
  corpus="$REPO_ROOT/fuzz/corpus/${target#fuzz_}"
  regressions="$REPO_ROOT/fuzz/regressions/${target#fuzz_}"
  # libFuzzer writes new coverage-increasing inputs into the FIRST corpus
  # dir, so the committed corpus rides behind a scratch dir that absorbs
  # them (the standalone driver reads all dirs and writes none).
  scratch="$WORK_DIR/corpus-${target#fuzz_}"
  mkdir -p "$scratch"
  dirs=("$scratch" "$corpus")
  [[ -d "$regressions" ]] && dirs+=("$regressions")
  echo "== $target: ${BUDGET}s over ${dirs[*]} =="
  if (cd "$WORK_DIR" && "$BUILD_DIR/fuzz/$target" "${dirs[@]}" \
        -max_total_time="$BUDGET" -seed="${RANDOM}"); then
    echo "$target: clean"
  else
    echo "$target: FAILED — reproducer(s) in $WORK_DIR:" >&2
    ls "$WORK_DIR"/crash-* >&2 || true
    FAILED=1
  fi
  echo
done

exit "$FAILED"
