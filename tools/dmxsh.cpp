// dmxsh — an interactive shell for the OpenDMX provider.
//
// Reads DMX / SQL statements (terminated by ';') from stdin and prints the
// resulting rowsets, the way a consumer talks to the provider in Figure 1.
//
//   dmxsh [--warehouse N] [--paper-example] [--store DIR] [--timeout MS]
//         [--quiet] [--serve [HOST:]PORT | --connect HOST:PORT]
//
//   --warehouse N     preload the synthetic customer warehouse (N customers)
//   --paper-example   preload the paper's Table 1 micro-warehouse
//   --store DIR       durable catalog store: recover DIR's snapshot + WAL on
//                     startup, journal every DDL/DML statement, checkpoint on
//                     clean exit — a killed shell reopens with all models
//                     trained
//   --timeout MS      arm a wall-clock deadline of MS milliseconds on every
//                     statement; a statement that overruns it fails with
//                     "Deadline exceeded" and leaves the catalogs unchanged
//   --quiet           suppress the banner and prompts (for piped scripts)
//
// Serving mode (README "Serving"):
//   --serve [HOST:]PORT   run the framed network front end over this
//                     provider (PORT 0 = ephemeral, printed on startup).
//                     SIGTERM/SIGINT trigger graceful drain: stop
//                     accepting, finish or cancel in-flight statements,
//                     checkpoint the store, exit
//   --admission A,Q   global admission cap: A active statements, Q queued
//   --tenant-quota A,Q  per-tenant quota layered under the global cap
//
// Client mode:
//   --connect HOST:PORT   talk to a dmxsh --serve instance instead of an
//                     in-process provider; statements and rowsets travel
//                     the framed wire protocol with bounded retry
//   --tenant NAME     tenant id for the session handshake
//
// Shell commands (no ';'):
//   \models   \services   \tables   \columns <model>   \checkpoint
//   \timeout <ms>   \help   \quit

#include <signal.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/dmx_analyzer.h"
#include "core/provider.h"
#include "datagen/warehouse.h"
#include "server/client.h"
#include "server/server.h"

namespace {

void PrintHelp() {
  std::cout <<
      "statements end with ';' and run through the provider, e.g.\n"
      "  CREATE MINING MODEL m (...) USING Naive_Bayes;\n"
      "  INSERT INTO m SHAPE {...} APPEND ({...} RELATE a TO b) AS t;\n"
      "  SELECT ... FROM m NATURAL PREDICTION JOIN (...) AS t;\n"
      "  SELECT * FROM m.CONTENT;\n"
      "  ANALYZE <statement>;   lint a statement without executing it\n"
      "shell commands:\n"
      "  \\models      installed mining models\n"
      "  \\services    installed mining services\n"
      "  \\functions   prediction UDFs\n"
      "  \\tables      base tables\n"
      "  \\columns m   column rowset of model m\n"
      "  \\checkpoint  snapshot the catalog and rotate the WAL (--store)\n"
      "  \\store-status  shards, epochs, degraded models and quarantine\n"
      "               reasons of the attached store (--store)\n"
      "  \\repair t    re-adopt quarantined shard t (a shard id such as\n"
      "               'catalog' or 'm000002', or a degraded model's name)\n"
      "  \\timeout ms  deadline per statement in milliseconds (0 disarms)\n"
      "  \\help        this text\n"
      "  \\quit        exit\n";
}

// Errors render with their full context chain, innermost cause first:
//   IO error: write 'wal-000001.log': No space left on device
//     while journaling statement
void PrintStatus(const dmx::Status& status) {
  std::cout << dmx::StatusCodeToString(status.code());
  if (!status.message().empty()) std::cout << ": " << status.message();
  std::cout << "\n";
  for (const std::string& frame : status.context()) {
    std::cout << "  while " << frame << "\n";
  }
}

void PrintRowset(const dmx::Rowset& rowset) {
  if (rowset.num_columns() == 0) {
    std::cout << "OK\n";
    return;
  }
  std::cout << rowset.ToString(/*expand_nested=*/true)
            << "(" << rowset.num_rows() << " row"
            << (rowset.num_rows() == 1 ? "" : "s") << ")\n";
}

// ANALYZE <statement>: runs the semantic analyzer on the statement text and
// prints the diagnostic report instead of executing it.
bool TryAnalyzeCommand(dmx::Connection* conn, const std::string& command) {
  static const char kKeyword[] = "ANALYZE";
  const size_t len = sizeof(kKeyword) - 1;
  if (command.size() <= len ||
      !dmx::EqualsCi(std::string_view(command).substr(0, len), kKeyword) ||
      std::isspace(static_cast<unsigned char>(command[len])) == 0) {
    return false;
  }
  std::string statement(dmx::Trim(command.substr(len)));
  while (!statement.empty() && statement.back() == ';') {
    statement.pop_back();
  }
  dmx::AnalyzerContext context;
  context.catalog = conn->provider()->models();
  context.services = conn->provider()->services();
  context.database = conn->provider()->database();
  std::cout << dmx::DmxAnalyzer(context).AnalyzeText(statement).ToString(
      statement);
  return true;
}

bool HandleShellCommand(dmx::Connection* conn, const std::string& line) {
  auto show = [&](dmx::SchemaRowsetKind kind, const std::string& filter = "") {
    auto rowset = conn->GetSchemaRowset(kind, filter);
    if (rowset.ok()) {
      PrintRowset(*rowset);
    } else {
      PrintStatus(rowset.status());
    }
  };
  if (line == "\\checkpoint") {
    auto status = conn->provider()->Checkpoint();
    if (status.ok()) {
      std::cout << "checkpoint written (snapshot "
                << conn->provider()->store()->snapshot_seq() << ")\n";
    } else {
      PrintStatus(status);
    }
  } else if (line == "\\store-status") {
    dmx::store::DurableStore* store = conn->provider()->store();
    if (store == nullptr) {
      std::cout << "no store attached (start dmxsh with --store DIR)\n";
      return true;
    }
    dmx::store::StoreStatus status = store->GetStatus();
    std::cout << "store '" << store->dir() << "': snapshot "
              << status.snapshot_seq << ", " << status.shards.size()
              << " shard" << (status.shards.size() == 1 ? "" : "s");
    if (conn->provider()->StoreReadOnly()) {
      std::cout << " [READ-ONLY: catalog shard quarantined]";
    }
    std::cout << "\n";
    for (const dmx::store::ShardStatus& shard : status.shards) {
      std::cout << "  " << shard.id;
      if (!shard.model.empty()) std::cout << " (model '" << shard.model << "')";
      std::cout << ": epoch " << shard.epoch;
      if (shard.quarantined) {
        std::cout << " QUARANTINED — " << shard.reason;
      } else {
        std::cout << ", " << shard.records << " record"
                  << (shard.records == 1 ? "" : "s");
      }
      std::cout << "\n";
    }
    for (const auto& [model, reason] : conn->provider()->DegradedModels()) {
      std::cout << "  degraded model '" << model << "': " << reason << "\n";
    }
  } else if (line.rfind("\\repair ", 0) == 0) {
    std::string target(dmx::Trim(line.substr(8)));
    if (target.empty()) {
      std::cout << "\\repair expects a shard id or degraded model name\n";
      return true;
    }
    dmx::store::RepairStats stats;
    auto status = conn->provider()->Repair(target, &stats);
    if (status.ok()) {
      std::cout << "shard repaired: " << stats.records_reapplied
                << " records re-applied, " << stats.records_skipped
                << " superseded, " << stats.bytes_dropped
                << " bytes dropped past the valid prefix\n";
    } else {
      PrintStatus(status);
    }
  } else if (line == "\\models") {
    show(dmx::SchemaRowsetKind::kMiningModels);
  } else if (line == "\\services") {
    show(dmx::SchemaRowsetKind::kMiningServices);
  } else if (line == "\\functions") {
    show(dmx::SchemaRowsetKind::kMiningFunctions);
  } else if (line == "\\tables") {
    for (const std::string& name :
         conn->provider()->database()->ListTables()) {
      std::cout << "  " << name << "\n";
    }
  } else if (line.rfind("\\columns ", 0) == 0) {
    show(dmx::SchemaRowsetKind::kMiningColumns, line.substr(9));
  } else if (line.rfind("\\timeout ", 0) == 0) {
    long ms = std::atol(line.c_str() + 9);
    if (ms < 0) {
      std::cout << "\\timeout expects a millisecond count >= 0\n";
    } else {
      dmx::ExecLimits limits = conn->limits();
      limits.deadline_ms = ms;
      conn->set_limits(limits);
      if (ms == 0) {
        std::cout << "statement deadline disarmed\n";
      } else {
        std::cout << "statement deadline set to " << ms << " ms\n";
      }
    }
  } else if (line == "\\help") {
    PrintHelp();
  } else if (line == "\\quit" || line == "\\q") {
    return false;
  } else {
    std::cout << "unknown shell command (try \\help)\n";
  }
  return true;
}

// "HOST:PORT" or bare "PORT" (host defaults to 127.0.0.1). False on junk.
bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  size_t colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    host->clear();
    port_str = spec;
  } else {
    *host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (port_str.empty()) return false;
  for (char c : port_str) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  long value = std::atol(port_str.c_str());
  if (value < 0 || value > 65535) return false;
  *port = static_cast<int>(value);
  return true;
}

// "A,Q" pair for admission limits.
bool ParseLimitPair(const char* spec, unsigned* active, unsigned* queued) {
  return std::sscanf(spec, "%u,%u", active, queued) == 2;
}

// --connect: the REPL talks to a remote dmxsh --serve over the framed
// protocol instead of an in-process provider.
int RunClient(const std::string& host, int port, const std::string& tenant,
              long timeout_ms, bool quiet) {
  dmx::server::ClientOptions options;
  options.tenant = tenant;
  auto client =
      dmx::server::DmxClient::Connect(host.empty() ? "127.0.0.1" : host,
                                      static_cast<uint16_t>(port), options);
  if (!client.ok()) {
    PrintStatus(client.status());
    return 1;
  }
  if (!quiet) {
    std::cout << "connected to " << (host.empty() ? "127.0.0.1" : host) << ":"
              << port << " (session " << (*client)->session_id();
    if (!tenant.empty()) std::cout << ", tenant '" << tenant << "'";
    std::cout << ")\ntype \\quit to exit\n";
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (!quiet) std::cout << (buffer.empty() ? "dmx> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(dmx::Trim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      std::cout << "shell commands are local-only over a network session "
                   "(\\quit to exit)\n";
      continue;
    }
    buffer += line;
    buffer += '\n';
    if (trimmed.empty() || trimmed.back() != ';') continue;
    std::string command(dmx::Trim(buffer));
    buffer.clear();
    if (command == ";") continue;
    auto result = (*client)->Execute(
        command, timeout_ms > 0 ? static_cast<uint64_t>(timeout_ms) : 0);
    if (!result.ok()) {
      PrintStatus(result.status());
      if ((*client)->last_attempts() > 1) {
        std::cout << "  (" << (*client)->last_attempts() << " attempts, "
                  << (*client)->last_backoff_ms() << " ms backoff)\n";
      }
      continue;
    }
    PrintRowset(*result);
  }
  (*client)->Close();
  return 0;
}

// --serve: run the network front end until SIGTERM/SIGINT, then drain.
// The signal set is blocked in every thread (the mask is inherited), so
// the signal is consumed synchronously by sigwait — no async handler, no
// races with session threads.
int RunServer(dmx::Provider* provider, const std::string& host, int port,
              bool quiet) {
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGTERM);
  sigaddset(&signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  dmx::server::ServerOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  dmx::server::DmxServer server(provider, options);
  auto status = server.Start();
  if (!status.ok()) {
    PrintStatus(status);
    return 1;
  }
  // The port line prints even under --quiet: a supervisor using an
  // ephemeral port has no other way to learn it.
  std::cout << "serving on " << (host.empty() ? "127.0.0.1" : host) << ":"
            << server.port() << std::endl;
  if (!quiet) {
    std::cout << "SIGTERM/SIGINT drains gracefully (finish or cancel "
                 "in-flight statements, checkpoint, exit)\n";
  }
  int signal = 0;
  sigwait(&signals, &signal);
  if (!quiet) {
    std::cout << "signal " << signal << ": draining...\n";
  }
  auto drained = server.Drain();
  if (!drained.ok()) {
    PrintStatus(drained);
    return 1;
  }
  if (!quiet) {
    dmx::server::DmxServer::Stats stats = server.stats();
    std::cout << "drained: " << stats.sessions_opened << " sessions served, "
              << stats.statements_ok << " statements ok, "
              << stats.statements_failed << " failed\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  int warehouse = 0;
  bool paper_example = false;
  std::string store_dir;
  long timeout_ms = 0;
  bool serve = false;
  bool connect = false;
  std::string net_host;
  int net_port = 0;
  std::string tenant;
  unsigned admit_active = 0, admit_queued = 0;
  unsigned quota_active = 0, quota_queued = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--paper-example") == 0) {
      paper_example = true;
    } else if (std::strcmp(argv[i], "--warehouse") == 0 && i + 1 < argc) {
      warehouse = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout_ms = std::atol(argv[++i]);
      if (timeout_ms < 0) {
        std::cerr << "--timeout expects a millisecond count >= 0\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve = true;
      if (!ParseHostPort(argv[++i], &net_host, &net_port)) {
        std::cerr << "--serve expects [HOST:]PORT\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = true;
      if (!ParseHostPort(argv[++i], &net_host, &net_port)) {
        std::cerr << "--connect expects [HOST:]PORT\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--tenant") == 0 && i + 1 < argc) {
      tenant = argv[++i];
    } else if (std::strcmp(argv[i], "--admission") == 0 && i + 1 < argc) {
      if (!ParseLimitPair(argv[++i], &admit_active, &admit_queued)) {
        std::cerr << "--admission expects ACTIVE,QUEUED\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--tenant-quota") == 0 && i + 1 < argc) {
      if (!ParseLimitPair(argv[++i], &quota_active, &quota_queued)) {
        std::cerr << "--tenant-quota expects ACTIVE,QUEUED\n";
        return 2;
      }
    } else {
      std::cerr << "usage: dmxsh [--warehouse N] [--paper-example] "
                   "[--store DIR] [--timeout MS] [--quiet]\n"
                   "             [--serve [HOST:]PORT [--admission A,Q] "
                   "[--tenant-quota A,Q]]\n"
                   "             [--connect HOST:PORT [--tenant NAME]]\n";
      return 2;
    }
  }
  if (serve && connect) {
    std::cerr << "--serve and --connect are mutually exclusive\n";
    return 2;
  }
  if (connect) {
    return RunClient(net_host, net_port, tenant, timeout_ms, quiet);
  }

  dmx::Provider provider;
  if (paper_example) {
    auto status = dmx::datagen::LoadPaperExample(provider.database());
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  } else if (warehouse > 0) {
    dmx::datagen::WarehouseConfig config;
    config.num_customers = warehouse;
    auto status = dmx::datagen::PopulateWarehouse(provider.database(), config);
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  // The store is opened *after* any warehouse preload, so recovered state
  // (which is authoritative) replaces preloaded tables it also covers.
  if (!store_dir.empty()) {
    dmx::store::StoreOptions options;
    options.auto_checkpoint_interval = 64;
    auto status = provider.OpenStore(store_dir, options);
    if (!status.ok()) {
      PrintStatus(status);
      return 1;
    }
    if (!quiet) {
      const dmx::store::RecoveryStats& stats =
          provider.store()->recovery_stats();
      std::cout << "(store '" << store_dir << "' opened: snapshot "
                << stats.snapshot_seq << " with " << stats.snapshot_entries
                << " entries, " << stats.replayed_statements
                << " statements + " << stats.replayed_blobs
                << " model blobs replayed across " << stats.shards_recovered
                << " shards"
                << (stats.torn_tail_truncated ? ", torn WAL tail truncated"
                                              : "")
                << ")\n";
      if (stats.shards_quarantined > 0) {
        std::cout << "warning: " << stats.shards_quarantined
                  << " shard(s) failed recovery and were quarantined — run "
                     "\\store-status for details, \\repair to re-adopt\n";
      }
      for (const auto& [model, reason] : provider.DegradedModels()) {
        std::cout << "  degraded model '" << model << "': " << reason << "\n";
      }
      if (provider.StoreReadOnly()) {
        std::cout << "  store is READ-ONLY until its catalog shard is "
                     "repaired\n";
      }
    }
    // Preloaded tables exist only in memory — checkpoint at once so the
    // store is self-contained and a later `dmxsh --store` WITHOUT the
    // preload flags still recovers every journaled statement.
    if (paper_example || warehouse > 0) {
      auto status = provider.Checkpoint();
      if (!status.ok()) {
        PrintStatus(status.WithContext("checkpointing preloaded tables"));
        return 1;
      }
    }
  }
  if (serve) {
    if (admit_active > 0) {
      provider.SetAdmissionLimits(admit_active, admit_queued);
    }
    if (quota_active > 0) {
      provider.SetTenantAdmissionLimits(quota_active, quota_queued);
    }
    return RunServer(&provider, net_host, net_port, quiet);
  }

  auto conn = provider.Connect();
  if (timeout_ms > 0) {
    dmx::ExecLimits limits;
    limits.deadline_ms = timeout_ms;
    conn->set_limits(limits);
  }

  if (!quiet) {
    std::cout << "OpenDMX shell -- data mining as first-class SQL objects\n"
              << "type \\help for help, \\quit to exit\n";
    if (paper_example) {
      std::cout << "(paper Table 1 micro-warehouse loaded: Customers, Sales, "
                   "CarOwnership)\n";
    } else if (warehouse > 0) {
      std::cout << "(synthetic warehouse loaded: " << warehouse
                << " customers)\n";
    }
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (!quiet) std::cout << (buffer.empty() ? "dmx> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(dmx::Trim(line));
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (!HandleShellCommand(conn.get(), trimmed)) break;
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Execute once the statement terminator arrives.
    if (trimmed.empty() || trimmed.back() != ';') continue;
    std::string command(dmx::Trim(buffer));
    buffer.clear();
    if (command == ";") continue;
    if (TryAnalyzeCommand(conn.get(), command)) continue;
    auto result = conn->Execute(command);
    if (!result.ok()) {
      PrintStatus(result.status());
      continue;
    }
    PrintRowset(*result);
  }
  // Clean exit: checkpoint so the next open skips WAL replay. The WAL already
  // holds everything, so a failure is not data loss — but it is worth a
  // warning, since it usually means the store directory has gone bad.
  if (provider.store() != nullptr) {
    dmx::Status checkpoint = provider.Checkpoint();
    if (!checkpoint.ok()) {
      std::cerr << "warning: exit checkpoint failed (WAL remains "
                   "authoritative): "
                << checkpoint.ToString() << "\n";
    }
  }
  return 0;
}
