#include "fuzz/dmx_grammar.h"

#include <algorithm>
#include <cstring>

#include "common/tokenizer.h"

namespace dmx::fuzz {

namespace {

// ---------------------------------------------------------------------------
// Dictionaries. The identifier pool mirrors the catalog fuzz_targets.cc
// builds: tables People / Pets, trained model [M], untrained model [U].
// A few names resolve to nothing on purpose (unknown-model / unknown-column
// rules need inputs too).
// ---------------------------------------------------------------------------

const std::vector<std::string>& Tables() {
  static const std::vector<std::string> kTables = {"People", "Pets"};
  return kTables;
}

const std::vector<std::string>& Models() {
  static const std::vector<std::string> kModels = {"M", "U"};
  return kModels;
}

const std::vector<std::string>& Columns() {
  static const std::vector<std::string> kColumns = {
      "Id", "Age", "Income", "City", "Loyalty", "Owner", "Pet"};
  return kColumns;
}

const std::vector<std::string>& Services() {
  static const std::vector<std::string> kServices = {
      "Clustering",        "Naive_Bayes",       "Decision_Trees",
      "Linear_Regression", "Sequence_Analysis", "Association_Rules"};
  return kServices;
}

const std::vector<std::string>& Ghosts() {
  static const std::vector<std::string> kGhosts = {"Nothing", "ghost",
                                                   "ZZZ", "People2"};
  return kGhosts;
}

const std::vector<std::string>& ColumnTypes() {
  static const std::vector<std::string> kTypes = {"LONG", "DOUBLE", "TEXT",
                                                  "DATE"};
  return kTypes;
}

std::string AnyIdentifier(Rng& rng) {
  return rng.Pick(IdentifierDictionary());
}

std::string ColumnName(Rng& rng) {
  return rng.Chance(85) ? rng.Pick(Columns()) : AnyIdentifier(rng);
}

std::string TableName(Rng& rng) {
  return rng.Chance(85) ? rng.Pick(Tables()) : AnyIdentifier(rng);
}

std::string ModelName(Rng& rng) {
  return rng.Chance(85) ? rng.Pick(Models()) : AnyIdentifier(rng);
}

// ---------------------------------------------------------------------------
// Expressions (shared by SQL WHERE clauses and prediction-join items).
// ---------------------------------------------------------------------------

std::string Expr(Rng& rng, int depth);

std::string Comparison(Rng& rng, int depth) {
  static const std::vector<std::string> kOps = {"=",  "<>", "<",
                                                "<=", ">",  ">="};
  return Expr(rng, depth) + " " + rng.Pick(kOps) + " " + Expr(rng, depth);
}

std::string Expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(40)) {
    switch (rng.Below(3)) {
      case 0:
        return ColumnName(rng);
      case 1:
        return RandomLiteral(rng);
      default:
        return "[" + ColumnName(rng) + "]";
    }
  }
  switch (rng.Below(5)) {
    case 0:
      return "(" + Expr(rng, depth - 1) + ")";
    case 1:
      return Expr(rng, depth - 1) + " + " + Expr(rng, depth - 1);
    case 2:
      return Expr(rng, depth - 1) + " * " + Expr(rng, depth - 1);
    case 3:
      return "-" + Expr(rng, depth - 1);
    default:
      return "NOT (" + Comparison(rng, depth - 1) + ")";
  }
}

std::string PredictionExpr(Rng& rng, int depth) {
  static const std::vector<std::string> kFns = {
      "Predict",        "PredictProbability", "PredictSupport",
      "PredictHistogram", "Cluster",          "ClusterProbability"};
  if (depth <= 0 || rng.Chance(35)) {
    switch (rng.Below(4)) {
      case 0:
        return "[" + ColumnName(rng) + "]";
      case 1:
        return "t.[" + ColumnName(rng) + "]";
      case 2:
        return "$Probability";
      default:
        return RandomLiteral(rng);
    }
  }
  std::string call = rng.Pick(kFns) + "(" + PredictionExpr(rng, depth - 1);
  if (rng.Chance(30)) call += ", " + RandomLiteral(rng);
  return call + ")";
}

// ---------------------------------------------------------------------------
// Statement templates.
// ---------------------------------------------------------------------------

std::string ColumnSpec(Rng& rng, bool nested, int depth) {
  std::string spec = "[" + ColumnName(rng) + "_" +
                     std::to_string(rng.Below(4)) + "] " +
                     rng.Pick(ColumnTypes());
  // Content flags in grammar order; each optional so specs range from bare
  // to deliberately over-qualified (analyzer fodder).
  if (rng.Chance(15)) spec += rng.Chance(50) ? " NORMAL" : " UNIFORM";
  if (rng.Chance(70)) {
    switch (rng.Below(3)) {
      case 0:
        spec += " DISCRETE";
        break;
      case 1:
        spec += " CONTINUOUS";
        break;
      default:
        spec += " DISCRETIZED";
        break;
    }
  }
  if (rng.Chance(30)) spec += " KEY";
  if (rng.Chance(35)) spec += rng.Chance(75) ? " PREDICT" : " PREDICT_ONLY";
  if (rng.Chance(12)) spec += " SEQUENCE_TIME";
  if (rng.Chance(15)) spec += " RELATED TO [" + ColumnName(rng) + "_0]";
  if (rng.Chance(10)) spec += " PROBABILITY OF [" + ColumnName(rng) + "_0]";
  if (!nested && depth > 0 && rng.Chance(18)) {
    // Nested table column instead of the scalar spec built above.
    std::string inner = ColumnSpec(rng, true, 0);
    if (rng.Chance(80)) inner += " KEY";
    std::string table = "[" + ColumnName(rng) + "_t] TABLE(" + inner;
    uint32_t extra = rng.Below(3);
    for (uint32_t i = 0; i < extra; ++i) {
      table += ", " + ColumnSpec(rng, true, depth - 1);
    }
    return table + ")";
  }
  return spec;
}

std::string CreateMiningModel(Rng& rng) {
  std::string name = rng.Chance(70)
                         ? "F" + std::to_string(rng.Below(4))
                         : ModelName(rng);
  std::string stmt = "CREATE MINING MODEL [" + name + "] (";
  // First column: usually a well-formed key so some models actually build.
  if (rng.Chance(80)) {
    stmt += "[K] LONG KEY";
  } else {
    stmt += ColumnSpec(rng, false, 1);
  }
  uint32_t cols = 1 + rng.Below(4);
  for (uint32_t i = 0; i < cols; ++i) {
    stmt += ", " + ColumnSpec(rng, false, 1);
  }
  stmt += ") USING " + (rng.Chance(85) ? rng.Pick(Services())
                                       : AnyIdentifier(rng));
  if (rng.Chance(40)) {
    stmt += "(CLUSTER_COUNT = " + std::to_string(1 + rng.Below(5)) +
            ", SEED = " + std::to_string(rng.Below(100)) + ")";
  }
  return stmt;
}

std::string SelectList(Rng& rng) {
  if (rng.Chance(20)) return "*";
  std::string list = ColumnName(rng);
  uint32_t n = rng.Below(3);
  for (uint32_t i = 0; i < n; ++i) list += ", " + ColumnName(rng);
  return list;
}

std::string SqlSelect(Rng& rng) {
  std::string stmt = "SELECT ";
  if (rng.Chance(15)) stmt += "TOP " + std::to_string(rng.Below(5)) + " ";
  stmt += SelectList(rng) + " FROM " + TableName(rng);
  if (rng.Chance(20)) {
    stmt += " JOIN " + TableName(rng) + " ON " + ColumnName(rng) + " = " +
            ColumnName(rng);
  }
  if (rng.Chance(45)) stmt += " WHERE " + Comparison(rng, 2);
  if (rng.Chance(25)) {
    stmt += " ORDER BY " + ColumnName(rng);
    if (rng.Chance(40)) stmt += " DESC";
  }
  return stmt;
}

std::string ShapeSource(Rng& rng) {
  std::string shape = "SHAPE {SELECT " + SelectList(rng) + " FROM " +
                      TableName(rng) + "}";
  uint32_t appends = 1 + rng.Below(2);
  for (uint32_t i = 0; i < appends; ++i) {
    shape += " APPEND ({SELECT " + SelectList(rng) + " FROM " +
             TableName(rng) + "} RELATE [" + ColumnName(rng) + "] TO [" +
             ColumnName(rng) + "]) AS [N" + std::to_string(i) + "]";
  }
  return shape;
}

std::string InsertIntoModel(Rng& rng) {
  std::string stmt = "INSERT INTO [" + ModelName(rng) + "]";
  if (rng.Chance(40)) {
    stmt += " ([" + ColumnName(rng) + "]";
    uint32_t n = rng.Below(3);
    for (uint32_t i = 0; i < n; ++i) stmt += ", [" + ColumnName(rng) + "]";
    stmt += ")";
  }
  stmt += " ";
  stmt += rng.Chance(70) ? ("SELECT " + SelectList(rng) + " FROM " +
                            TableName(rng))
                         : ShapeSource(rng);
  return stmt;
}

std::string PredictionJoin(Rng& rng) {
  std::string stmt = "SELECT " + PredictionExpr(rng, 2);
  uint32_t n = rng.Below(3);
  for (uint32_t i = 0; i < n; ++i) stmt += ", " + PredictionExpr(rng, 2);
  stmt += " FROM [" + ModelName(rng) + "]";
  bool natural = rng.Chance(65);
  if (natural) stmt += " NATURAL";
  stmt += " PREDICTION JOIN (SELECT " + SelectList(rng) + " FROM " +
          TableName(rng) + ") AS t";
  if (!natural) {
    stmt += " ON [" + ModelName(rng) + "].[" + ColumnName(rng) + "] = t.[" +
            ColumnName(rng) + "]";
  }
  if (rng.Chance(25)) stmt += " WHERE " + Comparison(rng, 1);
  return stmt;
}

std::string SqlDdlDml(Rng& rng) {
  switch (rng.Below(4)) {
    case 0: {
      std::string stmt = "CREATE TABLE T" + std::to_string(rng.Below(4)) +
                         " ([A] LONG";
      uint32_t n = rng.Below(3);
      for (uint32_t i = 0; i < n; ++i) {
        stmt += ", [C" + std::to_string(i) + "] " + rng.Pick(ColumnTypes());
      }
      return stmt + ")";
    }
    case 1: {
      std::string stmt = "INSERT INTO " + TableName(rng) + " VALUES (" +
                         RandomLiteral(rng);
      uint32_t n = rng.Below(4);
      for (uint32_t i = 0; i < n; ++i) stmt += ", " + RandomLiteral(rng);
      return stmt + ")";
    }
    case 2:
      return "DROP TABLE " + TableName(rng);
    default:
      return "DELETE FROM " + (rng.Chance(50) ? TableName(rng)
                                              : ModelName(rng)) +
             (rng.Chance(40) ? " WHERE " + Comparison(rng, 1) : "");
  }
}

}  // namespace

const std::vector<std::string>& KeywordDictionary() {
  static const std::vector<std::string> kKeywords = {
      "SELECT",     "FROM",       "WHERE",      "ORDER",      "BY",
      "TOP",        "JOIN",       "ON",         "AS",         "NOT",
      "AND",        "OR",         "CREATE",     "MINING",     "MODEL",
      "TABLE",      "USING",      "INSERT",     "INTO",       "VALUES",
      "DROP",       "DELETE",     "SHAPE",      "APPEND",     "RELATE",
      "TO",         "NATURAL",    "PREDICTION", "KEY",        "PREDICT",
      "PREDICT_ONLY", "DISCRETE", "CONTINUOUS", "DISCRETIZED", "NORMAL",
      "UNIFORM",    "RELATED",    "SEQUENCE_TIME", "PROBABILITY", "SUPPORT",
      "OF",         "CONTENT",    "DESC",       "ASC",        "LONG",
      "DOUBLE",     "TEXT",       "DATE"};
  return kKeywords;
}

const std::vector<std::string>& IdentifierDictionary() {
  static const std::vector<std::string> kIdentifiers = [] {
    std::vector<std::string> all;
    for (const auto& v : {Tables(), Models(), Columns(), Services(), Ghosts()})
      all.insert(all.end(), v.begin(), v.end());
    return all;
  }();
  return kIdentifiers;
}

std::string RandomLiteral(Rng& rng) {
  switch (rng.Below(10)) {
    case 0:
      return "0";
    case 1:
      return "-1";
    case 2:
      return "9223372036854775807";
    case 3:
      return "1.7976931348623157e308";
    case 4:
      return "0.5";
    case 5:
      return "''";
    case 6:
      return "'it''s'";
    case 7:
      return "'" + rng.Pick(Columns()) + "'";
    case 8:
      return std::to_string(rng.Below(1000));
    default:
      return std::to_string(rng.Below(100)) + "." +
             std::to_string(rng.Below(100));
  }
}

std::string GenerateStatement(Rng& rng) {
  switch (rng.Below(10)) {
    case 0:
    case 1:
      return CreateMiningModel(rng);
    case 2:
    case 3:
      return InsertIntoModel(rng);
    case 4:
    case 5:
      return PredictionJoin(rng);
    case 6:
      return "SELECT * FROM [" + ModelName(rng) + "].CONTENT";
    case 7:
      return "DROP MINING MODEL [" + ModelName(rng) + "]";
    case 8:
      return SqlSelect(rng);
    default:
      return SqlDdlDml(rng);
  }
}

std::string GenerateDurableStatement(Rng& rng) {
  // "CHECKPOINT" is a harness pseudo-statement: fuzz_store_recovery turns it
  // into Provider::Checkpoint(), so snapshot rotation gets fault coverage.
  if (rng.Chance(10)) return "CHECKPOINT";
  switch (rng.Below(8)) {
    case 0:
    case 1:
      return CreateMiningModel(rng);
    case 2:
    case 3:
      return InsertIntoModel(rng);
    case 4:
      return "DROP MINING MODEL [" + ModelName(rng) + "]";
    case 5:
      return "DELETE FROM [" + ModelName(rng) + "]";
    default:
      return SqlDdlDml(rng);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Mutation. Token-level edits re-render the token vector, so the mutant
// still lexes; occasional raw byte noise keeps the lexer's own error paths
// in play.
// ---------------------------------------------------------------------------

std::string EscapeBrackets(const std::string& text) {
  std::string out;
  for (char c : text) {
    out += c;
    if (c == ']') out += ']';
  }
  return out;
}

std::string EscapeQuotes(const std::string& text) {
  std::string out;
  for (char c : text) {
    out += c;
    if (c == '\'') out += '\'';
  }
  return out;
}

std::string RenderToken(const Token& t) {
  switch (t.kind) {
    case TokenKind::kIdentifier:
      return t.quoted ? "[" + EscapeBrackets(t.text) + "]" : t.text;
    case TokenKind::kString:
      return "'" + EscapeQuotes(t.text) + "'";
    default:
      return t.text;
  }
}

std::string Render(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& t : tokens) {
    if (t.IsEnd()) break;
    if (!out.empty()) out += ' ';
    out += RenderToken(t);
  }
  return out;
}

Token MakeIdentifier(std::string text) {
  Token t;
  t.kind = TokenKind::kIdentifier;
  t.text = std::move(text);
  return t;
}

/// One grammar-aware edit on a token vector. Returns false when the vector
/// offers nothing to edit (empty input).
bool EditTokens(std::vector<Token>& tokens, Rng& rng) {
  if (tokens.empty()) return false;
  uint32_t i = rng.Below(static_cast<uint32_t>(tokens.size()));
  switch (rng.Below(7)) {
    case 0:  // Swap an identifier for a catalog / ghost name.
      tokens[i] = MakeIdentifier(AnyIdentifier(rng));
      tokens[i].quoted = rng.Chance(30);
      break;
    case 1:  // Swap in a keyword (often turns one clause into another).
      tokens[i] = MakeIdentifier(rng.Pick(KeywordDictionary()));
      break;
    case 2: {  // Replace any token with a boundary literal.
      auto lexed = Tokenize(RandomLiteral(rng));
      if (lexed.ok() && !lexed->empty()) tokens[i] = (*lexed)[0];
      break;
    }
    case 3:  // Delete a token.
      tokens.erase(tokens.begin() + i);
      break;
    case 4: {  // Duplicate a short span (comma elements, clause fragments).
      uint32_t len = 1 + rng.Below(4);
      len = std::min<uint32_t>(len, static_cast<uint32_t>(tokens.size()) - i);
      std::vector<Token> span(tokens.begin() + i, tokens.begin() + i + len);
      tokens.insert(tokens.begin() + i, span.begin(), span.end());
      break;
    }
    case 5: {  // Swap two tokens.
      uint32_t j = rng.Below(static_cast<uint32_t>(tokens.size()));
      std::swap(tokens[i], tokens[j]);
      break;
    }
    default: {  // Wrap the tail in one more function call.
      Token open;
      open.kind = TokenKind::kPunct;
      open.text = "(";
      Token close = open;
      close.text = ")";
      tokens.insert(tokens.begin() + i, {MakeIdentifier("Predict"), open});
      tokens.push_back(close);
      break;
    }
  }
  return true;
}

size_t WriteBack(const std::string& text, uint8_t* data, size_t max_size) {
  size_t n = std::min(text.size(), max_size);
  std::memcpy(data, text.data(), n);
  return n;
}

size_t ByteNoise(uint8_t* data, size_t size, size_t max_size, Rng& rng) {
  if (size == 0 || rng.Chance(30)) {  // Insert.
    if (size < max_size) {
      size_t at = size == 0 ? 0 : rng.Below(static_cast<uint32_t>(size));
      std::memmove(data + at + 1, data + at, size - at);
      data[at] = static_cast<uint8_t>(rng.Below(256));
      return size + 1;
    }
  }
  if (size > 1 && rng.Chance(30)) {  // Erase.
    size_t at = rng.Below(static_cast<uint32_t>(size));
    std::memmove(data + at, data + at + 1, size - at - 1);
    return size - 1;
  }
  if (size > 0) {  // Flip.
    data[rng.Below(static_cast<uint32_t>(size))] ^=
        static_cast<uint8_t>(1 + rng.Below(255));
  }
  return size;
}

}  // namespace

size_t MutateStatement(uint8_t* data, size_t size, size_t max_size,
                       uint64_t seed) {
  Rng rng(seed);
  if (max_size == 0) return 0;
  uint32_t strategy = rng.Below(100);
  if (strategy < 25 || size == 0) {
    return WriteBack(GenerateStatement(rng), data, max_size);
  }
  if (strategy < 85) {
    std::string text(reinterpret_cast<const char*>(data), size);
    auto lexed = Tokenize(text);
    if (lexed.ok()) {
      std::vector<Token> tokens = std::move(*lexed);
      uint32_t edits = 1 + rng.Below(3);
      bool edited = false;
      for (uint32_t i = 0; i < edits; ++i) edited |= EditTokens(tokens, rng);
      if (edited) return WriteBack(Render(tokens), data, max_size);
    }
    // Unlexable input (byte-noise descendant): fall through to more noise.
  }
  return ByteNoise(data, size, max_size, rng);
}

size_t MutateRecoveryInput(uint8_t* data, size_t size, size_t max_size,
                           uint64_t seed) {
  Rng rng(seed);
  if (max_size == 0) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);

  // Split into lines; line 0 is the FAULT header (rebuilt if absent).
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty() || lines[0].rfind("FAULT ", 0) != 0 || rng.Chance(30)) {
    static const char* kKinds[] = {"io", "torn", "nospace"};
    std::string header = "FAULT " + std::to_string(rng.Below(64)) + " " +
                         kKinds[rng.Below(3)];
    // Sometimes scope the fault to a single shard's file (0 = catalog,
    // i >= 1 = model shard m<i-1>) — the per-shard "one sick disk region"
    // plan the recovery oracle verifies shard isolation against.
    if (rng.Chance(40)) header += " shard=" + std::to_string(rng.Below(4));
    if (lines.empty() || lines[0].rfind("FAULT ", 0) != 0) {
      lines.insert(lines.begin(), header);
    } else {
      lines[0] = header;
    }
  }

  // Mutate the statement lines.
  switch (rng.Below(4)) {
    case 0:  // Append a fresh durable statement.
      if (lines.size() < 12) lines.push_back(GenerateDurableStatement(rng));
      break;
    case 1:  // Drop a statement line.
      if (lines.size() > 2) {
        lines.erase(lines.begin() + 1 +
                    rng.Below(static_cast<uint32_t>(lines.size() - 1)));
      }
      break;
    case 2:  // Replace one line wholesale.
      if (lines.size() > 1) {
        lines[1 + rng.Below(static_cast<uint32_t>(lines.size() - 1))] =
            GenerateDurableStatement(rng);
      } else {
        lines.push_back(GenerateDurableStatement(rng));
      }
      break;
    default:  // Grammar-mutate one line in place.
      if (lines.size() > 1) {
        uint32_t i = 1 + rng.Below(static_cast<uint32_t>(lines.size() - 1));
        std::vector<uint8_t> buf(lines[i].begin(), lines[i].end());
        buf.resize(std::max<size_t>(buf.size() + 64, 256));
        size_t n = MutateStatement(buf.data(), lines[i].size(), buf.size(),
                                   rng.Next());
        lines[i].assign(reinterpret_cast<const char*>(buf.data()), n);
        // Statements are line-delimited; embedded newlines would split them.
        std::replace(lines[i].begin(), lines[i].end(), '\n', ' ');
      } else {
        lines.push_back(GenerateDurableStatement(rng));
      }
      break;
  }

  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += '\n';
    out += lines[i];
  }
  return WriteBack(out, data, max_size);
}

}  // namespace dmx::fuzz
