// Grammar-aware input generation and mutation for the DMX fuzzers.
//
// libFuzzer's byte-level mutations almost never get past the tokenizer of a
// language like DMX; the interesting bugs live behind CREATE MINING MODEL
// column specs, SHAPE nesting and prediction-join select lists. This module
// therefore speaks the grammar: it can synthesize whole statements from the
// provider's actual production rules (templates over keyword / identifier /
// literal dictionaries matched to the harness catalog in fuzz_targets.cc),
// and it can mutate an existing statement at the token level — swap an
// identifier for another catalog name, replace a literal with a boundary
// value, duplicate or drop a comma-separated element, wrap an expression in
// one more function call — so that most mutants still lex and many still
// parse, which is exactly where the differential oracle has power.
//
// Everything is deterministic: all randomness flows from an explicit seed
// (libFuzzer hands one to LLVMFuzzerCustomMutator), so any crashing input
// replays bit-for-bit.

#ifndef DMX_FUZZ_DMX_GRAMMAR_H_
#define DMX_FUZZ_DMX_GRAMMAR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dmx::fuzz {

/// splitmix64: tiny, seedable, and good enough for mutation decisions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n must be > 0.
  uint32_t Below(uint32_t n) { return static_cast<uint32_t>(Next() % n); }

  /// True with probability pct/100.
  bool Chance(uint32_t pct) { return Below(100) < pct; }

  /// Picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(static_cast<uint32_t>(v.size()))];
  }

 private:
  uint64_t state_;
};

/// DMX / SQL keywords the mutator may splice in (statement heads, clause
/// keywords, column-spec vocabulary).
const std::vector<std::string>& KeywordDictionary();

/// Identifiers matched to the harness catalog built by fuzz_targets.cc:
/// table names, column names, the pre-trained model, service names — plus a
/// few names that deliberately resolve to nothing.
const std::vector<std::string>& IdentifierDictionary();

/// Boundary-ish literals rendered as DMX source text: 0, -1, INT64 edges,
/// doubles at the overflow cliff, empty / quote-heavy strings.
std::string RandomLiteral(Rng& rng);

/// Synthesizes one statement from the full grammar: CREATE MINING MODEL
/// (nested TABLE columns, RELATED TO, qualifiers — some intentionally
/// rule-violating), INSERT INTO (column-list, SELECT and SHAPE..APPEND
/// sources), PREDICTION JOIN (NATURAL and ON forms), CONTENT selects, DROP /
/// DELETE, and plain SQL. Never generates EXPORT / IMPORT / OPENROWSET (the
/// harness refuses statements that touch the file system).
std::string GenerateStatement(Rng& rng);

/// Durable-safe subset for the store-recovery fuzzer: only statements whose
/// effects the journal captures (SQL DDL/DML, model DDL, training, DELETE
/// FROM). No reads — they cannot change what recovery must reproduce.
std::string GenerateDurableStatement(Rng& rng);

/// Grammar-aware mutation of statement text in place (the custom-mutator
/// contract: `data[0,size)` holds the input, the result — at most
/// `max_size` bytes — is written back, and the new size returned). Roughly:
/// 60% token-level edits, 25% fresh generation, 15% raw byte noise so the
/// lexer's error paths stay exercised too.
size_t MutateStatement(uint8_t* data, size_t size, size_t max_size,
                       uint64_t seed);

/// Mutator for fuzz_store_recovery inputs: "FAULT <op> <kind>" header line
/// followed by one durable statement per line. Mutates the fault point /
/// kind and the statement lines (via the grammar), keeping the shape valid
/// most of the time.
size_t MutateRecoveryInput(uint8_t* data, size_t size, size_t max_size,
                           uint64_t seed);

}  // namespace dmx::fuzz

#endif  // DMX_FUZZ_DMX_GRAMMAR_H_
