// Fuzz target: crash-recovery oracle. Input is a "FAULT <op> <kind>" header
// followed by one durable statement per line; the harness executes the
// script against a store with the fault armed, reopens, and requires the
// recovered catalog to equal an exact successfully-executed prefix.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/dmx_grammar.h"
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dmx::fuzz::CheckResult result = dmx::fuzz::CheckStoreRecovery(input);
  if (!result.ok) {
    dmx::fuzz::ReportFailure("store_recovery", data, size, result.error);
  }
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return dmx::fuzz::MutateRecoveryInput(data, size, max_size, seed);
}
