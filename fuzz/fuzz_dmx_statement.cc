// Fuzz target: differential DmxAnalyzer / Connection::Execute oracle.
// Input is one DMX or SQL statement as text; the grammar-aware custom
// mutator keeps most mutants lexable. Build with -DDMX_FUZZ=ON; under Clang
// this links libFuzzer, under GCC the bundled standalone driver.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/dmx_grammar.h"
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  dmx::fuzz::CheckResult result = dmx::fuzz::CheckDmxStatement(text);
  if (!result.ok) {
    dmx::fuzz::ReportFailure("dmx_statement", data, size, result.error);
  }
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return dmx::fuzz::MutateStatement(data, size, max_size, seed);
}
