// Fuzz target: tokenizer / parser / analyzer robustness on raw bytes. Any
// input must come back as a clean non-kInternal Status — deep nesting
// included (bounded recursion yields kInvalidArgument, never a stack
// overflow). The mutator still prefers grammar-shaped inputs so parse
// coverage goes deep, but the harness accepts arbitrary bytes.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/dmx_grammar.h"
#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  dmx::fuzz::CheckResult result = dmx::fuzz::CheckTokenizerParser(text);
  if (!result.ok) {
    dmx::fuzz::ReportFailure("tokenizer_parser", data, size, result.error);
  }
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return dmx::fuzz::MutateStatement(data, size, max_size, seed);
}
