// Standalone fuzzing driver: a libFuzzer-compatible main() for toolchains
// without -fsanitize=fuzzer (this repo's baseline is GCC). It speaks enough
// of the libFuzzer command line for tools/run_fuzz.sh and CI to treat both
// engines identically:
//
//   fuzz_target corpus_dir [file...] -runs=N -max_len=M -seed=S
//               -max_total_time=SECONDS
//
// Files and corpus entries are replayed first (so crash regressions
// reproduce exactly); with -runs / -max_total_time the driver then loops:
// pick a corpus entry, mutate it through the target's grammar-aware
// LLVMFuzzerCustomMutator, execute. New inputs are kept in memory as
// mutation bases; there is no coverage feedback — grammar awareness is what
// keeps the walk productive. Crashes abort with a reproducer file written by
// the harness (fuzz_targets.cc), same contract as libFuzzer.

#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed);

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool IsDirectory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string> ListFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::string cmd = "ls -1 '" + dir + "' 2>/dev/null";
  // popen keeps this file dependency-free; corpus dirs are trusted local
  // paths supplied by run_fuzz.sh or the developer.
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (!pipe) return files;
  char line[4096];
  while (std::fgets(line, sizeof(line), pipe)) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len > 0) files.push_back(dir + "/" + line);
  }
  ::pclose(pipe);
  return files;
}

uint64_t ParseFlag(const char* arg, const char* name, uint64_t fallback) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return fallback;
  return static_cast<uint64_t>(std::strtoull(arg + len + 1, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t max_len = 4096;
  uint64_t seed = 0;
  uint64_t max_total_time = 0;  // Seconds; 0 = unlimited.
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] == '-') {
      runs = ParseFlag(arg, "-runs", runs);
      max_len = ParseFlag(arg, "-max_len", max_len);
      seed = ParseFlag(arg, "-seed", seed);
      max_total_time = ParseFlag(arg, "-max_total_time", max_total_time);
      continue;  // Unknown flags are accepted and ignored, like libFuzzer.
    }
    paths.push_back(arg);
  }

  // Load the corpus: directories shallowly, files directly.
  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& path : paths) {
    if (IsDirectory(path)) {
      for (const std::string& file : ListFiles(path)) {
        std::vector<uint8_t> data;
        if (ReadFile(file, &data)) corpus.push_back(std::move(data));
      }
    } else {
      std::vector<uint8_t> data;
      if (!ReadFile(path, &data)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
      }
      corpus.push_back(std::move(data));
    }
  }

  // Replay phase: every corpus entry must pass its oracle.
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone: replayed %zu corpus inputs OK\n",
               corpus.size());
  if (runs == 0 && max_total_time == 0) return 0;

  // Mutation phase. splitmix64 over the -seed flag keeps runs reproducible.
  uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ULL;
  auto next_rand = [&state]() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  auto start = std::chrono::steady_clock::now();
  std::vector<uint8_t> buf(max_len);
  uint64_t executed = 0;
  for (uint64_t run = 0; runs == 0 || run < runs; ++run) {
    if (max_total_time > 0 &&
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start)
                .count() >= static_cast<int64_t>(max_total_time)) {
      break;
    }
    size_t size = 0;
    if (!corpus.empty()) {
      const auto& base = corpus[next_rand() % corpus.size()];
      size = base.size() < max_len ? base.size() : max_len;
      std::memcpy(buf.data(), base.data(), size);
    }
    size = LLVMFuzzerCustomMutator(buf.data(), size, max_len,
                                   static_cast<unsigned int>(next_rand()));
    LLVMFuzzerTestOneInput(buf.data(), size);
    ++executed;
    // Keep a bounded pool of recent mutants as future mutation bases: a
    // poor man's corpus evolution without coverage feedback.
    if (corpus.size() < 512 && (next_rand() % 8) == 0) {
      corpus.emplace_back(buf.begin(), buf.begin() + size);
    }
    if (executed % 5000 == 0) {
      std::fprintf(stderr, "standalone: %lu runs, corpus %zu\n",
                   static_cast<unsigned long>(executed), corpus.size());
    }
  }
  std::fprintf(stderr, "standalone: done, %lu mutation runs, no failures\n",
               static_cast<unsigned long>(executed));
  return 0;
}
