// Fuzz harness: the checks behind the three fuzz targets, shared between the
// libFuzzer / standalone entry points (fuzz_*.cc) and the committed
// crash-regression replay (tests/fuzz_regression_test.cc, a plain ctest in
// the default build).
//
// Each Check* function runs one fuzz input through its oracle and returns a
// CheckResult instead of aborting, so the regression test can report a
// failure through gtest while the fuzz entry points escalate it to a crash
// the fuzzing engine records.
//
// The oracles (DESIGN.md §12):
//
//  * CheckDmxStatement — differential analyzer/executor consistency on one
//    catalog: statements the DmxAnalyzer passes must never make
//    Connection::Execute crash or return kInternal (clean semantic failures
//    like kNotFound are fine); statements the analyzer rejects must also be
//    rejected by the executor, divergences allowlisted per rule id.
//  * CheckStoreRecovery — a statement sequence under an injected I/O fault,
//    then reopen: the recovered catalog must equal the in-memory oracle
//    state after exactly the successfully-executed statement prefix.
//  * CheckTokenizerParser — raw bytes through tokenizer, both parsers and
//    the analyzer: every outcome is a well-formed non-kInternal Status (deep
//    nesting included: kInvalidArgument, never a stack overflow), and every
//    diagnostic carries a registered rule id.

#ifndef DMX_FUZZ_FUZZ_TARGETS_H_
#define DMX_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dmx {
class Provider;
}  // namespace dmx

namespace dmx::fuzz {

/// Outcome of one oracle run. `ok` is also true for inputs the harness
/// chooses to skip (oversized, file-system statements); skipping is never a
/// finding.
struct CheckResult {
  bool ok = true;
  std::string error;

  static CheckResult Pass() { return {}; }
  static CheckResult Fail(std::string why) { return {false, std::move(why)}; }
};

/// \brief One allowlisted analyzer/executor divergence. An analyzer-rejected
/// statement that the executor accepts is a finding unless EVERY error rule
/// it trips appears here; each entry documents why the divergence is
/// intended (mirrored in DESIGN.md §12).
struct DivergenceRule {
  const char* rule;  ///< rules:: identifier from dmx_analyzer.h.
  const char* why;   ///< One-line justification.
};

/// Allowlist, terminated by a {nullptr, nullptr} entry.
extern const DivergenceRule kDivergenceAllowlist[];

/// True when `rule` appears in kDivergenceAllowlist.
bool IsAllowlistedDivergence(std::string_view rule);

/// Differential analyzer/executor oracle over one statement text.
CheckResult CheckDmxStatement(std::string_view text);

/// Builds the fixed fuzzing catalog on a fresh provider: tables People /
/// Pets, trained model [M], untrained model [U] — the world the grammar
/// dictionaries (dmx_grammar.cc) and the rule-coverage meta-test
/// (tests/rule_coverage_test.cc) are written against. Aborts on failure
/// (harness bug, not a finding).
void PopulateFuzzCatalog(Provider* provider);

/// Crash-recovery oracle. Input format (line-oriented text):
///   FAULT <op_index> <io|torn|nospace> [shard=<i>]
///   <statement>
///   ...
/// The fault arms after the store is opened. Without a shard token,
/// execution stops at the first statement whose outcome differs from the
/// fault-free oracle run (the "crash"), the store is reopened with a clean
/// Env, and the recovered catalog must match the oracle state after the
/// executed prefix (or prefix + 1 when the WAL append outlived the failing
/// statement).
///
/// With "shard=<i>" the fault is scoped to one shard's file (0 = the
/// catalog shard, i >= 1 = model shard m<i-1>), which stays persistently
/// sick while every other file behaves — one bad disk region under the
/// sharded WAL. Execution runs the whole script (statements on healthy
/// shards keep succeeding); recovery must reproduce exactly the statements
/// that succeeded (each shard's successful prefix, merged in execution
/// order), with models whose shard was quarantined excluded from the
/// comparison — their degraded state is the quarantine's contract.
CheckResult CheckStoreRecovery(std::string_view input);

/// Tokenizer / parser / analyzer robustness over raw bytes.
CheckResult CheckTokenizerParser(std::string_view text);

/// \brief Serving front-end robustness over raw wire bytes (DESIGN.md §13).
/// The input is fed to a DmxServer session verbatim as the client byte
/// stream (in-memory pipe, no socket). The oracle requires that the server
///   * never crashes and never hangs past its idle timeout,
///   * answers only well-formed, CRC-valid frames of the server->client
///     types (a torn or corrupt response frame is a finding),
///   * never reports kInternal in a Done frame, and
///   * never leaks the session (opened == closed after the stream ends).
/// The catalog is rebuilt per input, so a valid framed DDL statement inside
/// the fuzz input cannot leak state between runs.
CheckResult CheckWireProtocol(std::string_view input);

/// Crash escalation for the fuzz entry points: prints `error`, saves the
/// offending input as crash-<hash> in the working directory (so a standalone
/// run preserves the reproducer exactly like libFuzzer does), and aborts.
[[noreturn]] void ReportFailure(const char* target, const uint8_t* data,
                                size_t size, const std::string& error);

}  // namespace dmx::fuzz

#endif  // DMX_FUZZ_FUZZ_TARGETS_H_
