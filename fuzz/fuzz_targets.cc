#include "fuzz/fuzz_targets.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/tokenizer.h"
#include "core/dmx_analyzer.h"
#include "core/mining_model.h"
#include "core/provider.h"
#include "relational/database.h"
#include "relational/sql_parser.h"
#include "server/server.h"
#include "server/transport.h"
#include "server/wire.h"

namespace dmx::fuzz {

namespace {

// ---------------------------------------------------------------------------
// Shared harness plumbing.
// ---------------------------------------------------------------------------

/// Upper-cased copy for case-insensitive substring scans.
std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

/// Statements that touch the file system are out of scope for fuzzing: they
/// are slow, they litter the disk, and their failure modes are the I/O
/// fuzzer's job (fuzz_store_recovery owns fault injection).
bool TouchesFileSystem(std::string_view text) {
  std::string upper = ToUpper(text);
  return upper.find("EXPORT") != std::string::npos ||
         upper.find("IMPORT") != std::string::npos ||
         upper.find("OPENROWSET") != std::string::npos;
}

}  // namespace

/// The fixed fuzzing catalog (mirrored by the dictionaries in
/// dmx_grammar.cc): two tables, a trained model [M], an untrained model [U].
/// Built fresh per input so executor side effects never leak between runs.
void PopulateFuzzCatalog(Provider* provider) {
  static const char* kSetup[] = {
      "CREATE TABLE People (Id LONG, Age DOUBLE, Income DOUBLE, City TEXT, "
      "Loyalty LONG)",
      "INSERT INTO People VALUES (1, 25, 100, 'Oslo', 0), "
      "(2, 30, 210, 'Rome', 1), (3, 45, 300, 'Oslo', 1), "
      "(4, 22, 90, 'Bern', 0), (5, 60, 400, 'Rome', 1), "
      "(6, 35, 150, 'Bern', 0)",
      "CREATE TABLE Pets (Owner LONG, Pet TEXT)",
      "INSERT INTO Pets VALUES (1, 'cat'), (2, 'dog'), (3, 'fish')",
      "CREATE MINING MODEL [M] ([Id] LONG KEY, [Age] DOUBLE CONTINUOUS, "
      "[Income] DOUBLE CONTINUOUS, [Loyalty] LONG DISCRETE PREDICT) "
      "USING Clustering(CLUSTER_COUNT = 2, SEED = 7)",
      "INSERT INTO [M] SELECT [Id], [Age], [Income], [Loyalty] FROM People",
      "CREATE MINING MODEL [U] ([Id] LONG KEY, [Age] DOUBLE CONTINUOUS, "
      "[Loyalty] LONG DISCRETE PREDICT) USING Naive_Bayes",
  };
  auto conn = provider->Connect();
  for (const char* stmt : kSetup) {
    auto result = conn->Execute(stmt);
    if (!result.ok()) {
      std::fprintf(stderr, "fuzz catalog setup failed: %s\n  %s\n",
                   result.status().ToString().c_str(), stmt);
      std::abort();  // Harness bug, not a finding: fail loudly.
    }
  }
}

namespace {

/// True for codes a statement may legitimately fail with. kInternal is the
/// library's "invariant broken" signal and is always a finding; everything
/// else in the closed set is a clean, caller-attributable outcome.
bool IsCleanFailure(StatusCode code) {
  return static_cast<int>(code) >= 0 &&
         static_cast<int>(code) < kStatusCodeCount &&
         code != StatusCode::kInternal;
}

/// Every diagnostic must carry a registered rule id — the analyzer cannot
/// invent rule names the coverage meta-test does not know about.
bool IsKnownRule(const std::string& rule) {
  for (const char* known : rules::kAll) {
    if (rule == known) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Divergence allowlist (DESIGN.md §12 carries the same table). An entry
// means: the analyzer intentionally rejects statements of this class even
// though the executor accepts them — the analyzer is a *lint* layer and is
// allowed to be stricter than the engine, but each such gap must be named.
// ---------------------------------------------------------------------------

const DivergenceRule kDivergenceAllowlist[] = {
    {rules::kUnknownColumn,
     "INSERT column lists are lint-checked against the model, but the "
     "executor binds by position and legally ignores a redundant list"},
    {rules::kPredictInput,
     "feeding a PREDICT column from the source is suspicious (lint) yet "
     "well-defined at execution: the engine treats it as evidence"},
    {nullptr, nullptr},
};

bool IsAllowlistedDivergence(std::string_view rule) {
  for (const DivergenceRule* entry = kDivergenceAllowlist; entry->rule;
       ++entry) {
    if (rule == entry->rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Target 1: differential analyzer / executor oracle.
// ---------------------------------------------------------------------------

CheckResult CheckDmxStatement(std::string_view text) {
  if (text.size() > 4096) return CheckResult::Pass();
  if (TouchesFileSystem(text)) return CheckResult::Pass();
  std::string statement(text);

  Provider provider;
  PopulateFuzzCatalog(&provider);

  DmxAnalyzer analyzer(AnalyzerContext{provider.models(), provider.services(),
                                       provider.database()});
  AnalysisReport report = analyzer.AnalyzeText(statement);
  for (const Diagnostic& diag : report.diagnostics) {
    if (!IsKnownRule(diag.rule)) {
      return CheckResult::Fail("analyzer emitted unregistered rule id '" +
                               diag.rule + "' for: " + statement);
    }
  }

  auto conn = provider.Connect();
  ExecLimits limits;
  limits.max_output_rows = 1 << 14;
  limits.max_working_set_rows = 1 << 16;  // Deterministic runaway bound.
  conn->set_limits(limits);
  auto result = conn->Execute(statement);
  StatusCode exec_code =
      result.ok() ? StatusCode::kOk : result.status().code();

  if (!result.ok() && !IsCleanFailure(exec_code)) {
    return CheckResult::Fail("executor returned " +
                             std::string(StatusCodeToString(exec_code)) +
                             " (" + result.status().ToString() +
                             ") for: " + statement);
  }

  if (report.error_count() == 0) {
    // Analyzer-clean statements may still fail semantically (kNotFound,
    // kBindError, ...) but must get PAST parsing: a parse error here means
    // the analyzer and executor disagree about the language itself.
    if (!result.ok() && exec_code == StatusCode::kParseError) {
      return CheckResult::Fail(
          "analyzer found no issues but the executor failed to parse (" +
          result.status().ToString() + "): " + statement);
    }
    return CheckResult::Pass();
  }

  // Analyzer-rejected statement: the executor accepting it is a divergence
  // unless every tripped error rule is allowlisted.
  if (result.ok()) {
    for (const Diagnostic& diag : report.diagnostics) {
      if (diag.severity != DiagSeverity::kError) continue;
      if (!IsAllowlistedDivergence(diag.rule)) {
        return CheckResult::Fail(
            "analyzer rejected (rule '" + diag.rule +
            "') but the executor succeeded: " + statement);
      }
    }
  }
  return CheckResult::Pass();
}

// ---------------------------------------------------------------------------
// Target 2: crash-recovery oracle.
// ---------------------------------------------------------------------------

namespace {

/// Everything recovery must reproduce: table contents plus model inventory
/// with training status. (Prediction equality on recovered models is
/// store_test's slower job; journaling correctness shows up here already.)
std::string CatalogStateString(Provider* provider) {
  std::string out;
  std::vector<std::string> tables = provider->database()->ListTables();
  std::sort(tables.begin(), tables.end());
  for (const std::string& name : tables) {
    auto table = provider->database()->GetTable(name);
    if (!table.ok()) return "table error: " + table.status().ToString();
    out += "table " + name + "\n" +
           rel::ToCsvString(*(*table)->schema(), (*table)->rows());
  }
  std::vector<std::string> models = provider->models()->ListModels();
  std::sort(models.begin(), models.end());
  for (const std::string& name : models) {
    auto model = provider->models()->GetModel(name);
    if (!model.ok()) return "model error: " + model.status().ToString();
    out += "model " + name +
           " trained=" + ((*model)->is_trained() ? "1" : "0") +
           " cases=" + std::to_string((*model)->case_count()) + "\n";
  }
  return out;
}

/// Executes one line of the recovery script. "CHECKPOINT" forces a snapshot
/// rotation (a no-op success on the storeless oracle provider).
Status RunScriptLine(Provider* provider, Connection* conn,
                     const std::string& line, bool has_store) {
  if (line == "CHECKPOINT") {
    if (!has_store) return Status::OK();
    return provider->Checkpoint();
  }
  return conn->Execute(line).status();
}

/// Scratch directory for this process's store fuzzing, wiped per run.
std::string ScratchStoreDir() {
  static const std::string kDir = [] {
    const char* base = std::getenv("DMX_FUZZ_TMPDIR");
    std::string dir = std::string(base ? base : "/tmp") +
                      "/dmx_fuzz_store_" + std::to_string(getpid());
    return dir;
  }();
  Env* env = Env::Default();
  (void)env->CreateDir(kDir);
  // Wipe the quarantine subdirectory too — a shard quarantined by one
  // iteration must not resurface as a degraded model in the next.
  const std::string quarantine = kDir + "/quarantine";
  auto qnames = env->ListDir(quarantine);
  if (qnames.ok()) {
    for (const std::string& f : *qnames) {
      (void)env->DeleteFile(quarantine + "/" + f);
    }
  }
  auto names = env->ListDir(kDir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)env->DeleteFile(kDir + "/" + f);
  }
  return kDir;
}

}  // namespace

CheckResult CheckStoreRecovery(std::string_view input) {
  if (input.size() > 8192) return CheckResult::Pass();

  // Parse "FAULT <op_index> <kind>" + statement lines.
  std::string text(input);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string line = nl == std::string::npos
                           ? text.substr(start)
                           : text.substr(start, nl - start);
    if (!line.empty() && line.size() <= 1024) lines.push_back(line);
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (lines.empty() || lines[0].rfind("FAULT ", 0) != 0) {
    return CheckResult::Pass();  // Malformed header: not an interesting input.
  }
  int64_t fail_at = 0;
  char kind_buf[16] = {0};
  if (std::sscanf(lines[0].c_str(), "FAULT %ld %15s", &fail_at, kind_buf) !=
          2 ||
      fail_at < 0) {
    return CheckResult::Pass();
  }
  FaultInjectionEnv::FaultKind kind;
  std::string kind_name(kind_buf);
  if (kind_name == "io") {
    kind = FaultInjectionEnv::FaultKind::kIOError;
  } else if (kind_name == "torn") {
    kind = FaultInjectionEnv::FaultKind::kTornWrite;
  } else if (kind_name == "nospace") {
    kind = FaultInjectionEnv::FaultKind::kNoSpace;
  } else {
    return CheckResult::Pass();
  }

  // Optional "shard=<i>": scope the fault to one shard's file (0 = the
  // catalog shard, i >= 1 = model shard m<i-1>). The sick file fails every
  // mutating op from the armed offset on — one bad disk region — while the
  // rest of the store stays healthy.
  bool shard_scoped = false;
  std::string path_filter;
  size_t shard_pos = lines[0].find(" shard=");
  if (shard_pos != std::string::npos) {
    long shard_index = -1;
    if (std::sscanf(lines[0].c_str() + shard_pos, " shard=%ld",
                    &shard_index) != 1 ||
        shard_index < 0 || shard_index > 64) {
      return CheckResult::Pass();
    }
    shard_scoped = true;
    if (shard_index == 0) {
      path_filter = "/shard-catalog-";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "/shard-m%06ld-", shard_index - 1);
      path_filter = buf;
    }
  }

  std::vector<std::string> script(lines.begin() + 1, lines.end());
  if (script.size() > 12) script.resize(12);
  // The durable grammar never emits file-system statements, but mutated
  // corpus bytes might; those belong to other targets.
  for (const std::string& stmt : script) {
    if (TouchesFileSystem(stmt)) return CheckResult::Pass();
  }

  // Pass 1 — fault-free in-memory oracle: which statements succeed, and what
  // the catalog looks like after each successful prefix.
  std::vector<bool> oracle_ok;
  std::vector<std::string> prefix_state;  // [k] = state after k successes.
  {
    Provider oracle;
    auto conn = oracle.Connect();
    prefix_state.push_back(CatalogStateString(&oracle));
    for (const std::string& stmt : script) {
      Status s = RunScriptLine(&oracle, conn.get(), stmt, false);
      oracle_ok.push_back(s.ok());
      if (s.ok()) prefix_state.push_back(CatalogStateString(&oracle));
    }
  }

  // Pass 2 — the same script against a durable store with the fault armed.
  // Unscoped faults model a dying process: execution stops at the first
  // divergence. Shard-scoped faults model one sick file: the run continues,
  // statements on healthy shards keep succeeding, and `executed_ok` records
  // which statements actually made it.
  std::string dir = ScratchStoreDir();
  FaultInjectionEnv faulty(Env::Default());
  size_t successes = 0;
  bool crashed = false;
  bool crashed_stmt_oracle_ok = false;
  std::vector<bool> executed_ok(script.size(), false);
  int64_t limbo = -1;  // first statement that failed only under the fault
  {
    Provider provider;
    store::StoreOptions options;
    options.env = &faulty;
    Status open = provider.OpenStore(dir, options);
    if (!open.ok()) {
      return CheckResult::Fail("clean OpenStore failed: " + open.ToString());
    }
    if (shard_scoped) faulty.SetPathFilter(path_filter);
    faulty.ArmFault(fail_at, kind);
    auto conn = provider.Connect();
    for (size_t i = 0; i < script.size(); ++i) {
      Status s = RunScriptLine(&provider, conn.get(), script[i], true);
      executed_ok[i] = s.ok();
      if (s.ok() != oracle_ok[i]) {
        // Outcome changed under the fault.
        if (s.ok()) {
          return CheckResult::Fail(
              "statement succeeded under fault but fails cleanly: " +
              script[i]);
        }
        if (s.code() == StatusCode::kInternal) {
          return CheckResult::Fail("fault surfaced as kInternal (" +
                                   s.ToString() + ") for: " + script[i]);
        }
        if (limbo < 0) limbo = static_cast<int64_t>(i);
        if (!shard_scoped) {
          // The "process dies" here.
          crashed = true;
          crashed_stmt_oracle_ok = oracle_ok[i];
          break;
        }
      }
      if (s.ok()) ++successes;
    }
  }
  faulty.Disarm();
  faulty.ClearPathFilter();

  // Pass 3 — reopen with a clean Env: recovery must reconstruct exactly the
  // executed prefix (or prefix + 1 when the crashing statement's WAL append
  // survived even though the statement reported failure).
  Provider recovered;
  Status reopen = recovered.OpenStore(dir);
  if (!reopen.ok()) {
    return CheckResult::Fail("recovery failed after fault at op " +
                             std::to_string(fail_at) + " (" + kind_name +
                             "): " + reopen.ToString());
  }
  std::string state = CatalogStateString(&recovered);

  if (shard_scoped) {
    // Per-shard acceptance. A sick file never corrupts the store: the
    // catalog shard must not be quarantined by an injected fault, and any
    // quarantined model shard must name its model (whose statements were
    // orphaned by the sick file — e.g. its CREATE never reached the sick
    // catalog WAL while the model's own shard kept journaling).
    std::vector<std::string> quarantined_models;
    for (const store::ShardStatus& row :
         recovered.store()->GetStatus().shards) {
      if (!row.quarantined) continue;
      if (row.id == store::kCatalogShardId) {
        return CheckResult::Fail(
            "shard-scoped fault quarantined the catalog shard: " +
            row.reason);
      }
      if (row.model.empty()) {
        return CheckResult::Fail(
            "shard-scoped fault quarantined an anonymous shard '" + row.id +
            "': " + row.reason);
      }
      quarantined_models.push_back(row.model);
    }

    // A quarantined model holds some successful prefix of its own records —
    // its exact content is the quarantine's business (Repair re-adopts it),
    // so its catalog line is excluded from the state comparison. Tables are
    // never routed through model shards, so everything else must match
    // exactly.
    auto strip_quarantined = [&](const std::string& in) {
      if (quarantined_models.empty()) return in;
      std::string out;
      size_t at = 0;
      while (at < in.size()) {
        size_t nl = in.find('\n', at);
        std::string line = nl == std::string::npos
                               ? in.substr(at)
                               : in.substr(at, nl - at);
        bool drop = false;
        for (const std::string& m : quarantined_models) {
          if (line.rfind("model " + m + " ", 0) == 0) {
            drop = true;
            break;
          }
        }
        if (!drop) out += line + "\n";
        if (nl == std::string::npos) break;
        at = nl + 1;
      }
      return out;
    };
    // Replays the script onto a fresh in-memory provider. Statements at
    // index <= base are replayed unconditionally — a CHECKPOINT snapshots
    // the *in-memory* state (journal failures still apply in memory), so
    // once a snapshot commits, everything before it is durable regardless of
    // how its journal append fared. Past the base only statements in
    // `include` (the ones that actually succeeded) run.
    auto replay_state = [&](int64_t base, const std::vector<bool>& include) {
      Provider p;
      auto conn = p.Connect();
      for (size_t i = 0; i < script.size(); ++i) {
        if (static_cast<int64_t>(i) > base && !include[i]) continue;
        (void)RunScriptLine(&p, conn.get(), script[i], false);
      }
      return CatalogStateString(&p);
    };

    // Splits a catalog state into its "model <name> ..." lines (returned via
    // *models, keyed by name) and everything else (tables), returned as the
    // remainder string.
    auto split_models = [](const std::string& in,
                           std::map<std::string, std::string>* models) {
      std::string rest;
      size_t at = 0;
      while (at < in.size()) {
        size_t nl = in.find('\n', at);
        std::string line = nl == std::string::npos
                               ? in.substr(at)
                               : in.substr(at, nl - at);
        if (line.rfind("model ", 0) == 0) {
          size_t tr = line.find(" trained=");
          std::string name =
              tr == std::string::npos ? line.substr(6) : line.substr(6, tr - 6);
          (*models)[name] = line;
        } else if (!line.empty()) {
          rest += line + "\n";
        }
        if (nl == std::string::npos) break;
        at = nl + 1;
      }
      return rest;
    };

    // Every model state the clean in-memory trajectory ever passed through.
    // A sick catalog shard loses a model's CREATE while the model's own
    // shard keeps journaling: journal failures still apply in memory, and a
    // healthy shard's blob rotation snapshots that in-memory state — so
    // recovery may resurrect a model the executed set never created
    // ("orphan"). Its recovered line must match a state the model actually
    // held at some point; tables and executed models still match exactly.
    std::map<std::string, std::set<std::string>> trajectory_model_lines;
    for (const std::string& ps : prefix_state) {
      std::map<std::string, std::string> m;
      split_models(ps, &m);
      for (const auto& [name, line] : m) {
        trajectory_model_lines[name].insert(line);
      }
    }
    const bool catalog_sick = path_filter == "/shard-catalog-";

    const std::string got = strip_quarantined(state);
    std::map<std::string, std::string> got_models;
    const std::string got_rest = split_models(got, &got_models);

    auto accepts = [&](const std::string& expected) {
      std::map<std::string, std::string> want_models;
      if (split_models(expected, &want_models) != got_rest) return false;
      for (const auto& [name, line] : want_models) {
        auto it = got_models.find(name);
        if (it == got_models.end() || it->second != line) return false;
      }
      for (const auto& [name, line] : got_models) {
        if (want_models.count(name)) continue;
        if (!catalog_sick) return false;  // orphans need a sick catalog
        auto traj = trajectory_model_lines.find(name);
        if (traj == trajectory_model_lines.end() || !traj->second.count(line)) {
          return false;
        }
      }
      return true;
    };

    // Candidates: exactly the statements that succeeded — or those plus the
    // first fault-only failure (only the first fired op can straddle a
    // durable append whose fsync reported the fault). Each set is also tried
    // with every attempted CHECKPOINT as a snapshot base: a checkpoint's
    // snapshot + manifest can commit (making the whole in-memory trajectory
    // durable) and the statement still report an error when a later step,
    // like rotating the sick shard's file, fails.
    std::vector<int64_t> bases = {-1};
    for (size_t i = 0; i < script.size(); ++i) {
      std::string t = script[i];
      while (!t.empty() && (t.back() == ' ' || t.back() == '\r')) t.pop_back();
      if (t == "CHECKPOINT") bases.push_back(static_cast<int64_t>(i));
    }
    std::vector<bool> with_limbo = executed_ok;
    if (limbo >= 0) with_limbo[static_cast<size_t>(limbo)] = true;
    for (int64_t base : bases) {
      if (accepts(strip_quarantined(replay_state(base, executed_ok)))) {
        return CheckResult::Pass();
      }
      if (limbo >= 0 &&
          accepts(strip_quarantined(replay_state(base, with_limbo)))) {
        return CheckResult::Pass();
      }
    }
    return CheckResult::Fail(
        "recovered state matches no per-shard successful prefix (executed " +
        std::to_string(successes) + " of " + std::to_string(script.size()) +
        ", fault at op " + std::to_string(fail_at) + " " + kind_name +
        " filter " + path_filter + ", " +
        std::to_string(quarantined_models.size()) +
        " quarantined)\n--- recovered ---\n" + got +
        "--- expected (executed set) ---\n" +
        strip_quarantined(replay_state(-1, executed_ok)));
  }

  if (state == prefix_state[successes]) return CheckResult::Pass();
  if (crashed && crashed_stmt_oracle_ok &&
      successes + 1 < prefix_state.size() &&
      state == prefix_state[successes + 1]) {
    return CheckResult::Pass();
  }
  std::string detail =
      "recovered state matches no valid statement prefix (executed " +
      std::to_string(successes) + " of " + std::to_string(script.size()) +
      ", fault at op " + std::to_string(fail_at) + " " + kind_name +
      ", crashed=" + (crashed ? "yes" : "no") +
      " crashed_stmt_oracle_ok=" + (crashed_stmt_oracle_ok ? "yes" : "no") +
      ")\n--- recovered ---\n" + state + "--- expected (prefix " +
      std::to_string(successes) + ") ---\n" + prefix_state[successes];
  if (successes + 1 < prefix_state.size()) {
    detail += "--- expected (prefix " + std::to_string(successes + 1) +
              ") ---\n" + prefix_state[successes + 1];
  }
  return CheckResult::Fail(detail);
}

// ---------------------------------------------------------------------------
// Target 3: tokenizer / parser / analyzer robustness.
// ---------------------------------------------------------------------------

CheckResult CheckTokenizerParser(std::string_view text) {
  if (text.size() > (1u << 16)) return CheckResult::Pass();
  std::string statement(text);

  auto tokens = Tokenize(statement);
  if (!tokens.ok() && !IsCleanFailure(tokens.status().code())) {
    return CheckResult::Fail("tokenizer returned " +
                             tokens.status().ToString());
  }

  auto dmx = ParseDmx(statement);
  if (!dmx.ok() && !IsCleanFailure(dmx.status().code())) {
    return CheckResult::Fail("ParseDmx returned " + dmx.status().ToString());
  }

  auto sql = rel::ParseSql(statement);
  if (!sql.ok() && !IsCleanFailure(sql.status().code())) {
    return CheckResult::Fail("ParseSql returned " + sql.status().ToString());
  }

  // Context-free analysis must hold the same contract and only speak in
  // registered rule ids.
  AnalysisReport report = DmxAnalyzer().AnalyzeText(statement);
  for (const Diagnostic& diag : report.diagnostics) {
    if (!IsKnownRule(diag.rule)) {
      return CheckResult::Fail("analyzer emitted unregistered rule id '" +
                               diag.rule + "'");
    }
  }
  // Rendering diagnostics resolves spans against the source; it must be
  // robust for arbitrary byte inputs too.
  (void)report.ToString(statement);
  return CheckResult::Pass();
}

// ---------------------------------------------------------------------------
// Target 4: serving front end over raw wire bytes.
// ---------------------------------------------------------------------------

CheckResult CheckWireProtocol(std::string_view input) {
  if (input.size() > (8u << 10)) return CheckResult::Pass();
  // File-system statements are out of scope here exactly as for the
  // statement fuzzer; a framed EXPORT would litter the disk.
  if (TouchesFileSystem(input)) return CheckResult::Pass();

  // A minimal catalog, rebuilt per input so a valid framed DDL inside the
  // fuzz input cannot leak into the next run. No model training: the wire
  // fuzzer stresses framing and session handling, not the algorithms.
  Provider provider;
  {
    static const char* kSetup[] = {
        "CREATE TABLE W (Id LONG, City TEXT)",
        "INSERT INTO W VALUES (1, 'Oslo'), (2, 'Rome'), (3, 'Bern')",
    };
    auto conn = provider.Connect();
    for (const char* stmt : kSetup) {
      auto result = conn->Execute(stmt);
      if (!result.ok()) {
        std::fprintf(stderr, "wire fuzz catalog setup failed: %s\n",
                     result.status().ToString().c_str());
        std::abort();  // Harness bug, not a finding.
      }
    }
  }

  server::ServerOptions options;
  options.idle_timeout_ms = 100;   // Dead-air inputs end quickly.
  options.write_timeout_ms = 1'000;
  // The send budget is held under the pipe capacity below so a server write
  // can never block on backpressure: every response frame lands whole, and
  // a torn frame seen by the oracle is a real server-side framing bug.
  options.max_session_send_bytes = 128u << 10;
  server::DmxServer server(&provider, options);

  auto [server_end, client_end] = server::MakeLocalPipe(/*capacity=*/256u
                                                        << 10);
  std::thread session([&server, end = std::move(server_end)]() mutable {
    server.ServeConnection(std::move(end));
  });

  // Feed the hostile bytes verbatim, then half-close. A timed-out write
  // means the server already killed the session and stopped reading — fine.
  (void)client_end->Write(input, 2'000);
  client_end->ShutdownWrite();

  // Drain the response stream, validating every frame.
  std::string error;
  server::FrameReader reader(client_end.get());
  const auto read_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (error.empty()) {
    auto next = reader.Next(200);
    if (!next.ok()) {
      if (next.status().IsDeadlineExceeded()) {
        if (std::chrono::steady_clock::now() < read_deadline) continue;
        error = "server failed to finish the session within 20 s";
        break;
      }
      if (next.status().IsCorruption()) {
        error = "server emitted a torn or corrupt frame: " +
                next.status().ToString();
      }
      break;  // Transport teardown races are a clean end, not a finding.
    }
    if (!next->has_value()) break;  // Clean EOF: session over.
    const server::Frame& frame = **next;
    switch (frame.type) {
      case server::FrameType::kHelloAck: {
        auto ack = server::DecodeHelloAck(frame.body);
        if (!ack.ok()) error = "undecodable HelloAck: " +
                               ack.status().ToString();
        break;
      }
      case server::FrameType::kSchema: {
        auto schema = server::DecodeSchemaBody(frame.body);
        if (!schema.ok()) error = "undecodable Schema frame: " +
                                  schema.status().ToString();
        break;
      }
      case server::FrameType::kChunk: {
        auto chunk = server::DecodeChunk(frame.body);
        if (!chunk.ok()) error = "undecodable Chunk frame: " +
                                 chunk.status().ToString();
        break;
      }
      case server::FrameType::kDone: {
        auto done = server::DecodeDone(frame.body);
        if (!done.ok()) {
          error = "undecodable Done frame: " + done.status().ToString();
        } else if (done->ToStatus().code() == StatusCode::kInternal) {
          error = "server reported kInternal over the wire: " +
                  done->ToStatus().ToString();
        }
        break;
      }
      default:
        error = std::string("server sent a client-only frame type '") +
                static_cast<char>(frame.type) + "'";
        break;
    }
  }
  client_end->Close();
  session.join();

  server::DmxServer::Stats stats = server.stats();
  if (stats.sessions_opened != stats.sessions_closed) {
    return CheckResult::Fail("session leak: opened " +
                             std::to_string(stats.sessions_opened) +
                             ", closed " +
                             std::to_string(stats.sessions_closed));
  }
  if (!error.empty()) return CheckResult::Fail(error);
  return CheckResult::Pass();
}

// ---------------------------------------------------------------------------
// Crash escalation shared by the fuzz entry points.
// ---------------------------------------------------------------------------

void ReportFailure(const char* target, const uint8_t* data, size_t size,
                   const std::string& error) {
  // FNV-1a so the reproducer file name is stable for identical inputs.
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ data[i]) * 1099511628211ULL;
  }
  char name[64];
  std::snprintf(name, sizeof(name), "crash-%s-%016lx", target,
                static_cast<unsigned long>(hash));
  std::ofstream out(name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  out.close();
  std::fprintf(stderr,
               "\n=== %s oracle failure ===\n%s\nreproducer saved to %s "
               "(%zu bytes)\n",
               target, error.c_str(), name, size);
  std::abort();
}

}  // namespace dmx::fuzz
