// Fuzz target: the serving front end over raw wire bytes. The input is the
// client's entire byte stream, fed verbatim to a DmxServer session over an
// in-memory pipe; the oracle (fuzz_targets.cc) requires the server to never
// crash, never hang, never leak the session, and to answer only well-formed
// CRC-valid frames.
//
// The mutator is byte-level (bit flips, truncation, splices) with one
// protocol-aware move: re-framing a slice of the buffer as a valid CRC'd
// frame of a random client type, so mutants regularly survive the frame
// decoder and reach the session state machine and statement path behind it.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "fuzz/fuzz_targets.h"
#include "server/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dmx::fuzz::CheckResult result = dmx::fuzz::CheckWireProtocol(input);
  if (!result.ok) {
    dmx::fuzz::ReportFailure("wire_protocol", data, size, result.error);
  }
  return 0;
}

namespace {

/// splitmix64: deterministic per-seed randomness for the mutator.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  uint64_t state = seed;
  if (max_size == 0) return 0;

  switch (NextRand(&state) % 6) {
    case 0: {  // Flip one bit.
      if (size == 0) break;
      size_t at = NextRand(&state) % size;
      data[at] ^= static_cast<uint8_t>(1u << (NextRand(&state) % 8));
      break;
    }
    case 1: {  // Overwrite one byte.
      if (size == 0) break;
      data[NextRand(&state) % size] = static_cast<uint8_t>(NextRand(&state));
      break;
    }
    case 2: {  // Truncate — torn frames and mid-stream disconnects.
      if (size == 0) break;
      size = NextRand(&state) % size;
      break;
    }
    case 3: {  // Duplicate a slice to the end (frame replay / pipelining).
      if (size == 0 || size >= max_size) break;
      size_t from = NextRand(&state) % size;
      size_t len = 1 + NextRand(&state) % (size - from);
      if (len > max_size - size) len = max_size - size;
      std::memmove(data + size, data + from, len);
      size += len;
      break;
    }
    case 4: {  // Insert a random byte.
      if (size >= max_size) break;
      size_t at = size == 0 ? 0 : NextRand(&state) % (size + 1);
      std::memmove(data + at + 1, data + at, size - at);
      data[at] = static_cast<uint8_t>(NextRand(&state));
      ++size;
      break;
    }
    case 5: {  // Re-frame: wrap a slice as a valid CRC'd client frame.
      static const dmx::server::FrameType kTypes[] = {
          dmx::server::FrameType::kHello, dmx::server::FrameType::kRequest,
          dmx::server::FrameType::kCancel, dmx::server::FrameType::kGoodbye,
      };
      size_t from = size == 0 ? 0 : NextRand(&state) % size;
      size_t len = size == 0 ? 0 : NextRand(&state) % (size - from + 1);
      std::string body(reinterpret_cast<const char*>(data) + from, len);
      std::string frame = dmx::server::EncodeFrame(
          kTypes[NextRand(&state) % 4], body);
      if (size + frame.size() > max_size) {
        if (frame.size() > max_size) break;
        size = max_size - frame.size();  // Make room: truncate the tail.
      }
      std::memcpy(data + size, frame.data(), frame.size());
      size += frame.size();
      break;
    }
  }
  return size;
}
