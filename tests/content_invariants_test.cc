// Cross-service content-graph invariants (property suite over all six
// services): every populated model's content graph must have exactly one
// root, consistent parent links, non-negative supports bounded by the root,
// probabilities in [0,1], unique node names, and distribution rows whose
// probabilities are sane. These are the guarantees browsing clients (the
// paper's "reporting and visualization applications") rely on.

#include <gtest/gtest.h>

#include <set>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

struct ServicePlan {
  const char* name;
  const char* create;
  const char* insert;
};

constexpr const char* kStandardInsert = R"(
  INSERT INTO [M]
  SHAPE {SELECT [Customer ID], [Gender], [Age], [Income], [Customer Loyalty]
         FROM Customers ORDER BY [Customer ID]}
  APPEND ({SELECT [CustID], [Product Name], [Product Type], [Purchase Time]
           FROM Sales ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";

const ServicePlan kPlans[] = {
    {"Decision_Trees", R"(
       CREATE MINING MODEL [M] (
         [Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
         [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,
         [Product Purchases] TABLE([Product Name] TEXT KEY,
           [Product Type] TEXT DISCRETE RELATED TO [Product Name]))
       USING Decision_Trees)",
     kStandardInsert},
    {"Naive_Bayes", R"(
       CREATE MINING MODEL [M] (
         [Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
         [Customer Loyalty] LONG DISCRETE PREDICT,
         [Product Purchases] TABLE([Product Name] TEXT KEY))
       USING Naive_Bayes)",
     kStandardInsert},
    {"Clustering", R"(
       CREATE MINING MODEL [M] (
         [Customer ID] LONG KEY, [Age] DOUBLE CONTINUOUS,
         [Income] DOUBLE CONTINUOUS, [Gender] TEXT DISCRETE)
       USING Clustering(CLUSTER_COUNT = 3, SEED = 9))",
     kStandardInsert},
    {"Association_Rules", R"(
       CREATE MINING MODEL [M] (
         [Customer ID] LONG KEY,
         [Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT)
       USING Association_Rules(MINIMUM_SUPPORT = 0.05,
                               MINIMUM_PROBABILITY = 0.3))",
     kStandardInsert},
    {"Linear_Regression", R"(
       CREATE MINING MODEL [M] (
         [Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
         [Income] DOUBLE CONTINUOUS, [Age] DOUBLE CONTINUOUS PREDICT)
       USING Linear_Regression)",
     kStandardInsert},
    {"Sequence_Analysis", R"(
       CREATE MINING MODEL [M] (
         [Customer ID] LONG KEY,
         [Product Purchases] TABLE([Product Name] TEXT KEY,
           [Purchase Time] DOUBLE SEQUENCE_TIME) PREDICT)
       USING Sequence_Analysis)",
     kStandardInsert},
};

class ContentInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ContentInvariants, GraphIsWellFormed) {
  const ServicePlan& plan = kPlans[GetParam()];
  Provider provider;
  datagen::WarehouseConfig config;
  config.num_customers = 400;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());
  auto conn = provider.Connect();
  ASSERT_TRUE(conn->Execute(plan.create).ok());
  auto insert = conn->Execute(plan.insert);
  ASSERT_TRUE(insert.ok()) << plan.name << ": " << insert.status().ToString();

  auto content = conn->Execute("SELECT * FROM [M].CONTENT");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  ASSERT_GT(content->num_rows(), 0u) << plan.name;

  const Schema& schema = *content->schema();
  size_t unique_col = *schema.ResolveColumn("NODE_UNIQUE_NAME");
  size_t parent_col = *schema.ResolveColumn("PARENT_UNIQUE_NAME");
  size_t type_col = *schema.ResolveColumn("NODE_TYPE");
  size_t support_col = *schema.ResolveColumn("NODE_SUPPORT");
  size_t prob_col = *schema.ResolveColumn("NODE_PROBABILITY");
  size_t marginal_col = *schema.ResolveColumn("MARGINAL_PROBABILITY");
  size_t children_col = *schema.ResolveColumn("CHILDREN_CARDINALITY");
  size_t dist_col = *schema.ResolveColumn("NODE_DISTRIBUTION");

  std::set<std::string> names;
  std::map<std::string, int64_t> declared_children;
  std::map<std::string, int64_t> actual_children;
  int roots = 0;
  double root_support = 0;
  for (const Row& row : content->rows()) {
    const std::string& unique = row[unique_col].text_value();
    EXPECT_TRUE(names.insert(unique).second)
        << plan.name << ": duplicate node name " << unique;
    declared_children[unique] = row[children_col].long_value();
    const std::string& parent = row[parent_col].text_value();
    if (parent.empty()) {
      ++roots;
      EXPECT_EQ(row[type_col].text_value(), "Model");
      root_support = row[support_col].double_value();
    } else {
      EXPECT_TRUE(names.count(parent))
          << plan.name << ": parent " << parent << " precedes child in DFS";
      actual_children[parent]++;
    }
    // Statistics are sane.
    EXPECT_GE(row[support_col].double_value(), 0) << plan.name;
    EXPECT_GE(row[prob_col].double_value(), -1e-9) << plan.name;
    EXPECT_LE(row[prob_col].double_value(), 1 + 1e-9) << plan.name;
    EXPECT_GE(row[marginal_col].double_value(), -1e-9);
    EXPECT_LE(row[marginal_col].double_value(), 1 + 1e-9);
    // The distribution nested table has valid probabilities too.
    ASSERT_TRUE(row[dist_col].is_table());
    const NestedTable& dist = *row[dist_col].table_value();
    size_t dp = *dist.schema()->ResolveColumn("PROBABILITY");
    size_t ds = *dist.schema()->ResolveColumn("SUPPORT");
    for (const Row& entry : dist.rows()) {
      EXPECT_GE(entry[dp].double_value(), -1e-9) << plan.name;
      EXPECT_LE(entry[dp].double_value(), 1 + 1e-9) << plan.name;
      EXPECT_GE(entry[ds].double_value(), 0) << plan.name;
    }
  }
  EXPECT_EQ(roots, 1) << plan.name;
  EXPECT_GT(root_support, 0) << plan.name;
  // CHILDREN_CARDINALITY matches the actual edges.
  for (const auto& [name, declared] : declared_children) {
    EXPECT_EQ(declared, actual_children[name])
        << plan.name << ": node " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllServices, ContentInvariants,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace dmx
