// Naive-Bayes service: signal recovery, posterior invariants, incremental ==
// batch, qualifier handling (weights, soft labels), missing data and errors.

#include "algorithms/naive_bayes.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dmx {
namespace {

using testutil::AddCategorical;
using testutil::AddContinuous;
using testutil::AddGroup;
using testutil::MakeCase;

ParamMap DefaultParams(const MiningService& service) {
  return *service.ResolveParams({});
}

// A planted binary problem: label = color with noise; size is a distractor.
std::vector<DataCase> PlantedCases(const AttributeSet& attrs, int n,
                                   uint64_t seed, double noise = 0.1) {
  Rng rng(seed);
  std::vector<DataCase> cases;
  for (int i = 0; i < n; ++i) {
    int color = static_cast<int>(rng.Uniform(2));     // red / blue
    int size = static_cast<int>(rng.Uniform(3));      // distractor
    int label = rng.Chance(noise) ? 1 - color : color;
    cases.push_back(MakeCase(attrs, {static_cast<double>(color),
                                     static_cast<double>(size),
                                     static_cast<double>(label)}));
  }
  return cases;
}

AttributeSet PlantedAttrs() {
  AttributeSet attrs;
  AddCategorical(&attrs, "Color", {"red", "blue"});
  AddCategorical(&attrs, "Size", {"s", "m", "l"});
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  return attrs;
}

TEST(NaiveBayesTest, LearnsPlantedSignal) {
  AttributeSet attrs = PlantedAttrs();
  NaiveBayesService service;
  auto model = service.Train(attrs, PlantedCases(attrs, 500, 1),
                             DefaultParams(service));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  int correct = 0;
  for (int color = 0; color < 2; ++color) {
    DataCase query = MakeCase(attrs, {static_cast<double>(color), kMissing,
                                      kMissing});
    auto p = (*model)->Predict(attrs, query, {});
    ASSERT_TRUE(p.ok());
    const AttributePrediction* label = p->Find("Label");
    ASSERT_NE(label, nullptr);
    if (label->predicted.Equals(Value::Text(color == 0 ? "A" : "B"))) {
      ++correct;
    }
    EXPECT_GT(label->probability, 0.5);
  }
  EXPECT_EQ(correct, 2);
}

TEST(NaiveBayesTest, PosteriorSumsToOne) {
  AttributeSet attrs = PlantedAttrs();
  NaiveBayesService service;
  auto model = service.Train(attrs, PlantedCases(attrs, 200, 2),
                             DefaultParams(service));
  ASSERT_TRUE(model.ok());
  PredictOptions options;
  options.include_zero_probability = true;
  DataCase query = MakeCase(attrs, {0, 1, kMissing});
  auto p = (*model)->Predict(attrs, query, options);
  ASSERT_TRUE(p.ok());
  double total = 0;
  for (const ScoredValue& sv : p->Find("Label")->histogram) {
    EXPECT_GE(sv.probability, 0);
    total += sv.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NaiveBayesTest, IncrementalEqualsBatch) {
  AttributeSet attrs_batch = PlantedAttrs();
  AttributeSet attrs_inc = PlantedAttrs();
  NaiveBayesService service;
  auto cases = PlantedCases(attrs_batch, 300, 3);

  auto batch = service.Train(attrs_batch, cases, DefaultParams(service));
  ASSERT_TRUE(batch.ok());
  auto incremental = service.CreateEmpty(attrs_inc, DefaultParams(service));
  ASSERT_TRUE(incremental.ok());
  for (const DataCase& c : cases) {
    ASSERT_TRUE((*incremental)->ConsumeCase(attrs_inc, c).ok());
  }
  // Identical posteriors on a probe grid.
  for (int color = 0; color < 2; ++color) {
    for (int size = 0; size < 3; ++size) {
      DataCase query = MakeCase(attrs_batch, {static_cast<double>(color),
                                              static_cast<double>(size),
                                              kMissing});
      auto a = (*batch)->Predict(attrs_batch, query, {});
      auto b = (*incremental)->Predict(attrs_inc, query, {});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_DOUBLE_EQ(a->Find("Label")->probability,
                       b->Find("Label")->probability);
    }
  }
}

TEST(NaiveBayesTest, GaussianContinuousInput) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddCategorical(&attrs, "Label", {"lo", "hi"}, /*is_output=*/true);
  Rng rng(4);
  std::vector<DataCase> cases;
  for (int i = 0; i < 400; ++i) {
    int label = static_cast<int>(rng.Uniform(2));
    double x = rng.Gaussian(label == 0 ? -3 : 3, 1.0);
    cases.push_back(MakeCase(attrs, {x, static_cast<double>(label)}));
  }
  NaiveBayesService service;
  auto model = service.Train(attrs, cases, DefaultParams(service));
  ASSERT_TRUE(model.ok());
  auto lo = (*model)->Predict(attrs, MakeCase(attrs, {-3.5, kMissing}), {});
  auto hi = (*model)->Predict(attrs, MakeCase(attrs, {3.5, kMissing}), {});
  EXPECT_TRUE(lo->Find("Label")->predicted.Equals(Value::Text("lo")));
  EXPECT_TRUE(hi->Find("Label")->predicted.Equals(Value::Text("hi")));
  EXPECT_GT(lo->Find("Label")->probability, 0.9);
}

TEST(NaiveBayesTest, NestedItemsCarrySignal) {
  AttributeSet attrs;
  AddGroup(&attrs, "Basket", {"beer", "wine", "soda"});
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  Rng rng(5);
  std::vector<DataCase> cases;
  for (int i = 0; i < 400; ++i) {
    int label = static_cast<int>(rng.Uniform(2));
    std::vector<int> items;
    if (label == 0 ? rng.Chance(0.9) : rng.Chance(0.1)) items.push_back(0);
    if (rng.Chance(0.5)) items.push_back(2);  // soda is noise
    cases.push_back(
        MakeCase(attrs, {static_cast<double>(label)}, {items}));
  }
  NaiveBayesService service;
  auto model = service.Train(attrs, cases, DefaultParams(service));
  ASSERT_TRUE(model.ok());
  auto with_beer = (*model)->Predict(attrs, MakeCase(attrs, {kMissing}, {{0}}),
                                     {});
  auto without = (*model)->Predict(attrs, MakeCase(attrs, {kMissing}, {{}}),
                                   {});
  EXPECT_TRUE(with_beer->Find("Label")->predicted.Equals(Value::Text("A")));
  EXPECT_TRUE(without->Find("Label")->predicted.Equals(Value::Text("B")));
}

TEST(NaiveBayesTest, CaseWeightsShiftThePrior) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  std::vector<DataCase> cases;
  DataCase a = MakeCase(attrs, {0});
  a.weight = 10;
  DataCase b = MakeCase(attrs, {1});
  b.weight = 1;
  cases.push_back(a);
  cases.push_back(b);
  NaiveBayesService service;
  auto model = service.Train(attrs, cases, DefaultParams(service));
  ASSERT_TRUE(model.ok());
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {kMissing}), {});
  EXPECT_TRUE(p->Find("Label")->predicted.Equals(Value::Text("A")));
  EXPECT_GT(p->Find("Label")->probability, 0.7);
  EXPECT_DOUBLE_EQ((*model)->case_count(), 11.0);
}

TEST(NaiveBayesTest, SoftLabelsCountFractionally) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  // One hard B, one A with confidence 0.2: B should dominate the prior.
  DataCase hard_b = MakeCase(attrs, {1});
  DataCase soft_a = MakeCase(attrs, {0});
  soft_a.confidences.assign(attrs.attributes.size(), 1.0);
  soft_a.confidences[0] = 0.2;
  NaiveBayesService service;
  auto model = service.Train(attrs, {hard_b, soft_a}, DefaultParams(service));
  ASSERT_TRUE(model.ok());
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {kMissing}), {});
  EXPECT_TRUE(p->Find("Label")->predicted.Equals(Value::Text("B")));
}

TEST(NaiveBayesTest, UnlabeledCasesAreSkipped) {
  AttributeSet attrs = PlantedAttrs();
  NaiveBayesService service;
  auto model = service.CreateEmpty(attrs, DefaultParams(service));
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(
      (*model)->ConsumeCase(attrs, MakeCase(attrs, {0, 0, kMissing})).ok());
  ASSERT_TRUE((*model)->ConsumeCase(attrs, MakeCase(attrs, {0, 0, 1})).ok());
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {0, 0, kMissing}), {});
  ASSERT_TRUE(p.ok());
  // Only the labeled case counts toward support.
  EXPECT_DOUBLE_EQ(p->Find("Label")->support, 1.0);
}

TEST(NaiveBayesTest, RequiresAnOutputColumn) {
  AttributeSet attrs;
  AddCategorical(&attrs, "OnlyInput", {"x"});
  NaiveBayesService service;
  EXPECT_FALSE(service.CreateEmpty(attrs, DefaultParams(service)).ok());
}

TEST(NaiveBayesTest, ContentGraphShapes) {
  AttributeSet attrs = PlantedAttrs();
  NaiveBayesService service;
  auto model = service.Train(attrs, PlantedCases(attrs, 100, 6),
                             DefaultParams(service));
  ASSERT_TRUE(model.ok());
  auto content = (*model)->BuildContent(attrs);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)->type, NodeType::kModel);
  ASSERT_EQ((*content)->children.size(), 1u);  // one target
  const ContentNode& target = *(*content)->children[0];
  EXPECT_EQ(target.children.size(), 2u);  // two input attributes
  // Marginal label distribution is attached to the target node.
  double total = 0;
  for (const DistributionEntry& entry : target.distribution) {
    total += entry.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Incremental == batch across seeds (property).
class NaiveBayesSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NaiveBayesSeedSweep, IncrementalMatchesBatch) {
  AttributeSet attrs_a = PlantedAttrs();
  AttributeSet attrs_b = PlantedAttrs();
  NaiveBayesService service;
  auto cases = PlantedCases(attrs_a, 150, GetParam(), 0.25);
  auto batch = service.Train(attrs_a, cases, DefaultParams(service));
  auto inc = service.CreateEmpty(attrs_b, DefaultParams(service));
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(inc.ok());
  for (const DataCase& c : cases) {
    ASSERT_TRUE((*inc)->ConsumeCase(attrs_b, c).ok());
  }
  DataCase query = MakeCase(attrs_a, {1, 2, kMissing});
  auto pa = (*batch)->Predict(attrs_a, query, {});
  auto pb = (*inc)->Predict(attrs_b, query, {});
  EXPECT_DOUBLE_EQ(pa->Find("Label")->probability,
                   pb->Find("Label")->probability);
  EXPECT_TRUE(pa->Find("Label")->predicted.Equals(pb->Find("Label")->predicted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveBayesSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace dmx
