// SQL subset: parser, expression semantics, executor (filters, ordering,
// hash/nested-loop joins, TOP), DDL/DML, and CSV import/export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "relational/database.h"
#include "relational/sql_executor.h"
#include "relational/sql_parser.h"

namespace dmx::rel {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE People (Id LONG, Name TEXT, Age LONG, City TEXT)");
    Must(R"(INSERT INTO People VALUES
        (1, 'Ann', 34, 'Oslo'),
        (2, 'Bob', 28, 'Rome'),
        (3, 'Cid', 42, 'Oslo'),
        (4, 'Dee', 28, 'Bern'))");
    Must("CREATE TABLE Pets (Owner LONG, Pet TEXT)");
    Must(R"(INSERT INTO Pets VALUES
        (1, 'cat'), (1, 'dog'), (3, 'fish'), (9, 'owl'))");
  }

  Rowset Must(const std::string& sql) {
    auto result = ExecuteSql(&db_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Status Fails(const std::string& sql) {
    auto result = ExecuteSql(&db_, sql);
    EXPECT_FALSE(result.ok()) << sql;
    return result.status();
  }

  Database db_;
};

TEST_F(SqlTest, SelectStarPreservesSchemaOrder) {
  Rowset r = Must("SELECT * FROM People");
  EXPECT_EQ(r.num_rows(), 4u);
  ASSERT_EQ(r.num_columns(), 4u);
  EXPECT_EQ(r.schema()->column(0).name, "Id");
  EXPECT_EQ(r.schema()->column(3).name, "City");
}

TEST_F(SqlTest, WhereFiltersAndProjects) {
  Rowset r = Must("SELECT Name FROM People WHERE Age = 28");
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.at(0, 0).text_value(), "Bob");
}

TEST_F(SqlTest, WhereComposesBooleans) {
  EXPECT_EQ(Must("SELECT Id FROM People WHERE Age > 30 AND City = 'Oslo'")
                .num_rows(),
            2u);
  EXPECT_EQ(Must("SELECT Id FROM People WHERE Age > 40 OR City = 'Bern'")
                .num_rows(),
            2u);
  EXPECT_EQ(Must("SELECT Id FROM People WHERE NOT (City = 'Oslo')").num_rows(),
            2u);
  EXPECT_EQ(Must("SELECT Id FROM People WHERE Age <> 28").num_rows(), 2u);
}

TEST_F(SqlTest, ArithmeticInProjection) {
  Rowset r = Must("SELECT Age * 2 + 1 AS D FROM People WHERE Id = 1");
  EXPECT_EQ(r.at(0, 0).long_value(), 69);
  EXPECT_EQ(r.schema()->column(0).name, "D");
  Rowset div = Must("SELECT Age / 4 AS Q FROM People WHERE Id = 1");
  EXPECT_EQ(div.at(0, 0).double_value(), 8.5);
}

TEST_F(SqlTest, DivisionByZeroYieldsNull) {
  Rowset r = Must("SELECT Age / 0 AS Q FROM People WHERE Id = 1");
  EXPECT_TRUE(r.at(0, 0).is_null());
}

TEST_F(SqlTest, OrderByMultipleKeysAndDirections) {
  Rowset r = Must("SELECT Name FROM People ORDER BY Age ASC, Name DESC");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.at(0, 0).text_value(), "Dee");  // 28, 'Dee' > 'Bob'
  EXPECT_EQ(r.at(1, 0).text_value(), "Bob");
  EXPECT_EQ(r.at(3, 0).text_value(), "Cid");
}

TEST_F(SqlTest, OrderByProjectionAlias) {
  Rowset r = Must("SELECT Id, Age * -1 AS NegAge FROM People ORDER BY NegAge");
  EXPECT_EQ(r.at(0, 0).long_value(), 3);  // oldest first
}

TEST_F(SqlTest, TopAppliesAfterOrdering) {
  Rowset r = Must("SELECT TOP 2 Name FROM People ORDER BY Age DESC");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.at(0, 0).text_value(), "Cid");
  EXPECT_EQ(r.at(1, 0).text_value(), "Ann");
}

TEST_F(SqlTest, InnerJoinMatchesAndDropsDangling) {
  Rowset r = Must(R"(
      SELECT p.Name, t.Pet FROM People p
      INNER JOIN Pets t ON p.Id = t.Owner
      ORDER BY p.Name, t.Pet)");
  ASSERT_EQ(r.num_rows(), 3u);  // owner 9 has no person; Bob/Dee have no pets
  EXPECT_EQ(r.at(0, 0).text_value(), "Ann");
  EXPECT_EQ(r.at(0, 1).text_value(), "cat");
  EXPECT_EQ(r.at(2, 0).text_value(), "Cid");
}

TEST_F(SqlTest, JoinWithResidualCondition) {
  Rowset r = Must(R"(
      SELECT p.Name, t.Pet FROM People p
      INNER JOIN Pets t ON p.Id = t.Owner AND p.Age > 40)");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.at(0, 0).text_value(), "Cid");
}

TEST_F(SqlTest, NonEquiJoinFallsBackToNestedLoop) {
  Rowset r = Must(R"(
      SELECT p.Id, t.Owner FROM People p
      INNER JOIN Pets t ON p.Id < t.Owner AND t.Owner = 9)");
  EXPECT_EQ(r.num_rows(), 4u);
}

TEST_F(SqlTest, JoinChainOfThreeTables) {
  Must("CREATE TABLE Cities (City TEXT, Country TEXT)");
  Must("INSERT INTO Cities VALUES ('Oslo', 'NO'), ('Rome', 'IT')");
  Rowset r = Must(R"(
      SELECT p.Name, c.Country, t.Pet FROM People p
      INNER JOIN Cities c ON p.City = c.City
      INNER JOIN Pets t ON p.Id = t.Owner
      ORDER BY p.Name)");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.at(0, 1).text_value(), "NO");
}

TEST_F(SqlTest, DuplicateColumnNamesGetQualified) {
  Rowset r = Must(R"(
      SELECT * FROM People p INNER JOIN Pets t ON p.Id = t.Owner)");
  // All column names stay unique.
  std::set<std::string> names;
  for (const ColumnDef& col : r.schema()->columns()) {
    EXPECT_TRUE(names.insert(ToLower(col.name)).second) << col.name;
  }
}

TEST_F(SqlTest, NullSemantics) {
  Must("CREATE TABLE N (A LONG, B LONG)");
  Must("INSERT INTO N (A) VALUES (1)");  // B left NULL
  EXPECT_EQ(Must("SELECT A FROM N WHERE B = 0").num_rows(), 0u);
  EXPECT_EQ(Must("SELECT A FROM N WHERE B <> 0").num_rows(), 0u);
  EXPECT_EQ(Must("SELECT A FROM N WHERE B IS NULL").num_rows(), 1u);
  EXPECT_EQ(Must("SELECT A FROM N WHERE B IS NOT NULL").num_rows(), 0u);
  EXPECT_EQ(Must("SELECT A FROM N WHERE A IS NOT NULL").num_rows(), 1u);
  // NULL never equi-joins.
  Must("CREATE TABLE M (B LONG)");
  Must("INSERT INTO M (B) VALUES (0)");
  EXPECT_EQ(Must("SELECT * FROM N INNER JOIN M ON N.B = M.B").num_rows(), 0u);
}

TEST_F(SqlTest, InsertWithColumnListAndCoercion) {
  Must("CREATE TABLE C (A DOUBLE, B TEXT)");
  Must("INSERT INTO C (B, A) VALUES ('x', 3)");  // 3 coerces LONG->DOUBLE
  Rowset r = Must("SELECT A, B FROM C");
  EXPECT_TRUE(r.at(0, 0).is_double());
  EXPECT_EQ(r.at(0, 0).double_value(), 3.0);
}

TEST_F(SqlTest, DeleteWithAndWithoutWhere) {
  Must("DELETE FROM Pets WHERE Owner = 1");
  EXPECT_EQ(Must("SELECT * FROM Pets").num_rows(), 2u);
  Must("DELETE FROM Pets");
  EXPECT_EQ(Must("SELECT * FROM Pets").num_rows(), 0u);
}

TEST_F(SqlTest, DropTable) {
  Must("DROP TABLE Pets");
  EXPECT_TRUE(Fails("SELECT * FROM Pets").IsNotFound());
  EXPECT_TRUE(Fails("DROP TABLE Pets").IsNotFound());
}

TEST_F(SqlTest, ErrorPaths) {
  EXPECT_TRUE(Fails("SELECT Nope FROM People").IsBindError());
  EXPECT_TRUE(Fails("SELECT * FROM Nowhere").IsNotFound());
  EXPECT_TRUE(Fails("SELECT FROM People").IsParseError());
  EXPECT_TRUE(Fails("FLY ME TO THE MOON").IsParseError());
  EXPECT_TRUE(Fails("CREATE TABLE People (X LONG)").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(Fails("INSERT INTO People VALUES (1)").ok() == false);
  // A VALUES row has no row scope: column references bind-fail cleanly
  // instead of reaching the evaluator unbound (fuzz finding; the reproducer
  // lives in fuzz/regressions/dmx_statement/insert-values-column-ref).
  EXPECT_TRUE(Fails("INSERT INTO People VALUES (5, Age, 30, 'Bern')")
                  .IsBindError());
  // Multi-row INSERT is atomic: a coercion failure in any row (here 'x' in
  // the LONG Age column of the second row) leaves the table untouched —
  // partial effects of failed statements would diverge from WAL recovery
  // (fuzz finding: fuzz/regressions/store_recovery/partial-insert-leak).
  EXPECT_FALSE(Fails("INSERT INTO People VALUES "
                     "(5, 'Eve', 30, 'Bern'), (6, 'Fay', 'x', 'Rome')")
                   .ok());
  EXPECT_EQ(Must("SELECT * FROM People").num_rows(), 4u);
  // Ambiguous unqualified column across joined tables.
  Must("CREATE TABLE People2 (Id LONG)");
  Must("INSERT INTO People2 VALUES (1)");
  EXPECT_TRUE(
      Fails("SELECT Id FROM People INNER JOIN People2 ON People.Id = "
            "People2.Id")
          .IsBindError());
}

TEST_F(SqlTest, BaseTablesRejectTableColumns) {
  auto nested = Schema::Make({{"K", DataType::kLong}});
  auto schema = Schema::Make({{"Id", DataType::kLong}, ColumnDef("T", nested)});
  EXPECT_FALSE(db_.CreateTable("Bad", schema).ok());
}

TEST_F(SqlTest, ParserRoundTripsExpressions) {
  // Print -> reparse -> print is a fixpoint.
  const char* exprs[] = {
      "(a = 1)", "((a + b) * 2)", "(NOT (x) OR (y < 3.5))",
      "(name = 'O''Brien')", "col IS NOT NULL",
  };
  for (const char* text : exprs) {
    auto tokens1 = Tokenize(text);
    ASSERT_TRUE(tokens1.ok());
    TokenStream ts1(std::move(tokens1).value());
    auto e1 = ParseExpression(&ts1);
    ASSERT_TRUE(e1.ok()) << text;
    std::string printed = (*e1)->ToString();
    auto tokens2 = Tokenize(printed);
    ASSERT_TRUE(tokens2.ok());
    TokenStream ts2(std::move(tokens2).value());
    auto e2 = ParseExpression(&ts2);
    ASSERT_TRUE(e2.ok()) << printed;
    EXPECT_EQ((*e2)->ToString(), printed);
  }
}

TEST_F(SqlTest, CsvRoundTrip) {
  std::string path = ::testing::TempDir() + "/sql_test_people.csv";
  auto table = db_.GetTable("People");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(SaveCsv(**table, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 4u);
  EXPECT_EQ(loaded->schema()->column(1).type, DataType::kText);
  EXPECT_EQ(loaded->schema()->column(2).type, DataType::kLong);
  EXPECT_TRUE(loaded->Get(0, "Name")->Equals(Value::Text("Ann")));
  std::remove(path.c_str());
}

TEST_F(SqlTest, CsvQuotingAndNulls) {
  Must("CREATE TABLE Q (A TEXT, B LONG)");
  Must("INSERT INTO Q (A) VALUES ('comma, quote \" and more')");
  std::string path = ::testing::TempDir() + "/sql_test_quoted.csv";
  auto table = db_.GetTable("Q");
  ASSERT_TRUE(SaveCsv(**table, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), 1u);
  // Commas and quotes survive the round trip; the empty LONG reloads as NULL.
  EXPECT_EQ(loaded->Get(0, "A")->ToString(), "comma, quote \" and more");
  EXPECT_TRUE(loaded->Get(0, "B")->is_null());
  std::remove(path.c_str());
}

TEST_F(SqlTest, CsvNewlinesAndEmptyStringsRoundTrip) {
  auto schema = Schema::Make(
      {ColumnDef("A", DataType::kText), ColumnDef("B", DataType::kText)});
  std::vector<Row> rows;
  rows.push_back({Value::Text("line one\nline two"), Value::Text("")});
  rows.push_back({Value::Text("with \"quotes\"\r\nand a CRLF"), Value::Null()});
  std::string csv = ToCsvString(*schema, rows);

  auto loaded = ParseCsvString(csv, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  // Embedded newlines survive: the quoted field spans CSV lines.
  EXPECT_TRUE(loaded->Get(0, "A")->Equals(Value::Text("line one\nline two")));
  EXPECT_TRUE(
      loaded->Get(1, "A")->Equals(Value::Text("with \"quotes\"\r\nand a CRLF")));
  // Empty string round-trips as "" while NULL stays NULL.
  EXPECT_TRUE(loaded->Get(0, "B")->Equals(Value::Text("")));
  EXPECT_TRUE(loaded->Get(1, "B")->is_null());

  // Type inference sees the quoted empty cell as a text value, not a gap.
  auto inferred = ParseCsvString(csv);
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred->schema()->column(1).type, DataType::kText);
  EXPECT_TRUE(inferred->Get(0, "B")->Equals(Value::Text("")));
  EXPECT_TRUE(inferred->Get(1, "B")->is_null());
}

TEST_F(SqlTest, DeepParenNestingFailsCleanly) {
  // 200 nested parens exceeds TokenStream::kMaxRecursionDepth: the parser
  // must reject with kInvalidArgument instead of overflowing the stack.
  std::string sql = "SELECT ";
  for (int i = 0; i < 200; ++i) sql += '(';
  sql += '1';
  for (int i = 0; i < 200; ++i) sql += ')';
  sql += " FROM People";
  Status deep = Fails(sql);
  EXPECT_EQ(deep.code(), StatusCode::kInvalidArgument) << deep.ToString();
  EXPECT_NE(deep.message().find("nests more than"), std::string::npos)
      << deep.ToString();

  // Nesting at half the cap still parses: the limit only bites absurd depth.
  std::string ok = "SELECT ";
  for (int i = 0; i < 50; ++i) ok += '(';
  ok += '1';
  for (int i = 0; i < 50; ++i) ok += ')';
  ok += " FROM People";
  EXPECT_EQ(Must(ok).num_rows(), 4u);
}

TEST_F(SqlTest, CsvTypeInference) {
  std::string path = ::testing::TempDir() + "/sql_test_infer.csv";
  {
    std::ofstream out(path);
    out << "a,b,c\n1,1.5,x\n2,,y\n";
  }
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->schema()->column(0).type, DataType::kLong);
  EXPECT_EQ(loaded->schema()->column(1).type, DataType::kDouble);
  EXPECT_EQ(loaded->schema()->column(2).type, DataType::kText);
  EXPECT_TRUE(loaded->at(1, 1).is_null());  // empty cell -> NULL
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dmx::rel
