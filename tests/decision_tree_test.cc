// Decision-tree service: split selection, regression trees, stopping
// parameters, item splits, determinism and content rendering.

#include "algorithms/decision_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dmx {
namespace {

using testutil::AddCategorical;
using testutil::AddContinuous;
using testutil::AddGroup;
using testutil::MakeCase;

ParamMap Params(const MiningService& service,
                std::vector<AlgorithmParam> overrides = {}) {
  auto params = service.ResolveParams(overrides);
  EXPECT_TRUE(params.ok());
  return *params;
}

const DecisionTreeModel& AsTree(const TrainedModel& m) {
  return static_cast<const DecisionTreeModel&>(m);
}

TEST(DecisionTreeTest, SplitsOnTheInformativeAttribute) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Noise", {"a", "b", "c"});
  AddCategorical(&attrs, "Signal", {"x", "y"});
  AddCategorical(&attrs, "Label", {"L0", "L1"}, /*is_output=*/true);
  Rng rng(1);
  std::vector<DataCase> cases;
  for (int i = 0; i < 300; ++i) {
    int signal = static_cast<int>(rng.Uniform(2));
    cases.push_back(MakeCase(attrs, {static_cast<double>(rng.Uniform(3)),
                                     static_cast<double>(signal),
                                     static_cast<double>(signal)}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  const auto& tree = AsTree(**model).trees()[0];
  ASSERT_FALSE(tree.nodes.empty());
  ASSERT_FALSE(tree.nodes[0].is_leaf());
  EXPECT_EQ(tree.nodes[0].split.attribute, 1);  // Signal, not Noise
  // And predictions are perfect.
  for (int signal = 0; signal < 2; ++signal) {
    auto p = (*model)->Predict(
        attrs, MakeCase(attrs, {0, static_cast<double>(signal), kMissing}), {});
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(p->Find("Label")->predicted.Equals(
        Value::Text(signal == 0 ? "L0" : "L1")));
    EXPECT_GT(p->Find("Label")->probability, 0.99);
  }
}

TEST(DecisionTreeTest, ContinuousThresholdSplit) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddCategorical(&attrs, "Label", {"lo", "hi"}, /*is_output=*/true);
  Rng rng(2);
  std::vector<DataCase> cases;
  for (int i = 0; i < 400; ++i) {
    double x = rng.NextDouble() * 100;
    cases.push_back(MakeCase(attrs, {x, x < 50 ? 0.0 : 1.0}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  const auto& root = AsTree(**model).trees()[0].nodes[0];
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.split.kind, DecisionTreeModel::Split::Kind::kContinuous);
  EXPECT_NEAR(root.split.threshold, 50, 10);
}

TEST(DecisionTreeTest, RegressionTreePredictsGroupMeans) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Group", {"g0", "g1"});
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  Rng rng(3);
  std::vector<DataCase> cases;
  for (int i = 0; i < 200; ++i) {
    int group = static_cast<int>(rng.Uniform(2));
    double y = rng.Gaussian(group == 0 ? 10 : 50, 1);
    cases.push_back(MakeCase(attrs, {static_cast<double>(group), y}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  auto p0 = (*model)->Predict(attrs, MakeCase(attrs, {0, kMissing}), {});
  auto p1 = (*model)->Predict(attrs, MakeCase(attrs, {1, kMissing}), {});
  EXPECT_NEAR(p0->Find("Y")->predicted.double_value(), 10, 1);
  EXPECT_NEAR(p1->Find("Y")->predicted.double_value(), 50, 1);
  EXPECT_LT(p0->Find("Y")->variance, 2.0);
}

TEST(DecisionTreeTest, ItemExistenceSplit) {
  AttributeSet attrs;
  AddGroup(&attrs, "Basket", {"beer", "wine"});
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  Rng rng(4);
  std::vector<DataCase> cases;
  for (int i = 0; i < 300; ++i) {
    bool beer = rng.Chance(0.5);
    std::vector<int> items;
    if (beer) items.push_back(0);
    if (rng.Chance(0.5)) items.push_back(1);
    cases.push_back(MakeCase(attrs, {beer ? 0.0 : 1.0}, {items}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  const auto& root = AsTree(**model).trees()[0].nodes[0];
  ASSERT_FALSE(root.is_leaf());
  EXPECT_EQ(root.split.kind, DecisionTreeModel::Split::Kind::kItem);
  EXPECT_EQ(root.split.item, 0);  // beer
  EXPECT_EQ(root.split.Describe(attrs), "Basket contains 'beer'");
}

TEST(DecisionTreeTest, MinimumSupportStopsSplitting) {
  AttributeSet attrs;
  AddCategorical(&attrs, "X", {"a", "b"});
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  std::vector<DataCase> cases;
  for (int i = 0; i < 20; ++i) {
    cases.push_back(MakeCase(attrs, {static_cast<double>(i % 2),
                                     static_cast<double>(i % 2)}));
  }
  DecisionTreeService service;
  // min support 50 > total cases: the tree must stay a stump.
  auto model = service.Train(
      attrs, cases, Params(service, {{"MINIMUM_SUPPORT", Value::Double(50)}}));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(AsTree(**model).trees()[0].nodes.size(), 1u);
  EXPECT_TRUE(AsTree(**model).trees()[0].nodes[0].is_leaf());
}

TEST(DecisionTreeTest, DepthCapBoundsTheTree) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  Rng rng(5);
  std::vector<DataCase> cases;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    // A wiggly label to invite deep splits.
    double label = std::fmod(x * 8, 2.0) < 1 ? 0.0 : 1.0;
    cases.push_back(MakeCase(attrs, {x, label}));
  }
  DecisionTreeService service;
  auto depth1 = service.Train(
      attrs, cases,
      Params(service, {{"MAXIMUM_DEPTH", Value::Long(1)},
                       {"MINIMUM_SUPPORT", Value::Double(1)}}));
  ASSERT_TRUE(depth1.ok());
  EXPECT_LE(AsTree(**depth1).trees()[0].nodes.size(), 3u);
  auto depth6 = service.Train(
      attrs, cases,
      Params(service, {{"MAXIMUM_DEPTH", Value::Long(6)},
                       {"MINIMUM_SUPPORT", Value::Double(1)}}));
  ASSERT_TRUE(depth6.ok());
  EXPECT_GT(AsTree(**depth6).trees()[0].nodes.size(),
            AsTree(**depth1).trees()[0].nodes.size());
}

TEST(DecisionTreeTest, TrainingIsDeterministic) {
  AttributeSet attrs_a;
  AddContinuous(&attrs_a, "X");
  AddCategorical(&attrs_a, "Label", {"A", "B"}, /*is_output=*/true);
  AttributeSet attrs_b = attrs_a;
  Rng rng(6);
  std::vector<DataCase> cases;
  for (int i = 0; i < 200; ++i) {
    double x = rng.NextDouble();
    cases.push_back(MakeCase(attrs_a, {x, x < 0.3 ? 0.0 : 1.0}));
  }
  DecisionTreeService service;
  auto a = service.Train(attrs_a, cases, Params(service));
  auto b = service.Train(attrs_b, cases, Params(service));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& ta = AsTree(**a).trees()[0];
  const auto& tb = AsTree(**b).trees()[0];
  ASSERT_EQ(ta.nodes.size(), tb.nodes.size());
  for (size_t i = 0; i < ta.nodes.size(); ++i) {
    EXPECT_EQ(ta.nodes[i].split.threshold, tb.nodes[i].split.threshold);
    EXPECT_EQ(ta.nodes[i].support, tb.nodes[i].support);
  }
}

TEST(DecisionTreeTest, MultipleTargetsGetSeparateTrees) {
  AttributeSet attrs;
  AddCategorical(&attrs, "X", {"a", "b"});
  AddCategorical(&attrs, "L1", {"p", "q"}, /*is_output=*/true);
  AddContinuous(&attrs, "L2", /*is_output=*/true);
  std::vector<DataCase> cases;
  for (int i = 0; i < 100; ++i) {
    double x = i % 2;
    cases.push_back(MakeCase(attrs, {x, x, x * 10}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(AsTree(**model).trees().size(), 2u);
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {1, kMissing, kMissing}),
                             {});
  EXPECT_TRUE(p->Find("L1")->predicted.Equals(Value::Text("q")));
  EXPECT_NEAR(p->Find("L2")->predicted.double_value(), 10, 1e-6);
}

TEST(DecisionTreeTest, LeafSupportsPartitionTheTrainingSet) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  Rng rng(7);
  std::vector<DataCase> cases;
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble();
    cases.push_back(MakeCase(attrs, {x, x < 0.5 ? 0.0 : 1.0}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  const auto& tree = AsTree(**model).trees()[0];
  double leaf_total = 0;
  for (const auto& node : tree.nodes) {
    if (node.is_leaf()) leaf_total += node.support;
  }
  EXPECT_DOUBLE_EQ(leaf_total, tree.nodes[0].support);
  EXPECT_DOUBLE_EQ(leaf_total, 500.0);
}

TEST(DecisionTreeTest, InvalidParametersRejected) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Label", {"A"}, /*is_output=*/true);
  DecisionTreeService service;
  auto bad = service.ResolveParams({{"NOT_A_PARAM", Value::Long(1)}});
  EXPECT_FALSE(bad.ok());
  auto params = Params(service, {{"MAXIMUM_DEPTH", Value::Long(0)}});
  EXPECT_FALSE(service.Train(attrs, {MakeCase(attrs, {0})}, params).ok());
}

TEST(DecisionTreeTest, ContentTreeMirrorsStructure) {
  AttributeSet attrs;
  AddCategorical(&attrs, "X", {"a", "b"});
  AddCategorical(&attrs, "Label", {"A", "B"}, /*is_output=*/true);
  std::vector<DataCase> cases;
  for (int i = 0; i < 100; ++i) {
    double x = i % 2;
    cases.push_back(MakeCase(attrs, {x, x}));
  }
  DecisionTreeService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  auto content = (*model)->BuildContent(attrs);
  ASSERT_TRUE(content.ok());
  // Model -> Tree -> root Interior -> two Leafs.
  size_t total_nodes = (*content)->SubtreeSize();
  EXPECT_EQ(total_nodes, 1 + 1 + AsTree(**model).trees()[0].nodes.size());
  const ContentNode& root = *(*content)->children[0]->children[0];
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->rule, "X = 'a'");
  EXPECT_EQ(root.children[1]->rule, "NOT X = 'a'");
  EXPECT_EQ(root.children[0]->type, NodeType::kLeaf);
}

}  // namespace
}  // namespace dmx
