// AllocStats (src/common/alloc_stats.{h,cc}): the counting-allocator runtime
// behind -DDMX_ALLOC_STATS=ON. These tests run in every build config:
// with the option ON they verify the counters actually observe operator
// new/delete; with it OFF (the default tier-1 build) they verify the
// zero-overhead contract — Enabled() false and every Delta() exactly zero.

#include "common/alloc_stats.h"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dmx {
namespace {

// A heap allocation the optimizer cannot elide: new-*expressions* may be
// optimized away when paired with their delete (N3664), but direct calls to
// the replaceable allocation functions may not.
void ForceHeapAlloc(std::size_t bytes) {
  void* p = ::operator new(bytes);
  static_cast<char*>(p)[0] = 'x';
  ::operator delete(p);
}

TEST(AllocStatsTest, DisabledBuildReportsZeroAndNoOverhead) {
  if (AllocStats::Enabled()) GTEST_SKIP() << "DMX_ALLOC_STATS build";
  AllocStats::Region r;
  ForceHeapAlloc(4096);
  AllocCounts d = r.Delta();
  EXPECT_EQ(d.allocs, 0u);
  EXPECT_EQ(d.bytes, 0u);
  EXPECT_EQ(d.frees, 0u);
}

TEST(AllocStatsTest, RegionObservesNewAndDelete) {
  if (!AllocStats::Enabled()) GTEST_SKIP() << "needs -DDMX_ALLOC_STATS=ON";
  AllocStats::Region r;
  ForceHeapAlloc(4096);
  AllocCounts d = r.Delta();
  EXPECT_GE(d.allocs, 1u);
  EXPECT_GE(d.bytes, 4096u);
  EXPECT_GE(d.frees, 1u);
}

TEST(AllocStatsTest, RegionsNestIndependently) {
  if (!AllocStats::Enabled()) GTEST_SKIP() << "needs -DDMX_ALLOC_STATS=ON";
  AllocStats::Region outer;
  ForceHeapAlloc(64);
  AllocCounts outer_before_inner = outer.Delta();
  {
    AllocStats::Region inner;
    ForceHeapAlloc(64);
    AllocCounts id = inner.Delta();
    // The inner region must not see the allocation made before it started.
    EXPECT_GE(id.allocs, 1u);
    EXPECT_LT(id.allocs, outer.Delta().allocs);
  }
  // The outer region keeps accumulating across the inner one's lifetime.
  EXPECT_GT(outer.Delta().allocs, outer_before_inner.allocs);
}

TEST(AllocStatsTest, CountersAreThreadLocal) {
  if (!AllocStats::Enabled()) GTEST_SKIP() << "needs -DDMX_ALLOC_STATS=ON";
  AllocStats::Region r;
  AllocCounts quiet_before = r.Delta();
  std::uint64_t other_thread_allocs = 0;
  std::thread t([&] {
    AllocStats::Region mine;
    ForceHeapAlloc(1 << 16);
    ForceHeapAlloc(1 << 16);
    other_thread_allocs = mine.Delta().allocs;
  });
  t.join();
  ASSERT_GE(other_thread_allocs, 2u);
  // The worker's allocations must not leak into this thread's region. The
  // std::thread machinery itself allocates on *this* thread (closure state),
  // so assert the worker's traffic is absent rather than demanding zero.
  AllocCounts after = r.Delta();
  EXPECT_LT(after.allocs - quiet_before.allocs, other_thread_allocs);
}

TEST(AllocStatsTest, BytesTrackRequestSizes) {
  if (!AllocStats::Enabled()) GTEST_SKIP() << "needs -DDMX_ALLOC_STATS=ON";
  constexpr std::size_t kBig = 1 << 20;
  AllocStats::Region r;
  ForceHeapAlloc(kBig);
  AllocCounts d = r.Delta();
  EXPECT_GE(d.bytes, kBig);
  // Requested bytes, not arena overhead: a single 1 MiB request should not
  // be accounted as more than a small multiple of itself.
  EXPECT_LT(d.bytes, 2 * kBig);
}

TEST(AllocStatsTest, VectorGrowthIsVisible) {
  if (!AllocStats::Enabled()) GTEST_SKIP() << "needs -DDMX_ALLOC_STATS=ON";
  AllocStats::Region r;
  std::vector<std::string> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(std::string(64, static_cast<char>('a' + (i % 26))));
  }
  AllocCounts d = r.Delta();
  // 100 non-SSO strings plus vector regrowth: well over 100 allocations.
  EXPECT_GE(d.allocs, 100u);
  EXPECT_GE(d.bytes, 100u * 64u);
}

}  // namespace
}  // namespace dmx
