// The serving front end under load and under fire (DESIGN.md §13): wire
// codec round trips, multi-session fault-schedule sweeps over in-memory
// pipes, client retry/backoff against admission and drain rejections, and
// the graceful-drain state machine end to end over real TCP with a store
// reopen proving zero quarantines and catalog == acked-statement prefix.
//
// Timing-sensitive (idle timeouts, write stalls, drain grace), so the
// binary is registered SERIAL in tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/nested_table.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "core/provider.h"
#include "datagen/warehouse.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"
#include "server/wire.h"

namespace dmx::server {
namespace {

// RetryClock that records instead of sleeping: retry schedules are
// asserted, not waited out.
class RecordingClock : public RetryClock {
 public:
  void SleepMs(int ms) override { sleeps_.push_back(ms); }
  const std::vector<int>& sleeps() const { return sleeps_; }

 private:
  std::vector<int> sleeps_;
};

std::unique_ptr<Provider> MakePaperProvider() {
  auto provider = std::make_unique<Provider>();
  auto status = datagen::LoadPaperExample(provider->database());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return provider;
}

// Serves one pipe end on a background thread; joins on destruction.
class PipeSession {
 public:
  PipeSession(DmxServer* server, std::unique_ptr<Transport> end)
      : thread_([server, transport = std::move(end)]() mutable {
          server->ServeConnection(std::move(transport));
        }) {}
  ~PipeSession() { Join(); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

// --- wire codec ---

TEST(WireCodecTest, BodiesRoundTrip) {
  HelloBody hello;
  hello.tenant = "acme";
  auto hello2 = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(hello2.ok()) << hello2.status().ToString();
  EXPECT_EQ(hello2->version, kProtocolVersion);
  EXPECT_EQ(hello2->tenant, "acme");

  RequestBody request;
  request.request_id = 42;
  request.deadline_ms = 1'500;
  request.statement = "SELECT * FROM Customers";
  auto request2 = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(request2.ok()) << request2.status().ToString();
  EXPECT_EQ(request2->request_id, 42u);
  EXPECT_EQ(request2->deadline_ms, 1'500u);
  EXPECT_EQ(request2->statement, request.statement);

  DoneBody done;
  done.request_id = 7;
  done.SetStatus(ResourceExhausted() << "quota");
  done.retryable = true;
  done.retry_after_ms = 120;
  auto done2 = DecodeDone(EncodeDone(done));
  ASSERT_TRUE(done2.ok()) << done2.status().ToString();
  EXPECT_TRUE(done2->ToStatus().IsResourceExhausted());
  EXPECT_TRUE(done2->retryable);
  EXPECT_EQ(done2->retry_after_ms, 120u);
}

TEST(WireCodecTest, NestedSchemaAndTableValueRoundTrip) {
  auto inner = Schema::Make(
      {ColumnDef("item", DataType::kText), ColumnDef("qty", DataType::kLong)});
  auto outer = Schema::Make(
      {ColumnDef("id", DataType::kLong), ColumnDef("basket", inner)});

  SchemaBody body;
  body.request_id = 1;
  body.schema = outer;
  auto decoded = DecodeSchemaBody(EncodeSchemaBody(body));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->schema->num_columns(), 2u);
  EXPECT_EQ(decoded->schema->columns()[1].type, DataType::kTable);
  ASSERT_NE(decoded->schema->columns()[1].nested, nullptr);
  EXPECT_EQ(decoded->schema->columns()[1].nested->num_columns(), 2u);

  ChunkBody chunk;
  chunk.request_id = 1;
  chunk.rows.push_back(
      {Value::Long(1),
       Value::Table(NestedTable::Make(
           inner, {{Value::Text("milk"), Value::Long(2)}}))});
  auto chunk2 = DecodeChunk(EncodeChunk(chunk));
  ASSERT_TRUE(chunk2.ok()) << chunk2.status().ToString();
  ASSERT_EQ(chunk2->rows.size(), 1u);
  ASSERT_EQ(chunk2->rows[0].size(), 2u);
  EXPECT_TRUE(chunk2->rows[0][1].is_table());
}

TEST(WireCodecTest, FrameReaderRejectsCorruptionAndHugeLengths) {
  // A flipped payload byte fails the CRC.
  {
    auto [a, b] = MakeLocalPipe();
    std::string frame = EncodeFrame(FrameType::kHello, EncodeHello({}));
    frame.back() ^= 0x1;
    ASSERT_TRUE(b->Write(frame, 1'000).ok());
    FrameReader reader(a.get());
    auto next = reader.Next(1'000);
    ASSERT_FALSE(next.ok());
    EXPECT_TRUE(next.status().IsCorruption()) << next.status().ToString();
  }
  // A hostile length word is rejected before any allocation.
  {
    auto [a, b] = MakeLocalPipe();
    std::string header(8, '\0');
    header[0] = '\xff';
    header[1] = '\xff';
    header[2] = '\xff';
    header[3] = '\x7f';
    ASSERT_TRUE(b->Write(header, 1'000).ok());
    FrameReader reader(a.get());
    auto next = reader.Next(1'000);
    ASSERT_FALSE(next.ok());
    EXPECT_TRUE(next.status().IsCorruption()) << next.status().ToString();
  }
  // EOF mid-frame (a torn frame) is corruption, not a clean close.
  {
    auto [a, b] = MakeLocalPipe();
    std::string frame = EncodeFrame(FrameType::kHello, EncodeHello({}));
    ASSERT_TRUE(b->Write(frame.substr(0, frame.size() - 1), 1'000).ok());
    b->ShutdownWrite();
    FrameReader reader(a.get());
    auto next = reader.Next(1'000);
    ASSERT_FALSE(next.ok());
    EXPECT_TRUE(next.status().IsCorruption()) << next.status().ToString();
  }
}

// --- single sessions over in-memory pipes ---

TEST(ServerPipeTest, HandshakeExecuteAndCleanClose) {
  auto provider = MakePaperProvider();
  DmxServer server(provider.get(), {});

  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  ClientOptions options;
  options.tenant = "acme";
  auto client = DmxClient::Handshake(std::move(client_end), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT((*client)->session_id(), 0u);

  auto ddl = (*client)->Execute(
      "CREATE MINING MODEL served (cid LONG KEY, gender TEXT DISCRETE "
      "PREDICT) USING Naive_Bayes");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();

  auto rows = (*client)->Execute("SELECT * FROM Customers");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->num_rows(), 3u);
  EXPECT_GT(rows->num_columns(), 0u);

  (*client)->Close();
  session.Join();

  EXPECT_TRUE(provider->models()->HasModel("served"));
  DmxServer::Stats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.statements_ok, 2u);
  EXPECT_EQ(stats.statements_failed, 0u);
}

TEST(ServerPipeTest, GarbageBytesKillTheSessionWithAnError) {
  auto provider = MakePaperProvider();
  DmxServer server(provider.get(), {});

  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  ASSERT_TRUE(
      client_end->Write("this is not a frame, not even close!", 1'000).ok());
  FrameReader reader(client_end.get());
  auto reply = reader.Next(5'000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->has_value());
  ASSERT_EQ((*reply)->type, FrameType::kDone);
  auto done = DecodeDone((*reply)->body);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_TRUE(done->ToStatus().IsCorruption()) << done->ToStatus().ToString();
  EXPECT_FALSE(done->retryable);

  client_end->Close();
  session.Join();
  EXPECT_EQ(server.stats().frames_rejected, 1u);
  EXPECT_EQ(server.stats().sessions_closed, 1u);
}

TEST(ServerPipeTest, WrongVersionAndEarlyRequestAreRefusedTyped) {
  auto provider = MakePaperProvider();
  DmxServer server(provider.get(), {});

  {  // Unsupported protocol version.
    auto [server_end, client_end] = MakeLocalPipe();
    PipeSession session(&server, std::move(server_end));
    HelloBody hello;
    hello.version = 99;
    ASSERT_TRUE(client_end
                    ->Write(EncodeFrame(FrameType::kHello, EncodeHello(hello)),
                            1'000)
                    .ok());
    FrameReader reader(client_end.get());
    auto reply = reader.Next(5'000);
    ASSERT_TRUE(reply.ok() && reply->has_value());
    auto done = DecodeDone((*reply)->body);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done->ToStatus().IsNotSupported());
    client_end->Close();
  }
  {  // A Request before the handshake.
    auto [server_end, client_end] = MakeLocalPipe();
    PipeSession session(&server, std::move(server_end));
    RequestBody request;
    request.request_id = 1;
    request.statement = "SELECT * FROM Customers";
    ASSERT_TRUE(
        client_end
            ->Write(EncodeFrame(FrameType::kRequest, EncodeRequest(request)),
                    1'000)
            .ok());
    FrameReader reader(client_end.get());
    auto reply = reader.Next(5'000);
    ASSERT_TRUE(reply.ok() && reply->has_value());
    auto done = DecodeDone((*reply)->body);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done->ToStatus().code(), StatusCode::kInvalidArgument);
    client_end->Close();
  }
  EXPECT_EQ(server.stats().frames_rejected, 2u);
}

TEST(ServerPipeTest, IdleSessionIsDropped) {
  auto provider = MakePaperProvider();
  ServerOptions options;
  options.idle_timeout_ms = 150;
  DmxServer server(provider.get(), options);

  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  auto client = DmxClient::Handshake(std::move(client_end), {});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Say nothing: the server drops the session at the idle timeout and the
  // session thread exits (Join would hang forever otherwise).
  session.Join();
  EXPECT_EQ(server.stats().sessions_closed, 1u);
}

TEST(ServerPipeTest, StalledReaderTripsTheWriteTimeout) {
  auto provider = MakePaperProvider();
  ServerOptions options;
  options.write_timeout_ms = 150;
  DmxServer server(provider.get(), options);

  // A 16-byte pipe: any response frame larger than that blocks the server
  // until the client drains — and this client never does.
  auto [server_end, client_end] = MakeLocalPipe(/*capacity=*/16);
  PipeSession session(&server, std::move(server_end));

  FrameReader reader(client_end.get());
  ASSERT_TRUE(
      client_end->Write(EncodeFrame(FrameType::kHello, EncodeHello({})), 1'000)
          .ok());
  auto ack = reader.Next(5'000);
  ASSERT_TRUE(ack.ok() && ack->has_value());
  ASSERT_EQ((*ack)->type, FrameType::kHelloAck);

  RequestBody request;
  request.request_id = 1;
  request.statement = "SELECT * FROM Customers";
  ASSERT_TRUE(
      client_end
          ->Write(EncodeFrame(FrameType::kRequest, EncodeRequest(request)),
                  1'000)
          .ok());
  // Read nothing. The server's response write stalls, times out, and the
  // session ends instead of buffering without bound.
  session.Join();
  EXPECT_EQ(server.stats().sessions_closed, 1u);
  client_end->Close();
}

TEST(ServerPipeTest, DeadlineBoundsResponseStreaming) {
  auto provider = MakePaperProvider();
  ServerOptions options;
  options.write_timeout_ms = 10'000;  // Generous: the deadline must bind.
  DmxServer server(provider.get(), options);

  auto [server_end, client_end] = MakeLocalPipe(/*capacity=*/16);
  PipeSession session(&server, std::move(server_end));

  FrameReader reader(client_end.get());
  ASSERT_TRUE(
      client_end->Write(EncodeFrame(FrameType::kHello, EncodeHello({})), 1'000)
          .ok());
  auto ack = reader.Next(5'000);
  ASSERT_TRUE(ack.ok() && ack->has_value());

  RequestBody request;
  request.request_id = 1;
  request.deadline_ms = 200;  // One number covers execution AND streaming.
  request.statement = "SELECT * FROM Customers";
  ASSERT_TRUE(
      client_end
          ->Write(EncodeFrame(FrameType::kRequest, EncodeRequest(request)),
                  1'000)
          .ok());
  // A stalled reader against a 10 s write timeout: only the request
  // deadline can end this session promptly. Join hangs (and the test times
  // out) if deadline propagation into the write path is broken.
  session.Join();
  EXPECT_EQ(server.stats().sessions_closed, 1u);
  client_end->Close();
}

TEST(ServerPipeTest, SendBudgetExhaustionEndsTheSession) {
  auto provider = MakePaperProvider();
  ServerOptions options;
  options.max_session_send_bytes = 32;  // Less than HelloAck + Schema.
  DmxServer server(provider.get(), options);

  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  auto client = DmxClient::Handshake(std::move(client_end), {});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Execute("SELECT * FROM Customers");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("send budget exhausted"),
            std::string::npos)
      << result.status().ToString();
  // The budget rejection is not a licence to retry: the statement ran.
  EXPECT_EQ((*client)->last_attempts(), 1);
  session.Join();
  EXPECT_EQ(server.stats().sessions_closed, 1u);
}

// --- the fault-schedule sweep ---

// N concurrent sessions, each with its own fault: the server must survive
// every schedule without crashing, leak no session, and the catalog must
// contain every statement it acked (acked ⊆ applied — the acked prefix).
TEST(ServerFaultTest, ConcurrentSessionsSurviveAFaultSchedule) {
  auto provider = MakePaperProvider();
  ServerOptions options;
  options.idle_timeout_ms = 400;  // Bounds the stalled-read sessions.
  options.write_timeout_ms = 400;
  DmxServer server(provider.get(), options);

  constexpr int kSessions = 8;
  std::vector<std::unique_ptr<PipeSession>> sessions;
  std::vector<std::thread> clients;
  std::atomic<int> clean_ok{0};
  std::vector<int> acked(kSessions, 0);

  for (int i = 0; i < kSessions; ++i) {
    auto [server_end, client_end] = MakeLocalPipe();
    TransportFault fault = TransportFault::kTornWrite;
    bool faulted = true;
    switch (i % 4) {
      case 0:
        faulted = false;  // Clean session: DDL + SELECT must succeed.
        break;
      case 1:
        fault = TransportFault::kDisconnectRead;  // EOF before Hello.
        break;
      case 2:
        fault = TransportFault::kShortRead;  // 1-byte reads: framing holds.
        faulted = false;  // Fault armed, but the session must still WORK.
        break;
      case 3:
        fault = TransportFault::kStallRead;  // Dead air: idle timeout.
        break;
    }
    std::unique_ptr<Transport> serve = std::move(server_end);
    if (i % 4 != 0) {
      auto wrapped = std::make_unique<FaultInjectionTransport>(std::move(serve));
      wrapped->ArmFault(fault, /*fail_at=*/0);
      serve = std::move(wrapped);
    }
    sessions.push_back(
        std::make_unique<PipeSession>(&server, std::move(serve)));

    clients.emplace_back([&, i, faulted,
                          end = std::move(client_end)]() mutable {
      ClientOptions copts;
      copts.io_timeout_ms = 5'000;
      copts.retry.max_attempts = 1;
      auto client = DmxClient::Handshake(std::move(end), copts);
      if (!client.ok()) {
        EXPECT_TRUE(faulted) << client.status().ToString();
        return;
      }
      auto ddl = (*client)->Execute(
          "CREATE MINING MODEL sweep_" + std::to_string(i) +
          " (cid LONG KEY, gender TEXT DISCRETE PREDICT) USING Naive_Bayes");
      if (ddl.ok()) acked[i] = 1;
      auto rows = (*client)->Execute("SELECT * FROM Customers");
      if (!faulted) {
        ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
        ASSERT_TRUE(rows.ok()) << rows.status().ToString();
        EXPECT_EQ(rows->num_rows(), 3u);
        clean_ok.fetch_add(1);
      }
      (*client)->Close();
    });
  }

  for (auto& client : clients) client.join();
  for (auto& session : sessions) session->Join();

  // Half the schedule ran clean (i % 4 in {0, 2}) and must have succeeded.
  EXPECT_EQ(clean_ok.load(), kSessions / 2);
  // No leaked sessions, no crash, and every acked DDL is in the catalog.
  DmxServer::Stats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(stats.sessions_closed, static_cast<uint64_t>(kSessions));
  for (int i = 0; i < kSessions; ++i) {
    if (acked[i]) {
      EXPECT_TRUE(provider->models()->HasModel("sweep_" + std::to_string(i)))
          << "acked statement missing from catalog (session " << i << ")";
    }
  }
}

// A mid-statement disconnect (client vanishes while the response streams)
// ends that session without touching its neighbours.
TEST(ServerFaultTest, MidStatementDisconnectEndsOnlyThatSession) {
  auto provider = MakePaperProvider();
  ServerOptions options;
  options.write_timeout_ms = 500;
  DmxServer server(provider.get(), options);

  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  FrameReader reader(client_end.get());
  ASSERT_TRUE(
      client_end->Write(EncodeFrame(FrameType::kHello, EncodeHello({})), 1'000)
          .ok());
  auto ack = reader.Next(5'000);
  ASSERT_TRUE(ack.ok() && ack->has_value());
  RequestBody request;
  request.request_id = 1;
  request.statement = "SELECT * FROM Customers";
  ASSERT_TRUE(
      client_end
          ->Write(EncodeFrame(FrameType::kRequest, EncodeRequest(request)),
                  1'000)
          .ok());
  client_end->Close();  // Vanish mid-statement.
  session.Join();
  EXPECT_EQ(server.stats().sessions_closed, 1u);

  // The server is still perfectly serviceable for the next session.
  auto [server_end2, client_end2] = MakeLocalPipe();
  PipeSession session2(&server, std::move(server_end2));
  auto client = DmxClient::Handshake(std::move(client_end2), {});
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto rows = (*client)->Execute("SELECT * FROM Customers");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->num_rows(), 3u);
  (*client)->Close();
  session2.Join();
  EXPECT_EQ(server.stats().sessions_closed, 2u);
}

// --- client retry / backoff ---

TEST(ClientRetryTest, RetriesAdmissionRejectionWithExponentialBackoff) {
  auto provider = MakePaperProvider();
  provider->SetAdmissionLimits(/*max_active=*/8, /*max_queued=*/8);
  provider->SetTenantAdmissionLimits(/*max_active=*/1, /*max_queued=*/0);
  // Saturate tenant "acme" directly so every wire attempt is rejected
  // deterministically (no racing statement required).
  ASSERT_TRUE(provider->admission()->Admit(nullptr, "acme").ok());

  DmxServer server(provider.get(), {});
  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  RecordingClock clock;
  ClientOptions options;
  options.tenant = "acme";
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 50;
  auto client = DmxClient::Handshake(std::move(client_end), options, &clock);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto result = (*client)->Execute("SELECT * FROM Customers");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("tenant \"acme\" over quota"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ((*client)->last_attempts(), 3);

  // Two sleeps between three attempts, exponential with jitter: the n-th
  // backoff is drawn from [base/2, base] for base = 50 * 2^n.
  ASSERT_EQ(clock.sleeps().size(), 2u);
  EXPECT_GE(clock.sleeps()[0], 25);
  EXPECT_LE(clock.sleeps()[0], 50);
  EXPECT_GE(clock.sleeps()[1], 50);
  EXPECT_LE(clock.sleeps()[1], 100);

  // Quota released: the same session immediately succeeds, first try.
  provider->admission()->Release("acme");
  auto rows = (*client)->Execute("SELECT * FROM Customers");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->num_rows(), 3u);
  EXPECT_EQ((*client)->last_attempts(), 1);

  (*client)->Close();
  session.Join();
}

TEST(ClientRetryTest, RetriesDrainRefusalAndRespectsRetryAfter) {
  auto provider = MakePaperProvider();
  ServerOptions soptions;
  soptions.drain_grace_ms = 40;  // Becomes the refusal's retry-after hint.
  DmxServer server(provider.get(), soptions);

  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  RecordingClock clock;
  ClientOptions options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 5;  // Far below the hint: it must floor.
  auto client = DmxClient::Handshake(std::move(client_end), options, &clock);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  server.RequestDrain();
  auto result = (*client)->Execute("SELECT * FROM Customers");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  // At least one drain refusal was received and retried; its backoff was
  // floored at the server's retry-after hint.
  EXPECT_GE((*client)->last_attempts(), 2);
  ASSERT_GE(clock.sleeps().size(), 1u);
  EXPECT_GE(clock.sleeps()[0], 40);

  (*client)->Close();
  session.Join();
}

// A hostile/buggy server that marks a Done retryable AFTER streaming part
// of a response must not trick the client into re-running the statement.
TEST(ClientRetryTest, NeverRetriesAfterConsumingResponseFrames) {
  auto [server_end, client_end] = MakeLocalPipe();

  std::thread fake_server([end = std::move(server_end)]() mutable {
    FrameReader reader(end.get());
    auto hello = reader.Next(5'000);
    ASSERT_TRUE(hello.ok() && hello->has_value());
    HelloAckBody ack;
    ack.session_id = 99;
    ASSERT_TRUE(
        end->Write(EncodeFrame(FrameType::kHelloAck, EncodeHelloAck(ack)),
                   1'000)
            .ok());
    auto request = reader.Next(5'000);
    ASSERT_TRUE(request.ok() && request->has_value());
    auto body = DecodeRequest((*request)->body);
    ASSERT_TRUE(body.ok());

    SchemaBody schema;
    schema.request_id = body->request_id;
    schema.schema = Schema::Make({ColumnDef("x", DataType::kLong)});
    ASSERT_TRUE(
        end->Write(EncodeFrame(FrameType::kSchema, EncodeSchemaBody(schema)),
                   1'000)
            .ok());
    DoneBody done;
    done.request_id = body->request_id;
    done.SetStatus(Unavailable() << "lost my backend mid-stream");
    done.retryable = true;  // A lie: the response already started.
    ASSERT_TRUE(end->Write(EncodeFrame(FrameType::kDone, EncodeDone(done)),
                           1'000)
                    .ok());
    end->Close();
  });

  RecordingClock clock;
  ClientOptions options;
  options.retry.max_attempts = 4;
  auto client = DmxClient::Handshake(std::move(client_end), options, &clock);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Execute("SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  EXPECT_EQ((*client)->last_attempts(), 1);  // The latch held: no retry.
  EXPECT_TRUE(clock.sleeps().empty());
  fake_server.join();
}

// --- graceful drain ---

TEST(ServerDrainTest, DrainCancelsAStatementQueuedInAdmission) {
  auto provider = MakePaperProvider();
  provider->SetAdmissionLimits(/*max_active=*/1, /*max_queued=*/1);
  // Hold the only slot so the wire statement parks in the admission queue.
  ASSERT_TRUE(provider->admission()->Admit(nullptr).ok());

  ServerOptions options;
  options.drain_grace_ms = 50;
  DmxServer server(provider.get(), options);
  auto [server_end, client_end] = MakeLocalPipe();
  PipeSession session(&server, std::move(server_end));

  ClientOptions coptions;
  coptions.retry.max_attempts = 1;
  auto client = DmxClient::Handshake(std::move(client_end), coptions);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Result<Rowset> result = Internal() << "not run";
  std::thread executing(
      [&] { result = (*client)->Execute("SELECT * FROM Customers"); });
  // Let the statement reach the admission queue, then drain: past the grace
  // period the server cancels it through the session's CancelToken.
  SystemRetryClock wait;
  wait.SleepMs(150);
  Status drained = server.Drain();
  EXPECT_TRUE(drained.ok()) << drained.ToString();

  executing.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_NE(
      result.status().ToString().find("waiting for statement admission"),
      std::string::npos)
      << result.status().ToString();

  (*client)->Close();
  session.Join();
  provider->admission()->Release();
  DmxServer::Stats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, stats.sessions_closed);
}

// The full state machine over real TCP: serve, ack statements, SIGTERM-
// style drain, then reopen the store and prove the drained state is the
// recovered state — zero quarantines, catalog == acked prefix.
TEST(ServerDrainTest, TcpDrainCheckpointsAndReopensClean) {
  std::string dir = ::testing::TempDir() + "/server_drain_store";
  // Test runs reuse the name; start from an empty directory.
  Env* env = Env::Default();
  for (const std::string& sub : {dir + "/quarantine", dir}) {
    auto names = env->ListDir(sub);
    if (!names.ok()) continue;
    for (const std::string& f : *names) (void)env->DeleteFile(sub + "/" + f);
  }

  uint64_t acked_models = 0;
  {
    Provider provider;
    ASSERT_TRUE(datagen::LoadPaperExample(provider.database()).ok());
    ASSERT_TRUE(provider.OpenStore(dir).ok());

    ServerOptions options;
    DmxServer server(&provider, options);
    Status started = server.Start();
    if (!started.ok()) {
      GTEST_SKIP() << "cannot bind a TCP socket here: "
                   << started.ToString();
    }

    auto client = DmxClient::Connect("127.0.0.1", server.port(), {});
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (int i = 0; i < 3; ++i) {
      auto ddl = (*client)->Execute(
          "CREATE MINING MODEL drained_" + std::to_string(i) +
          " (cid LONG KEY, gender TEXT DISCRETE PREDICT) USING Naive_Bayes");
      ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
      ++acked_models;  // Acked over the wire: must survive the drain.
    }
    auto rows = (*client)->Execute("SELECT * FROM Customers");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->num_rows(), 3u);
    (*client)->Close();

    Status drained = server.Drain();
    EXPECT_TRUE(drained.ok()) << drained.ToString();
    DmxServer::Stats stats = server.stats();
    EXPECT_EQ(stats.sessions_opened, stats.sessions_closed);
    EXPECT_EQ(stats.statements_ok, acked_models + 1);

    // Draining is sticky: a late connection gets no service. (The listener
    // is closed, so the connect itself or its handshake fails.)
    auto late = DmxClient::Connect("127.0.0.1", server.port(), {});
    EXPECT_FALSE(late.ok());
  }

  // Reopen: the acked prefix is exactly what recovers, with nothing
  // quarantined and the store fully writable.
  Provider reopened;
  ASSERT_TRUE(datagen::LoadPaperExample(reopened.database()).ok());
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 0u);
  EXPECT_TRUE(reopened.DegradedModels().empty());
  EXPECT_FALSE(reopened.StoreReadOnly());
  for (uint64_t i = 0; i < acked_models; ++i) {
    EXPECT_TRUE(reopened.models()->HasModel("drained_" + std::to_string(i)))
        << "acked statement lost across drain + reopen (model " << i << ")";
  }
}

}  // namespace
}  // namespace dmx::server
