// Synthetic warehouse: determinism, schema shape, the functional
// product->type relation the paper requires of RELATION columns, and the
// planted statistical structure the experiments rely on.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/warehouse.h"
#include "relational/sql_executor.h"

namespace dmx::datagen {
namespace {

TEST(DatagenTest, SameSeedSameWarehouse) {
  rel::Database a;
  rel::Database b;
  WarehouseConfig config;
  config.num_customers = 100;
  ASSERT_TRUE(PopulateWarehouse(&a, config).ok());
  ASSERT_TRUE(PopulateWarehouse(&b, config).ok());
  for (const char* table : {"Customers", "Sales", "CarOwnership"}) {
    auto ta = a.GetTable(table);
    auto tb = b.GetTable(table);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ASSERT_EQ((*ta)->num_rows(), (*tb)->num_rows()) << table;
    for (size_t r = 0; r < (*ta)->num_rows(); ++r) {
      for (size_t c = 0; c < (*ta)->schema()->num_columns(); ++c) {
        EXPECT_TRUE((*ta)->rows()[r][c].Equals((*tb)->rows()[r][c]));
      }
    }
  }
}

TEST(DatagenTest, DifferentSeedsDiffer) {
  rel::Database a;
  rel::Database b;
  WarehouseConfig config_a;
  config_a.num_customers = 100;
  WarehouseConfig config_b = config_a;
  config_b.seed = 43;
  ASSERT_TRUE(PopulateWarehouse(&a, config_a).ok());
  ASSERT_TRUE(PopulateWarehouse(&b, config_b).ok());
  auto ta = *a.GetTable("Customers");
  auto tb = *b.GetTable("Customers");
  int differing = 0;
  for (size_t r = 0; r < ta->num_rows(); ++r) {
    if (!ta->rows()[r][3].Equals(tb->rows()[r][3])) ++differing;  // Age
  }
  EXPECT_GT(differing, 10);
}

TEST(DatagenTest, ProductTypeIsAFunctionOfProductName) {
  rel::Database db;
  WarehouseConfig config;
  config.num_customers = 500;
  ASSERT_TRUE(PopulateWarehouse(&db, config).ok());
  auto sales = *db.GetTable("Sales");
  std::map<std::string, std::string> type_of;
  for (const Row& row : sales->rows()) {
    auto [it, inserted] =
        type_of.emplace(row[1].text_value(), row[3].text_value());
    if (!inserted) {
      EXPECT_EQ(it->second, row[3].text_value())
          << "product " << row[1].text_value() << " has two types";
    }
  }
  // And matches the published catalog.
  for (const auto& [name, type] : type_of) {
    bool found = false;
    for (const Product& p : ProductCatalog()) {
      if (name == p.name) {
        EXPECT_EQ(type, p.type);
        found = true;
      }
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(DatagenTest, EveryCustomerHasAtLeastOnePurchase) {
  rel::Database db;
  WarehouseConfig config;
  config.num_customers = 200;
  ASSERT_TRUE(PopulateWarehouse(&db, config).ok());
  auto sales = *db.GetTable("Sales");
  std::set<int64_t> buyers;
  for (const Row& row : sales->rows()) buyers.insert(row[0].long_value());
  EXPECT_EQ(buyers.size(), 200u);
}

TEST(DatagenTest, SegmentsShapeAges) {
  rel::Database db;
  WarehouseConfig config;
  config.num_customers = 800;
  ASSERT_TRUE(PopulateWarehouse(&db, config).ok());
  auto customers = *db.GetTable("Customers");
  // Mean age per planted segment must be ordered: gamers < professionals <
  // families < seniors (segments 0, 3, 1, 2).
  std::map<int, std::pair<double, int>> by_segment;
  for (const Row& row : customers->rows()) {
    int segment = SegmentOfCustomer(row[0].long_value(), config.seed,
                                    config.num_customers);
    by_segment[segment].first += static_cast<double>(row[3].long_value());
    by_segment[segment].second += 1;
  }
  ASSERT_EQ(by_segment.size(), 4u);
  auto mean = [&](int s) {
    return by_segment[s].first / by_segment[s].second;
  };
  EXPECT_LT(mean(0), mean(3));
  EXPECT_LT(mean(3), mean(1));
  EXPECT_LT(mean(1), mean(2));
}

TEST(DatagenTest, PlantedBundlesLiftCoPurchase) {
  rel::Database db;
  WarehouseConfig config;
  config.num_customers = 2000;
  ASSERT_TRUE(PopulateWarehouse(&db, config).ok());
  auto sales = *db.GetTable("Sales");
  std::map<int64_t, std::set<std::string>> baskets;
  for (const Row& row : sales->rows()) {
    baskets[row[0].long_value()].insert(row[1].text_value());
  }
  auto conf = [&](const char* a, const char* b) {
    int with_a = 0;
    int with_both = 0;
    for (const auto& [id, basket] : baskets) {
      if (basket.count(a) > 0) {
        ++with_a;
        if (basket.count(b) > 0) ++with_both;
      }
    }
    return with_a > 0 ? static_cast<double>(with_both) / with_a : 0.0;
  };
  auto marginal = [&](const char* b) {
    int with_b = 0;
    for (const auto& [id, basket] : baskets) {
      if (basket.count(b) > 0) ++with_b;
    }
    return static_cast<double>(with_b) / baskets.size();
  };
  // Planted TV => VCR at 0.8: confidence must far exceed VCR's base rate.
  EXPECT_GT(conf("TV", "VCR"), 0.6);
  EXPECT_GT(conf("TV", "VCR"), 2 * marginal("VCR"));
  EXPECT_GT(conf("Seeds", "Garden Tools"), 0.6);
}

TEST(DatagenTest, PaperExampleMatchesTable1) {
  rel::Database db;
  ASSERT_TRUE(LoadPaperExample(&db).ok());
  auto r = rel::ExecuteSql(&db,
                           "SELECT * FROM Customers WHERE [Customer ID] = 1");
  // Bracketed identifiers work through the SQL engine too.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->Get(0, "Gender")->text_value(), "Male");
  EXPECT_EQ(r->Get(0, "Hair Color")->text_value(), "Black");
  EXPECT_EQ(r->Get(0, "Age")->long_value(), 35);
  EXPECT_EQ(r->Get(0, "Age Probability")->double_value(), 1.0);

  // The flattened 3-way join of the paper's §3.1 discussion produces exactly
  // 4 purchases x 2 cars = 8 rows for customer 1 ("lots of replication").
  auto join = rel::ExecuteSql(&db, R"(
      SELECT c.[Customer ID], s.[Product Name], o.[Car]
      FROM Customers c
      INNER JOIN Sales s ON c.[Customer ID] = s.[CustID]
      INNER JOIN CarOwnership o ON c.[Customer ID] = o.[CustID]
      WHERE c.[Customer ID] = 1)");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_EQ(join->num_rows(), 8u);
}

TEST(DatagenTest, TableNameOverridesAllowCoexistingWarehouses) {
  rel::Database db;
  WarehouseConfig a;
  a.num_customers = 10;
  WarehouseConfig b;
  b.num_customers = 10;
  b.customers_table = "C2";
  b.sales_table = "S2";
  b.cars_table = "O2";
  b.first_customer_id = 1000;
  ASSERT_TRUE(PopulateWarehouse(&db, a).ok());
  ASSERT_TRUE(PopulateWarehouse(&db, b).ok());
  EXPECT_TRUE(db.HasTable("Customers"));
  EXPECT_TRUE(db.HasTable("C2"));
  // Re-creating the same tables fails loudly.
  EXPECT_FALSE(PopulateWarehouse(&db, a).ok());
}

}  // namespace
}  // namespace dmx::datagen
