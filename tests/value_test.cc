#include "common/value.h"

#include <gtest/gtest.h>

#include "common/nested_table.h"
#include "common/rowset.h"

namespace dmx {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Long(7).long_value(), 7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Text("hi").text_value(), "hi");
  EXPECT_TRUE(Value::Long(1).is_numeric());
  EXPECT_FALSE(Value::Text("1").is_numeric());
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_EQ(*Value::Long(3).AsDouble(), 3.0);
  EXPECT_EQ(*Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_FALSE(Value::Text("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, AsLongRejectsFractions) {
  EXPECT_EQ(*Value::Double(4.0).AsLong(), 4);
  EXPECT_FALSE(Value::Double(4.5).AsLong().ok());
}

TEST(ValueTest, CoerceToColumnTypes) {
  EXPECT_EQ(Value::Long(1).CoerceTo(DataType::kDouble)->double_value(), 1.0);
  EXPECT_EQ(Value::Double(2.0).CoerceTo(DataType::kLong)->long_value(), 2);
  EXPECT_EQ(Value::Long(0).CoerceTo(DataType::kBool)->bool_value(), false);
  EXPECT_EQ(Value::Long(12).CoerceTo(DataType::kText)->text_value(), "12");
  // NULL survives coercion to any type.
  EXPECT_TRUE(Value::Null().CoerceTo(DataType::kDouble)->is_null());
  // Scalars never become tables.
  EXPECT_FALSE(Value::Long(1).CoerceTo(DataType::kTable).ok());
}

TEST(ValueTest, CrossKindNumericEquality) {
  EXPECT_TRUE(Value::Long(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Long(3).Equals(Value::Double(3.5)));
  EXPECT_FALSE(Value::Long(1).Equals(Value::Bool(true)));  // bool is not 1
  EXPECT_FALSE(Value::Long(3).Equals(Value::Text("3")));
  // Hash must agree with the cross-kind equality.
  EXPECT_EQ(Value::Long(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, TotalOrder) {
  // NULL < bool < numbers < text.
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Long(0)), 0);
  EXPECT_LT(Value::Long(5).Compare(Value::Text("")), 0);
  EXPECT_LT(Value::Long(2).Compare(Value::Double(2.5)), 0);
  EXPECT_EQ(Value::Long(2).Compare(Value::Double(2.0)), 0);
  EXPECT_GT(Value::Text("b").Compare(Value::Text("a")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Long(-5).ToString(), "-5");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(4.0).ToString(), "4");
  EXPECT_EQ(Value::Text("abc").ToString(), "abc");
}

std::shared_ptr<const NestedTable> MakeTable(std::vector<int64_t> keys) {
  auto schema = Schema::Make({{"K", DataType::kLong}});
  std::vector<Row> rows;
  for (int64_t k : keys) rows.push_back({Value::Long(k)});
  return NestedTable::Make(schema, std::move(rows));
}

TEST(ValueTest, NestedTableEqualityIsStructural) {
  Value a = Value::Table(MakeTable({1, 2}));
  Value b = Value::Table(MakeTable({1, 2}));
  Value c = Value::Table(MakeTable({1, 3}));
  Value d = Value::Table(MakeTable({1}));
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_FALSE(a.Equals(d));
  EXPECT_EQ(a.ToString(), "#rows=2");
}

TEST(ValueTest, NestedTableSchemaMismatchIsUnequal) {
  auto schema2 = Schema::Make({{"X", DataType::kLong}});
  auto other = NestedTable::Make(schema2, {{Value::Long(1)}});
  EXPECT_FALSE(Value::Table(MakeTable({1})).Equals(Value::Table(other)));
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType t : {DataType::kBool, DataType::kLong, DataType::kDouble,
                     DataType::kText, DataType::kTable}) {
    auto parsed = DataTypeFromString(DataTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_EQ(*DataTypeFromString("long"), DataType::kLong);
  EXPECT_EQ(*DataTypeFromString("FLOAT"), DataType::kDouble);
  EXPECT_FALSE(DataTypeFromString("BLOB").ok());
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema schema({{"Customer ID", DataType::kLong}, {"Gender", DataType::kText}});
  EXPECT_EQ(schema.FindColumn("customer id"), 0);
  EXPECT_EQ(schema.FindColumn("GENDER"), 1);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
  EXPECT_TRUE(schema.ResolveColumn("missing").status().IsBindError());
}

TEST(SchemaTest, EqualsComparesNestedSchemas) {
  auto nested_a = Schema::Make({{"P", DataType::kText}});
  auto nested_b = Schema::Make({{"P", DataType::kLong}});
  Schema a({{"Id", DataType::kLong}, ColumnDef("T", nested_a)});
  Schema b({{"id", DataType::kLong}, ColumnDef("t", nested_a)});
  Schema c({{"Id", DataType::kLong}, ColumnDef("T", nested_b)});
  EXPECT_TRUE(a.Equals(b));  // names fold case
  EXPECT_FALSE(a.Equals(c));
}

TEST(RowsetTest, AppendChecksArity) {
  Rowset rs(Schema::Make({{"A", DataType::kLong}, {"B", DataType::kText}}));
  EXPECT_TRUE(rs.Append({Value::Long(1), Value::Text("x")}).ok());
  EXPECT_FALSE(rs.Append({Value::Long(1)}).ok());
  EXPECT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.Get(0, "b")->text_value(), "x");
  EXPECT_FALSE(rs.Get(0, "c").ok());
  EXPECT_FALSE(rs.Get(5, "a").ok());
}

TEST(RowsetTest, ApproxBytesGrowsWithData) {
  Rowset small(Schema::Make({{"A", DataType::kLong}}));
  Rowset big(Schema::Make({{"A", DataType::kLong}}));
  (void)small.Append({Value::Long(1)});
  for (int i = 0; i < 100; ++i) (void)big.Append({Value::Long(i)});
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
}

TEST(RowsetTest, ReaderRoundTrip) {
  Rowset rs(Schema::Make({{"A", DataType::kLong}}));
  for (int i = 0; i < 5; ++i) (void)rs.Append({Value::Long(i)});
  VectorRowsetReader reader(rs);
  auto copy = reader.ReadAll();
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->num_rows(), 5u);
  EXPECT_TRUE(copy->at(4, 0).Equals(Value::Long(4)));
  // Reader is exhausted now.
  Row row;
  auto again = reader.Next(&row);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(RowsetTest, ToStringShowsHeadersAndNested) {
  Rowset rs(Schema::Make({{"Id", DataType::kLong},
                          ColumnDef("T", Schema::Make({{"K", DataType::kLong}}))}));
  (void)rs.Append({Value::Long(1), Value::Table(MakeTable({9}))});
  std::string flat = rs.ToString();
  EXPECT_NE(flat.find("Id"), std::string::npos);
  EXPECT_NE(flat.find("#rows=1"), std::string::npos);
  std::string expanded = rs.ToString(/*expand_nested=*/true);
  EXPECT_NE(expanded.find("9"), std::string::npos);
}

}  // namespace
}  // namespace dmx
