// Bounded systematic exploration of the DESIGN.md §9 lock regime under the
// deterministic scheduler (common/det_sched.h): small multi-threaded
// scenarios — DDL vs reads vs checkpoints, admission queue waits, guard
// cancellation — swept across hundreds of seed-enumerated schedules. Every
// schedule must complete without deadlock, without lockdep violations
// (violations abort: no handler is installed here) and with the catalog in
// the state the statements imply. Requires -DDMX_DEBUG_LOCKS=ON.

#include <gtest/gtest.h>

#include "common/mutex.h"

#ifndef DMX_DEBUG_LOCKS

namespace dmx {
namespace {

TEST(LockRegimeExploreTest, RequiresDebugLocksBuild) {
  GTEST_SKIP() << "det-sched exists only under -DDMX_DEBUG_LOCKS=ON "
                  "(cmake -B build-lockdep -DDMX_DEBUG_LOCKS=ON)";
}

}  // namespace
}  // namespace dmx

#else  // DMX_DEBUG_LOCKS

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/det_sched.h"
#include "common/env.h"
#include "common/lockdep.h"
#include "core/provider.h"

namespace dmx {
namespace {

void WipeDir(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)env->DeleteFile(dir + "/" + f);
  }
}

/// Executes `statement` and records any failure (the scenario runs on
/// det-sched worker threads; gtest failure macros are thread-safe here).
void Must(Connection* conn, const std::string& statement) {
  auto result = conn->Execute(statement);
  if (!result.ok()) {
    ADD_FAILURE() << statement << " -> " << result.status().ToString();
  }
}

/// One schedule of the core scenario: a DDL/DML session, a reading session
/// and a checkpointer race on a store-backed provider. Returns the schedule
/// hash; fails the test on deadlock or any unexpected statement outcome.
uint64_t RunDdlQueryCheckpoint(Provider* provider, uint64_t seed) {
  detsched::Options options;
  options.seed = seed;
  std::vector<std::function<void()>> bodies;
  bodies.push_back([provider] {
    auto conn = provider->Connect();
    Must(conn.get(), "CREATE TABLE [T] ([A] LONG)");
    Must(conn.get(), "INSERT INTO [T] VALUES (1), (2), (3)");
    Must(conn.get(), "DELETE FROM [T] WHERE [A] = 3");
  });
  bodies.push_back([provider] {
    auto conn = provider->Connect();
    for (int round = 0; round < 2; ++round) {
      // The table may not exist yet in this schedule; anything else is a
      // regime violation.
      auto count = conn->Execute("SELECT COUNT(*) AS N FROM [T]");
      if (!count.ok() && !count.status().IsNotFound()) {
        ADD_FAILURE() << count.status().ToString();
      }
      auto models = conn->GetSchemaRowset(SchemaRowsetKind::kMiningModels);
      if (!models.ok()) ADD_FAILURE() << models.status().ToString();
    }
  });
  bodies.push_back([provider] {
    for (int round = 0; round < 2; ++round) {
      Status status = provider->Checkpoint();
      if (!status.ok()) ADD_FAILURE() << status.ToString();
    }
  });

  detsched::RunResult result =
      detsched::RunScenario(options, std::move(bodies));
  EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.failure;
  return result.schedule_hash;
}

/// Post-run invariant: whatever the schedule, the surviving catalog state is
/// the sequential outcome of the DDL thread's statements.
void CheckCatalogInvariant(Provider* provider) {
  auto conn = provider->Connect();
  auto rows = conn->Execute("SELECT * FROM [T]");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->num_rows(), 2u);  // 3 inserted, 1 deleted
}

// The acceptance sweep: enumerate schedules of the DDL / query / checkpoint
// scenario until 500 distinct ones have run (same seed => same schedule, so
// distinct hashes == distinct schedules). Every schedule must be deadlock-
// and violation-free and leave the catalog consistent; every 50th run the
// store is reopened to prove the journal that schedule wrote replays.
TEST(LockRegimeExploreTest, DdlQueryCheckpointSweep) {
  const std::string dir = ::testing::TempDir() + "/explore_sweep";
  const uint64_t violations_before = lockdep::violation_count();

  std::unordered_set<uint64_t> distinct;
  std::unordered_map<uint64_t, uint64_t> hash_by_seed;
  constexpr size_t kTargetSchedules = 500;
  constexpr uint64_t kSeedBudget = 3000;
  uint64_t seed = 1;
  for (; seed <= kSeedBudget && distinct.size() < kTargetSchedules; ++seed) {
    WipeDir(dir);
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    uint64_t hash = RunDdlQueryCheckpoint(&provider, seed);
    if (HasFailure()) break;  // one diagnosed schedule beats 500 green ones
    distinct.insert(hash);
    hash_by_seed[seed] = hash;
    CheckCatalogInvariant(&provider);

    if (seed % 50 == 0) {
      Provider reopened;
      ASSERT_TRUE(reopened.OpenStore(dir).ok());
      CheckCatalogInvariant(&reopened);
    }
  }
  EXPECT_GE(distinct.size(), kTargetSchedules)
      << "only " << distinct.size() << " distinct schedules in " << seed - 1
      << " seeds";
  EXPECT_EQ(lockdep::violation_count(), violations_before);

  // Determinism spot-check: replaying a sampled seed reproduces its
  // schedule bit for bit.
  for (uint64_t replay : {uint64_t{1}, uint64_t{101}, uint64_t{401}}) {
    auto it = hash_by_seed.find(replay);
    if (it == hash_by_seed.end()) continue;
    WipeDir(dir);
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    EXPECT_EQ(RunDdlQueryCheckpoint(&provider, replay), it->second)
        << "seed " << replay << " replayed to a different schedule";
  }
}

// Same seed, same schedule — checked exhaustively on an in-memory scenario
// (no store I/O in the loop), across several seeds and repeated runs.
TEST(LockRegimeExploreTest, SameSeedReproducesSameSchedule) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    uint64_t first_hash = 0;
    for (int repeat = 0; repeat < 3; ++repeat) {
      Provider provider;
      detsched::Options options;
      options.seed = seed;
      std::vector<std::function<void()>> bodies;
      bodies.push_back([&provider] {
        auto conn = provider.Connect();
        Must(conn.get(), "CREATE TABLE [D] ([A] LONG)");
        Must(conn.get(), "INSERT INTO [D] VALUES (1), (2)");
      });
      bodies.push_back([&provider] {
        auto conn = provider.Connect();
        auto rows = conn->Execute("SELECT COUNT(*) AS N FROM [D]");
        if (!rows.ok() && !rows.status().IsNotFound()) {
          ADD_FAILURE() << rows.status().ToString();
        }
      });
      detsched::RunResult result =
          detsched::RunScenario(options, std::move(bodies));
      ASSERT_TRUE(result.ok) << result.failure;
      if (repeat == 0) {
        first_hash = result.schedule_hash;
      } else {
        EXPECT_EQ(result.schedule_hash, first_hash) << "seed " << seed;
      }
    }
  }
}

// Admission waits under the scheduler: 3 statements against a cap of
// 1 active + 2 queued. In every schedule all three eventually execute —
// the queue poll loop must neither deadlock the cooperative world nor be
// reported as a deadlock (it is a timed wait, not a blocked acquisition).
TEST(LockRegimeExploreTest, AdmissionQueueDrainsOnEverySchedule) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Provider provider;
    provider.SetAdmissionLimits(/*max_active=*/1, /*max_queued=*/2);
    {
      auto conn = provider.Connect();
      Must(conn.get(), "CREATE TABLE [Q] ([A] LONG)");
      Must(conn.get(), "INSERT INTO [Q] VALUES (1), (2), (3)");
    }

    detsched::Options options;
    options.seed = seed;
    std::vector<std::function<void()>> bodies;
    for (int i = 0; i < 3; ++i) {
      bodies.push_back([&provider] {
        auto conn = provider.Connect();
        // With queue room for everyone, rejection would be a regime bug.
        Must(conn.get(), "SELECT COUNT(*) AS N FROM [Q]");
      });
    }
    detsched::RunResult result =
        detsched::RunScenario(options, std::move(bodies));
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.failure;
  }
}

// Guard cancellation racing a writer: the cancelled statement must unwind
// cleanly (ok if it won the race, kCancelled otherwise) on every schedule,
// and the uncancelled writer must always complete.
TEST(LockRegimeExploreTest, CancellationUnwindsOnEverySchedule) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Provider provider;
    {
      auto conn = provider.Connect();
      Must(conn.get(), "CREATE TABLE [C] ([A] LONG)");
      Must(conn.get(), "INSERT INTO [C] VALUES (1), (2), (3), (4)");
    }

    auto token = std::make_shared<CancelToken>();
    detsched::Options options;
    options.seed = seed;
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&provider, token] {
      auto conn = provider.Connect();
      ExecLimits limits;
      limits.cancel = token;
      conn->set_limits(limits);
      auto result = conn->Execute("SELECT [A] FROM [C] ORDER BY [A]");
      if (!result.ok() && !result.status().IsCancelled()) {
        ADD_FAILURE() << result.status().ToString();
      }
    });
    bodies.push_back([&provider] {
      auto conn = provider.Connect();
      Must(conn.get(), "INSERT INTO [C] VALUES (5), (6)");
      Must(conn.get(), "DELETE FROM [C] WHERE [A] = 1");
    });
    bodies.push_back([token] { token->Cancel(); });

    detsched::RunResult result =
        detsched::RunScenario(options, std::move(bodies));
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.failure;

    auto conn = provider.Connect();
    auto rows = conn->Execute("SELECT * FROM [C]");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->num_rows(), 5u);  // 4 + 2 inserted, 1 deleted
  }
}

// CI smoke preset: a 20-seed slice of the core scenario, sized for the
// sanitizer jobs (TSan multiplies runtime ~10x; the full sweep lives in the
// dedicated lockdep job).
TEST(LockRegimeExploreTest, SmokeSweep) {
  const std::string dir = ::testing::TempDir() + "/explore_smoke";
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WipeDir(dir);
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    RunDdlQueryCheckpoint(&provider, seed);
    ASSERT_FALSE(HasFailure()) << "seed " << seed;
    CheckCatalogInvariant(&provider);
  }
}

}  // namespace
}  // namespace dmx

#endif  // DMX_DEBUG_LOCKS
