// Env: POSIX primitives (write/read/rename/truncate/list) and the
// FaultInjectionEnv contract the crash-recovery suite depends on — the Nth
// mutating op fails, everything after it fails too, torn writes persist a
// prefix, and ENOSPC surfaces as kResourceExhausted.

#include "common/env.h"

#include <gtest/gtest.h>

namespace dmx {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/env_test_" + name;
}

TEST(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  std::string path = TestPath("roundtrip.txt");
  ASSERT_TRUE(env->WriteStringToFile(path, "hello\0world", true).ok());
  auto read = env->ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::string("hello\0world"));
  EXPECT_TRUE(env->FileExists(path));
  auto size = env->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, read->size());
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(EnvTest, MissingFileIsNotFound) {
  Env* env = Env::Default();
  auto read = env->ReadFileToString(TestPath("does_not_exist"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_NE(read.status().message().find("does_not_exist"),
            std::string::npos);
}

TEST(EnvTest, AppendModeExtends) {
  Env* env = Env::Default();
  std::string path = TestPath("append.txt");
  ASSERT_TRUE(env->WriteStringToFile(path, "one", true).ok());
  {
    auto file = env->NewWritableFile(path, /*append=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("two").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(*env->ReadFileToString(path), "onetwo");
  (void)env->DeleteFile(path);
}

TEST(EnvTest, AtomicWriteReplaces) {
  Env* env = Env::Default();
  std::string path = TestPath("atomic.txt");
  ASSERT_TRUE(env->AtomicWriteFile(path, "v1").ok());
  ASSERT_TRUE(env->AtomicWriteFile(path, "v2").ok());
  EXPECT_EQ(*env->ReadFileToString(path), "v2");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
  (void)env->DeleteFile(path);
}

TEST(EnvTest, TruncateAndListDir) {
  Env* env = Env::Default();
  std::string dir = TestPath("dir");
  ASSERT_TRUE(env->CreateDir(dir).ok());
  ASSERT_TRUE(env->CreateDir(dir).ok());  // idempotent
  ASSERT_TRUE(env->WriteStringToFile(dir + "/a", "abcdef", true).ok());
  ASSERT_TRUE(env->TruncateFile(dir + "/a", 3).ok());
  EXPECT_EQ(*env->ReadFileToString(dir + "/a"), "abc");
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "a");
  (void)env->DeleteFile(dir + "/a");
}

TEST(EnvTest, SyncDirChecksTheDirectory) {
  Env* env = Env::Default();
  std::string dir = TestPath("syncdir");
  ASSERT_TRUE(env->CreateDir(dir).ok());
  EXPECT_TRUE(env->SyncDir(dir).ok());
  EXPECT_FALSE(env->SyncDir(TestPath("syncdir_missing")).ok());
}

TEST(FaultInjectionTest, DirSyncIsAMutatingOp) {
  FaultInjectionEnv env(Env::Default());
  std::string dir = TestPath("fault_syncdir");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  env.ArmFault(0, FaultInjectionEnv::FaultKind::kIOError);
  EXPECT_FALSE(env.SyncDir(dir).ok());
  EXPECT_TRUE(env.fault_fired());
  env.Disarm();
  EXPECT_TRUE(env.SyncDir(dir).ok());
}

TEST(FaultInjectionTest, FailsNthOpAndEveryOpAfter) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TestPath("fault_nth.txt");
  // WriteStringToFile = open + append + sync + close = 4 ops; fail the sync.
  env.ArmFault(2, FaultInjectionEnv::FaultKind::kIOError);
  Status status = env.WriteStringToFile(path, "data", true);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_TRUE(env.fault_fired());
  // The process is "dead": later mutating ops fail too.
  EXPECT_FALSE(env.WriteStringToFile(path, "more", true).ok());
  EXPECT_FALSE(env.RenameFile(path, path + ".x").ok());
  // Reads still pass through.
  EXPECT_TRUE(env.ReadFileToString(path).ok());
  env.Disarm();
  EXPECT_TRUE(env.WriteStringToFile(path, "after", true).ok());
  (void)Env::Default()->DeleteFile(path);
}

TEST(FaultInjectionTest, CountsOpsWithoutFailing) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TestPath("fault_count.txt");
  env.ArmFault(INT64_MAX, FaultInjectionEnv::FaultKind::kIOError);
  ASSERT_TRUE(env.WriteStringToFile(path, "data", true).ok());
  EXPECT_EQ(env.op_count(), 4);  // open + append + sync + close
  EXPECT_FALSE(env.fault_fired());
  (void)Env::Default()->DeleteFile(path);
}

TEST(FaultInjectionTest, TornWritePersistsPrefix) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TestPath("fault_torn.txt");
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path, "", true).ok());
  env.ArmFault(1, FaultInjectionEnv::FaultKind::kTornWrite);  // fail append
  Status status = env.WriteStringToFile(path, "0123456789", true);
  ASSERT_FALSE(status.ok());
  auto left_behind = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(left_behind.ok());
  EXPECT_EQ(*left_behind, "01234");  // half the record reached the disk
  (void)Env::Default()->DeleteFile(path);
}

TEST(FaultInjectionTest, NoSpaceSurfacesResourceExhausted) {
  FaultInjectionEnv env(Env::Default());
  std::string path = TestPath("fault_enospc.txt");
  env.ArmFault(1, FaultInjectionEnv::FaultKind::kNoSpace);
  Status status = env.WriteStringToFile(path, "data", true);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(status.IsResourceExhausted());
  (void)Env::Default()->DeleteFile(path);
}

}  // namespace
}  // namespace dmx
