#include "common/string_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>

namespace dmx {
namespace {

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
  EXPECT_TRUE(EqualsCi("SELECT", "select"));
  EXPECT_TRUE(EqualsCi("", ""));
  EXPECT_FALSE(EqualsCi("abc", "abcd"));
  EXPECT_FALSE(EqualsCi("abc", "abd"));
}

TEST(StringUtilTest, LessCiIsAStrictWeakOrder) {
  LessCi less;
  EXPECT_TRUE(less("Apple", "banana"));
  EXPECT_FALSE(less("banana", "Apple"));
  EXPECT_FALSE(less("ABC", "abc"));
  EXPECT_FALSE(less("abc", "ABC"));
  EXPECT_TRUE(less("ab", "abc"));
  // Usable as a map comparator with case-insensitive keys.
  std::map<std::string, int, LessCi> m;
  m["Alpha"] = 1;
  m["ALPHA"] = 2;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m["alpha"], 2);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',')[0], "abc");
}

TEST(StringUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWithCi("SELECT * FROM", "select"));
  EXPECT_FALSE(StartsWithCi("SEL", "select"));
}

TEST(StringUtilTest, QuoteIdentifier) {
  EXPECT_EQ(QuoteIdentifier("Age"), "Age");
  EXPECT_EQ(QuoteIdentifier("snake_case_2"), "snake_case_2");
  EXPECT_EQ(QuoteIdentifier("Age Prediction"), "[Age Prediction]");
  EXPECT_EQ(QuoteIdentifier("1starts_with_digit"), "[1starts_with_digit]");
  EXPECT_EQ(QuoteIdentifier("has]bracket"), "[has]]bracket]");
  EXPECT_EQ(QuoteIdentifier(""), "[]");
}

TEST(FormatDoubleTest, SpecialsAndIntegers) {
  EXPECT_EQ(FormatDouble(0), "0");
  EXPECT_EQ(FormatDouble(-3), "-3");
  EXPECT_EQ(FormatDouble(1e6), "1000000");
  EXPECT_EQ(FormatDouble(std::nan("")), "NaN");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "Inf");
}

// Property: FormatDouble output re-parses to the exact same double.
class FormatDoubleRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(FormatDoubleRoundTrip, Exact) {
  double v = GetParam();
  std::string text = FormatDouble(v);
  double parsed = std::strtod(text.c_str(), nullptr);
  EXPECT_EQ(parsed, v) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Values, FormatDoubleRoundTrip,
    ::testing::Values(0.1, 1.0 / 3.0, 2.5, -17.125, 1e-12, 3.141592653589793,
                      123456.789, 1e15, 5e-324, 0.30000000000000004));

}  // namespace
}  // namespace dmx
