// Runtime lockdep (DESIGN.md §11): the lock-order graph must report a
// would-deadlock inversion the FIRST time the inverted order is observed —
// on any interleaving, including fully sequential ones where no thread ever
// blocks — with both lock-class names and the acquisition source spans.
// Requires -DDMX_DEBUG_LOCKS=ON; a plain build compiles the single skip stub.

#include <gtest/gtest.h>

#include "common/mutex.h"

#ifndef DMX_DEBUG_LOCKS

namespace dmx {
namespace {

TEST(LockdepTest, RequiresDebugLocksBuild) {
  GTEST_SKIP() << "lockdep exists only under -DDMX_DEBUG_LOCKS=ON "
                  "(cmake -B build-lockdep -DDMX_DEBUG_LOCKS=ON)";
}

}  // namespace
}  // namespace dmx

#else  // DMX_DEBUG_LOCKS

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.h"

namespace dmx {
namespace {

/// Captures violations instead of the default print-and-abort, and isolates
/// each test's ordering state (edges, reported pairs, counters) from the
/// rest of the binary. Lock classes persist process-wide by design, so every
/// test names its locks uniquely.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::ResetGraphForTest();
    previous_ = lockdep::SetViolationHandler(
        [this](const lockdep::Violation& violation) {
          captured_.push_back(violation);
        });
  }

  void TearDown() override {
    lockdep::SetViolationHandler(std::move(previous_));
    lockdep::ResetGraphForTest();
  }

  /// All captured messages for `rule`, concatenated (order-independent).
  std::string MessagesFor(const std::string& rule) const {
    std::string joined;
    for (const lockdep::Violation& violation : captured_) {
      if (violation.rule == rule) joined += violation.message + "\n";
    }
    return joined;
  }

  std::vector<lockdep::Violation> captured_;
  lockdep::ViolationHandler previous_;
};

// The seeded inversion of the acceptance criteria: thread 1 establishes
// A -> B, thread 2 (running only after thread 1 fully finished — the locks
// are never even contended) acquires B -> A. lockdep must report the
// inversion anyway, naming both classes and where each acquisition happened.
TEST_F(LockdepTest, ReportsInversionAcrossDisjointThreads) {
  Mutex a("inv.A");
  Mutex b("inv.B");

  std::thread first([&] {
    MutexLock hold_a(&a);
    MutexLock hold_b(&b);
  });
  first.join();
  ASSERT_TRUE(captured_.empty()) << captured_.front().message;

  std::thread second([&] {
    MutexLock hold_b(&b);
    MutexLock hold_a(&a);  // inverted: closes the cycle A -> B -> A
  });
  second.join();

  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].rule, "lock-order-inversion");
  const std::string& message = captured_[0].message;
  EXPECT_NE(message.find("inv.A"), std::string::npos) << message;
  EXPECT_NE(message.find("inv.B"), std::string::npos) << message;
  // Both the held-at and acquiring-at spans point into this file.
  EXPECT_NE(message.find("lockdep_test.cc"), std::string::npos) << message;
  EXPECT_EQ(lockdep::violation_count(), 1u);
}

// One report per inverted pair: re-running the inverted order must not
// produce a second diagnostic.
TEST_F(LockdepTest, ReportsEachInvertedPairOnce) {
  Mutex a("once.A");
  Mutex b("once.B");
  {
    MutexLock hold_a(&a);
    MutexLock hold_b(&b);
  }
  for (int round = 0; round < 3; ++round) {
    MutexLock hold_b(&b);
    MutexLock hold_a(&a);
  }
  EXPECT_EQ(captured_.size(), 1u);
}

// Reader/writer edges participate in cycles: shared-then-exclusive on one
// thread and exclusive-then-shared on another can deadlock just like two
// exclusive orders (a queued writer blocks the second reader).
TEST_F(LockdepTest, SharedAcquisitionsParticipateInOrdering) {
  SharedMutex rw("rw.S");
  Mutex m("rw.M");

  std::thread first([&] {
    ReaderMutexLock hold_shared(&rw);
    MutexLock hold_m(&m);
  });
  first.join();
  std::thread second([&] {
    MutexLock hold_m(&m);
    ReaderMutexLock hold_shared(&rw);  // inverted, shared mode
  });
  second.join();

  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].rule, "lock-order-inversion");
  EXPECT_NE(captured_[0].message.find("shared"), std::string::npos)
      << captured_[0].message;
}

// A bounded try-acquisition cannot be the waiting leg of a deadlock, so it
// must not record an incoming edge: try(A->B) then blocking(B->A) is clean.
TEST_F(LockdepTest, TryLockAddsNoIncomingEdge) {
  Mutex a("try.A");
  SharedMutex b("try.B");
  {
    MutexLock hold_a(&a);
    ASSERT_TRUE(b.TryLockFor(std::chrono::milliseconds(10)));
    b.Unlock();
  }
  {
    WriterMutexLock hold_b(&b);
    MutexLock hold_a(&a);  // records B -> A; no A -> B edge exists
  }
  EXPECT_TRUE(captured_.empty())
      << captured_.front().rule << ": " << captured_.front().message;
}

// Same-class re-acquisition is self-deadlock-shaped even across instances:
// two locks born with the same class name ordered against each other means
// some pair of instances can be taken in both orders.
TEST_F(LockdepTest, FlagsSameClassNesting) {
  Mutex first_twin("twin");
  Mutex second_twin("twin");
  MutexLock hold_first(&first_twin);
  MutexLock hold_second(&second_twin);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].rule, "recursive-acquisition");
  EXPECT_NE(captured_[0].message.find("twin"), std::string::npos)
      << captured_[0].message;
}

// AssertHeld is a real per-thread ownership check under DMX_DEBUG_LOCKS,
// not just a compile-time claim.
TEST_F(LockdepTest, AssertHeldChecksRealOwnership) {
  Mutex m("assert.M");
  m.AssertHeld();  // not held: must report
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].rule, "unheld-assert");

  m.Lock();
  m.AssertHeld();  // held: clean
  m.Unlock();
  EXPECT_EQ(captured_.size(), 1u);

  // Held by ANOTHER thread is still "not held" for the asserting thread.
  m.Lock();
  std::thread other([&] { m.AssertHeld(); });
  other.join();
  m.Unlock();
  EXPECT_EQ(captured_.size(), 2u);
}

// A shared hold satisfies AssertReaderHeld but not the exclusive AssertHeld.
TEST_F(LockdepTest, SharedHoldIsNotExclusiveOwnership) {
  SharedMutex rw("assert.S");
  ReaderMutexLock hold_shared(&rw);
  rw.AssertReaderHeld();
  EXPECT_TRUE(captured_.empty());
  rw.AssertHeld();
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].rule, "unheld-assert");
  EXPECT_NE(captured_[0].message.find("shared"), std::string::npos)
      << captured_[0].message;
}

// The held-set tracks nested scopes and drains back to empty — the owner
// table AssertHeld reads must not leak entries across statements.
TEST_F(LockdepTest, HeldSetTracksScopes) {
  Mutex m("held.M");
  SharedMutex rw("held.S");
  EXPECT_EQ(lockdep::HeldCount(), 0);
  {
    MutexLock hold_m(&m);
    EXPECT_EQ(lockdep::HeldCount(), 1);
    {
      ReaderMutexLock hold_shared(&rw);
      EXPECT_EQ(lockdep::HeldCount(), 2);
    }
    EXPECT_EQ(lockdep::HeldCount(), 1);
  }
  EXPECT_EQ(lockdep::HeldCount(), 0);
  EXPECT_TRUE(captured_.empty());
}

}  // namespace
}  // namespace dmx

#endif  // DMX_DEBUG_LOCKS
