// Prediction join + UDFs: end-to-end through the provider, covering every
// shipped function, ON vs NATURAL equivalence, FLATTENED semantics, TOP,
// and the error surface.

#include "core/prediction_join.h"

#include <gtest/gtest.h>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

class PredictionJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = provider_.Connect();
    datagen::WarehouseConfig config;
    config.num_customers = 400;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
    Must(R"(
      CREATE MINING MODEL [M] (
        [Customer ID] LONG KEY,
        [Gender] TEXT DISCRETE,
        [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,
        [Product Purchases] TABLE(
          [Product Name] TEXT KEY,
          [Product Type] TEXT DISCRETE RELATED TO [Product Name]
        )
      ) USING Naive_Bayes)");
    Must(R"(
      INSERT INTO [M]
      SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers
             ORDER BY [Customer ID]}
      APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
               ORDER BY [CustID]}
              RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  }

  Rowset Must(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_TRUE(result.ok()) << command << "\n-> "
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Status Fails(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_FALSE(result.ok()) << command;
    return result.status();
  }

  static constexpr const char* kNaturalSource = R"(
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM Customers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(PredictionJoinTest, EveryScalarUdf) {
  Rowset r = Must(std::string(R"(
    SELECT t.[Customer ID],
           Predict([Age]) AS P,
           [M].[Age] AS ColumnForm,
           PredictProbability([Age]) AS Prob,
           PredictSupport([Age]) AS Supp,
           PredictVariance([Age]) AS Var,
           PredictStdev([Age]) AS Sd,
           RangeMin([Age]) AS Lo,
           RangeMid([Age]) AS Mid,
           RangeMax([Age]) AS Hi
    FROM [M])") + kNaturalSource);
  ASSERT_EQ(r.num_rows(), 400u);
  for (size_t i = 0; i < r.num_rows(); ++i) {
    // Predict([Age]) and [M].[Age] agree.
    EXPECT_TRUE(r.at(i, 1).Equals(r.at(i, 2)));
    double prob = r.at(i, 3).double_value();
    EXPECT_GT(prob, 0);
    EXPECT_LE(prob, 1 + 1e-9);
    EXPECT_GT(r.at(i, 4).double_value(), 0);  // support
    // Range* bracket the bucket: Lo <= Mid <= Hi when bounded.
    if (!r.at(i, 7).is_null() && !r.at(i, 9).is_null()) {
      EXPECT_LE(r.at(i, 7).double_value(), r.at(i, 8).double_value());
      EXPECT_LE(r.at(i, 8).double_value(), r.at(i, 9).double_value());
    }
  }
}

TEST_F(PredictionJoinTest, HistogramIsSortedAndNormalized) {
  Rowset r = Must(std::string(R"(
    SELECT PredictHistogram([Age]) AS H FROM [M])") + kNaturalSource);
  for (const Row& row : r.rows()) {
    ASSERT_TRUE(row[0].is_table());
    const NestedTable& h = *row[0].table_value();
    ASSERT_GT(h.num_rows(), 0u);
    double total = 0;
    double previous = 2;
    size_t prob_col = *h.schema()->ResolveColumn("$PROBABILITY");
    for (const Row& entry : h.rows()) {
      double p = entry[prob_col].double_value();
      EXPECT_LE(p, previous + 1e-12);  // descending
      previous = p;
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST_F(PredictionJoinTest, TopCountTrimsHistograms) {
  Rowset r = Must(std::string(R"(
    SELECT TopCount(PredictHistogram([Age]), $Probability, 2) AS H
    FROM [M])") + kNaturalSource);
  for (const Row& row : r.rows()) {
    EXPECT_LE(row[0].table_value()->num_rows(), 2u);
  }
}

TEST_F(PredictionJoinTest, OnClauseMatchesNatural) {
  std::string on_query = R"(
    SELECT t.[Customer ID], [M].[Age]
    FROM [M]
    PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM Customers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
    ON [M].[Gender] = t.[Gender] AND
       [M].[Product Purchases].[Product Name] =
         t.[Product Purchases].[Product Name] AND
       [M].[Product Purchases].[Product Type] =
         t.[Product Purchases].[Product Type])";
  Rowset on_result = Must(on_query);
  Rowset natural = Must(std::string(R"(
    SELECT t.[Customer ID], [M].[Age] FROM [M])") + kNaturalSource);
  ASSERT_EQ(on_result.num_rows(), natural.num_rows());
  for (size_t i = 0; i < natural.num_rows(); ++i) {
    EXPECT_TRUE(on_result.at(i, 0).Equals(natural.at(i, 0)));
    EXPECT_TRUE(on_result.at(i, 1).Equals(natural.at(i, 1)));
  }
}

TEST_F(PredictionJoinTest, TopLimitsCases) {
  Rowset r = Must(std::string(R"(
    SELECT TOP 7 t.[Customer ID] FROM [M])") + kNaturalSource);
  EXPECT_EQ(r.num_rows(), 7u);
}

TEST_F(PredictionJoinTest, FlattenedExpandsAndRenames) {
  Rowset nested = Must(std::string(R"(
    SELECT t.[Customer ID], PredictHistogram([Age]) AS H
    FROM [M])") + kNaturalSource);
  Rowset flat = Must(std::string(R"(
    SELECT FLATTENED t.[Customer ID], PredictHistogram([Age]) AS H
    FROM [M])") + kNaturalSource);
  size_t expected = 0;
  for (const Row& row : nested.rows()) {
    expected += std::max<size_t>(1, row[1].table_value()->num_rows());
  }
  EXPECT_EQ(flat.num_rows(), expected);
  EXPECT_TRUE(flat.schema()->HasColumn("H.Age"));
  EXPECT_TRUE(flat.schema()->HasColumn("H.$PROBABILITY"));
}

TEST_F(PredictionJoinTest, FlattenRowsetHandlesEmptyTables) {
  auto nested_schema = Schema::Make({{"K", DataType::kLong}});
  Rowset input(Schema::Make({{"Id", DataType::kLong},
                             ColumnDef("T", nested_schema)}));
  (void)input.Append({Value::Long(1),
                      Value::Table(NestedTable::Make(nested_schema, {}))});
  auto flat = FlattenRowset(input);
  ASSERT_TRUE(flat.ok());
  ASSERT_EQ(flat->num_rows(), 1u);
  EXPECT_TRUE(flat->at(0, 1).is_null());  // empty table -> one NULL row
}

// Regression: a nested table whose actual width disagrees with the schema the
// outer TABLE column declares used to be *silently dropped* during FLATTENED
// expansion (the Append failure was discarded). It must surface as an error.
TEST_F(PredictionJoinTest, FlattenRowsetRejectsArityMismatchedNestedTable) {
  auto declared = Schema::Make({{"K", DataType::kLong}});
  auto actual = Schema::Make({{"K", DataType::kLong}, {"V", DataType::kText}});
  Rowset input(
      Schema::Make({{"Id", DataType::kLong}, ColumnDef("T", declared)}));
  ASSERT_TRUE(input
                  .Append({Value::Long(1),
                           Value::Table(NestedTable::Make(
                               actual, {{Value::Long(7), Value::Text("x")}}))})
                  .ok());
  auto flat = FlattenRowset(input);
  ASSERT_FALSE(flat.ok());
  EXPECT_EQ(flat.status().code(), StatusCode::kInvalidArgument)
      << flat.status().ToString();
  EXPECT_NE(flat.status().ToString().find("flattening nested table"),
            std::string::npos)
      << flat.status().ToString();
}

TEST_F(PredictionJoinTest, PredictOnTableColumnErrorsForThisService) {
  // Naive_Bayes predicts scalars; [Product Purchases] is not a target.
  Status s = Fails(std::string(R"(
    SELECT Predict([Product Purchases], 3) FROM [M])") + kNaturalSource);
  EXPECT_TRUE(s.IsBindError());
}

TEST_F(PredictionJoinTest, ErrorSurface) {
  // Unknown model.
  EXPECT_TRUE(Fails("SELECT Predict(x) FROM nope NATURAL PREDICTION JOIN "
                    "(SELECT [Customer ID] FROM Customers) AS t")
                  .IsNotFound());
  // Unknown UDF.
  EXPECT_TRUE(Fails(std::string("SELECT Summon([Age]) FROM [M]") +
                    kNaturalSource)
                  .IsNotSupported());
  // Non-predict column in a Predict UDF.
  EXPECT_TRUE(Fails(std::string("SELECT Predict([Gender]) FROM [M]") +
                    kNaturalSource)
                  .IsBindError());
  // Unknown source column.
  EXPECT_TRUE(Fails(std::string("SELECT t.[Ghost] FROM [M]") + kNaturalSource)
                  .IsBindError());
  // Cluster() on a non-segmentation model.
  EXPECT_TRUE(Fails(std::string("SELECT Cluster() FROM [M]") + kNaturalSource)
                  .IsInvalidState());
  // RangeMin on a non-discretized column.
  EXPECT_TRUE(Fails(std::string("SELECT RangeMin([Gender]) FROM [M]") +
                    kNaturalSource)
                  .ok() == false);
}

TEST_F(PredictionJoinTest, PredictProbabilityWithExplicitValue) {
  // Probabilities of every bucket value sum to ~1 for a given case; an
  // unknown value scores 0.
  Rowset hist = Must(std::string(R"(
    SELECT TOP 1 PredictHistogram([Age]) AS H FROM [M])") + kNaturalSource);
  const NestedTable& h = *hist.at(0, 0).table_value();
  size_t value_col = *h.schema()->ResolveColumn("Age");
  double total = 0;
  for (const Row& entry : h.rows()) {
    std::string value = entry[value_col].ToString();
    Rowset p = Must(std::string("SELECT TOP 1 PredictProbability([Age], ") +
                    value + ") AS P FROM [M]" + kNaturalSource);
    total += p.at(0, 0).double_value();
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  Rowset zero = Must(std::string(
      "SELECT TOP 1 PredictProbability([Age], -12345.0) AS P FROM [M]") +
      kNaturalSource);
  EXPECT_DOUBLE_EQ(zero.at(0, 0).double_value(), 0.0);
}

TEST_F(PredictionJoinTest, ClusterUdfsOnSegmentationModel) {
  Must(R"(
    CREATE MINING MODEL [Seg] (
      [Customer ID] LONG KEY,
      [Age] DOUBLE CONTINUOUS,
      [Income] DOUBLE CONTINUOUS
    ) USING Clustering(CLUSTER_COUNT = 3, SEED = 5))");
  Must(R"(
    INSERT INTO [Seg]
    SELECT [Customer ID], [Age], [Income] FROM Customers)");
  Rowset r = Must(R"(
    SELECT Cluster() AS C, ClusterProbability() AS P
    FROM [Seg]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Age], [Income] FROM Customers) AS t)");
  ASSERT_EQ(r.num_rows(), 400u);
  std::set<std::string> clusters;
  for (const Row& row : r.rows()) {
    clusters.insert(row[0].text_value());
    EXPECT_GT(row[1].double_value(), 0.33);
  }
  EXPECT_GE(clusters.size(), 2u);
}

TEST_F(PredictionJoinTest, AssociationTablePrediction) {
  Must(R"(
    CREATE MINING MODEL [Rec] (
      [Customer ID] LONG KEY,
      [Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT
    ) USING Association_Rules(MINIMUM_SUPPORT = 0.05,
                              MINIMUM_PROBABILITY = 0.3))");
  Must(R"(
    INSERT INTO [Rec]
    SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name] FROM Sales ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  Rowset r = Must(R"(
    SELECT t.[Customer ID], Predict([Product Purchases], 3) AS R
    FROM [Rec]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)");
  ASSERT_EQ(r.num_rows(), 400u);
  for (const Row& row : r.rows()) {
    ASSERT_TRUE(row[1].is_table());
    EXPECT_LE(row[1].table_value()->num_rows(), 3u);
    // The recommendation table is keyed by the nested KEY's name.
    EXPECT_EQ(row[1].table_value()->schema()->column(0).name, "Product Name");
  }
}

}  // namespace
}  // namespace dmx
