// Provider / Connection: single-pipe command routing (DMX vs SQL), DELETE
// FROM disambiguation between models and tables, and command error surface.

#include "core/provider.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/env.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

class ProviderTest : public ::testing::Test {
 protected:
  void SetUp() override { conn_ = provider_.Connect(); }

  Rowset Must(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_TRUE(result.ok()) << command << " -> "
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(ProviderTest, BuiltinServicesPreloaded) {
  EXPECT_EQ(provider_.services()->ListServices().size(), 6u);
  // The paper's alias resolves.
  EXPECT_TRUE(provider_.services()->Find("Decision_Trees_101").ok());
  EXPECT_TRUE(provider_.services()->Find("decision_trees").ok());  // ci
  EXPECT_TRUE(provider_.services()->Find("Missing_Service")
                  .status().IsNotFound());
}

TEST_F(ProviderTest, DeleteFromDisambiguatesModelsAndTables) {
  // A table and a model sharing DELETE FROM syntax.
  Must("CREATE TABLE Shared (Id LONG)");
  Must("INSERT INTO Shared VALUES (1), (2)");
  Must("CREATE MINING MODEL [M] (Id LONG KEY, X TEXT DISCRETE PREDICT) "
       "USING Naive_Bayes");
  Must("CREATE TABLE Source (Id LONG, X TEXT)");
  Must("INSERT INTO Source VALUES (1, 'a'), (2, 'b')");
  Must("INSERT INTO [M] SELECT Id, X FROM Source");
  ASSERT_TRUE((*provider_.models()->GetModel("M"))->is_trained());

  // DELETE FROM a table name routes to SQL.
  Must("DELETE FROM Shared");
  EXPECT_EQ(Must("SELECT * FROM Shared").num_rows(), 0u);
  // DELETE FROM the model resets it.
  Must("DELETE FROM M");
  EXPECT_FALSE((*provider_.models()->GetModel("M"))->is_trained());
  // DELETE FROM an unknown name reports the table error.
  auto missing = conn_->Execute("DELETE FROM Nothing");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(ProviderTest, ModelAndTableNamespacesAreIndependent) {
  Must("CREATE TABLE Twin (Id LONG, X TEXT)");
  Must("INSERT INTO Twin VALUES (1, 'a')");
  Must("CREATE MINING MODEL [Twin] (Id LONG KEY, X TEXT DISCRETE PREDICT) "
       "USING Naive_Bayes");
  // SELECT FROM Twin is SQL (the table); model ops name the model.
  EXPECT_EQ(Must("SELECT * FROM Twin").num_rows(), 1u);
  Must("INSERT INTO [Twin] SELECT Id, X FROM Twin");
  EXPECT_TRUE((*provider_.models()->GetModel("Twin"))->is_trained());
  Must("DROP MINING MODEL [Twin]");
  EXPECT_TRUE(provider_.database()->HasTable("Twin"));
}

TEST_F(ProviderTest, CommandErrorSurface) {
  EXPECT_TRUE(conn_->Execute("").status().IsParseError());
  EXPECT_TRUE(conn_->Execute("GIBBERISH COMMAND").status().IsParseError());
  EXPECT_TRUE(conn_->Execute("INSERT INTO nomodel SELECT a FROM t")
                  .status().IsNotFound());
  EXPECT_TRUE(conn_->Execute("DROP MINING MODEL ghost").status().IsNotFound());
  EXPECT_TRUE(conn_->Execute("SELECT * FROM ghost.CONTENT")
                  .status().IsNotFound());
  // Creating a model with an unknown service fails and leaves no entry.
  auto bad = conn_->Execute(
      "CREATE MINING MODEL z (k LONG KEY, x TEXT DISCRETE PREDICT) "
      "USING Warp_Drive");
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_FALSE(provider_.models()->HasModel("z"));
  // Duplicate model names.
  Must("CREATE MINING MODEL dup (k LONG KEY, x TEXT DISCRETE PREDICT) "
       "USING Naive_Bayes");
  EXPECT_EQ(conn_->Execute("CREATE MINING MODEL dup (k LONG KEY, x TEXT "
                           "DISCRETE PREDICT) USING Naive_Bayes")
                .status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ProviderTest, OpenRowsetCsvTrainingPath) {
  // Write a small CSV and train from it via OPENROWSET.
  std::string path = ::testing::TempDir() + "/provider_openrowset.csv";
  {
    Rowset data(Schema::Make({{"Id", DataType::kLong},
                              {"Color", DataType::kText},
                              {"Label", DataType::kText}}));
    for (int i = 0; i < 40; ++i) {
      std::string color = i % 2 == 0 ? "red" : "blue";
      (void)data.Append({Value::Long(i), Value::Text(color),
                         Value::Text(i % 2 == 0 ? "A" : "B")});
    }
    ASSERT_TRUE(rel::SaveCsv(data, path).ok());
  }
  Must("CREATE MINING MODEL csvm (Id LONG KEY, Color TEXT DISCRETE, "
       "Label TEXT DISCRETE PREDICT) USING Naive_Bayes");
  Must("INSERT INTO csvm OPENROWSET('CSV', '" + path + "')");
  EXPECT_DOUBLE_EQ((*provider_.models()->GetModel("csvm"))->case_count(), 40);
  // Unsupported format errors clearly.
  EXPECT_TRUE(conn_->Execute("INSERT INTO csvm OPENROWSET('PARQUET', 'x')")
                  .status().IsNotSupported());
  std::remove(path.c_str());
}

TEST_F(ProviderTest, ExportImportMiningModelStatements) {
  datagen::WarehouseConfig config;
  config.num_customers = 80;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
  Must(R"(CREATE MINING MODEL [Exportable] (
            [Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
            [Customer Loyalty] LONG DISCRETE PREDICT)
          USING Naive_Bayes)");
  Must("INSERT INTO [Exportable] SELECT [Customer ID], [Gender], "
       "[Customer Loyalty] FROM Customers");
  std::string path = ::testing::TempDir() + "/provider_export.xml";
  Must("EXPORT MINING MODEL [Exportable] TO '" + path + "'");

  // Import into a second provider through the same statement language.
  Provider other;
  auto other_conn = other.Connect();
  auto import_result =
      other_conn->Execute("IMPORT MINING MODEL FROM '" + path + "'");
  ASSERT_TRUE(import_result.ok()) << import_result.status().ToString();
  auto model = other.models()->GetModel("Exportable");
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->is_trained());
  EXPECT_DOUBLE_EQ((*model)->case_count(), 80);
  // Importing over an existing name fails.
  EXPECT_EQ(other_conn->Execute("IMPORT MINING MODEL FROM '" + path + "'")
                .status().code(),
            StatusCode::kAlreadyExists);
  // Exporting an unknown model / importing a bad path fail cleanly.
  EXPECT_TRUE(conn_->Execute("EXPORT MINING MODEL ghost TO '/tmp/x.xml'")
                  .status().IsNotFound());
  EXPECT_FALSE(conn_->Execute("IMPORT MINING MODEL FROM '/no/such.xml'").ok());
  std::remove(path.c_str());
}

TEST_F(ProviderTest, MultipleConnectionsShareState) {
  auto conn2 = provider_.Connect();
  Must("CREATE TABLE T (A LONG)");
  auto seen = conn2->Execute("SELECT * FROM T");
  EXPECT_TRUE(seen.ok());
}

TEST_F(ProviderTest, OpenStoreIsOneShot) {
  std::string dir = ::testing::TempDir() + "/provider_open_store_once";
  {
    // Leftovers from a previous run would replay into the fresh provider.
    auto names = Env::Default()->ListDir(dir);
    if (names.ok()) {
      for (const std::string& f : *names) {
        (void)Env::Default()->DeleteFile(dir + "/" + f);
      }
    }
  }
  ASSERT_TRUE(provider_.OpenStore(dir).ok());

  // A second open — same directory or another — must be rejected without
  // touching the attached store.
  Status again = provider_.OpenStore(dir);
  EXPECT_TRUE(again.IsInvalidState()) << again.ToString();
  Status other = provider_.OpenStore(::testing::TempDir() +
                                     "/provider_open_store_other");
  EXPECT_TRUE(other.IsInvalidState()) << other.ToString();

  // The original store is still live and journaling.
  ASSERT_NE(provider_.store(), nullptr);
  Must("CREATE TABLE T (A LONG)");
  EXPECT_TRUE(provider_.Checkpoint().ok());
}

TEST_F(ProviderTest, OpenStoreFailureStillCountsAsTheOneCall) {
  // Point the store at a path that cannot be a directory.
  std::string file_path = ::testing::TempDir() + "/provider_store_as_file";
  FILE* f = std::fopen(file_path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a directory", f);
  std::fclose(f);

  Provider provider;
  Status first = provider.OpenStore(file_path + "/sub");
  EXPECT_FALSE(first.ok());
  // Even after a failed open the provider refuses a retry: recovery may have
  // partially replayed into the catalogs, so the provider is tainted.
  Status retry = provider.OpenStore(::testing::TempDir() +
                                    "/provider_store_retry");
  EXPECT_TRUE(retry.IsInvalidState()) << retry.ToString();
}

}  // namespace
}  // namespace dmx
