// PMML persistence: for EVERY built-in service, train -> serialize -> load
// must reproduce identical predictions, content and case counts; incremental
// services must keep refreshing after a reload. Parameterized over services
// and seeds.

#include "pmml/pmml.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <tuple>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

constexpr const char* kInsert = R"(
  INSERT INTO [P]
  SHAPE {SELECT [Customer ID], [Gender], [Age], [Income], [Customer Loyalty]
         FROM Customers ORDER BY [Customer ID]}
  APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
           ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";

constexpr const char* kQueryScalar = R"(
  SELECT t.[Customer ID], Predict([Age]) AS P0,
         PredictProbability([Age]) AS P1, PredictSupport([Age]) AS P2
  FROM [P]
  NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID], [Gender], [Income], [Customer Loyalty]
            FROM Customers ORDER BY [Customer ID]}
     APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
              ORDER BY [CustID]}
             RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

constexpr const char* kQueryLoyalty = R"(
  SELECT t.[Customer ID], Predict([Customer Loyalty]) AS P0,
         PredictProbability([Customer Loyalty]) AS P1
  FROM [P]
  NATURAL PREDICTION JOIN
    (SELECT [Customer ID], [Age], [Income] FROM Customers) AS t)";

constexpr const char* kQueryBasket = R"(
  SELECT FLATTENED t.[Customer ID], Predict([Product Purchases], 5) AS R
  FROM [P]
  NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
     APPEND ({SELECT [CustID], [Product Name] FROM Sales ORDER BY [CustID]}
             RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

// Sequence models need the purchase timestamps in both training and
// prediction casesets.
constexpr const char* kInsertSequence = R"(
  INSERT INTO [P]
  SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
  APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
           ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";

constexpr const char* kQuerySequence = R"(
  SELECT FLATTENED t.[Customer ID], Predict([Product Purchases], 3) AS R
  FROM [P]
  NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
     APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
              ORDER BY [CustID]}
             RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

struct ServiceCase {
  const char* service;
  const char* create;
  const char* insert;  ///< nullptr: the shared kInsert.
  const char* query;   ///< nullptr: kQueryScalar.
};

// Per-service model definitions over the shared warehouse schema. Every
// service the registry exposes must appear here (enforced below).
constexpr ServiceCase kServices[] = {
    {"Decision_Trees", R"(
       CREATE MINING MODEL [P] (
         [Customer ID] LONG KEY,
         [Gender] TEXT DISCRETE,
         [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,
         [Product Purchases] TABLE(
           [Product Name] TEXT KEY,
           [Product Type] TEXT DISCRETE RELATED TO [Product Name])
       ) USING Decision_Trees(MINIMUM_SUPPORT = 15.0))",
     nullptr, nullptr},
    {"Naive_Bayes", R"(
       CREATE MINING MODEL [P] (
         [Customer ID] LONG KEY,
         [Gender] TEXT DISCRETE,
         [Age] DOUBLE DISCRETIZED(EQUAL_RANGES, 5) PREDICT,
         [Product Purchases] TABLE(
           [Product Name] TEXT KEY,
           [Product Type] TEXT DISCRETE RELATED TO [Product Name])
       ) USING Naive_Bayes)",
     nullptr, nullptr},
    {"Clustering", R"(
       CREATE MINING MODEL [P] (
         [Customer ID] LONG KEY,
         [Age] DOUBLE CONTINUOUS,
         [Income] DOUBLE CONTINUOUS,
         [Customer Loyalty] LONG DISCRETE PREDICT
       ) USING Clustering(CLUSTER_COUNT = 3, SEED = 11))",
     nullptr, kQueryLoyalty},
    {"Association_Rules", R"(
       CREATE MINING MODEL [P] (
         [Customer ID] LONG KEY,
         [Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT
       ) USING Association_Rules(MINIMUM_SUPPORT = 0.05,
                                 MINIMUM_PROBABILITY = 0.3))",
     nullptr, kQueryBasket},
    {"Linear_Regression", R"(
       CREATE MINING MODEL [P] (
         [Customer ID] LONG KEY,
         [Gender] TEXT DISCRETE,
         [Customer Loyalty] LONG ORDERED,
         [Income] DOUBLE CONTINUOUS,
         [Age] DOUBLE CONTINUOUS PREDICT
       ) USING Linear_Regression)",
     nullptr, nullptr},
    {"Sequence_Analysis", R"(
       CREATE MINING MODEL [P] (
         [Customer ID] LONG KEY,
         [Product Purchases] TABLE(
           [Product Name] TEXT KEY,
           [Purchase Time] DOUBLE SEQUENCE_TIME) PREDICT
       ) USING Sequence_Analysis)",
     kInsertSequence, kQuerySequence},
};

class PmmlRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PmmlRoundTrip, PredictionsSurviveSaveAndLoad) {
  auto [service_index, seed] = GetParam();
  const ServiceCase& sc = kServices[service_index];

  Provider original;
  datagen::WarehouseConfig config;
  config.num_customers = 250;
  config.seed = seed;
  ASSERT_TRUE(datagen::PopulateWarehouse(original.database(), config).ok());
  auto conn = original.Connect();
  ASSERT_TRUE(conn->Execute(sc.create).ok());
  auto insert = conn->Execute(sc.insert != nullptr ? sc.insert : kInsert);
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();

  const char* query = sc.query != nullptr ? sc.query : kQueryScalar;
  auto before = conn->Execute(query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Serialize and reload into a second provider with the same warehouse.
  auto model = original.models()->GetModel("P");
  ASSERT_TRUE(model.ok());
  auto document = SerializeModel(**model);
  ASSERT_TRUE(document.ok()) << document.status().ToString();

  Provider reloaded;
  ASSERT_TRUE(
      datagen::PopulateWarehouse(reloaded.database(), config).ok());
  auto loaded = DeserializeModel(*document, *reloaded.services());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ((*loaded)->case_count(), (*model)->case_count());
  ASSERT_TRUE(reloaded.models()->AdoptModel(std::move(*loaded)).ok());

  auto conn2 = reloaded.Connect();
  auto after = conn2->Execute(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  ASSERT_EQ(before->num_rows(), after->num_rows());
  ASSERT_EQ(before->num_columns(), after->num_columns());
  for (size_t r = 0; r < before->num_rows(); ++r) {
    for (size_t c = 0; c < before->num_columns(); ++c) {
      EXPECT_TRUE(before->at(r, c).Equals(after->at(r, c)))
          << sc.service << " row " << r << " col " << c << ": "
          << before->at(r, c).ToString() << " vs "
          << after->at(r, c).ToString();
    }
  }

  // Content survives too (same node count and captions).
  auto content_before = conn->Execute("SELECT * FROM [P].CONTENT");
  auto content_after = conn2->Execute("SELECT * FROM [P].CONTENT");
  ASSERT_TRUE(content_before.ok());
  ASSERT_TRUE(content_after.ok());
  ASSERT_EQ(content_before->num_rows(), content_after->num_rows());
  for (size_t r = 0; r < content_before->num_rows(); ++r) {
    EXPECT_TRUE(content_before->at(r, 4).Equals(content_after->at(r, 4)));
    EXPECT_TRUE(content_before->at(r, 7).Equals(content_after->at(r, 7)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ServicesAndSeeds, PmmlRoundTrip,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(42u, 77u)));

// The round-trip table above must not silently fall behind the registry:
// every service ListServices reports needs a ServiceCase entry.
TEST(PmmlTest, RoundTripCoversEveryRegisteredService) {
  Provider provider;
  for (const std::string& name : provider.services()->ListServices()) {
    bool covered = false;
    for (const ServiceCase& sc : kServices) {
      if (name == sc.service) covered = true;
    }
    EXPECT_TRUE(covered) << "service '" << name
                         << "' has no PMML round-trip case";
  }
}

TEST(PmmlTest, FileRoundTripAndRefreshAfterLoad) {
  Provider original;
  datagen::WarehouseConfig config;
  config.num_customers = 150;
  ASSERT_TRUE(datagen::PopulateWarehouse(original.database(), config).ok());
  auto conn = original.Connect();
  ASSERT_TRUE(conn->Execute(kServices[1].create).ok());  // Naive_Bayes
  ASSERT_TRUE(conn->Execute(kInsert).ok());

  std::string path = ::testing::TempDir() + "/pmml_roundtrip.xml";
  auto model = original.models()->GetModel("P");
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(SaveModelToFile(**model, path).ok());

  Provider reloaded;
  datagen::WarehouseConfig fresh = config;
  fresh.seed = 123;
  ASSERT_TRUE(datagen::PopulateWarehouse(reloaded.database(), fresh).ok());
  auto loaded = LoadModelFromFile(path, *reloaded.services());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(reloaded.models()->AdoptModel(std::move(*loaded)).ok());
  // Incremental refresh continues from the restored counts.
  auto conn2 = reloaded.Connect();
  ASSERT_TRUE(conn2->Execute(kInsert).ok());
  auto restored = reloaded.models()->GetModel("P");
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ((*restored)->case_count(), 300.0);
  std::remove(path.c_str());
}

TEST(PmmlTest, UntrainedModelsSerializeDefinitionsOnly) {
  Provider provider;
  auto conn = provider.Connect();
  ASSERT_TRUE(conn->Execute(kServices[0].create).ok());
  auto model = provider.models()->GetModel("P");
  ASSERT_TRUE(model.ok());
  auto document = SerializeModel(**model);
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document->find("TreeModel"), std::string::npos);
  auto loaded = DeserializeModel(*document, *provider.services());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE((*loaded)->is_trained());
  EXPECT_EQ((*loaded)->definition().model_name, "P");
}

TEST(PmmlTest, ErrorPaths) {
  Provider provider;
  EXPECT_TRUE(DeserializeModel("<NotPMML/>", *provider.services())
                  .status().code() == StatusCode::kIOError);
  EXPECT_TRUE(DeserializeModel("garbage", *provider.services())
                  .status().code() == StatusCode::kIOError);
  EXPECT_TRUE(DeserializeModel("<PMML version=\"1.0\"/>",
                               *provider.services())
                  .status().code() == StatusCode::kIOError);
  EXPECT_FALSE(LoadModelFromFile("/nonexistent/path.xml",
                                 *provider.services()).ok());
}

}  // namespace
}  // namespace dmx
