// DmxAnalyzer: the semantic-analysis front end. Each named rule is pinned by
// a table-driven case asserting the rule id and the source span it points
// at, and a dedicated test proves the analyzer accumulates EVERY violation
// of a statement into one report (first-error-only behavior is a failure).

#include "core/dmx_analyzer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/dmx_parser.h"
#include "core/provider.h"

namespace dmx {
namespace {

/// Finds the first diagnostic carrying `rule`; nullptr when absent.
const Diagnostic* FindRule(const AnalysisReport& report,
                           std::string_view rule) {
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.rule == rule) return &diag;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Definition-level rules, table-driven
// ---------------------------------------------------------------------------

struct DefinitionCase {
  const char* test_name;
  const char* dmx;          ///< Full CREATE MINING MODEL text.
  const char* rule;         ///< Expected rule id.
  DiagSeverity severity;
  /// Substring of `dmx` the diagnostic's span must start at (the offending
  /// token). Null skips the span assertion.
  const char* span_token;
};

const DefinitionCase kDefinitionCases[] = {
    {"NoKey",
     "CREATE MINING MODEL m (a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kKeyCount, DiagSeverity::kError, "m"},
    {"TwoKeys",
     "CREATE MINING MODEL m (k LONG KEY, k2 LONG KEY, a TEXT DISCRETE "
     "PREDICT) USING Naive_Bayes",
     rules::kKeyCount, DiagSeverity::kError, "k2"},
    {"NestedTableWithoutKey",
     "CREATE MINING MODEL m (k LONG KEY, t TABLE (v DOUBLE CONTINUOUS) "
     "PREDICT) USING Association_Rules",
     rules::kTableNestedKey, DiagSeverity::kError, "t TABLE"},
    {"DuplicateColumn",
     "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE, a TEXT DISCRETE "
     "PREDICT) USING Naive_Bayes",
     rules::kDuplicateColumn, DiagSeverity::kError, "a TEXT DISCRETE PREDICT"},
    {"KeyCannotBePredict",
     "CREATE MINING MODEL m (k LONG KEY PREDICT, a TEXT DISCRETE) "
     "USING Naive_Bayes",
     rules::kKeyPredict, DiagSeverity::kError, "k"},
    {"RelatedToMissingTarget",
     "CREATE MINING MODEL m (k LONG KEY, r TEXT DISCRETE RELATED TO ghost, "
     "a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kRelatedToTarget, DiagSeverity::kError, "r TEXT"},
    {"RelatedToContinuousTarget",
     "CREATE MINING MODEL m (k LONG KEY, c DOUBLE CONTINUOUS, "
     "r TEXT DISCRETE RELATED TO c, a TEXT DISCRETE PREDICT) "
     "USING Naive_Bayes",
     rules::kRelatedToTarget, DiagSeverity::kError, "r TEXT"},
    {"QualifierOfMissingTarget",
     "CREATE MINING MODEL m (k LONG KEY, q DOUBLE PROBABILITY OF ghost, "
     "a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kQualifierTarget, DiagSeverity::kError, "q DOUBLE"},
    {"DistributionHintOnDiscrete",
     "CREATE MINING MODEL m (k LONG KEY, d LONG NORMAL DISCRETE, "
     "a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kDistributionContinuous, DiagSeverity::kError, "d LONG"},
    {"ContinuousTextColumn",
     "CREATE MINING MODEL m (k LONG KEY, c TEXT CONTINUOUS, "
     "a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kNumericAttribute, DiagSeverity::kError, "c TEXT"},
    {"TextQualifier",
     "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE PREDICT, "
     "q TEXT PROBABILITY OF a) USING Naive_Bayes",
     rules::kNumericAttribute, DiagSeverity::kError, "q TEXT"},
    {"TwoSequenceTimeColumns",
     "CREATE MINING MODEL m (k LONG KEY, t TABLE (ik TEXT KEY, "
     "s1 DOUBLE SEQUENCE_TIME, s2 DOUBLE SEQUENCE_TIME) PREDICT) "
     "USING Sequence_Analysis",
     rules::kSequenceTime, DiagSeverity::kError, "s2"},
    {"PredictSequenceTime",
     "CREATE MINING MODEL m (k LONG KEY, t TABLE (ik TEXT KEY, "
     "s DOUBLE SEQUENCE_TIME PREDICT)) USING Sequence_Analysis",
     rules::kSequenceTime, DiagSeverity::kError, "s DOUBLE"},
    {"CaseLevelSequenceTimeWarns",
     "CREATE MINING MODEL m (k LONG KEY, s DOUBLE SEQUENCE_TIME, "
     "a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kSequenceTimeCaseLevel, DiagSeverity::kWarning, "s DOUBLE"},
    {"QualifierOfInputWarns",
     "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE, "
     "p DOUBLE PROBABILITY OF a, o TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kQualifierOfInput, DiagSeverity::kWarning, "p DOUBLE"},
    {"KeyOnlyNestedTableWarns",
     "CREATE MINING MODEL m (k LONG KEY, t TABLE (ik TEXT KEY), "
     "a TEXT DISCRETE PREDICT) USING Naive_Bayes",
     rules::kUnusedColumn, DiagSeverity::kWarning, "t TABLE"},
    {"NoPredictColumnWarns",
     "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE) USING Clustering",
     rules::kPredictPresence, DiagSeverity::kWarning, "m"},
    {"DuplicateQualifier",
     "CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE PREDICT, "
     "p1 DOUBLE PROBABILITY OF a, p2 DOUBLE PROBABILITY OF a) "
     "USING Naive_Bayes",
     rules::kDuplicateQualifier, DiagSeverity::kError, "p2 DOUBLE"},
};

class DefinitionRules : public ::testing::TestWithParam<DefinitionCase> {};

TEST_P(DefinitionRules, FlagsRuleAtSpan) {
  const DefinitionCase& c = GetParam();
  const std::string text = c.dmx;
  AnalysisReport report = DmxAnalyzer().AnalyzeText(text);
  const Diagnostic* diag = FindRule(report, c.rule);
  ASSERT_NE(diag, nullptr)
      << "expected rule '" << c.rule << "', got:\n" << report.ToString(text);
  EXPECT_EQ(diag->severity, c.severity) << diag->ToString(text);
  if (c.span_token != nullptr) {
    size_t expected = text.find(c.span_token);
    ASSERT_NE(expected, std::string::npos);
    EXPECT_EQ(diag->span.offset, expected) << diag->ToString(text);
    EXPECT_GT(diag->span.length, 0u);
  }
  EXPECT_FALSE(diag->message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    DmxAnalyzerTest, DefinitionRules, ::testing::ValuesIn(kDefinitionCases),
    [](const ::testing::TestParamInfo<DefinitionCase>& info) {
      return std::string(info.param.test_name);
    });

// The rule table must exercise the breadth the analyzer advertises: at
// least 8 distinct rule ids.
TEST(DmxAnalyzerTest, TableCoversAtLeastEightDistinctRules) {
  std::set<std::string> rules;
  for (const DefinitionCase& c : kDefinitionCases) rules.insert(c.rule);
  EXPECT_GE(rules.size(), 8u) << "definition table lost rule coverage";
}

// ---------------------------------------------------------------------------
// Multi-diagnostic accumulation
// ---------------------------------------------------------------------------

// One statement, five independent violations: the analyzer must report all
// of them. A first-error-only implementation fails this test.
TEST(DmxAnalyzerTest, AccumulatesEveryViolationOfOneStatement) {
  const std::string text =
      "CREATE MINING MODEL bad ("
      "  a TEXT CONTINUOUS PREDICT,"           // numeric-attribute (+ no KEY)
      "  b DOUBLE NORMAL DISCRETE,"            // distribution-continuous
      "  c DOUBLE PROBABILITY OF ghost,"       // qualifier-target
      "  d TABLE (x DOUBLE CONTINUOUS)"        // table-nested-key
      ") USING Naive_Bayes";
  AnalysisReport report = DmxAnalyzer().AnalyzeText(text);

  EXPECT_TRUE(report.HasRule(rules::kKeyCount)) << report.ToString(text);
  EXPECT_TRUE(report.HasRule(rules::kNumericAttribute));
  EXPECT_TRUE(report.HasRule(rules::kDistributionContinuous));
  EXPECT_TRUE(report.HasRule(rules::kQualifierTarget));
  EXPECT_TRUE(report.HasRule(rules::kTableNestedKey));
  EXPECT_GE(report.error_count(), 5u) << report.ToString(text);
  EXPECT_FALSE(report.ok());

  // Diagnostics point at four different source positions.
  std::set<size_t> offsets;
  for (const Diagnostic& diag : report.diagnostics) {
    offsets.insert(diag.span.offset);
  }
  EXPECT_GE(offsets.size(), 4u);

  // The rendered report carries one line per diagnostic plus the trailer.
  std::string rendered = report.ToString(text);
  EXPECT_NE(rendered.find("error [key-count]"), std::string::npos);
  EXPECT_NE(rendered.find("error(s)"), std::string::npos);

  // And ToStatus folds the whole report into one error message.
  Status status = report.ToStatus(text);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("qualifier-target"), std::string::npos);
  EXPECT_NE(status.message().find("table-nested-key"), std::string::npos);
}

TEST(DmxAnalyzerTest, CleanStatementProducesEmptyReport) {
  AnalysisReport report = DmxAnalyzer().AnalyzeText(
      "CREATE MINING MODEL ok (k LONG KEY, g TEXT DISCRETE, "
      "a DOUBLE DISCRETIZED PREDICT) USING Naive_Bayes");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.diagnostics.size(), 0u) << report.ToString();
  EXPECT_EQ(report.ToString(), "no issues found\n");
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(DmxAnalyzerTest, ParseFailureBecomesParseErrorDiagnostic) {
  AnalysisReport report =
      DmxAnalyzer().AnalyzeText("CREATE MINING MODEL m (k LONG KEY");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.HasRule(rules::kParseError)) << report.ToString();
}

TEST(DmxAnalyzerTest, PlainSqlIsNotAnalyzed) {
  AnalysisReport report =
      DmxAnalyzer().AnalyzeText("SELECT a, b FROM t WHERE a > 3");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty());
}

// Programmatically built ASTs (PMML import path) hit the depth rule the
// parser cannot produce.
TEST(DmxAnalyzerTest, NestedTableInsideNestedTable) {
  ModelColumn inner_key;
  inner_key.name = "ik";
  inner_key.role = ContentRole::kKey;
  ModelColumn inner;
  inner.name = "inner";
  inner.role = ContentRole::kTable;
  inner.data_type = DataType::kTable;
  inner.nested.push_back(inner_key);
  ModelColumn outer_key = inner_key;
  outer_key.name = "ok";
  ModelColumn outer;
  outer.name = "outer";
  outer.role = ContentRole::kTable;
  outer.data_type = DataType::kTable;
  outer.usage = PredictUsage::kPredict;
  outer.nested.push_back(outer_key);
  outer.nested.push_back(inner);
  ModelColumn key;
  key.name = "k";
  key.role = ContentRole::kKey;
  ModelDefinition def;
  def.model_name = "deep";
  def.service_name = "Naive_Bayes";
  def.columns = {key, outer};

  AnalysisReport report = DmxAnalyzer().AnalyzeDefinition(def);
  EXPECT_TRUE(report.HasRule(rules::kNestingDepth)) << report.ToString();
}

// ---------------------------------------------------------------------------
// Statement-level rules (need a live catalog)
// ---------------------------------------------------------------------------

class StatementRules : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = provider_.Connect();
    auto created = conn_->Execute(
        "CREATE MINING MODEL [M] ([Id] LONG KEY, [Gender] TEXT DISCRETE, "
        "[Age] DOUBLE DISCRETIZED PREDICT, [Items] TABLE ([Product] TEXT "
        "KEY, [Qty] DOUBLE CONTINUOUS)) USING Naive_Bayes");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    context_.catalog = provider_.models();
    context_.services = provider_.services();
    context_.database = provider_.database();
  }

  AnalysisReport Analyze(const std::string& text) {
    return DmxAnalyzer(context_).AnalyzeText(text);
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
  AnalyzerContext context_;
};

TEST_F(StatementRules, UnknownModelInEveryModelStatement) {
  for (const char* text : {
           "INSERT INTO ghost SELECT a FROM t",
           "SELECT Predict([Age]) FROM ghost NATURAL PREDICTION JOIN "
           "(SELECT a FROM t) AS s",
           "SELECT * FROM ghost.CONTENT",
           "DROP MINING MODEL ghost",
           "EXPORT MINING MODEL ghost TO '/tmp/x.xml'",
           "DELETE FROM ghost",
       }) {
    AnalysisReport report = Analyze(text);
    const Diagnostic* diag = FindRule(report, rules::kUnknownModel);
    ASSERT_NE(diag, nullptr) << text << "\n" << report.ToString(text);
    size_t expected = std::string(text).find("ghost");
    EXPECT_EQ(diag->span.offset, expected) << text;
  }
}

TEST_F(StatementRules, UnknownServiceInCreate) {
  AnalysisReport report = Analyze(
      "CREATE MINING MODEL n (k LONG KEY, a TEXT DISCRETE PREDICT) "
      "USING No_Such_Service");
  const Diagnostic* diag = FindRule(report, rules::kUnknownService);
  ASSERT_NE(diag, nullptr) << report.ToString();
  EXPECT_EQ(diag->severity, DiagSeverity::kError);
}

TEST_F(StatementRules, InsertColumnsCheckedAgainstModel) {
  const std::string text =
      "INSERT INTO [M] ([Id], [Ghost], [Items]([Product], [Nope])) "
      "SELECT 1 FROM t";
  AnalysisReport report = Analyze(text);
  // Both the unknown top-level column and the unknown nested column are
  // reported in one pass.
  size_t unknown = 0;
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.rule == rules::kUnknownColumn) ++unknown;
  }
  EXPECT_EQ(unknown, 2u) << report.ToString(text);
  const Diagnostic* first = FindRule(report, rules::kUnknownColumn);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->span.offset, text.find("[Ghost]"));
  // Unmapped trainable columns warn as unused.
  EXPECT_TRUE(report.HasRule(rules::kUnusedColumn)) << report.ToString(text);
}

TEST_F(StatementRules, ShadowedAliasWarns) {
  const std::string text =
      "SELECT Predict([Age]) FROM [M] NATURAL PREDICTION JOIN "
      "(SELECT 1 FROM t) AS [Gender]";
  AnalysisReport report = Analyze(text);
  const Diagnostic* diag = FindRule(report, rules::kShadowedAlias);
  ASSERT_NE(diag, nullptr) << report.ToString(text);
  EXPECT_EQ(diag->severity, DiagSeverity::kWarning);
  EXPECT_EQ(diag->span.offset, text.find("[Gender]"));
  // Warnings alone keep the report executable.
  EXPECT_TRUE(report.ok());
}

TEST_F(StatementRules, ModelRootedPathsAreResolved) {
  const std::string text =
      "SELECT M.[Ghost], Predict(M.[Age]) FROM [M] NATURAL PREDICTION JOIN "
      "(SELECT 1 FROM t) AS s WHERE M.[Items].[Nope] = 1";
  AnalysisReport report = Analyze(text);
  size_t unknown = 0;
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.rule == rules::kUnknownColumn) ++unknown;
  }
  EXPECT_EQ(unknown, 2u) << report.ToString(text);
}

TEST_F(StatementRules, PredictionJoinAgainstNoOutputModel) {
  // The executor now agrees with the analyzer that a no-output model on a
  // non-segmentation service is an error at CREATE time (the catalog runs
  // the analyzer with the service registry in context)...
  auto create = conn_->Execute(
      "CREATE MINING MODEL [NoOut] ([Id] LONG KEY, "
      "[Age] DOUBLE CONTINUOUS) USING Naive_Bayes");
  ASSERT_FALSE(create.ok());
  EXPECT_NE(create.status().message().find(rules::kPredictPresence),
            std::string::npos)
      << create.status().ToString();

  // ...so a degenerate no-output model can only enter the catalog sideways
  // (a legacy import); adopt one directly to pin the join-time rule.
  ModelDefinition def;
  ModelColumn key;
  key.name = "Id";
  key.role = ContentRole::kKey;
  ModelColumn age;
  age.name = "Age";
  age.data_type = DataType::kDouble;
  age.attr_type = AttributeType::kContinuous;
  def.model_name = "NoOut";
  def.service_name = "Naive_Bayes";
  def.columns = {key, age};
  auto service = provider_.services()->Find("Naive_Bayes");
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(provider_.models()
                  ->AdoptModel(std::make_unique<MiningModel>(
                      std::move(def), *service, ParamMap{}))
                  .ok());
  AnalysisReport report = Analyze(
      "SELECT [Id] FROM [NoOut] NATURAL PREDICTION JOIN "
      "(SELECT 1 FROM t) AS s");
  const Diagnostic* diag = FindRule(report, rules::kPredictPresence);
  ASSERT_NE(diag, nullptr) << report.ToString();
  EXPECT_EQ(diag->severity, DiagSeverity::kError);

  // ...and the execution path rejects it with the same report.
  auto result = conn_->Execute(
      "SELECT [Id] FROM [NoOut] NATURAL PREDICTION JOIN "
      "(SELECT [Id], [Age] FROM Customers) AS s");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(rules::kPredictPresence),
            std::string::npos)
      << result.status().ToString();
}

// Segmentation models have no declared outputs by design: the join-time
// predict-presence rule must stay quiet for them.
TEST_F(StatementRules, SegmentationModelsExemptFromPredictPresence) {
  ASSERT_TRUE(conn_
                  ->Execute("CREATE MINING MODEL [Seg] ([Id] LONG KEY, "
                            "[Age] DOUBLE CONTINUOUS) USING Clustering")
                  .ok());
  AnalysisReport report = Analyze(
      "SELECT Cluster() FROM [Seg] NATURAL PREDICTION JOIN "
      "(SELECT 1 FROM t) AS s");
  EXPECT_FALSE(report.HasRule(rules::kPredictPresence)) << report.ToString();
}

// One qualifier of each kind per target column: PROBABILITY OF a twice is a
// duplicate-qualifier error, but PROBABILITY OF a + SUPPORT OF a is fine.
TEST_F(StatementRules, DistinctQualifierKindsOnOneTargetAreAllowed) {
  AnalysisReport report = Analyze(
      "CREATE MINING MODEL mq (k LONG KEY, a TEXT DISCRETE PREDICT, "
      "p DOUBLE PROBABILITY OF a, s DOUBLE SUPPORT OF a) USING Naive_Bayes");
  EXPECT_FALSE(report.HasRule(rules::kDuplicateQualifier))
      << report.ToString();
}

// ON clauses that feed a PREDICT column from the source supply the very
// value the model is asked to predict — almost always a copy-paste of the
// training column list.
TEST_F(StatementRules, PredictColumnFedInOnClauseWarns) {
  const std::string text =
      "SELECT Predict([Age]) FROM [M] PREDICTION JOIN "
      "(SELECT a, g FROM t) AS s ON [M].[Age] = s.a";
  AnalysisReport report = Analyze(text);
  const Diagnostic* diag = FindRule(report, rules::kPredictInput);
  ASSERT_NE(diag, nullptr) << report.ToString(text);
  EXPECT_EQ(diag->severity, DiagSeverity::kWarning);
  // A warning, not an error: the statement stays executable.
  EXPECT_TRUE(report.ok());
}

TEST_F(StatementRules, InputColumnInOnClauseDoesNotWarn) {
  AnalysisReport report = Analyze(
      "SELECT Predict([Age]) FROM [M] PREDICTION JOIN "
      "(SELECT a, g FROM t) AS s ON [M].[Gender] = s.g");
  EXPECT_FALSE(report.HasRule(rules::kPredictInput)) << report.ToString();
}

// A RELATED TO column depending on the PREDICT target legitimizes feeding
// it back: the known value conditions its dependents.
TEST_F(StatementRules, RelatedToColumnSilencesPredictInput) {
  ASSERT_TRUE(conn_
                  ->Execute("CREATE MINING MODEL [Cond] ([Id] LONG KEY, "
                            "[Age] DOUBLE DISCRETIZED PREDICT, "
                            "[AgeBand] TEXT DISCRETE RELATED TO [Age]) "
                            "USING Naive_Bayes")
                  .ok());
  AnalysisReport report = Analyze(
      "SELECT Predict([Age]) FROM [Cond] PREDICTION JOIN "
      "(SELECT a FROM t) AS s ON [Cond].[Age] = s.a");
  EXPECT_FALSE(report.HasRule(rules::kPredictInput)) << report.ToString();
}

// The catalog path rejects invalid definitions with the accumulated report,
// not just the first violation.
TEST_F(StatementRules, CreateModelReportsAllViolationsInOneStatus) {
  auto result = conn_->Execute(
      "CREATE MINING MODEL bad (a TEXT CONTINUOUS, b DOUBLE NORMAL DISCRETE, "
      "c DOUBLE PROBABILITY OF ghost) USING Naive_Bayes");
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_NE(message.find(rules::kKeyCount), std::string::npos) << message;
  EXPECT_NE(message.find(rules::kNumericAttribute), std::string::npos);
  EXPECT_NE(message.find(rules::kDistributionContinuous), std::string::npos);
  EXPECT_NE(message.find(rules::kQualifierTarget), std::string::npos);
}

}  // namespace
}  // namespace dmx
