// XML library: writer/parser behaviour, escaping, error handling, and a
// generated round-trip property sweep.

#include "pmml/xml.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dmx::xml {
namespace {

TEST(XmlTest, BuildAndPrint) {
  Element root("PMML");
  root.SetAttr("version", std::string("1.0"));
  Element* header = root.AddChild("Header");
  header->SetAttr("n", static_cast<int64_t>(3));
  header->SetAttr("x", 2.5);
  root.AddChild("Body")->set_text("hello");
  std::string text = root.ToString();
  EXPECT_NE(text.find("<PMML version=\"1.0\">"), std::string::npos);
  EXPECT_NE(text.find("<Header n=\"3\" x=\"2.5\"/>"), std::string::npos);
  EXPECT_NE(text.find("<Body>hello</Body>"), std::string::npos);
}

TEST(XmlTest, ParseBasicDocument) {
  auto root = Parse(R"(<?xml version="1.0"?>
    <a x="1" y="two">
      <b/>
      <c>text body</c>
      <b z="3.5"/>
    </a>)");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ((*root)->name(), "a");
  EXPECT_EQ(*(*root)->GetAttr("y"), "two");
  EXPECT_EQ(*(*root)->GetLongAttr("x"), 1);
  EXPECT_EQ((*root)->FindChildren("b").size(), 2u);
  EXPECT_EQ((*root)->FindChild("c")->text(), "text body");
  EXPECT_EQ(*(*root)->FindChildren("b")[1]->GetDoubleAttr("z"), 3.5);
  EXPECT_EQ((*root)->FindChild("nope"), nullptr);
  EXPECT_TRUE((*root)->GetAttr("nope").status().IsNotFound());
}

TEST(XmlTest, EscapingRoundTrips) {
  Element root("t");
  root.SetAttr("a", std::string("<&>\"'"));
  root.AddChild("c")->set_text("a < b && c > 'd'");
  auto parsed = Parse(root.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*(*parsed)->GetAttr("a"), "<&>\"'");
  EXPECT_EQ((*parsed)->FindChild("c")->text(), "a < b && c > 'd'");
}

TEST(XmlTest, ParseErrors) {
  EXPECT_FALSE(Parse("<a>").ok());                  // unterminated
  EXPECT_FALSE(Parse("<a></b>").ok());              // mismatched close
  EXPECT_FALSE(Parse("<a x=1/>").ok());             // unquoted attribute
  EXPECT_FALSE(Parse("<a/><b/>").ok());             // two roots
  EXPECT_FALSE(Parse("plain text").ok());           // no element
  EXPECT_FALSE(Parse("<a x=\"1>").ok());            // unterminated attr value
}

TEST(XmlTest, AttributeOverwrite) {
  Element e("x");
  e.SetAttr("k", std::string("a"));
  e.SetAttr("k", std::string("b"));
  EXPECT_EQ(*e.GetAttr("k"), "b");
}

// Property: random trees survive print -> parse -> print exactly.
class XmlRoundTrip : public ::testing::TestWithParam<uint64_t> {};

void BuildRandomTree(Rng* rng, Element* node, int depth) {
  int attrs = static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < attrs; ++i) {
    node->SetAttr("a" + std::to_string(i),
                  "v<&>'" + std::to_string(rng->Uniform(1000)));
  }
  if (depth >= 4) return;
  int children = static_cast<int>(rng->Uniform(4));
  if (children == 0 && rng->Chance(0.5)) {
    node->set_text("text & <content> " + std::to_string(rng->Uniform(100)));
    return;
  }
  for (int i = 0; i < children; ++i) {
    BuildRandomTree(rng, node->AddChild("n" + std::to_string(i)), depth + 1);
  }
}

TEST_P(XmlRoundTrip, PrintParsePrintFixpoint) {
  Rng rng(GetParam());
  Element root("root");
  BuildRandomTree(&rng, &root, 0);
  std::string once = root.ToString();
  auto parsed = Parse(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)->ToString(), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dmx::xml
