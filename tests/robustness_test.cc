// Robustness: the command pipe must never crash — every malformed, truncated
// or shuffled statement returns an error Status. A seeded fuzz sweep mutates
// valid statements (truncation, token deletion, token transposition, symbol
// injection) and fires them at a live provider.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/random.h"
#include "common/tokenizer.h"
#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

// Built at runtime so file-touching seeds (EXPORT/IMPORT) target a per-test
// temp path instead of a hard-coded shared location.
std::vector<std::string> SeedStatements(const std::string& xml_path) {
  return {
      "SELECT [Customer ID], [Gender] FROM Customers ORDER BY [Customer ID]",
      "CREATE MINING MODEL [F] ([Customer ID] LONG KEY, [Gender] TEXT "
      "DISCRETE, [Age] DOUBLE DISCRETIZED PREDICT) USING Naive_Bayes",
      "INSERT INTO [F] SELECT [Customer ID], [Gender], [Age] FROM Customers",
      "INSERT INTO [F] SHAPE {SELECT [Customer ID], [Gender], [Age] FROM "
      "Customers ORDER BY [Customer ID]} APPEND ({SELECT [CustID], "
      "[Product Name] FROM Sales ORDER BY [CustID]} RELATE [Customer ID] TO "
      "[CustID]) AS [P]",
      "SELECT t.[Customer ID], Predict([Age]) FROM [F] NATURAL PREDICTION "
      "JOIN (SELECT [Customer ID], [Gender] FROM Customers) AS t "
      "WHERE PredictProbability([Age]) > 0.1",
      "SELECT * FROM [F].CONTENT WHERE NODE_TYPE = 'Leaf'",
      "EXPORT MINING MODEL [F] TO '" + xml_path + "'",
      "IMPORT MINING MODEL FROM '" + xml_path + "'",
      "DELETE FROM [F]",
      "DROP MINING MODEL [F]",
      "SELECT Region, COUNT(*) AS N FROM Customers GROUP BY Region",
  };
}

// Rebuilds statement text from a token list (lossy but lexically valid).
std::string Detokenize(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& t : tokens) {
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case TokenKind::kIdentifier:
        out += t.quoted ? "[" + t.text + "]" : t.text;
        break;
      case TokenKind::kString:
        out += "'" + t.text + "'";
        break;
      default:
        out += t.text;
    }
  }
  return out;
}

class RobustnessTest : public ::testing::TestWithParam<uint64_t> {};

// Runs the mutation sweep against `provider`; every statement — pristine or
// mutated — must return a Status, never crash or hang. (void so ASSERT_*
// can bail out.)
void RunMutationSweep(Provider* provider, uint64_t rng_seed,
                      const std::string& xml_path,
                      int64_t deadline_ms = 0) {
  auto conn = provider->Connect();
  if (deadline_ms > 0) {
    ExecLimits limits;
    limits.deadline_ms = deadline_ms;
    conn->set_limits(limits);
  }
  Rng rng(rng_seed);
  int executed = 0;
  for (const std::string& seed : SeedStatements(xml_path)) {
    // The pristine statement must not crash either (it may or may not
    // succeed depending on the order models were created/dropped).
    (void)conn->Execute(seed);
    auto tokens = Tokenize(seed);
    ASSERT_TRUE(tokens.ok());
    for (int mutation = 0; mutation < 40; ++mutation) {
      std::vector<Token> mutated = *tokens;
      switch (rng.Uniform(4)) {
        case 0:  // truncate
          mutated.resize(rng.Uniform(mutated.size()) + 1);
          break;
        case 1:  // delete a token
          mutated.erase(mutated.begin() + rng.Uniform(mutated.size()));
          break;
        case 2: {  // transpose two tokens
          size_t a = rng.Uniform(mutated.size());
          size_t b = rng.Uniform(mutated.size());
          std::swap(mutated[a], mutated[b]);
          break;
        }
        default: {  // inject a random symbol token
          Token junk;
          junk.kind = TokenKind::kPunct;
          const char* symbols[] = {"(", ")", ",", ".", "=", "*", "{", "}"};
          junk.text = symbols[rng.Uniform(8)];
          mutated.insert(mutated.begin() + rng.Uniform(mutated.size() + 1),
                         junk);
          break;
        }
      }
      // Must return (ok or error), never crash / hang.
      auto result = conn->Execute(Detokenize(mutated));
      (void)result;
      ++executed;
    }
  }
  EXPECT_EQ(executed, 440);
}

TEST_P(RobustnessTest, MutatedStatementsNeverCrash) {
  Provider provider;
  datagen::WarehouseConfig config;
  config.num_customers = 30;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());
  std::string xml = ::testing::TempDir() + "/robustness_" +
                    std::to_string(GetParam()) + ".xml";
  RunMutationSweep(&provider, GetParam(), xml);
  (void)std::remove(xml.c_str());
}

// The same sweep with a 50 ms statement deadline armed: deadline unwinds may
// now fire at any guard checkpoint mid-statement, and none of them may crash
// the provider or corrupt the catalogs for the statements that follow.
TEST_P(RobustnessTest, MutatedStatementsNeverCrashWithDeadline) {
  Provider provider;
  datagen::WarehouseConfig config;
  config.num_customers = 30;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());
  std::string xml = ::testing::TempDir() + "/robustness_deadline_" +
                    std::to_string(GetParam()) + ".xml";
  RunMutationSweep(&provider, GetParam(), xml, /*deadline_ms=*/50);
  (void)std::remove(xml.c_str());
}

// The same sweep with a durable store attached: journaling must not change
// crash behaviour, and whatever survived the fuzzing must recover cleanly.
TEST_P(RobustnessTest, MutatedStatementsNeverCrashWithStore) {
  std::string dir =
      ::testing::TempDir() + "/robustness_store_" + std::to_string(GetParam());
  {
    Env* env = Env::Default();
    auto names = env->ListDir(dir);
    if (names.ok()) {
      for (const std::string& f : *names) (void)env->DeleteFile(dir + "/" + f);
    }
  }
  std::string xml = ::testing::TempDir() + "/robustness_store_" +
                    std::to_string(GetParam()) + ".xml";
  {
    Provider provider;
    datagen::WarehouseConfig config;
    config.num_customers = 30;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());
    store::StoreOptions options;
    options.auto_checkpoint_interval = 16;
    ASSERT_TRUE(provider.OpenStore(dir, options).ok());
    RunMutationSweep(&provider, GetParam(), xml);
  }
  // The journal a fuzzing session leaves behind must always be replayable.
  // Journaled statements may read the out-of-band warehouse preload, so —
  // like dmxsh --warehouse --store — recreate it before opening the store.
  Provider reopened;
  datagen::WarehouseConfig config;
  config.num_customers = 30;
  ASSERT_TRUE(datagen::PopulateWarehouse(reopened.database(), config).ok());
  auto status = reopened.OpenStore(dir);
  EXPECT_TRUE(status.ok()) << status.ToString();
  (void)std::remove(xml.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(RobustnessEdgeCases, DegenerateInputs) {
  Provider provider;
  auto conn = provider.Connect();
  const char* inputs[] = {
      "", " ", ";", "''", "[", "]", "(((((", "SELECT", "SELECT FROM",
      "CREATE MINING MODEL", "INSERT INTO", "PREDICTION JOIN",
      "SHAPE {SELECT}", "SELECT * FROM",
      "SELECT * FROM x.CONTENT WHERE", "-- just a comment",
      "CREATE MINING MODEL m () USING x",
  };
  for (const char* input : inputs) {
    auto result = conn->Execute(input);
    EXPECT_FALSE(result.ok()) << "'" << input << "' unexpectedly succeeded";
  }
}

}  // namespace
}  // namespace dmx
