// Robustness: the command pipe must never crash — every malformed, truncated
// or shuffled statement returns an error Status. A seeded fuzz sweep mutates
// valid statements (truncation, token deletion, token transposition, symbol
// injection) and fires them at a live provider.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/tokenizer.h"
#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

const char* kSeedStatements[] = {
    "SELECT [Customer ID], [Gender] FROM Customers ORDER BY [Customer ID]",
    "CREATE MINING MODEL [F] ([Customer ID] LONG KEY, [Gender] TEXT DISCRETE,"
    " [Age] DOUBLE DISCRETIZED PREDICT) USING Naive_Bayes",
    "INSERT INTO [F] SELECT [Customer ID], [Gender], [Age] FROM Customers",
    "INSERT INTO [F] SHAPE {SELECT [Customer ID], [Gender], [Age] FROM "
    "Customers ORDER BY [Customer ID]} APPEND ({SELECT [CustID], "
    "[Product Name] FROM Sales ORDER BY [CustID]} RELATE [Customer ID] TO "
    "[CustID]) AS [P]",
    "SELECT t.[Customer ID], Predict([Age]) FROM [F] NATURAL PREDICTION JOIN "
    "(SELECT [Customer ID], [Gender] FROM Customers) AS t "
    "WHERE PredictProbability([Age]) > 0.1",
    "SELECT * FROM [F].CONTENT WHERE NODE_TYPE = 'Leaf'",
    "EXPORT MINING MODEL [F] TO '/tmp/robustness.xml'",
    "DELETE FROM [F]",
    "DROP MINING MODEL [F]",
    "SELECT Region, COUNT(*) AS N FROM Customers GROUP BY Region",
};

// Rebuilds statement text from a token list (lossy but lexically valid).
std::string Detokenize(const std::vector<Token>& tokens) {
  std::string out;
  for (const Token& t : tokens) {
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case TokenKind::kIdentifier:
        out += t.quoted ? "[" + t.text + "]" : t.text;
        break;
      case TokenKind::kString:
        out += "'" + t.text + "'";
        break;
      default:
        out += t.text;
    }
  }
  return out;
}

class RobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessTest, MutatedStatementsNeverCrash) {
  Provider provider;
  datagen::WarehouseConfig config;
  config.num_customers = 30;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());
  auto conn = provider.Connect();

  Rng rng(GetParam());
  int executed = 0;
  for (const char* seed : kSeedStatements) {
    // The pristine statement must not crash either (it may or may not
    // succeed depending on the order models were created/dropped).
    (void)conn->Execute(seed);
    auto tokens = Tokenize(seed);
    ASSERT_TRUE(tokens.ok());
    for (int mutation = 0; mutation < 40; ++mutation) {
      std::vector<Token> mutated = *tokens;
      switch (rng.Uniform(4)) {
        case 0:  // truncate
          mutated.resize(rng.Uniform(mutated.size()) + 1);
          break;
        case 1:  // delete a token
          mutated.erase(mutated.begin() + rng.Uniform(mutated.size()));
          break;
        case 2: {  // transpose two tokens
          size_t a = rng.Uniform(mutated.size());
          size_t b = rng.Uniform(mutated.size());
          std::swap(mutated[a], mutated[b]);
          break;
        }
        default: {  // inject a random symbol token
          Token junk;
          junk.kind = TokenKind::kPunct;
          const char* symbols[] = {"(", ")", ",", ".", "=", "*", "{", "}"};
          junk.text = symbols[rng.Uniform(8)];
          mutated.insert(mutated.begin() + rng.Uniform(mutated.size() + 1),
                         junk);
          break;
        }
      }
      // Must return (ok or error), never crash / hang.
      auto result = conn->Execute(Detokenize(mutated));
      (void)result;
      ++executed;
    }
  }
  EXPECT_EQ(executed, 400);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(RobustnessEdgeCases, DegenerateInputs) {
  Provider provider;
  auto conn = provider.Connect();
  const char* inputs[] = {
      "", " ", ";", "''", "[", "]", "(((((", "SELECT", "SELECT FROM",
      "CREATE MINING MODEL", "INSERT INTO", "PREDICTION JOIN",
      "SHAPE {SELECT}", "SELECT * FROM",
      "SELECT * FROM x.CONTENT WHERE", "-- just a comment",
      "CREATE MINING MODEL m () USING x",
  };
  for (const char* input : inputs) {
    auto result = conn->Execute(input);
    EXPECT_FALSE(result.ok()) << "'" << input << "' unexpectedly succeeded";
  }
}

}  // namespace
}  // namespace dmx
