// Data Shaping Service: SHAPE parsing, hierarchical rowset construction, the
// streaming case reader, and the structural invariants of shaping
// (child-row conservation, key containment).

#include <gtest/gtest.h>

#include "datagen/warehouse.h"
#include "relational/sql_executor.h"
#include "shape/shape_executor.h"
#include "shape/shape_parser.h"

namespace dmx::shape {
namespace {

constexpr const char* kPaperShape = R"(
SHAPE
  {SELECT [Customer ID], [Gender], [Age] FROM Customers
   ORDER BY [Customer ID]}
APPEND (
  {SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales
   ORDER BY [CustID]}
  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
)";

class ShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(datagen::LoadPaperExample(&db_).ok());
  }

  rel::Database db_;
};

TEST_F(ShapeTest, ParsesThePaperStatement) {
  auto stmt = ParseShape(kPaperShape);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->appends.size(), 1u);
  EXPECT_EQ(stmt->appends[0].name, "Product Purchases");
  ASSERT_EQ(stmt->appends[0].relations.size(), 1u);
  EXPECT_EQ(stmt->appends[0].relations[0].parent_column, "Customer ID");
  EXPECT_EQ(stmt->appends[0].relations[0].child_column, "CustID");
}

TEST_F(ShapeTest, ParseErrors) {
  EXPECT_TRUE(ParseShape("SHAPE {SELECT a FROM t}").status().IsParseError());
  EXPECT_TRUE(ParseShape("SHAPE {SELECT a FROM t} APPEND ({SELECT b FROM u})")
                  .status()
                  .IsParseError());  // missing RELATE
  EXPECT_TRUE(
      ParseShape(
          "SHAPE {SELECT a FROM t} APPEND ({SELECT b FROM u} RELATE a TO b)")
          .status()
          .IsParseError());  // missing AS
}

TEST_F(ShapeTest, BuildsThePaperTable1Case) {
  auto stmt = ParseShape(kPaperShape);
  ASSERT_TRUE(stmt.ok());
  auto caseset = ExecuteShape(db_, *stmt);
  ASSERT_TRUE(caseset.ok()) << caseset.status().ToString();
  ASSERT_EQ(caseset->num_rows(), 3u);
  // Customer 1 is Table 1: male, 35, with exactly 4 purchases.
  const Row& customer1 = caseset->rows()[0];
  EXPECT_TRUE(customer1[0].Equals(Value::Long(1)));
  EXPECT_TRUE(customer1[1].Equals(Value::Text("Male")));
  ASSERT_TRUE(customer1[3].is_table());
  const NestedTable& purchases = *customer1[3].table_value();
  EXPECT_EQ(purchases.num_rows(), 4u);
  // Beer has quantity 6 and type Beverage, exactly as in Table 1.
  bool found_beer = false;
  for (const Row& row : purchases.rows()) {
    if (row[1].Equals(Value::Text("Beer"))) {
      found_beer = true;
      EXPECT_TRUE(row[2].Equals(Value::Double(6)));
      EXPECT_TRUE(row[3].Equals(Value::Text("Beverage")));
    }
  }
  EXPECT_TRUE(found_beer);
}

TEST_F(ShapeTest, CustomersWithoutChildrenGetEmptyTables) {
  auto stmt = ParseShape(R"(
    SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Car] FROM CarOwnership ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Cars])");
  ASSERT_TRUE(stmt.ok());
  auto caseset = ExecuteShape(db_, *stmt);
  ASSERT_TRUE(caseset.ok());
  // Customer 2 owns no car.
  EXPECT_EQ(caseset->rows()[1][1].table_value()->num_rows(), 0u);
  EXPECT_EQ(caseset->rows()[0][1].table_value()->num_rows(), 2u);
}

TEST_F(ShapeTest, MultipleAppendsYieldMultipleNestedColumns) {
  auto stmt = ParseShape(R"(
    SHAPE {SELECT [Customer ID], [Gender] FROM Customers}
    APPEND ({SELECT [CustID], [Product Name] FROM Sales}
            RELATE [Customer ID] TO [CustID]) AS [Purchases]
    APPEND ({SELECT [CustID], [Car], [Car Probability] FROM CarOwnership}
            RELATE [Customer ID] TO [CustID]) AS [Cars])");
  ASSERT_TRUE(stmt.ok());
  auto caseset = ExecuteShape(db_, *stmt);
  ASSERT_TRUE(caseset.ok());
  ASSERT_EQ(caseset->num_columns(), 4u);
  EXPECT_EQ(caseset->schema()->column(2).type, DataType::kTable);
  EXPECT_EQ(caseset->schema()->column(3).type, DataType::kTable);
  // Table 1's car ownership: truck 100%, van 50%.
  const NestedTable& cars = *caseset->rows()[0][3].table_value();
  ASSERT_EQ(cars.num_rows(), 2u);
}

TEST_F(ShapeTest, StreamingReaderMatchesMaterializedExecution) {
  auto stmt = ParseShape(kPaperShape);
  ASSERT_TRUE(stmt.ok());
  auto materialized = ExecuteShape(db_, *stmt);
  ASSERT_TRUE(materialized.ok());
  auto reader = ShapedCaseReader::Create(db_, *stmt);
  ASSERT_TRUE(reader.ok());
  Row row;
  size_t i = 0;
  while (true) {
    auto has = (*reader)->Next(&row);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    ASSERT_LT(i, materialized->num_rows());
    const Row& expected = materialized->rows()[i];
    ASSERT_EQ(row.size(), expected.size());
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_TRUE(row[c].Equals(expected[c])) << "case " << i << " col " << c;
    }
    ++i;
  }
  EXPECT_EQ(i, materialized->num_rows());
}

// Property suite over warehouse sizes: shaping conserves child rows and only
// attaches children whose key matches the parent.
class ShapeInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ShapeInvariants, ConservationAndContainment) {
  rel::Database db;
  datagen::WarehouseConfig config;
  config.num_customers = GetParam();
  config.seed = 1000 + GetParam();
  ASSERT_TRUE(datagen::PopulateWarehouse(&db, config).ok());

  auto stmt = ParseShape(R"(
    SHAPE {SELECT [Customer ID], [Gender] FROM Customers
           ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name] FROM Sales ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Purchases])");
  ASSERT_TRUE(stmt.ok());
  auto caseset = ExecuteShape(db, *stmt);
  ASSERT_TRUE(caseset.ok());

  auto sales = db.GetTable("Sales");
  ASSERT_TRUE(sales.ok());

  // Every parent key is unique here, so conservation is exact: nested rows
  // across all cases == sales rows (every sale belongs to a customer).
  size_t nested_total = 0;
  for (const Row& row : caseset->rows()) {
    ASSERT_TRUE(row[2].is_table());
    const NestedTable& nested = *row[2].table_value();
    nested_total += nested.num_rows();
    // Containment: each child carries the parent's key.
    for (const Row& child : nested.rows()) {
      EXPECT_TRUE(child[0].Equals(row[0]));
    }
  }
  EXPECT_EQ(nested_total, (*sales)->num_rows());
  EXPECT_EQ(caseset->num_rows(), static_cast<size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShapeInvariants,
                         ::testing::Values(1, 7, 50, 200));

}  // namespace
}  // namespace dmx::shape
