#include "common/tokenizer.h"

#include <gtest/gtest.h>

#include <memory>

namespace dmx {
namespace {

std::vector<Token> MustTokenize(const std::string& text) {
  auto result = Tokenize(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(TokenizerTest, BasicKinds) {
  auto tokens = MustTokenize("SELECT x, 42, 2.5, 'text' FROM [My Table]");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_TRUE(tokens[2].IsPunct(","));
  EXPECT_EQ(tokens[3].long_value, 42);
  EXPECT_EQ(tokens[5].double_value, 2.5);
  EXPECT_EQ(tokens[7].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].text, "text");
  EXPECT_TRUE(tokens[8].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[9].quoted);
  EXPECT_EQ(tokens[9].text, "My Table");
}

TEST(TokenizerTest, BracketEscaping) {
  auto tokens = MustTokenize("[a]]b]");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "a]b");
  // Quoted identifiers never match keywords.
  EXPECT_FALSE(MustTokenize("[SELECT]")[0].IsKeyword("SELECT"));
}

TEST(TokenizerTest, StringEscaping) {
  auto tokens = MustTokenize("'it''s'");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(TokenizerTest, NumberForms) {
  auto tokens = MustTokenize("1 1.5 .5 1e3 2E-2 7.");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLong);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_EQ(tokens[2].double_value, 0.5);
  EXPECT_EQ(tokens[3].double_value, 1000.0);
  EXPECT_EQ(tokens[4].double_value, 0.02);
  EXPECT_EQ(tokens[5].kind, TokenKind::kDouble);
}

TEST(TokenizerTest, Comments) {
  auto tokens = MustTokenize("a -- comment\nb // another\nc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(TokenizerTest, MultiCharPunctuation) {
  auto tokens = MustTokenize("<= >= <> != < > = $");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_TRUE(tokens[0].IsPunct("<="));
  EXPECT_TRUE(tokens[2].IsPunct("<>"));
  EXPECT_TRUE(tokens[7].IsPunct("$"));
}

TEST(TokenizerTest, Errors) {
  EXPECT_TRUE(Tokenize("[unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ? b").status().IsParseError());
}

TEST(TokenStreamTest, MatchAndExpect) {
  TokenStream ts(MustTokenize("ORDER BY name DESC"));
  EXPECT_FALSE(ts.MatchKeywords({"GROUP", "BY"}));
  EXPECT_TRUE(ts.MatchKeywords({"ORDER", "BY"}));
  auto name = ts.ExpectIdentifier();
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "name");
  EXPECT_TRUE(ts.MatchKeyword("desc"));
  EXPECT_TRUE(ts.AtEnd());
}

TEST(TokenStreamTest, RewindRestoresPosition) {
  TokenStream ts(MustTokenize("a b c"));
  size_t save = ts.position();
  ts.Next();
  ts.Next();
  ts.Rewind(save);
  EXPECT_EQ(ts.Peek().text, "a");
}

TEST(TokenStreamTest, ErrorsNameTheOffendingToken) {
  TokenStream ts(MustTokenize("FROM"));
  Status s = ts.ExpectKeyword("SELECT");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("FROM"), std::string::npos);
  ts.Next();
  Status end = ts.ExpectPunct(")");
  EXPECT_NE(end.message().find("end of input"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hardened edge cases (fuzzer-found surface): unterminated constructs,
// numeric overflow, block comments. Every malformed input must produce a
// ParseError whose message carries the offset of the offending construct.
// ---------------------------------------------------------------------------

TEST(TokenizerTest, BlockComments) {
  auto tokens = MustTokenize("SELECT /* anything\n * spanning lines */ x");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].text, "x");
  // "/*/" does not self-close; "/**/" is an empty comment.
  EXPECT_EQ(MustTokenize("a /**/ b").size(), 2u);
  // A '*' immediately before the terminator stays a comment.
  EXPECT_EQ(MustTokenize("a /* stars **/ b").size(), 2u);
}

struct BadLexCase {
  const char* name;
  const char* input;
  const char* message_contains;  ///< Must appear in the ParseError message.
  const char* offset_token;      ///< "offset <N>" expected in the message.
};

class TokenizerBadInputTest : public ::testing::TestWithParam<BadLexCase> {};

TEST_P(TokenizerBadInputTest, ProducesParseErrorWithSpan) {
  const BadLexCase& c = GetParam();
  auto result = Tokenize(c.input);
  ASSERT_FALSE(result.ok()) << "input: " << c.input;
  EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
  const std::string& message = result.status().message();
  EXPECT_NE(message.find(c.message_contains), std::string::npos) << message;
  EXPECT_NE(message.find(std::string("offset ") + c.offset_token),
            std::string::npos)
      << message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TokenizerBadInputTest,
    ::testing::Values(
        BadLexCase{"UnterminatedString", "SELECT 'abc", "unterminated string",
                   "7"},
        BadLexCase{"UnterminatedStringWithEscape", "x 'it''s", "unterminated",
                   "2"},
        BadLexCase{"UnterminatedBracket", "SELECT [My Col", "unterminated",
                   "7"},
        BadLexCase{"UnterminatedBracketEscape", "[a]]", "unterminated", "0"},
        BadLexCase{"UnterminatedBlockComment", "SELECT /* no end",
                   "unterminated block comment", "7"},
        BadLexCase{"BlockCommentAlmostClosed", "a /* b *", "unterminated",
                   "2"},
        BadLexCase{"LongOverflow", "SELECT 9223372036854775808",
                   "overflows a LONG", "7"},
        BadLexCase{"LongOverflowHuge",
                   "SELECT 99999999999999999999999999999999",
                   "overflows a LONG", "7"},
        BadLexCase{"DoubleOverflow", "x 1e400000", "overflows a DOUBLE", "2"},
        BadLexCase{"UnknownCharacter", "SELECT \x01", "unexpected character",
                   "7"}),
    [](const ::testing::TestParamInfo<BadLexCase>& info) {
      return info.param.name;
    });

TEST(TokenizerTest, NumericBoundariesStillLex) {
  // INT64_MAX lexes; INT64_MIN is '-' followed by 9223372036854775808 and
  // overflows as a bare literal — callers negate smaller literals instead.
  auto max = MustTokenize("9223372036854775807");
  ASSERT_EQ(max.size(), 1u);
  EXPECT_EQ(max[0].long_value, 9223372036854775807LL);
  // Denormal underflow rounds, it does not error.
  auto tiny = MustTokenize("1e-400");
  ASSERT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny[0].kind, TokenKind::kDouble);
}

TEST(TokenStreamTest, RecursionScopeCapsDepth) {
  TokenStream ts(MustTokenize("x"));
  std::vector<std::unique_ptr<TokenStream::RecursionScope>> frames;
  for (int i = 0; i < TokenStream::kMaxRecursionDepth; ++i) {
    frames.push_back(std::make_unique<TokenStream::RecursionScope>(&ts));
    EXPECT_TRUE(frames.back()->Check().ok()) << "depth " << i;
  }
  TokenStream::RecursionScope over(&ts);
  Status deep = over.Check();
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(deep.message().find("nests more than"), std::string::npos);
  // Frames unwind: popping back under the cap is OK again.
  frames.pop_back();
  EXPECT_TRUE(over.Check().ok());
}

}  // namespace
}  // namespace dmx
