#include "common/tokenizer.h"

#include <gtest/gtest.h>

namespace dmx {
namespace {

std::vector<Token> MustTokenize(const std::string& text) {
  auto result = Tokenize(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(TokenizerTest, BasicKinds) {
  auto tokens = MustTokenize("SELECT x, 42, 2.5, 'text' FROM [My Table]");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_TRUE(tokens[2].IsPunct(","));
  EXPECT_EQ(tokens[3].long_value, 42);
  EXPECT_EQ(tokens[5].double_value, 2.5);
  EXPECT_EQ(tokens[7].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].text, "text");
  EXPECT_TRUE(tokens[8].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[9].quoted);
  EXPECT_EQ(tokens[9].text, "My Table");
}

TEST(TokenizerTest, BracketEscaping) {
  auto tokens = MustTokenize("[a]]b]");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "a]b");
  // Quoted identifiers never match keywords.
  EXPECT_FALSE(MustTokenize("[SELECT]")[0].IsKeyword("SELECT"));
}

TEST(TokenizerTest, StringEscaping) {
  auto tokens = MustTokenize("'it''s'");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(TokenizerTest, NumberForms) {
  auto tokens = MustTokenize("1 1.5 .5 1e3 2E-2 7.");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLong);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_EQ(tokens[2].double_value, 0.5);
  EXPECT_EQ(tokens[3].double_value, 1000.0);
  EXPECT_EQ(tokens[4].double_value, 0.02);
  EXPECT_EQ(tokens[5].kind, TokenKind::kDouble);
}

TEST(TokenizerTest, Comments) {
  auto tokens = MustTokenize("a -- comment\nb // another\nc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(TokenizerTest, MultiCharPunctuation) {
  auto tokens = MustTokenize("<= >= <> != < > = $");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_TRUE(tokens[0].IsPunct("<="));
  EXPECT_TRUE(tokens[2].IsPunct("<>"));
  EXPECT_TRUE(tokens[7].IsPunct("$"));
}

TEST(TokenizerTest, Errors) {
  EXPECT_TRUE(Tokenize("[unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ? b").status().IsParseError());
}

TEST(TokenStreamTest, MatchAndExpect) {
  TokenStream ts(MustTokenize("ORDER BY name DESC"));
  EXPECT_FALSE(ts.MatchKeywords({"GROUP", "BY"}));
  EXPECT_TRUE(ts.MatchKeywords({"ORDER", "BY"}));
  auto name = ts.ExpectIdentifier();
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "name");
  EXPECT_TRUE(ts.MatchKeyword("desc"));
  EXPECT_TRUE(ts.AtEnd());
}

TEST(TokenStreamTest, RewindRestoresPosition) {
  TokenStream ts(MustTokenize("a b c"));
  size_t save = ts.position();
  ts.Next();
  ts.Next();
  ts.Rewind(save);
  EXPECT_EQ(ts.Peek().text, "a");
}

TEST(TokenStreamTest, ErrorsNameTheOffendingToken) {
  TokenStream ts(MustTokenize("FROM"));
  Status s = ts.ExpectKeyword("SELECT");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("FROM"), std::string::npos);
  ts.Next();
  Status end = ts.ExpectPunct(")");
  EXPECT_NE(end.message().find("end of input"), std::string::npos);
}

}  // namespace
}  // namespace dmx
