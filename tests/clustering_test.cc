// Clustering service: segment recovery, EM vs K-means, responsibility
// invariants, mixture-posterior prediction of PREDICT columns, determinism.

#include "algorithms/clustering.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "test_util.h"

namespace dmx {
namespace {

using testutil::AddCategorical;
using testutil::AddContinuous;
using testutil::AddGroup;
using testutil::MakeCase;

ParamMap Params(const MiningService& service,
                std::vector<AlgorithmParam> overrides = {}) {
  auto params = service.ResolveParams(overrides);
  EXPECT_TRUE(params.ok()) << params.status().ToString();
  return *params;
}

// Two well-separated Gaussian blobs in 2-D.
std::vector<DataCase> TwoBlobs(const AttributeSet& attrs, int n,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<DataCase> cases;
  for (int i = 0; i < n; ++i) {
    int blob = static_cast<int>(rng.Uniform(2));
    double x = rng.Gaussian(blob == 0 ? 0 : 20, 1);
    double y = rng.Gaussian(blob == 0 ? 0 : 20, 1);
    cases.push_back(MakeCase(attrs, {x, y}));
  }
  return cases;
}

AttributeSet TwoDAttrs() {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddContinuous(&attrs, "Y");
  return attrs;
}

TEST(ClusteringTest, RecoversSeparatedBlobs) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  auto model = service.Train(attrs, TwoBlobs(attrs, 300, 1),
                             Params(service, {{"CLUSTER_COUNT",
                                               Value::Long(2)}}));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto p0 = (*model)->Predict(attrs, MakeCase(attrs, {0, 0}), {});
  auto p20 = (*model)->Predict(attrs, MakeCase(attrs, {20, 20}), {});
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p20.ok());
  const AttributePrediction* c0 = p0->Find(kClusterTarget);
  const AttributePrediction* c20 = p20->Find(kClusterTarget);
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c20, nullptr);
  EXPECT_NE(c0->cluster_id, c20->cluster_id);
  EXPECT_GT(c0->probability, 0.99);
  EXPECT_GT(c20->probability, 0.99);
}

TEST(ClusteringTest, ResponsibilitiesSumToOne) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  auto model = service.Train(attrs, TwoBlobs(attrs, 200, 2),
                             Params(service, {{"CLUSTER_COUNT",
                                               Value::Long(4)}}));
  ASSERT_TRUE(model.ok());
  const auto& clustering = static_cast<const ClusteringModel&>(**model);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    DataCase probe = MakeCase(attrs, {rng.NextDouble() * 25,
                                      rng.NextDouble() * 25});
    auto resp = clustering.Responsibilities(attrs, probe, false);
    double total = 0;
    for (double r : resp) {
      EXPECT_GE(r, 0);
      total += r;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ClusteringTest, ClusterWeightsSumToCaseCount) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  auto model = service.Train(attrs, TwoBlobs(attrs, 250, 4),
                             Params(service));
  ASSERT_TRUE(model.ok());
  const auto& clustering = static_cast<const ClusteringModel&>(**model);
  double total = 0;
  for (const auto& cluster : clustering.clusters()) total += cluster.weight;
  EXPECT_NEAR(total, 250.0, 1e-6);
}

TEST(ClusteringTest, KMeansAlsoSeparates) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  auto model = service.Train(
      attrs, TwoBlobs(attrs, 300, 5),
      Params(service, {{"CLUSTER_COUNT", Value::Long(2)},
                       {"CLUSTER_METHOD", Value::Text("KMEANS")}}));
  ASSERT_TRUE(model.ok());
  auto p0 = (*model)->Predict(attrs, MakeCase(attrs, {0, 0}), {});
  auto p20 = (*model)->Predict(attrs, MakeCase(attrs, {20, 20}), {});
  EXPECT_NE(p0->Find(kClusterTarget)->cluster_id,
            p20->Find(kClusterTarget)->cluster_id);
  // Hard assignments: every case weight lands in one cluster.
  const auto& clustering = static_cast<const ClusteringModel&>(**model);
  for (const auto& cluster : clustering.clusters()) {
    EXPECT_GT(cluster.weight, 0);  // no empty cluster on this data
  }
}

TEST(ClusteringTest, PredictsTargetsThroughTheMixture) {
  // Label correlates perfectly with blob; clustering predicts it without
  // being a classifier.
  AttributeSet attrs = TwoDAttrs();
  AddCategorical(&attrs, "Label", {"near", "far"}, /*is_output=*/true);
  Rng rng(6);
  std::vector<DataCase> cases;
  for (int i = 0; i < 300; ++i) {
    int blob = static_cast<int>(rng.Uniform(2));
    cases.push_back(MakeCase(attrs, {rng.Gaussian(blob * 20, 1),
                                     rng.Gaussian(blob * 20, 1),
                                     static_cast<double>(blob)}));
  }
  ClusteringService service;
  auto model = service.Train(attrs, cases,
                             Params(service, {{"CLUSTER_COUNT",
                                               Value::Long(2)}}));
  ASSERT_TRUE(model.ok());
  auto p = (*model)->Predict(attrs,
                             MakeCase(attrs, {20, 20, kMissing}), {});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Find("Label")->predicted.Equals(Value::Text("far")));
  EXPECT_GT(p->Find("Label")->probability, 0.8);

  // Continuous targets: posterior mean tracks the blob's Y.
  AttributeSet attrs2;
  AddContinuous(&attrs2, "X");
  AddContinuous(&attrs2, "Y", /*is_output=*/true);
  std::vector<DataCase> cases2;
  for (int i = 0; i < 300; ++i) {
    int blob = static_cast<int>(rng.Uniform(2));
    cases2.push_back(MakeCase(attrs2, {rng.Gaussian(blob * 20, 1),
                                       rng.Gaussian(blob == 0 ? 5 : 50, 1)}));
  }
  auto model2 = service.Train(attrs2, cases2,
                              Params(service, {{"CLUSTER_COUNT",
                                                Value::Long(2)}}));
  ASSERT_TRUE(model2.ok());
  auto py = (*model2)->Predict(attrs2, MakeCase(attrs2, {20, kMissing}), {});
  EXPECT_NEAR(py->Find("Y")->predicted.double_value(), 50, 3);
}

TEST(ClusteringTest, SameSeedSameClustering) {
  AttributeSet attrs_a = TwoDAttrs();
  AttributeSet attrs_b = TwoDAttrs();
  ClusteringService service;
  auto cases = TwoBlobs(attrs_a, 200, 7);
  auto a = service.Train(attrs_a, cases, Params(service));
  auto b = service.Train(attrs_b, cases, Params(service));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& ca = static_cast<const ClusteringModel&>(**a).clusters();
  const auto& cb = static_cast<const ClusteringModel&>(**b).clusters();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_DOUBLE_EQ(ca[i].weight, cb[i].weight);
  }
}

TEST(ClusteringTest, ItemGroupsShapeClusters) {
  AttributeSet attrs;
  AddGroup(&attrs, "Basket", {"beer", "seeds"});
  Rng rng(8);
  std::vector<DataCase> cases;
  for (int i = 0; i < 200; ++i) {
    int blob = static_cast<int>(rng.Uniform(2));
    cases.push_back(MakeCase(attrs, {}, {{blob}}));
  }
  ClusteringService service;
  auto model = service.Train(attrs, cases,
                             Params(service, {{"CLUSTER_COUNT",
                                               Value::Long(2)}}));
  ASSERT_TRUE(model.ok());
  auto beer = (*model)->Predict(attrs, MakeCase(attrs, {}, {{0}}), {});
  auto seeds = (*model)->Predict(attrs, MakeCase(attrs, {}, {{1}}), {});
  EXPECT_NE(beer->Find(kClusterTarget)->cluster_id,
            seeds->Find(kClusterTarget)->cluster_id);
}

TEST(ClusteringTest, ContentExposesClusterNodes) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  auto model = service.Train(attrs, TwoBlobs(attrs, 100, 9),
                             Params(service, {{"CLUSTER_COUNT",
                                               Value::Long(3)}}));
  ASSERT_TRUE(model.ok());
  auto content = (*model)->BuildContent(attrs);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)->children.size(), 3u);
  double probability_total = 0;
  for (const auto& cluster : (*content)->children) {
    EXPECT_EQ(cluster->type, NodeType::kCluster);
    probability_total += cluster->probability;
  }
  EXPECT_NEAR(probability_total, 1.0, 1e-9);
}

TEST(ClusteringTest, ParameterValidation) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  EXPECT_FALSE(service
                   .Train(attrs, TwoBlobs(attrs, 10, 1),
                          Params(service, {{"CLUSTER_METHOD",
                                            Value::Text("QUANTUM")}}))
                   .ok());
  EXPECT_FALSE(service
                   .Train(attrs, TwoBlobs(attrs, 10, 1),
                          Params(service, {{"CLUSTER_COUNT", Value::Long(0)}}))
                   .ok());
  EXPECT_FALSE(service.Train(attrs, {}, Params(service)).ok());
}

TEST(ClusteringTest, MoreClustersThanCasesClamps) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  auto model = service.Train(attrs, TwoBlobs(attrs, 3, 10),
                             Params(service, {{"CLUSTER_COUNT",
                                               Value::Long(10)}}));
  ASSERT_TRUE(model.ok());
  EXPECT_LE(static_cast<const ClusteringModel&>(**model).clusters().size(),
            3u);
}

// Purity sweep over seeds: the planted 2-blob structure is recovered with
// >= 95% purity regardless of initialization seed.
class ClusteringSeedSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ClusteringSeedSweep, HighPurityOnSeparatedData) {
  AttributeSet attrs = TwoDAttrs();
  ClusteringService service;
  Rng rng(42);
  std::vector<DataCase> cases;
  std::vector<int> truth;
  for (int i = 0; i < 200; ++i) {
    int blob = static_cast<int>(rng.Uniform(2));
    truth.push_back(blob);
    cases.push_back(MakeCase(attrs, {rng.Gaussian(blob * 30, 1),
                                     rng.Gaussian(blob * 30, 1)}));
  }
  auto model = service.Train(
      attrs, cases,
      Params(service, {{"CLUSTER_COUNT", Value::Long(2)},
                       {"SEED", Value::Long(GetParam())}}));
  ASSERT_TRUE(model.ok());
  std::map<std::pair<int, int>, int> crosstab;
  for (size_t i = 0; i < cases.size(); ++i) {
    auto p = (*model)->Predict(attrs, cases[i], {});
    crosstab[{p->Find(kClusterTarget)->cluster_id, truth[i]}]++;
  }
  int agree = 0;
  for (int cluster = 0; cluster < 2; ++cluster) {
    agree += std::max(crosstab[{cluster, 0}], crosstab[{cluster, 1}]);
  }
  EXPECT_GE(agree, 190) << "purity too low for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringSeedSweep,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace dmx
