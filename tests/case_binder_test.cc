// Case binding: attribute-set construction from definitions, name-based
// training binding, dictionaries and discretization, qualifier routing,
// relation-derived item groups, and prediction-time ON/NATURAL binding.

#include "core/case_binder.h"

#include <gtest/gtest.h>

#include "core/dmx_parser.h"

namespace dmx {
namespace {

InsertColumn ScalarColumn(std::string name) {
  InsertColumn col;
  col.name = std::move(name);
  return col;
}

ModelDefinition MustDefine(const std::string& dmx) {
  auto def = ParseCreateMiningModel(dmx);
  EXPECT_TRUE(def.ok()) << def.status().ToString();
  return def.ok() ? std::move(def).value() : ModelDefinition{};
}

const char* kModelDmx = R"(
  CREATE MINING MODEL m (
    [Id] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Age] DOUBLE DISCRETIZED(EQUAL_RANGES, 4) PREDICT,
    [Income] DOUBLE CONTINUOUS,
    [Loyalty] LONG ORDERED,
    [AgeProb] DOUBLE PROBABILITY OF [Age],
    [Weight] DOUBLE SUPPORT OF [Id],
    [Comment] TEXT DISCRETE MODEL_EXISTENCE_ONLY,
    [Purchases] TABLE (
      [Product] TEXT KEY,
      [Qty] DOUBLE CONTINUOUS,
      [Type] TEXT DISCRETE RELATED TO [Product]
    )
  ) USING Naive_Bayes)";

std::shared_ptr<const Schema> SourceSchema() {
  auto nested = Schema::Make({{"CustID", DataType::kLong},
                              {"Product", DataType::kText},
                              {"Qty", DataType::kDouble},
                              {"Type", DataType::kText}});
  return Schema::Make({{"Id", DataType::kLong},
                       {"Gender", DataType::kText},
                       {"Age", DataType::kLong},
                       {"Income", DataType::kDouble},
                       {"Loyalty", DataType::kLong},
                       {"AgeProb", DataType::kDouble},
                       {"Weight", DataType::kDouble},
                       {"Comment", DataType::kText},
                       ColumnDef("Purchases", nested)});
}

Row MakeSourceRow(int64_t id, const char* gender, int64_t age, double income,
                  int64_t loyalty, double age_prob, double weight,
                  const Value& comment,
                  std::vector<std::tuple<const char*, double, const char*>>
                      purchases) {
  auto nested_schema = SourceSchema()->column(8).nested;
  std::vector<Row> nested_rows;
  for (const auto& [product, qty, type] : purchases) {
    nested_rows.push_back({Value::Long(id), Value::Text(product),
                           Value::Double(qty), Value::Text(type)});
  }
  return {Value::Long(id),        Value::Text(gender),
          Value::Long(age),       Value::Double(income),
          Value::Long(loyalty),   Value::Double(age_prob),
          Value::Double(weight),  comment,
          Value::Table(NestedTable::Make(nested_schema, nested_rows))};
}

TEST(CaseBinderTest, AttributeSetStructure) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  // Key and qualifiers yield no attributes; 5 scalars remain.
  ASSERT_EQ(attrs.attributes.size(), 5u);
  EXPECT_EQ(attrs.attributes[0].name, "Gender");
  EXPECT_FALSE(attrs.attributes[0].is_continuous);
  EXPECT_TRUE(attrs.attributes[1].is_discretized());
  EXPECT_TRUE(attrs.attributes[1].is_output);
  EXPECT_TRUE(attrs.attributes[1].is_input);  // PREDICT = both
  EXPECT_TRUE(attrs.attributes[2].is_continuous);
  EXPECT_EQ(attrs.attributes[3].declared_type, AttributeType::kOrdered);
  EXPECT_TRUE(attrs.attributes[4].existence_only);
  EXPECT_EQ(attrs.attributes[4].cardinality(), 2);
  // The TABLE column and its relation-derived sibling.
  ASSERT_EQ(attrs.groups.size(), 2u);
  EXPECT_EQ(attrs.groups[0].name, "Purchases");
  ASSERT_EQ(attrs.groups[0].value_names.size(), 1u);
  EXPECT_EQ(attrs.groups[0].value_names[0], "Qty");
  EXPECT_EQ(attrs.groups[1].name, "Purchases.Type");
}

TEST(CaseBinderTest, TrainingBindsByNameAndBuildsDictionaries) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  auto binder = CaseBinder::CreateForTraining(def, *SourceSchema(), nullptr);
  ASSERT_TRUE(binder.ok()) << binder.status().ToString();

  Row row = MakeSourceRow(1, "Male", 30, 50000, 3, 0.8, 2.0,
                          Value::Text("hello"),
                          {{"TV", 1, "Electronic"}, {"Beer", 6, "Beverage"}});
  Row row2 = MakeSourceRow(2, "Female", 60, 30000, 5, 1.0, 1.0, Value::Null(),
                           {{"Seeds", 2, "Garden"}});
  ASSERT_TRUE(binder->CollectStatistics(row, &attrs).ok());
  ASSERT_TRUE(binder->CollectStatistics(row2, &attrs).ok());
  ASSERT_TRUE(binder->FinalizeStatistics(&attrs, true).ok());

  // Dictionaries built.
  EXPECT_EQ(attrs.attributes[0].cardinality(), 2);        // Male/Female
  EXPECT_EQ(attrs.groups[0].keys.size(), 3u);             // TV/Beer/Seeds
  EXPECT_EQ(attrs.groups[1].keys.size(), 3u);             // 3 types
  // Discretized Age got bounds from its 2 samples.
  EXPECT_FALSE(attrs.attributes[1].bucket_bounds.empty());

  auto c = binder->BindCase(row, &attrs);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->values[0], attrs.attributes[0].LookupCategory(
                              Value::Text("Male")));
  EXPECT_EQ(static_cast<int>(c->values[1]), attrs.attributes[1].BucketOf(30));
  EXPECT_DOUBLE_EQ(c->values[2], 50000);
  // Qualifiers routed: SUPPORT -> weight, PROBABILITY -> confidence of Age.
  EXPECT_DOUBLE_EQ(c->weight, 2.0);
  EXPECT_DOUBLE_EQ(c->confidence(1), 0.8);
  // MODEL_EXISTENCE_ONLY: non-null comment -> state 1.
  EXPECT_EQ(c->values[4], 1.0);
  auto c2 = binder->BindCase(row2, &attrs);
  EXPECT_EQ((*c2).values[4], 0.0);
  // Nested items with per-item values and the derived type group.
  ASSERT_EQ(c->groups.size(), 2u);
  ASSERT_EQ(c->groups[0].size(), 2u);
  EXPECT_EQ(c->groups[0][0].key,
            attrs.groups[0].LookupKey(Value::Text("TV")));
  ASSERT_EQ(c->groups[0][1].values.size(), 1u);
  EXPECT_DOUBLE_EQ(c->groups[0][1].values[0], 6);
  EXPECT_EQ(c->groups[1].size(), 2u);  // Electronic + Beverage
}

TEST(CaseBinderTest, MappingRestrictsAndValidates) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  std::vector<InsertColumn> mapping;
  mapping.push_back(ScalarColumn("Gender"));
  mapping.push_back(ScalarColumn("Id"));
  auto binder = CaseBinder::CreateForTraining(def, *SourceSchema(), &mapping);
  ASSERT_TRUE(binder.ok());
  Row row = MakeSourceRow(1, "Male", 30, 50000, 3, 1.0, 1.0, Value::Null(),
                          {{"TV", 1, "Electronic"}});
  auto c = binder->BindCase(row, &attrs);
  ASSERT_TRUE(c.ok());
  // Unmapped columns (Age, Income, ...) stay missing; weight defaults.
  EXPECT_FALSE(IsMissing(c->values[0]));
  EXPECT_TRUE(IsMissing(c->values[1]));
  EXPECT_TRUE(IsMissing(c->values[2]));
  EXPECT_DOUBLE_EQ(c->weight, 1.0);
  EXPECT_TRUE(c->groups[0].empty());

  // A mapped column missing from the source is a bind error.
  std::vector<InsertColumn> bad;
  bad.push_back(ScalarColumn("Gender"));
  auto tiny = Schema::Make({{"Id", DataType::kLong}});
  EXPECT_TRUE(CaseBinder::CreateForTraining(def, *tiny, &bad)
                  .status().IsBindError());
  // A source sharing no column at all is a bind error even unmapped.
  auto alien = Schema::Make({{"Zzz", DataType::kLong}});
  EXPECT_TRUE(CaseBinder::CreateForTraining(def, *alien, nullptr)
                  .status().IsBindError());
}

TEST(CaseBinderTest, PredictionBindingNeverInterns) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  auto train_binder = CaseBinder::CreateForTraining(def, *SourceSchema(),
                                                    nullptr);
  ASSERT_TRUE(train_binder.ok());
  Row row = MakeSourceRow(1, "Male", 30, 1000, 3, 1.0, 1.0, Value::Null(),
                          {{"TV", 1, "Electronic"}});
  ASSERT_TRUE(train_binder->CollectStatistics(row, &attrs).ok());
  ASSERT_TRUE(train_binder->FinalizeStatistics(&attrs, true).ok());

  auto pred_binder = CaseBinder::CreateForPrediction(def, *SourceSchema(), "t",
                                                     nullptr);
  ASSERT_TRUE(pred_binder.ok());
  Row unseen = MakeSourceRow(2, "Nonbinary", 31, 1000, 3, 1.0, 1.0,
                             Value::Null(), {{"Hoverboard", 1, "Toy"}});
  size_t genders_before = attrs.attributes[0].categories.size();
  size_t keys_before = attrs.groups[0].keys.size();
  auto c = pred_binder->BindCase(unseen, static_cast<const AttributeSet&>(attrs));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(IsMissing(c->values[0]));  // unseen category -> missing
  EXPECT_TRUE(c->groups[0].empty());     // unseen item dropped
  EXPECT_EQ(attrs.attributes[0].categories.size(), genders_before);
  EXPECT_EQ(attrs.groups[0].keys.size(), keys_before);
}

TEST(CaseBinderTest, OnClauseBindsScrambledSourceNames) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  // Seed the dictionaries.
  auto train_binder = CaseBinder::CreateForTraining(def, *SourceSchema(),
                                                    nullptr);
  Row seed = MakeSourceRow(1, "Male", 30, 1000, 3, 1.0, 1.0, Value::Null(),
                           {{"TV", 1, "Electronic"}});
  ASSERT_TRUE(train_binder->CollectStatistics(seed, &attrs).ok());
  ASSERT_TRUE(train_binder->FinalizeStatistics(&attrs, true).ok());

  // A prediction source whose column names share nothing with the model.
  auto nested = Schema::Make({{"P", DataType::kText}, {"N", DataType::kDouble}});
  auto source = Schema::Make({{"Sex", DataType::kText},
                              ColumnDef("Cart", nested)});
  std::vector<OnPair> on;
  on.push_back({{"m", "Gender"}, {"t", "Sex"}});
  on.push_back({{"m", "Purchases", "Product"}, {"t", "Cart", "P"}});
  on.push_back({{"m", "Purchases", "Qty"}, {"t", "Cart", "N"}});
  auto binder = CaseBinder::CreateForPrediction(def, *source, "t", &on);
  ASSERT_TRUE(binder.ok()) << binder.status().ToString();

  Row row = {Value::Text("Male"),
             Value::Table(NestedTable::Make(
                 nested, {{Value::Text("TV"), Value::Double(2)}}))};
  auto c = binder->BindCase(row, static_cast<const AttributeSet&>(attrs));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->values[0],
            attrs.attributes[0].LookupCategory(Value::Text("Male")));
  ASSERT_EQ(c->groups[0].size(), 1u);
  EXPECT_EQ(c->groups[0][0].key, attrs.groups[0].LookupKey(Value::Text("TV")));
  EXPECT_DOUBLE_EQ(c->groups[0][0].values[0], 2);
  // Unmapped inputs are missing.
  EXPECT_TRUE(IsMissing(c->values[2]));  // Income

  // ON-clause errors.
  std::vector<OnPair> bad_model_col;
  bad_model_col.push_back({{"m", "Ghost"}, {"t", "Sex"}});
  EXPECT_TRUE(CaseBinder::CreateForPrediction(def, *source, "t",
                                              &bad_model_col)
                  .status().IsBindError());
  std::vector<OnPair> no_model_side;
  no_model_side.push_back({{"x", "a"}, {"t", "Sex"}});
  EXPECT_TRUE(CaseBinder::CreateForPrediction(def, *source, "t",
                                              &no_model_side)
                  .status().IsBindError());
  std::vector<OnPair> bad_source_col;
  bad_source_col.push_back({{"m", "Gender"}, {"t", "Ghost"}});
  EXPECT_TRUE(CaseBinder::CreateForPrediction(def, *source, "t",
                                              &bad_source_col)
                  .status().IsBindError());
}

TEST(CaseBinderTest, OrderedDictionarySortedAtFirstFinalize) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  auto binder = CaseBinder::CreateForTraining(def, *SourceSchema(), nullptr);
  ASSERT_TRUE(binder.ok());
  // Loyalty values arrive out of order: 5, 1, 3.
  for (int64_t loyalty : {5, 1, 3}) {
    Row row = MakeSourceRow(loyalty, "Male", 30, 1000, loyalty, 1.0, 1.0,
                            Value::Null(), {});
    ASSERT_TRUE(binder->CollectStatistics(row, &attrs).ok());
  }
  ASSERT_TRUE(binder->FinalizeStatistics(&attrs, true).ok());
  const Attribute& loyalty = attrs.attributes[3];
  ASSERT_EQ(loyalty.categories.size(), 3u);
  EXPECT_TRUE(loyalty.categories[0].Equals(Value::Long(1)));
  EXPECT_TRUE(loyalty.categories[1].Equals(Value::Long(3)));
  EXPECT_TRUE(loyalty.categories[2].Equals(Value::Long(5)));
}

TEST(CaseBinderTest, NegativeSupportWeightRejected) {
  ModelDefinition def = MustDefine(kModelDmx);
  AttributeSet attrs = CaseBinder::BuildAttributeSet(def);
  auto binder = CaseBinder::CreateForTraining(def, *SourceSchema(), nullptr);
  ASSERT_TRUE(binder.ok());
  Row row = MakeSourceRow(1, "Male", 30, 1000, 3, 1.0, -2.0, Value::Null(), {});
  EXPECT_FALSE(binder->BindCase(row, &attrs).ok());
}

}  // namespace
}  // namespace dmx
