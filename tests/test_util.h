// Shared helpers for algorithm-level tests: direct construction of
// AttributeSets and DataCases without going through the DMX/shaping layers.

#ifndef DMX_TESTS_TEST_UTIL_H_
#define DMX_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "model/attribute_set.h"

namespace dmx::testutil {

/// Adds a categorical input attribute with named states; returns its index.
inline int AddCategorical(AttributeSet* attrs, const std::string& name,
                          const std::vector<std::string>& states,
                          bool is_output = false) {
  Attribute attr;
  attr.name = name;
  attr.is_continuous = false;
  attr.is_input = true;
  attr.is_output = is_output;
  for (const std::string& s : states) attr.InternCategory(Value::Text(s));
  attrs->attributes.push_back(std::move(attr));
  return static_cast<int>(attrs->attributes.size()) - 1;
}

/// Adds a continuous attribute; returns its index.
inline int AddContinuous(AttributeSet* attrs, const std::string& name,
                         bool is_output = false) {
  Attribute attr;
  attr.name = name;
  attr.is_continuous = true;
  attr.declared_type = AttributeType::kContinuous;
  attr.is_input = true;
  attr.is_output = is_output;
  attrs->attributes.push_back(std::move(attr));
  return static_cast<int>(attrs->attributes.size()) - 1;
}

/// Adds a nested item group with the given keys; returns its index.
inline int AddGroup(AttributeSet* attrs, const std::string& name,
                    const std::vector<std::string>& keys,
                    bool is_output = false) {
  NestedGroup group;
  group.name = name;
  group.is_input = !is_output;
  group.is_output = is_output;
  for (const std::string& k : keys) group.InternKey(Value::Text(k));
  attrs->groups.push_back(std::move(group));
  return static_cast<int>(attrs->groups.size()) - 1;
}

/// Builds a case over `attrs` with the given per-attribute values and
/// per-group item index lists.
inline DataCase MakeCase(const AttributeSet& attrs,
                         std::vector<double> values,
                         std::vector<std::vector<int>> items = {}) {
  DataCase c;
  c.values = std::move(values);
  c.values.resize(attrs.attributes.size(), kMissing);
  c.groups.resize(attrs.groups.size());
  for (size_t g = 0; g < items.size() && g < c.groups.size(); ++g) {
    for (int key : items[g]) {
      CaseItem item;
      item.key = key;
      c.groups[g].push_back(item);
    }
  }
  return c;
}

}  // namespace dmx::testutil

#endif  // DMX_TESTS_TEST_UTIL_H_
