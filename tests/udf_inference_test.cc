// Consistency property between schema-time inference (InferDmxItemColumn)
// and run-time evaluation (EvaluateDmxExpr): for a sweep of projection
// expressions, the declared output column type must match the kind of every
// evaluated value (NULLs excepted), and nested-table outputs must carry the
// declared nested schema.

#include <gtest/gtest.h>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

class UdfInferenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    provider_ = new Provider();
    datagen::WarehouseConfig config;
    config.num_customers = 150;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_->database(), config).ok());
    conn_ = provider_->Connect().release();
    ASSERT_TRUE(conn_->Execute(R"(
      CREATE MINING MODEL [M] (
        [Customer ID] LONG KEY,
        [Gender] TEXT DISCRETE,
        [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,
        [Product Purchases] TABLE(
          [Product Name] TEXT KEY,
          [Product Type] TEXT DISCRETE RELATED TO [Product Name]))
      USING Naive_Bayes)").ok());
    auto insert = conn_->Execute(R"(
      INSERT INTO [M]
      SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers
             ORDER BY [Customer ID]}
      APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
               ORDER BY [CustID]}
              RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
    ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  }

  static void TearDownTestSuite() {
    delete conn_;
    delete provider_;
    conn_ = nullptr;
    provider_ = nullptr;
  }

  static Provider* provider_;
  static Connection* conn_;
};

Provider* UdfInferenceTest::provider_ = nullptr;
Connection* UdfInferenceTest::conn_ = nullptr;

bool KindMatchesType(const Value& v, DataType declared) {
  if (v.is_null()) return true;
  switch (declared) {
    case DataType::kBool:
      return v.is_bool();
    case DataType::kLong:
      return v.is_long();
    case DataType::kDouble:
      return v.is_double() || v.is_long();  // numeric widening is fine
    case DataType::kText:
      return v.is_text();
    case DataType::kTable:
      return v.is_table();
  }
  return false;
}

TEST_P(UdfInferenceTest, DeclaredTypeMatchesEvaluatedValues) {
  std::string query = std::string("SELECT ") + GetParam() + R"( AS X FROM [M]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM Customers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";
  auto result = conn_->Execute(query);
  ASSERT_TRUE(result.ok()) << GetParam() << " -> "
                           << result.status().ToString();
  ASSERT_EQ(result->num_columns(), 1u);
  const ColumnDef& declared = result->schema()->column(0);
  ASSERT_GT(result->num_rows(), 0u);
  for (const Row& row : result->rows()) {
    EXPECT_TRUE(KindMatchesType(row[0], declared.type))
        << GetParam() << ": declared " << DataTypeToString(declared.type)
        << " but evaluated to " << row[0].ToString();
    if (declared.type == DataType::kTable && !row[0].is_null()) {
      ASSERT_NE(declared.nested, nullptr) << GetParam();
      EXPECT_TRUE(row[0].table_value()->schema()->Equals(*declared.nested))
          << GetParam() << ": nested schema mismatch";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Projections, UdfInferenceTest,
    ::testing::Values(
        "t.[Customer ID]",                                  // source long
        "t.[Gender]",                                       // source text
        "[M].[Age]",                                        // predicted value
        "Predict([Age])",                                   //
        "PredictProbability([Age])",                        //
        "PredictProbability([Age], 30.0)",                  //
        "PredictSupport([Age])",                            //
        "PredictVariance([Age])",                           //
        "PredictStdev([Age])",                              //
        "PredictHistogram([Age])",                          // nested table
        "TopCount(PredictHistogram([Age]), $Probability, 2)",
        "RangeMin([Age])", "RangeMid([Age])", "RangeMax([Age])",
        "t.[Product Purchases]",                            // source table
        "'literal'", "42", "2.5"));

}  // namespace
}  // namespace dmx
