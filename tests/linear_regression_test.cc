// Linear-regression service: exact coefficient recovery, categorical and
// item features, incremental == batch, ridge behaviour and guards.

#include "algorithms/linear_regression.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace dmx {
namespace {

using testutil::AddCategorical;
using testutil::AddContinuous;
using testutil::AddGroup;
using testutil::MakeCase;

ParamMap Params(const MiningService& service,
                std::vector<AlgorithmParam> overrides = {}) {
  auto params = service.ResolveParams(overrides);
  EXPECT_TRUE(params.ok());
  return *params;
}

TEST(LinearRegressionTest, RecoversExactLinearFunction) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X1");
  AddContinuous(&attrs, "X2");
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  Rng rng(1);
  std::vector<DataCase> cases;
  for (int i = 0; i < 100; ++i) {
    double x1 = rng.NextDouble() * 10;
    double x2 = rng.NextDouble() * 10;
    cases.push_back(MakeCase(attrs, {x1, x2, 3 * x1 - 2 * x2 + 7}));
  }
  LinearRegressionService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {4, 5, kMissing}), {});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->Find("Y")->predicted.double_value(), 3 * 4 - 2 * 5 + 7, 0.05);
  EXPECT_LT(p->Find("Y")->variance, 0.01);  // noiseless fit
}

TEST(LinearRegressionTest, CategoricalOneHotEffects) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Group", {"base", "plus10", "plus20"});
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  std::vector<DataCase> cases;
  for (int i = 0; i < 90; ++i) {
    int g = i % 3;
    cases.push_back(MakeCase(attrs, {static_cast<double>(g), 5.0 + 10.0 * g}));
  }
  LinearRegressionService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  for (int g = 0; g < 3; ++g) {
    auto p = (*model)->Predict(
        attrs, MakeCase(attrs, {static_cast<double>(g), kMissing}), {});
    EXPECT_NEAR(p->Find("Y")->predicted.double_value(), 5 + 10 * g, 0.1);
  }
}

TEST(LinearRegressionTest, ItemIndicatorsContribute) {
  AttributeSet attrs;
  AddGroup(&attrs, "Basket", {"beer", "caviar"});
  AddContinuous(&attrs, "Spend", /*is_output=*/true);
  Rng rng(2);
  std::vector<DataCase> cases;
  for (int i = 0; i < 200; ++i) {
    bool beer = rng.Chance(0.5);
    bool caviar = rng.Chance(0.3);
    std::vector<int> items;
    if (beer) items.push_back(0);
    if (caviar) items.push_back(1);
    double spend = 10 + (beer ? 5 : 0) + (caviar ? 100 : 0);
    cases.push_back(MakeCase(attrs, {spend}, {items}));
  }
  LinearRegressionService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {kMissing}, {{1}}), {});
  EXPECT_NEAR(p->Find("Spend")->predicted.double_value(), 110, 1);
}

TEST(LinearRegressionTest, IncrementalEqualsBatch) {
  AttributeSet attrs_a;
  AddContinuous(&attrs_a, "X");
  AddContinuous(&attrs_a, "Y", /*is_output=*/true);
  AttributeSet attrs_b = attrs_a;
  Rng rng(3);
  std::vector<DataCase> cases;
  for (int i = 0; i < 150; ++i) {
    double x = rng.NextDouble() * 4;
    cases.push_back(MakeCase(attrs_a, {x, 2 * x + rng.Gaussian(0, 0.1)}));
  }
  LinearRegressionService service;
  auto batch = service.Train(attrs_a, cases, Params(service));
  auto inc = service.CreateEmpty(attrs_b, Params(service));
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(inc.ok());
  for (const DataCase& c : cases) {
    ASSERT_TRUE((*inc)->ConsumeCase(attrs_b, c).ok());
  }
  DataCase probe = MakeCase(attrs_a, {1.5, kMissing});
  auto pa = (*batch)->Predict(attrs_a, probe, {});
  auto pb = (*inc)->Predict(attrs_b, probe, {});
  EXPECT_DOUBLE_EQ(pa->Find("Y")->predicted.double_value(),
                   pb->Find("Y")->predicted.double_value());
}

TEST(LinearRegressionTest, RefreshImprovesTheFit) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  LinearRegressionService service;
  auto model = service.CreateEmpty(attrs, Params(service));
  ASSERT_TRUE(model.ok());
  // Two points underdetermine nothing here, but a later refresh with many
  // points must dominate the fit.
  ASSERT_TRUE((*model)->ConsumeCase(attrs, MakeCase(attrs, {0, 100})).ok());
  ASSERT_TRUE((*model)->ConsumeCase(attrs, MakeCase(attrs, {1, 100})).ok());
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    double x = rng.NextDouble() * 10;
    ASSERT_TRUE((*model)->ConsumeCase(attrs, MakeCase(attrs, {x, x})).ok());
  }
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {8, kMissing}), {});
  EXPECT_NEAR(p->Find("Y")->predicted.double_value(), 8, 2.5);
}

TEST(LinearRegressionTest, HeavyRidgeShrinksTowardZero) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  std::vector<DataCase> cases;
  for (int i = 0; i < 50; ++i) {
    double x = i / 10.0;
    cases.push_back(MakeCase(attrs, {x, 10 * x}));
  }
  LinearRegressionService service;
  auto mild = service.Train(attrs, cases, Params(service));
  auto heavy = service.Train(
      attrs, cases, Params(service, {{"RIDGE_LAMBDA", Value::Double(1e6)}}));
  ASSERT_TRUE(mild.ok());
  ASSERT_TRUE(heavy.ok());
  DataCase probe = MakeCase(attrs, {5, kMissing});
  double mild_pred = (*mild)->Predict(attrs, probe, {})
                         ->Find("Y")->predicted.double_value();
  double heavy_pred = (*heavy)->Predict(attrs, probe, {})
                          ->Find("Y")->predicted.double_value();
  EXPECT_NEAR(mild_pred, 50, 1);
  EXPECT_LT(std::abs(heavy_pred), std::abs(mild_pred));
}

TEST(LinearRegressionTest, FeatureGuardAndTargetRequirements) {
  LinearRegressionService service;
  {
    AttributeSet attrs;
    AddContinuous(&attrs, "X");
    EXPECT_FALSE(service.CreateEmpty(attrs, Params(service)).ok());  // no target
  }
  {
    AttributeSet attrs;
    AddGroup(&attrs, "Huge", std::vector<std::string>(600, "k"));
    // 600 identical names intern to 1 key; build distinct ones instead.
    attrs.groups[0].keys.clear();
    attrs.groups[0].key_index.clear();
    for (int i = 0; i < 600; ++i) {
      attrs.groups[0].InternKey(Value::Long(i));
    }
    AddContinuous(&attrs, "Y", /*is_output=*/true);
    auto result = service.CreateEmpty(attrs, Params(service));
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("MAXIMUM_FEATURES"),
              std::string::npos);
  }
}

TEST(LinearRegressionTest, PredictingBeforeAnyLabeledCaseFails) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  LinearRegressionService service;
  auto model = service.CreateEmpty(attrs, Params(service));
  ASSERT_TRUE(model.ok());
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {1, kMissing}), {});
  EXPECT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsInvalidState());
}

TEST(LinearRegressionTest, ContentExposesCoefficients) {
  AttributeSet attrs;
  AddContinuous(&attrs, "X");
  AddContinuous(&attrs, "Y", /*is_output=*/true);
  std::vector<DataCase> cases;
  for (int i = 0; i < 20; ++i) {
    cases.push_back(MakeCase(attrs, {static_cast<double>(i),
                                     2.0 * i + 1}));
  }
  LinearRegressionService service;
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  auto content = (*model)->BuildContent(attrs);
  ASSERT_TRUE(content.ok());
  ASSERT_EQ((*content)->children.size(), 1u);
  const ContentNode& reg = *(*content)->children[0];
  EXPECT_EQ(reg.type, NodeType::kRegression);
  ASSERT_EQ(reg.distribution.size(), 2u);  // intercept + X
  EXPECT_EQ(reg.distribution[0].attribute, "(intercept)");
  EXPECT_NEAR(reg.distribution[0].value.double_value(), 1, 0.05);
  EXPECT_NEAR(reg.distribution[1].value.double_value(), 2, 0.01);
}

}  // namespace
}  // namespace dmx
