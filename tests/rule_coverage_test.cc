// Rule-coverage meta-test: every analyzer rule id in rules::kAll must be
// triggered by at least one committed fuzz corpus seed
// (fuzz/corpus/dmx_statement/), analyzed against the same catalog the fuzz
// harness builds. A rule added without a seed fails here — rules cannot
// ship without fuzzer-visible coverage, and corpus rot (a seed drifting so
// it no longer trips its rule) is caught the same way.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/env.h"
#include "core/dmx_analyzer.h"
#include "core/provider.h"
#include "fuzz/fuzz_targets.h"

#ifndef DMX_SOURCE_DIR
#error "tests/CMakeLists.txt must define DMX_SOURCE_DIR"
#endif

namespace dmx {
namespace {

/// Rules no statement TEXT can trigger, each with the reason. They still
/// must be covered — just programmatically, in NestingDepthCoveredByAst
/// below — so this set shrinking or growing is a deliberate decision.
const std::set<std::string>& TextUnreachableRules() {
  // nesting-depth: the parser itself rejects TABLE columns inside nested
  // tables ("nested tables cannot contain TABLE columns"), so only
  // programmatic ASTs (the PMML import path) can exceed the depth limit.
  static const std::set<std::string> kUnreachable = {rules::kNestingDepth};
  return kUnreachable;
}

TEST(RuleCoverageTest, EveryRuleHasACorpusSeed) {
  Provider provider;
  fuzz::PopulateFuzzCatalog(&provider);
  DmxAnalyzer analyzer(AnalyzerContext{provider.models(), provider.services(),
                                       provider.database()});

  const std::string dir =
      std::string(DMX_SOURCE_DIR) + "/fuzz/corpus/dmx_statement";
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok()) << "missing seed corpus " << dir;

  // rule id -> first seed file that triggers it.
  std::map<std::string, std::string> covered;
  for (const std::string& name : *names) {
    auto data = env->ReadFileToString(dir + "/" + name);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    AnalysisReport report = analyzer.AnalyzeText(*data);
    for (const Diagnostic& diag : report.diagnostics) {
      covered.emplace(diag.rule, name);
    }
  }

  for (const char* rule : rules::kAll) {
    if (TextUnreachableRules().count(rule) > 0) continue;
    EXPECT_TRUE(covered.count(rule) > 0)
        << "no seed in " << dir << " triggers rule '" << rule
        << "' — add one (see the rule-* naming convention)";
  }

  // The reverse direction: corpus seeds may only trip registered rules.
  for (const auto& [rule, seed] : covered) {
    bool known = false;
    for (const char* r : rules::kAll) {
      if (rule == r) known = true;
    }
    EXPECT_TRUE(known) << seed << " triggered unregistered rule '" << rule
                       << "'";
  }
}

// The one text-unreachable rule, pinned programmatically so the exemption
// above cannot silently hide a regression in the rule itself.
TEST(RuleCoverageTest, NestingDepthCoveredByAst) {
  ModelColumn inner_key;
  inner_key.name = "ik";
  inner_key.role = ContentRole::kKey;
  ModelColumn inner;
  inner.name = "inner";
  inner.role = ContentRole::kTable;
  inner.data_type = DataType::kTable;
  inner.nested.push_back(inner_key);
  ModelColumn outer_key = inner_key;
  outer_key.name = "ok";
  ModelColumn outer;
  outer.name = "outer";
  outer.role = ContentRole::kTable;
  outer.data_type = DataType::kTable;
  outer.usage = PredictUsage::kPredict;
  outer.nested.push_back(outer_key);
  outer.nested.push_back(inner);
  ModelColumn key;
  key.name = "k";
  key.role = ContentRole::kKey;
  ModelDefinition def;
  def.model_name = "deep";
  def.service_name = "Naive_Bayes";
  def.columns = {key, outer};

  AnalysisReport report = DmxAnalyzer().AnalyzeDefinition(def);
  EXPECT_TRUE(report.HasRule(rules::kNestingDepth)) << report.ToString();
}

}  // namespace
}  // namespace dmx
