// Concurrent sessions: one Provider, many threads, mixed DDL/DML/SELECT.
// The catalog lock regime must keep every interleaving linearizable (no
// crashes, no torn reads), the journal must stay serialized so a store-backed
// provider recovers to a consistent catalog, and a deadline-armed statement
// must unwind promptly while other sessions keep executing. Run under
// -DDMX_SANITIZE=thread in CI to prove the locking, not just test it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

constexpr int kThreads = 8;

void WipeDir(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)env->DeleteFile(dir + "/" + f);
  }
}

// Per-thread workload: a private table + model namespace (T<i> / M<i>), so
// DDL never races on names, plus reads of *other* threads' tables to force
// genuine reader/writer interleavings. Tolerated failures: kNotFound (the
// other thread hasn't created its table yet / already dropped the model) and
// kInvalidState (its model exists but isn't trained yet).
void RunSession(Provider* provider, int id, std::atomic<int>* failures) {
  auto conn = provider->Connect();
  const std::string table = "T" + std::to_string(id);
  const std::string model = "M" + std::to_string(id);
  auto must = [&](const std::string& statement) {
    auto result = conn->Execute(statement);
    if (!result.ok()) {
      ADD_FAILURE() << "thread " << id << ": " << statement << " -> "
                    << result.status().ToString();
      failures->fetch_add(1);
    }
  };

  must("CREATE TABLE [" + table + "] ([Id] LONG, [X] DOUBLE, [Y] LONG)");
  for (int round = 0; round < 5; ++round) {
    // DML burst: six rows per round.
    std::string insert = "INSERT INTO [" + table + "] VALUES ";
    for (int r = 0; r < 6; ++r) {
      int id_value = round * 6 + r;
      if (r > 0) insert += ", ";
      insert += "(" + std::to_string(id_value) + ", " +
                std::to_string(id_value % 7) + ".5, " +
                std::to_string(id_value % 3) + ")";
    }
    must(insert);
    must("SELECT [Id], [X] FROM [" + table + "] ORDER BY [Id]");

    // Cross-thread read: whatever state the neighbour's table is in, the
    // read must return a Status, never crash or see a torn row.
    const std::string other = "T" + std::to_string((id + 1) % kThreads);
    auto peek = conn->Execute("SELECT COUNT(*) AS N FROM [" + other + "]");
    if (!peek.ok() && !peek.status().IsNotFound()) {
      ADD_FAILURE() << "thread " << id << " peek: "
                    << peek.status().ToString();
      failures->fetch_add(1);
    }

    if (round == 1) {
      must("CREATE MINING MODEL [" + model +
           "] ([Id] LONG KEY, [X] DOUBLE DISCRETIZED, [Y] LONG DISCRETE "
           "PREDICT) USING Naive_Bayes");
    }
    if (round >= 2) {
      // Refresh-train on the growing table, then predict.
      must("INSERT INTO [" + model + "] SELECT [Id], [X], [Y] FROM [" +
           table + "]");
      must("SELECT Predict([Y]) FROM [" + model +
           "] NATURAL PREDICTION JOIN (SELECT [Id], [X] FROM [" + table +
           "]) AS s");
    }
    // Schema rowsets take the shared lock like any other read.
    auto models = conn->GetSchemaRowset(SchemaRowsetKind::kMiningModels);
    if (!models.ok()) {
      ADD_FAILURE() << "thread " << id << ": " << models.status().ToString();
      failures->fetch_add(1);
    }
  }
  must("DELETE FROM [" + table + "] WHERE [Id] >= 24");
}

TEST(ConcurrencyTest, MixedSessionsOnStoreBackedProviderRecover) {
  const std::string dir = ::testing::TempDir() + "/concurrency_store";
  WipeDir(dir);

  std::vector<size_t> row_counts(kThreads);
  {
    Provider provider;
    store::StoreOptions options;
    options.auto_checkpoint_interval = 32;
    ASSERT_TRUE(provider.OpenStore(dir, options).ok());

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(RunSession, &provider, t, &failures);
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);

    auto conn = provider.Connect();
    for (int t = 0; t < kThreads; ++t) {
      auto rows =
          conn->Execute("SELECT * FROM [T" + std::to_string(t) + "]");
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      EXPECT_EQ(rows->num_rows(), 24u);  // 30 inserted, 6 deleted
      row_counts[t] = rows->num_rows();
      auto model = provider.models()->GetModel("M" + std::to_string(t));
      ASSERT_TRUE(model.ok());
      EXPECT_TRUE((*model)->is_trained());
    }
  }

  // Whatever the interleaving, the journal the session wrote must replay
  // into exactly the catalog the threads left behind.
  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  auto conn = reopened.Connect();
  for (int t = 0; t < kThreads; ++t) {
    const std::string table = "T" + std::to_string(t);
    auto rows = conn->Execute("SELECT * FROM [" + table + "]");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->num_rows(), row_counts[t]) << table;
    auto model = reopened.models()->GetModel("M" + std::to_string(t));
    ASSERT_TRUE(model.ok());
    EXPECT_TRUE((*model)->is_trained());
    auto predict = conn->Execute(
        "SELECT Predict([Y]) FROM [M" + std::to_string(t) +
        "] NATURAL PREDICTION JOIN (SELECT [Id], [X] FROM [" + table +
        "]) AS s");
    EXPECT_TRUE(predict.ok()) << predict.status().ToString();
  }
}

// Checkpoints, schema rowsets and statements all contend for the catalog
// lock; hammering them together must stay race-free (the TSan target).
TEST(ConcurrencyTest, CheckpointsInterleaveWithStatements) {
  const std::string dir = ::testing::TempDir() + "/concurrency_checkpoint";
  WipeDir(dir);
  Provider provider;
  ASSERT_TRUE(provider.OpenStore(dir).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread checkpointer([&] {
    while (!stop.load()) {
      Status s = provider.Checkpoint();
      if (!s.ok()) {
        ADD_FAILURE() << s.ToString();
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      auto conn = provider.Connect();
      const std::string table = "W" + std::to_string(t);
      auto result =
          conn->Execute("CREATE TABLE [" + table + "] ([A] LONG)");
      if (!result.ok()) failures.fetch_add(1);
      for (int i = 0; i < 25; ++i) {
        auto insert = conn->Execute("INSERT INTO [" + table + "] VALUES (" +
                                    std::to_string(i) + ")");
        if (!insert.ok()) failures.fetch_add(1);
        auto select = conn->Execute("SELECT COUNT(*) AS N FROM [" + table +
                                    "]");
        if (!select.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  checkpointer.join();
  EXPECT_EQ(failures.load(), 0);

  auto conn = provider.Connect();
  for (int t = 0; t < 4; ++t) {
    auto rows = conn->Execute("SELECT * FROM [W" + std::to_string(t) + "]");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->num_rows(), 25u);
  }
}

// A deadline-armed statement must come back as kDeadlineExceeded within 2x
// its deadline even while other sessions hold shared locks and keep
// executing — the trip happens at a checkpoint inside the running join, not
// after it finishes.
TEST(ConcurrencyTest, DeadlineTripsPromptlyUnderConcurrentLoad) {
  Provider provider;
  datagen::WarehouseConfig config;
  // The guarded statement below is a quadratic self-join over Sales: the
  // warehouse must be big enough that it cannot finish inside the deadline
  // on a fast machine, or the test flakes on "statement succeeded".
  config.num_customers = 400;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());

  constexpr int64_t kDeadlineMs = 250;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::atomic<int> reader_queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      auto conn = provider.Connect();
      while (!stop.load()) {
        auto result = conn->Execute(
            "SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]");
        if (!result.ok()) reader_failures.fetch_add(1);
        reader_queries.fetch_add(1);
      }
    });
  }

  auto conn = provider.Connect();
  ExecLimits limits;
  limits.deadline_ms = kDeadlineMs;
  conn->set_limits(limits);
  auto start = std::chrono::steady_clock::now();
  auto result = conn->Execute(
      "SELECT COUNT(*) AS N FROM Sales s INNER JOIN Sales t "
      "ON s.[CustID] < t.[CustID]");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  stop.store(true);
  for (auto& t : readers) t.join();

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_LT(elapsed, 2 * kDeadlineMs)
      << "deadline unwind took " << elapsed << " ms";
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(reader_queries.load(), 0);
}

// Admission control under real contention: cap 2 active + 2 queued, fire 8
// statements at once. Every statement either executes or is rejected with
// kResourceExhausted — nothing hangs, nothing crashes, and at least the cap
// is admitted.
TEST(ConcurrencyTest, AdmissionControlBoundsConcurrentStatements) {
  Provider provider;
  provider.SetAdmissionLimits(/*max_active=*/2, /*max_queued=*/2);
  datagen::WarehouseConfig config;
  config.num_customers = 80;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());

  std::atomic<int> succeeded{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto conn = provider.Connect();
      auto result = conn->Execute(
          "SELECT [Customer ID], [Income] FROM Customers ORDER BY [Income]");
      if (result.ok()) {
        succeeded.fetch_add(1);
      } else if (result.status().IsResourceExhausted()) {
        rejected.fetch_add(1);
      } else {
        ADD_FAILURE() << result.status().ToString();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(succeeded.load() + rejected.load(), kThreads);
  EXPECT_GE(succeeded.load(), 2);
}

}  // namespace
}  // namespace dmx
