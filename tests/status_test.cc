#include "common/status.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dmx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, BuilderComposesMessages) {
  Status s = InvalidArgument() << "bad count " << 42 << " for '" << "x" << "'";
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad count 42 for 'x'");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad count 42 for 'x'");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status(NotFound() << "x").IsNotFound());
  EXPECT_TRUE(Status(ParseError() << "x").IsParseError());
  EXPECT_TRUE(Status(BindError() << "x").IsBindError());
  EXPECT_TRUE(Status(NotSupported() << "x").IsNotSupported());
  EXPECT_TRUE(Status(InvalidState() << "x").IsInvalidState());
  EXPECT_FALSE(Status(NotFound() << "x").IsParseError());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInternal); ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, DurabilityCodes) {
  Status corruption = Corruption() << "bad checksum at offset " << 12;
  EXPECT_TRUE(corruption.IsCorruption());
  EXPECT_EQ(corruption.code(), StatusCode::kCorruption);
  EXPECT_EQ(corruption.ToString(), "Corruption: bad checksum at offset 12");

  Status full = ResourceExhausted() << "disk full";
  EXPECT_TRUE(full.IsResourceExhausted());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(full.ToString(), "Resource exhausted: disk full");

  EXPECT_TRUE(Status(IOError() << "x").IsIOError());
  EXPECT_FALSE(corruption.IsIOError());
  EXPECT_FALSE(full.IsCorruption());
}

TEST(StatusTest, ExecutionGuardCodes) {
  Status cancelled = Cancelled() << "statement cancelled by caller";
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(),
            "Cancelled: statement cancelled by caller");

  Status late = DeadlineExceeded() << "statement deadline of 50 ms exceeded";
  EXPECT_TRUE(late.IsDeadlineExceeded());
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(),
            "Deadline exceeded: statement deadline of 50 ms exceeded");

  EXPECT_FALSE(cancelled.IsDeadlineExceeded());
  EXPECT_FALSE(late.IsCancelled());
  EXPECT_FALSE(Status(ResourceExhausted() << "x").IsCancelled());
}

TEST(StatusTest, WithContextChainsFrames) {
  Status inner = IOError() << "write 'wal.log': No space left";
  Status mid = inner.WithContext("journaling statement");
  Status outer = mid.WithContext("opening store '/tmp/s'");

  // The code and root message are preserved; frames accumulate inner-first.
  EXPECT_EQ(outer.code(), StatusCode::kIOError);
  EXPECT_EQ(outer.message(), "write 'wal.log': No space left");
  ASSERT_EQ(outer.context().size(), 2u);
  EXPECT_EQ(outer.context()[0], "journaling statement");
  EXPECT_EQ(outer.context()[1], "opening store '/tmp/s'");
  EXPECT_EQ(outer.ToString(),
            "IO error: write 'wal.log': No space left"
            "; while journaling statement"
            "; while opening store '/tmp/s'");

  // Chaining copies: the originals are untouched.
  EXPECT_TRUE(inner.context().empty());
  ASSERT_EQ(mid.context().size(), 1u);
}

TEST(StatusTest, WithContextOnOkIsOk) {
  Status s = Status::OK().WithContext("should not matter");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = IOError() << "disk on fire";
  Status b = a;
  EXPECT_EQ(b.message(), "disk on fire");
  EXPECT_EQ(b.code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound() << "nope";
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

Result<int> FailsThrough() {
  DMX_ASSIGN_OR_RETURN(int x, Result<int>(NotFound() << "inner"));
  return x + 1;
}

Result<int> Succeeds() {
  DMX_ASSIGN_OR_RETURN(int x, Result<int>(41));
  return x + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_TRUE(FailsThrough().status().IsNotFound());
  EXPECT_EQ(*Succeeds(), 42);
}

Status ReturnIfError(bool fail) {
  DMX_RETURN_IF_ERROR(fail ? Status(Internal() << "boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(ReturnIfError(false).ok());
  EXPECT_EQ(ReturnIfError(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Closed-set exhaustiveness. The fuzzer's differential oracle classifies
// every executor outcome by StatusCode, so the set must stay closed:
// kStatusCodeCount tracks the enum, every value in range renders a DISTINCT
// name, and everything outside the range is "Unknown".
// ---------------------------------------------------------------------------

TEST(StatusTest, CodeCountMatchesEnum) {
  EXPECT_EQ(kStatusCodeCount, static_cast<int>(StatusCode::kInternal) + 1);
  Status degraded = Unavailable() << "model quarantined";
  EXPECT_TRUE(degraded.IsUnavailable());
  EXPECT_EQ(degraded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(kStatusCodeCount, 15);
  // One past the end is out of the closed set.
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(kStatusCodeCount)),
               "Unknown");
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(-1)), "Unknown");
}

TEST(StatusTest, EveryCodeRendersDistinctly) {
  std::set<std::string> names;
  for (int code = 0; code < kStatusCodeCount; ++code) {
    std::string name = StatusCodeToString(static_cast<StatusCode>(code));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "Unknown") << "code " << code;
    EXPECT_TRUE(names.insert(name).second)
        << "code " << code << " shares the name '" << name << "'";
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kStatusCodeCount));
}

// Every non-OK code round-trips its identity through construction, the
// predicate layer, ToString and a WithContext chain: the code and message
// survive, frames render in order, and re-parsing ToString's prefix
// recovers the code name.
TEST(StatusTest, EveryCodeSurvivesWithContextRoundTrip) {
  for (int code = 1; code < kStatusCodeCount; ++code) {
    StatusCode sc = static_cast<StatusCode>(code);
    Status base(sc, "payload " + std::to_string(code));
    Status wrapped =
        base.WithContext("inner frame").WithContext("outer frame");

    EXPECT_EQ(wrapped.code(), sc);
    EXPECT_EQ(wrapped.message(), base.message());
    ASSERT_EQ(wrapped.context().size(), 2u);
    EXPECT_EQ(wrapped.context()[0], "inner frame");
    EXPECT_EQ(wrapped.context()[1], "outer frame");

    std::string rendered = wrapped.ToString();
    std::string expected_prefix =
        std::string(StatusCodeToString(sc)) + ": payload " +
        std::to_string(code);
    EXPECT_EQ(rendered.rfind(expected_prefix, 0), 0u) << rendered;
    EXPECT_NE(rendered.find("; while inner frame; while outer frame"),
              std::string::npos)
        << rendered;

    // The original is untouched (WithContext copies).
    EXPECT_TRUE(base.context().empty());
  }
}

// OK is special-cased everywhere: WithContext must pass it through without
// allocating a rep, keeping `return s.WithContext(...)` valid on every path.
TEST(StatusTest, OkWithContextStaysOkAndFrameless) {
  Status ok = Status::OK().WithContext("ignored");
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.context().empty());
  EXPECT_EQ(ok.ToString(), "OK");
}

}  // namespace
}  // namespace dmx
