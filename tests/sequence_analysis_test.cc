// Sequence-analysis service: SEQUENCE_TIME ordering, Markov transition
// recovery, next-item prediction, incremental behaviour, and the end-to-end
// DMX path over the warehouse's planted purchase orders.

#include "algorithms/sequence_analysis.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/provider.h"
#include "datagen/warehouse.h"
#include "test_util.h"

namespace dmx {
namespace {

using testutil::MakeCase;

ParamMap Params(const MiningService& service) {
  return *service.ResolveParams({});
}

// A group with a sequence-time value column.
AttributeSet SequenceAttrs(const std::vector<std::string>& items) {
  AttributeSet attrs;
  NestedGroup group;
  group.name = "Events";
  group.is_input = true;
  group.is_output = true;
  for (const std::string& item : items) group.InternKey(Value::Text(item));
  group.value_names = {"When"};
  group.sequence_time_value = 0;
  attrs.groups.push_back(std::move(group));
  return attrs;
}

DataCase SequenceCase(const AttributeSet& attrs,
                      std::vector<std::pair<int, double>> events) {
  DataCase c;
  c.values.resize(attrs.attributes.size(), kMissing);
  c.groups.resize(attrs.groups.size());
  for (auto [key, when] : events) {
    CaseItem item;
    item.key = key;
    item.values = {when};
    c.groups[0].push_back(std::move(item));
  }
  return c;
}

TEST(SequenceAnalysisTest, OrderedItemsSortsBySequenceTime) {
  AttributeSet attrs = SequenceAttrs({"a", "b", "c"});
  DataCase c = SequenceCase(attrs, {{2, 30}, {0, 10}, {1, 20}});
  auto ordered = MarkovSequenceModel::OrderedItems(attrs.groups[0],
                                                   c.groups[0]);
  EXPECT_EQ(ordered, (std::vector<int>{0, 1, 2}));
  // Missing times sort last, stably.
  DataCase mixed = SequenceCase(attrs, {{2, kMissing}, {1, 5}, {0, kMissing}});
  ordered = MarkovSequenceModel::OrderedItems(attrs.groups[0], mixed.groups[0]);
  EXPECT_EQ(ordered, (std::vector<int>{1, 2, 0}));
}

TEST(SequenceAnalysisTest, RecoversPlantedTransitions) {
  AttributeSet attrs = SequenceAttrs({"tv", "vcr", "beer", "ham"});
  SequenceAnalysisService service;
  Rng rng(1);
  std::vector<DataCase> cases;
  for (int i = 0; i < 400; ++i) {
    // tv -> vcr with 0.9; beer -> ham with 0.8; independent noise otherwise.
    std::vector<std::pair<int, double>> events;
    double t = 1;
    if (rng.Chance(0.5)) {
      events.push_back({0, t++});
      if (rng.Chance(0.9)) events.push_back({1, t++});
    } else {
      events.push_back({2, t++});
      if (rng.Chance(0.8)) events.push_back({3, t++});
    }
    cases.push_back(SequenceCase(attrs, std::move(events)));
  }
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  auto after_tv = (*model)->Predict(attrs, SequenceCase(attrs, {{0, 1}}), {});
  ASSERT_TRUE(after_tv.ok());
  const AttributePrediction* p = after_tv->Find("Events");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->predicted.Equals(Value::Text("vcr")));
  EXPECT_GT(p->probability, 0.7);

  auto after_beer = (*model)->Predict(attrs, SequenceCase(attrs, {{2, 1}}), {});
  EXPECT_TRUE(after_beer->Find("Events")->predicted.Equals(Value::Text("ham")));

  // Empty history predicts from the initial distribution (tv and beer only).
  auto empty = (*model)->Predict(attrs, SequenceCase(attrs, {}), {});
  const Value& first = empty->Find("Events")->predicted;
  EXPECT_TRUE(first.Equals(Value::Text("tv")) ||
              first.Equals(Value::Text("beer")));
}

TEST(SequenceAnalysisTest, OnlyTheLastItemMatters) {
  AttributeSet attrs = SequenceAttrs({"a", "b", "c"});
  SequenceAnalysisService service;
  std::vector<DataCase> cases;
  for (int i = 0; i < 50; ++i) {
    cases.push_back(SequenceCase(attrs, {{0, 1}, {1, 2}, {2, 3}}));  // a,b,c
  }
  auto model = service.Train(attrs, cases, Params(service));
  ASSERT_TRUE(model.ok());
  // History ending in b predicts c regardless of prefix.
  auto p1 = (*model)->Predict(attrs, SequenceCase(attrs, {{1, 9}}), {});
  auto p2 = (*model)->Predict(attrs, SequenceCase(attrs, {{0, 1}, {1, 2}}), {});
  EXPECT_TRUE(p1->Find("Events")->predicted.Equals(Value::Text("c")));
  EXPECT_DOUBLE_EQ(p1->Find("Events")->probability,
                   p2->Find("Events")->probability);
}

TEST(SequenceAnalysisTest, IncrementalConsumptionAndContent) {
  AttributeSet attrs = SequenceAttrs({"a", "b"});
  SequenceAnalysisService service;
  EXPECT_TRUE(service.capabilities().supports_incremental);
  EXPECT_TRUE(service.capabilities().supports_sequence_analysis);
  auto model = service.CreateEmpty(attrs, Params(service));
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*model)->ConsumeCase(attrs, SequenceCase(attrs, {{0, 1}, {1, 2}}))
            .ok());
  }
  EXPECT_DOUBLE_EQ((*model)->case_count(), 10);
  auto content = (*model)->BuildContent(attrs);
  ASSERT_TRUE(content.ok());
  ASSERT_EQ((*content)->children.size(), 1u);
  const ContentNode& chain = *(*content)->children[0];
  ASSERT_EQ(chain.children.size(), 1u);  // one observed transition
  EXPECT_EQ(chain.children[0]->caption, "a then b");
  EXPECT_DOUBLE_EQ(chain.children[0]->probability, 1.0);
  EXPECT_DOUBLE_EQ(chain.children[0]->support, 10.0);
}

TEST(SequenceAnalysisTest, BindingValidation) {
  SequenceAnalysisService service;
  // No groups at all.
  AttributeSet empty;
  EXPECT_FALSE(service.ValidateBinding(empty).ok());
  // Group without a sequence-time column.
  AttributeSet no_time;
  NestedGroup group;
  group.name = "G";
  group.is_output = true;
  no_time.groups.push_back(group);
  EXPECT_FALSE(service.ValidateBinding(no_time).ok());
  // Input-only sequence group is not a target.
  AttributeSet input_only = SequenceAttrs({"a"});
  input_only.groups[0].is_output = false;
  EXPECT_FALSE(service.ValidateBinding(input_only).ok());
}

TEST(SequenceAnalysisTest, EndToEndOverTheWarehouse) {
  Provider provider;
  datagen::WarehouseConfig config;
  config.num_customers = 1500;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());
  auto conn = provider.Connect();
  auto create = conn->Execute(R"(
    CREATE MINING MODEL [Next Purchase] (
      [Customer ID] LONG KEY,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Purchase Time] DOUBLE SEQUENCE_TIME
      ) PREDICT
    ) USING Sequence_Analysis)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  auto insert = conn->Execute(R"(
    INSERT INTO [Next Purchase]
    SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
             ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();

  // A shopper whose last purchase is a TV should be steered to the VCR
  // (the generator inserts bundle consequents right after antecedents).
  auto prediction = conn->Execute(R"(
    SELECT Predict([Product Purchases], 3) AS [Next]
    FROM [Next Purchase]
    NATURAL PREDICTION JOIN
      (SELECT 1 AS [Customer ID],
              (SELECT 'TV' AS [Product Name], 1 AS [Purchase Time]) AS
                [Product Purchases]) AS t)");
  // Singleton nested-table sources are not supported; use a real table.
  if (!prediction.ok()) {
    ASSERT_TRUE(conn->Execute("CREATE TABLE P (Id LONG)").ok());
    ASSERT_TRUE(conn->Execute("INSERT INTO P VALUES (1)").ok());
    ASSERT_TRUE(
        conn->Execute("CREATE TABLE PB (Id LONG, Product TEXT, T LONG)").ok());
    ASSERT_TRUE(conn->Execute("INSERT INTO PB VALUES (1, 'TV', 1)").ok());
    prediction = conn->Execute(R"(
      SELECT Predict([Product Purchases], 3) AS [Next]
      FROM [Next Purchase]
      PREDICTION JOIN
        (SHAPE {SELECT [Id] FROM P ORDER BY [Id]}
         APPEND ({SELECT [Id] AS [BId], [Product], [T] FROM PB
                  ORDER BY [BId]}
                 RELATE [Id] TO [BId]) AS [Basket]) AS t
      ON [Next Purchase].[Product Purchases].[Product Name] =
           t.[Basket].[Product] AND
         [Next Purchase].[Product Purchases].[Purchase Time] =
           t.[Basket].[T])");
  }
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  ASSERT_EQ(prediction->num_rows(), 1u);
  const NestedTable& next = *prediction->at(0, 0).table_value();
  ASSERT_GT(next.num_rows(), 0u);
  EXPECT_TRUE(next.rows()[0][0].Equals(Value::Text("VCR")))
      << next.rows()[0][0].ToString();
}

}  // namespace
}  // namespace dmx
