// End-to-end tests running the paper's own statements: the CREATE MINING
// MODEL of §3.2, the INSERT INTO ... SHAPE of §3.3, both PREDICTION JOIN
// forms, content browsing, DELETE FROM and DROP — against the Table 1
// micro-warehouse and the synthetic warehouse.

#include <gtest/gtest.h>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

// The paper's §3.2 example, with the quantity distribution hint and all.
constexpr const char* kCreateAgePrediction = R"(
CREATE MINING MODEL [Age Prediction] (
  [Customer ID] LONG KEY,
  [Gender] TEXT DISCRETE,
  [Age] DOUBLE DISCRETIZED PREDICT,  -- prediction column
  [Product Purchases] TABLE(
    [Product Name] TEXT KEY,
    [Quantity] DOUBLE NORMAL CONTINUOUS,
    [Product Type] TEXT DISCRETE RELATED TO [Product Name]
  )
) USING [Decision_Trees_101]
)";

// The paper's §3.3 INSERT INTO example, verbatim modulo table names.
constexpr const char* kInsertAgePrediction = R"(
INSERT INTO [Age Prediction] (
  [Customer ID], [Gender], [Age],
  [Product Purchases]([Product Name], [Quantity], [Product Type]))
SHAPE
  {SELECT [Customer ID], [Gender], [Age] FROM Customers
   ORDER BY [Customer ID]}
APPEND (
  {SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales
   ORDER BY [CustID]}
  RELATE [Customer ID] To [CustID]) AS [Product Purchases]
)";

// The paper's §3.3 prediction-join example (including its trailing comma
// after [Gender], which the parser tolerates as the paper prints it).
constexpr const char* kPredictionJoin = R"(
SELECT t.[Customer ID], [Age Prediction].[Age]
FROM [Age Prediction]
PREDICTION JOIN
  (SHAPE {
     SELECT [Customer ID], [Gender], FROM Customers ORDER BY [Customer ID]}
   APPEND ({SELECT [CustID], [Product Name], [Quantity] FROM Sales
            ORDER BY [CustID]}
           RELATE [Customer ID] To [CustID]) AS [Product Purchases]) as t
ON [Age Prediction].Gender = t.Gender and
   [Age Prediction].[Product Purchases].[Product Name] =
     t.[Product Purchases].[Product Name] and
   [Age Prediction].[Product Purchases].[Quantity] =
     t.[Product Purchases].[Quantity]
)";

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = provider_.Connect();
  }

  // Loads the synthetic warehouse (the paper's schema at scale).
  void LoadWarehouse(int customers) {
    datagen::WarehouseConfig config;
    config.num_customers = customers;
    ASSERT_TRUE(
        datagen::PopulateWarehouse(provider_.database(), config).ok());
  }

  Rowset MustExecute(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_TRUE(result.ok()) << command << "\n-> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(PaperExamplesTest, Table1MicroWarehouseEndToEnd) {
  ASSERT_TRUE(datagen::LoadPaperExample(provider_.database()).ok());
  MustExecute(kCreateAgePrediction);
  MustExecute(kInsertAgePrediction);

  // The model is populated and predicts through the paper's own join.
  Rowset predictions = MustExecute(kPredictionJoin);
  EXPECT_EQ(predictions.num_rows(), 3u);
  ASSERT_EQ(predictions.num_columns(), 2u);
  EXPECT_EQ(predictions.schema()->column(0).name, "Customer ID");
  EXPECT_EQ(predictions.schema()->column(1).name, "Age");
  for (const Row& row : predictions.rows()) {
    EXPECT_FALSE(row[1].is_null());
  }

  // Content browsing works.
  Rowset content = MustExecute("SELECT * FROM [Age Prediction].CONTENT");
  EXPECT_GE(content.num_rows(), 2u);

  // DELETE FROM resets; prediction then fails with InvalidState.
  MustExecute("DELETE FROM [Age Prediction]");
  auto after_reset = conn_->Execute(kPredictionJoin);
  EXPECT_FALSE(after_reset.ok());
  EXPECT_TRUE(after_reset.status().IsInvalidState());

  // DROP removes the model.
  MustExecute("DROP MINING MODEL [Age Prediction]");
  auto after_drop = conn_->Execute("SELECT * FROM [Age Prediction].CONTENT");
  EXPECT_FALSE(after_drop.ok());
  EXPECT_TRUE(after_drop.status().IsNotFound());
}

TEST_F(PaperExamplesTest, NaturalPredictionJoinAtScale) {
  LoadWarehouse(300);
  MustExecute(kCreateAgePrediction);
  MustExecute(kInsertAgePrediction);

  Rowset predictions = MustExecute(R"(
    SELECT t.[Customer ID], [Age Prediction].[Age],
           PredictProbability([Age]) AS [Prob]
    FROM [Age Prediction]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM Customers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Quantity] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] To [CustID]) AS [Product Purchases]) AS t
  )");
  EXPECT_EQ(predictions.num_rows(), 300u);
  for (const Row& row : predictions.rows()) {
    ASSERT_TRUE(row[2].is_double());
    EXPECT_GE(row[2].double_value(), 0.0);
    EXPECT_LE(row[2].double_value(), 1.0 + 1e-9);
  }
}

TEST_F(PaperExamplesTest, HistogramAndFlattenedOutput) {
  LoadWarehouse(200);
  MustExecute(kCreateAgePrediction);
  MustExecute(kInsertAgePrediction);

  Rowset nested = MustExecute(R"(
    SELECT t.[Customer ID], PredictHistogram([Age]) AS [Hist]
    FROM [Age Prediction]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM Customers) AS t
  )");
  ASSERT_EQ(nested.num_columns(), 2u);
  EXPECT_EQ(nested.schema()->column(1).type, DataType::kTable);
  ASSERT_GT(nested.num_rows(), 0u);
  ASSERT_TRUE(nested.rows()[0][1].is_table());
  EXPECT_GT(nested.rows()[0][1].table_value()->num_rows(), 0u);

  Rowset flat = MustExecute(R"(
    SELECT FLATTENED t.[Customer ID], PredictHistogram([Age]) AS [Hist]
    FROM [Age Prediction]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM Customers) AS t
  )");
  EXPECT_GT(flat.num_rows(), nested.num_rows());
  EXPECT_GT(flat.num_columns(), 2u);
  for (const ColumnDef& col : flat.schema()->columns()) {
    EXPECT_NE(col.type, DataType::kTable);
  }
}

TEST_F(PaperExamplesTest, SchemaRowsetsDescribeTheProvider) {
  LoadWarehouse(50);
  MustExecute(kCreateAgePrediction);

  auto services = conn_->GetSchemaRowset(SchemaRowsetKind::kMiningServices);
  ASSERT_TRUE(services.ok());
  EXPECT_EQ(services->num_rows(), 6u);  // the six built-in services

  auto params = conn_->GetSchemaRowset(SchemaRowsetKind::kServiceParameters);
  ASSERT_TRUE(params.ok());
  EXPECT_GT(params->num_rows(), 10u);

  auto models = conn_->GetSchemaRowset(SchemaRowsetKind::kMiningModels);
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->num_rows(), 1u);
  EXPECT_EQ(models->Get(0, "MODEL_NAME")->text_value(), "Age Prediction");
  EXPECT_FALSE(models->Get(0, "IS_POPULATED")->bool_value());

  auto columns = conn_->GetSchemaRowset(SchemaRowsetKind::kMiningColumns,
                                        "Age Prediction");
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ(columns->num_rows(), 7u);  // 4 top-level + 3 nested

  MustExecute(kInsertAgePrediction);
  models = conn_->GetSchemaRowset(SchemaRowsetKind::kMiningModels);
  ASSERT_TRUE(models.ok());
  EXPECT_TRUE(models->Get(0, "IS_POPULATED")->bool_value());
  EXPECT_EQ(models->Get(0, "CASE_COUNT")->double_value(), 50.0);
}

TEST_F(PaperExamplesTest, SqlFallsThroughTheSamePipe) {
  // Plain SQL through the same Execute() pipe (Figure 1's single stack).
  MustExecute("CREATE TABLE Scratch (Id LONG, Name TEXT)");
  MustExecute("INSERT INTO Scratch VALUES (1, 'a'), (2, 'b')");
  Rowset rows = MustExecute("SELECT Id, Name FROM Scratch ORDER BY Id DESC");
  ASSERT_EQ(rows.num_rows(), 2u);
  EXPECT_EQ(rows.at(0, 0).long_value(), 2);
  MustExecute("DROP TABLE Scratch");
}

}  // namespace
}  // namespace dmx
