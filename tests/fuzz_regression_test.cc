// Crash-regression replay: every committed fuzz input — the seed corpus and
// each fixed finding in fuzz/regressions/ — runs through its target's oracle
// as a plain ctest in the DEFAULT build. A fuzz finding stays fixed without
// anyone configuring -DDMX_FUZZ=ON, and a regression shows up here as an
// ordinary test failure naming the input file.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "core/dmx_analyzer.h"
#include "fuzz/fuzz_targets.h"

#ifndef DMX_SOURCE_DIR
#error "tests/CMakeLists.txt must define DMX_SOURCE_DIR"
#endif

namespace dmx {
namespace {

using fuzz::CheckResult;

/// Loads every file in <source>/fuzz/<kind>/<target> as (name, bytes).
std::vector<std::pair<std::string, std::string>> LoadInputs(
    const std::string& kind, const std::string& target) {
  const std::string dir =
      std::string(DMX_SOURCE_DIR) + "/fuzz/" + kind + "/" + target;
  std::vector<std::pair<std::string, std::string>> inputs;
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  EXPECT_TRUE(names.ok()) << "missing corpus directory " << dir;
  if (!names.ok()) return inputs;
  for (const std::string& name : *names) {
    auto data = env->ReadFileToString(dir + "/" + name);
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    if (data.ok()) inputs.emplace_back(name, *std::move(data));
  }
  // Deterministic order regardless of directory enumeration.
  std::sort(inputs.begin(), inputs.end());
  EXPECT_FALSE(inputs.empty()) << dir << " holds no inputs";
  return inputs;
}

void ReplayAll(const std::string& kind, const std::string& target,
               CheckResult (*check)(std::string_view)) {
  for (const auto& [name, data] : LoadInputs(kind, target)) {
    CheckResult result = check(data);
    EXPECT_TRUE(result.ok)
        << "fuzz/" << kind << "/" << target << "/" << name << ":\n"
        << result.error;
  }
}

TEST(FuzzRegressionTest, DmxStatementSeedCorpus) {
  ReplayAll("corpus", "dmx_statement", fuzz::CheckDmxStatement);
}

TEST(FuzzRegressionTest, DmxStatementFixedFindings) {
  ReplayAll("regressions", "dmx_statement", fuzz::CheckDmxStatement);
}

TEST(FuzzRegressionTest, StoreRecoverySeedCorpus) {
  ReplayAll("corpus", "store_recovery", fuzz::CheckStoreRecovery);
}

TEST(FuzzRegressionTest, StoreRecoveryFixedFindings) {
  ReplayAll("regressions", "store_recovery", fuzz::CheckStoreRecovery);
}

TEST(FuzzRegressionTest, TokenizerParserSeedCorpus) {
  ReplayAll("corpus", "tokenizer_parser", fuzz::CheckTokenizerParser);
}

TEST(FuzzRegressionTest, TokenizerParserFixedFindings) {
  ReplayAll("regressions", "tokenizer_parser", fuzz::CheckTokenizerParser);
}

TEST(FuzzRegressionTest, WireProtocolSeedCorpus) {
  ReplayAll("corpus", "wire_protocol", fuzz::CheckWireProtocol);
}

TEST(FuzzRegressionTest, WireProtocolFixedFindings) {
  ReplayAll("regressions", "wire_protocol", fuzz::CheckWireProtocol);
}

// The allowlist is the contract that every analyzer/executor divergence is
// named and justified: entries must use registered rule ids and carry a
// non-empty justification (DESIGN.md §12 mirrors the table).
TEST(FuzzRegressionTest, DivergenceAllowlistIsWellFormed) {
  size_t entries = 0;
  for (const fuzz::DivergenceRule* entry = fuzz::kDivergenceAllowlist;
       entry->rule != nullptr; ++entry) {
    ++entries;
    EXPECT_NE(std::string(entry->why), "") << entry->rule;
    bool known = false;
    for (const char* rule : rules::kAll) {
      if (std::string(entry->rule) == rule) known = true;
    }
    EXPECT_TRUE(known) << "allowlist names unregistered rule '" << entry->rule
                       << "'";
    EXPECT_TRUE(fuzz::IsAllowlistedDivergence(entry->rule));
  }
  EXPECT_FALSE(fuzz::IsAllowlistedDivergence("key-count"))
      << "core semantic rules must never be allowlisted";
  EXPECT_FALSE(fuzz::IsAllowlistedDivergence("no-such-rule"));
  EXPECT_LE(entries, 8u) << "allowlist growing past a handful of entries "
                            "means divergences are being hidden, not fixed";
}

}  // namespace
}  // namespace dmx
