// Association-rules service: exact supports on hand data, Apriori
// monotonicity, rule confidence, recommendation semantics and scalar items.

#include "algorithms/association_rules.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "test_util.h"

namespace dmx {
namespace {

using testutil::AddCategorical;
using testutil::AddGroup;
using testutil::MakeCase;

ParamMap Params(const MiningService& service,
                std::vector<AlgorithmParam> overrides = {}) {
  auto params = service.ResolveParams(overrides);
  EXPECT_TRUE(params.ok());
  return *params;
}

const AssociationModel& AsAssoc(const TrainedModel& m) {
  return static_cast<const AssociationModel&>(m);
}

// Fixed micro-dataset with known supports:
//   {beer, ham}, {beer, ham}, {beer}, {wine}, {beer, ham, wine}
AttributeSet MicroAttrs() {
  AttributeSet attrs;
  AddGroup(&attrs, "Basket", {"beer", "ham", "wine"}, /*is_output=*/true);
  return attrs;
}

std::vector<DataCase> MicroCases(const AttributeSet& attrs) {
  return {MakeCase(attrs, {}, {{0, 1}}), MakeCase(attrs, {}, {{0, 1}}),
          MakeCase(attrs, {}, {{0}}), MakeCase(attrs, {}, {{2}}),
          MakeCase(attrs, {}, {{0, 1, 2}})};
}

TEST(AssociationTest, ExactSupportsOnMicroData) {
  AttributeSet attrs = MicroAttrs();
  AssociationService service;
  auto model = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(2.0)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.1)}}));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const auto& assoc = AsAssoc(**model);
  std::map<std::string, double> supports;
  for (const auto& itemset : assoc.itemsets()) {
    std::string key;
    for (int id : itemset.items) {
      if (!key.empty()) key += ",";
      key += assoc.ItemName(attrs, id);
    }
    supports[key] = itemset.support;
  }
  EXPECT_DOUBLE_EQ(supports["beer"], 4);
  EXPECT_DOUBLE_EQ(supports["ham"], 3);
  EXPECT_DOUBLE_EQ(supports["wine"], 2);
  EXPECT_DOUBLE_EQ(supports["beer,ham"], 3);
  EXPECT_EQ(supports.count("beer,wine"), 0u);  // support 1 < 2

  // Rule ham => beer has confidence 3/3; beer => ham has 3/4.
  double ham_to_beer = -1;
  double beer_to_ham = -1;
  for (const auto& rule : assoc.rules()) {
    std::string antecedent = assoc.ItemName(attrs, rule.antecedent[0]);
    std::string consequent = assoc.ItemName(attrs, rule.consequent);
    if (antecedent == "ham" && consequent == "beer") {
      ham_to_beer = rule.confidence;
    }
    if (antecedent == "beer" && consequent == "ham") {
      beer_to_ham = rule.confidence;
    }
  }
  EXPECT_DOUBLE_EQ(ham_to_beer, 1.0);
  EXPECT_DOUBLE_EQ(beer_to_ham, 0.75);
}

TEST(AssociationTest, AprioriMonotonicity) {
  // Support of any itemset never exceeds the support of its subsets.
  AttributeSet attrs;
  AddGroup(&attrs, "Basket",
           {"a", "b", "c", "d", "e"}, /*is_output=*/true);
  Rng rng(11);
  std::vector<DataCase> cases;
  for (int i = 0; i < 300; ++i) {
    std::vector<int> items;
    for (int k = 0; k < 5; ++k) {
      if (rng.Chance(0.4)) items.push_back(k);
    }
    cases.push_back(MakeCase(attrs, {}, {items}));
  }
  AssociationService service;
  auto model = service.Train(
      attrs, cases,
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(0.01)},
                       {"MAXIMUM_ITEMSET_SIZE", Value::Long(4)}}));
  ASSERT_TRUE(model.ok());
  const auto& assoc = AsAssoc(**model);
  std::map<std::vector<int>, double> support;
  for (const auto& itemset : assoc.itemsets()) {
    support[itemset.items] = itemset.support;
  }
  for (const auto& [items, s] : support) {
    if (items.size() < 2) continue;
    for (size_t drop = 0; drop < items.size(); ++drop) {
      std::vector<int> subset;
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != drop) subset.push_back(items[i]);
      }
      ASSERT_TRUE(support.count(subset) > 0);  // downward closure
      EXPECT_LE(s, support[subset] + 1e-9);
    }
  }
}

TEST(AssociationTest, RecommendationsExcludeOwnedItems) {
  AttributeSet attrs = MicroAttrs();
  AssociationService service;
  auto model = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(2.0)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.1)}}));
  ASSERT_TRUE(model.ok());
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {}, {{0}}), {});
  ASSERT_TRUE(p.ok());
  const AttributePrediction* basket = p->Find("Basket");
  ASSERT_NE(basket, nullptr);
  ASSERT_FALSE(basket->histogram.empty());
  // Top recommendation for a beer-holder is ham (conf 0.75), never beer.
  EXPECT_TRUE(basket->predicted.Equals(Value::Text("ham")));
  for (const ScoredValue& sv : basket->histogram) {
    EXPECT_FALSE(sv.value.Equals(Value::Text("beer")));
  }
}

TEST(AssociationTest, PopularityFallbackWhenNoRuleApplies) {
  AttributeSet attrs = MicroAttrs();
  AssociationService service;
  auto model = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(2.0)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.99)}}));
  ASSERT_TRUE(model.ok());
  // With confidence floor 0.99 only ham=>beer survives; an empty basket gets
  // popularity-ranked suggestions anyway.
  auto p = (*model)->Predict(attrs, MakeCase(attrs, {}, {{}}), {});
  const AttributePrediction* basket = p->Find("Basket");
  ASSERT_FALSE(basket->histogram.empty());
  EXPECT_TRUE(basket->predicted.Equals(Value::Text("beer")));  // most popular
}

TEST(AssociationTest, ScalarAttributesBecomeItems) {
  AttributeSet attrs;
  AddCategorical(&attrs, "Gender", {"Male", "Female"});
  AddGroup(&attrs, "Basket", {"beer", "doll"}, /*is_output=*/true);
  Rng rng(12);
  std::vector<DataCase> cases;
  for (int i = 0; i < 300; ++i) {
    int gender = static_cast<int>(rng.Uniform(2));
    std::vector<int> items;
    if (gender == 0 ? rng.Chance(0.8) : rng.Chance(0.1)) items.push_back(0);
    cases.push_back(
        MakeCase(attrs, {static_cast<double>(gender)}, {items}));
  }
  AssociationService service;
  auto model = service.Train(
      attrs, cases,
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(0.05)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.5)}}));
  ASSERT_TRUE(model.ok());
  bool found_gender_rule = false;
  const auto& assoc = AsAssoc(**model);
  for (const auto& rule : assoc.rules()) {
    if (assoc.ItemName(attrs, rule.antecedent[0]) == "Gender = 'Male'" &&
        assoc.ItemName(attrs, rule.consequent) == "beer") {
      found_gender_rule = true;
      EXPECT_GT(rule.confidence, 0.6);
      EXPECT_GT(rule.lift, 1.2);
    }
  }
  EXPECT_TRUE(found_gender_rule);
  // And scalar items can be switched off.
  auto without = service.Train(
      attrs, cases,
      Params(service, {{"INCLUDE_SCALAR_ITEMS", Value::Long(0)}}));
  ASSERT_TRUE(without.ok());
  for (const auto& item : AsAssoc(**without).items()) {
    EXPECT_GE(item.group, 0);
  }
}

TEST(AssociationTest, FractionalAndAbsoluteSupportAgree) {
  AttributeSet attrs = MicroAttrs();
  AssociationService service;
  // 0.4 of 5 cases == 2 absolute.
  auto fractional = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(0.4)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.1)}}));
  auto absolute = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(2.0)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.1)}}));
  ASSERT_TRUE(fractional.ok());
  ASSERT_TRUE(absolute.ok());
  EXPECT_EQ(AsAssoc(**fractional).itemsets().size(),
            AsAssoc(**absolute).itemsets().size());
}

TEST(AssociationTest, MaxItemsetSizeCapsExploration) {
  AttributeSet attrs = MicroAttrs();
  AssociationService service;
  auto capped = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(1.0)},
                       {"MAXIMUM_ITEMSET_SIZE", Value::Long(1)}}));
  ASSERT_TRUE(capped.ok());
  for (const auto& itemset : AsAssoc(**capped).itemsets()) {
    EXPECT_EQ(itemset.items.size(), 1u);
  }
  EXPECT_TRUE(AsAssoc(**capped).rules().empty());
}

TEST(AssociationTest, RequiresANestedTable) {
  AttributeSet attrs;
  AddCategorical(&attrs, "OnlyScalar", {"x"});
  AssociationService service;
  EXPECT_TRUE(service.ValidateBinding(attrs).code() ==
              StatusCode::kInvalidArgument);
}

TEST(AssociationTest, ContentListsItemsetsAndRules) {
  AttributeSet attrs = MicroAttrs();
  AssociationService service;
  auto model = service.Train(
      attrs, MicroCases(attrs),
      Params(service, {{"MINIMUM_SUPPORT", Value::Double(2.0)},
                       {"MINIMUM_PROBABILITY", Value::Double(0.1)}}));
  ASSERT_TRUE(model.ok());
  auto content = (*model)->BuildContent(attrs);
  ASSERT_TRUE(content.ok());
  int itemsets = 0;
  int rules = 0;
  for (const auto& child : (*content)->children) {
    if (child->type == NodeType::kItemset) ++itemsets;
    if (child->type == NodeType::kRule) ++rules;
  }
  EXPECT_EQ(static_cast<size_t>(itemsets), AsAssoc(**model).itemsets().size());
  EXPECT_EQ(static_cast<size_t>(rules), AsAssoc(**model).rules().size());
  EXPECT_GT(rules, 0);
}

}  // namespace
}  // namespace dmx
