// Schema rowsets: the provider's self-description surface — services,
// parameters, models, columns, and content — including filters.

#include "core/schema_rowsets.h"

#include <gtest/gtest.h>

#include <set>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

class SchemaRowsetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = provider_.Connect();
    datagen::WarehouseConfig config;
    config.num_customers = 60;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
    Must(R"(CREATE MINING MODEL [A] (
              [Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
              [Customer Loyalty] LONG DISCRETE PREDICT)
            USING Naive_Bayes)");
    Must(R"(CREATE MINING MODEL [B] (
              [Customer ID] LONG KEY, [Age] DOUBLE CONTINUOUS,
              [Income] DOUBLE CONTINUOUS)
            USING Clustering(CLUSTER_COUNT = 2))");
  }

  Rowset Must(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_TRUE(result.ok()) << command << " -> "
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Rowset Get(SchemaRowsetKind kind, const std::string& filter = "") {
    auto result = conn_->GetSchemaRowset(kind, filter);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(SchemaRowsetsTest, MiningServicesDescribeCapabilities) {
  Rowset services = Get(SchemaRowsetKind::kMiningServices);
  ASSERT_EQ(services.num_rows(), 6u);
  std::set<std::string> names;
  bool nb_incremental = false;
  bool clustering_segmentation = false;
  bool assoc_table_prediction = false;
  for (const Row& row : services.rows()) {
    names.insert(row[0].text_value());
    if (row[0].text_value() == "Naive_Bayes") {
      nb_incremental = row[6].bool_value();
    }
    if (row[0].text_value() == "Clustering") {
      clustering_segmentation = row[4].bool_value();
    }
    if (row[0].text_value() == "Association_Rules") {
      assoc_table_prediction = row[9].bool_value();
    }
  }
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.count("Decision_Trees"));
  EXPECT_TRUE(names.count("Linear_Regression"));
  EXPECT_TRUE(nb_incremental);
  EXPECT_TRUE(clustering_segmentation);
  EXPECT_TRUE(assoc_table_prediction);
}

TEST_F(SchemaRowsetsTest, ServiceParametersListDefaults) {
  Rowset params = Get(SchemaRowsetKind::kServiceParameters);
  bool found_cluster_count = false;
  for (const Row& row : params.rows()) {
    if (row[0].text_value() == "Clustering" &&
        row[1].text_value() == "CLUSTER_COUNT") {
      found_cluster_count = true;
      EXPECT_EQ(row[3].text_value(), "4");
    }
    EXPECT_FALSE(row[2].text_value().empty());  // description present
  }
  EXPECT_TRUE(found_cluster_count);
}

TEST_F(SchemaRowsetsTest, MiningModelsTrackPopulation) {
  Rowset models = Get(SchemaRowsetKind::kMiningModels);
  ASSERT_EQ(models.num_rows(), 2u);
  for (const Row& row : models.rows()) {
    EXPECT_FALSE(row[2].bool_value());  // nothing populated yet
    // CREATION_STATEMENT is parseable DMX.
    EXPECT_NE(row[5].text_value().find("CREATE MINING MODEL"),
              std::string::npos);
  }
  Must("INSERT INTO [A] SELECT [Customer ID], [Gender], [Customer Loyalty] "
       "FROM Customers");
  models = Get(SchemaRowsetKind::kMiningModels);
  EXPECT_TRUE(models.Get(0, "IS_POPULATED")->bool_value());   // A
  EXPECT_FALSE(models.Get(1, "IS_POPULATED")->bool_value());  // B
  EXPECT_EQ(models.Get(0, "PREDICTION_COLUMNS")->text_value(),
            "Customer Loyalty");
}

TEST_F(SchemaRowsetsTest, MiningColumnsIncludeNestedAndFilter) {
  Must(R"(CREATE MINING MODEL [C] (
            [Customer ID] LONG KEY,
            [T] TABLE ([K] TEXT KEY, [V] DOUBLE CONTINUOUS,
                       [R] TEXT DISCRETE RELATED TO [K]))
          USING Clustering)");
  Rowset all = Get(SchemaRowsetKind::kMiningColumns);
  Rowset only_c = Get(SchemaRowsetKind::kMiningColumns, "C");
  EXPECT_GT(all.num_rows(), only_c.num_rows());
  ASSERT_EQ(only_c.num_rows(), 5u);  // 2 top-level + 3 nested
  int nested_count = 0;
  for (const Row& row : only_c.rows()) {
    if (!row[2].text_value().empty()) {
      ++nested_count;
      EXPECT_EQ(row[2].text_value(), "T");
    }
    if (row[1].text_value() == "R") {
      EXPECT_EQ(row[6].text_value(), "K");  // RELATED_ATTRIBUTE
      EXPECT_EQ(row[4].text_value(), "RELATION");
    }
  }
  EXPECT_EQ(nested_count, 3);
}

TEST_F(SchemaRowsetsTest, ContentRowsetOnlyCoversPopulatedModels) {
  Rowset empty = Get(SchemaRowsetKind::kMiningModelContent);
  EXPECT_EQ(empty.num_rows(), 0u);
  Must("INSERT INTO [A] SELECT [Customer ID], [Gender], [Customer Loyalty] "
       "FROM Customers");
  Rowset content = Get(SchemaRowsetKind::kMiningModelContent);
  ASSERT_GT(content.num_rows(), 0u);
  // Parent/child linkage is consistent: every non-root parent exists.
  std::set<std::string> names;
  for (const Row& row : content.rows()) {
    names.insert(row[1].text_value());
  }
  int roots = 0;
  for (const Row& row : content.rows()) {
    const std::string& parent = row[2].text_value();
    if (parent.empty()) {
      ++roots;
    } else {
      EXPECT_TRUE(names.count(parent)) << "dangling parent " << parent;
    }
    // NODE_DISTRIBUTION is a nested table.
    EXPECT_TRUE(row[12].is_table());
  }
  EXPECT_EQ(roots, 1);
  // Filter matches SELECT ... .CONTENT output.
  Rowset via_select = Must("SELECT * FROM [A].CONTENT");
  Rowset via_filter = Get(SchemaRowsetKind::kMiningModelContent, "A");
  EXPECT_EQ(via_select.num_rows(), via_filter.num_rows());
}

TEST_F(SchemaRowsetsTest, MiningFunctionsListTheUdfSurface) {
  Rowset functions = Get(SchemaRowsetKind::kMiningFunctions);
  ASSERT_GE(functions.num_rows(), 13u);
  std::set<std::string> names;
  for (const Row& row : functions.rows()) {
    names.insert(row[0].text_value());
    EXPECT_FALSE(row[2].text_value().empty());  // syntax
    EXPECT_FALSE(row[3].text_value().empty());  // description
  }
  for (const char* expected :
       {"Predict", "PredictProbability", "PredictHistogram", "TopCount",
        "RangeMid", "Cluster", "ClusterProbability"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST_F(SchemaRowsetsTest, ContentSelectSupportsWhere) {
  Must("INSERT INTO [A] SELECT [Customer ID], [Gender], [Customer Loyalty] "
       "FROM Customers");
  Rowset all = Must("SELECT * FROM [A].CONTENT");
  Rowset only_attrs = Must(
      "SELECT * FROM [A].CONTENT WHERE NODE_TYPE = 'NaiveBayesAttribute'");
  EXPECT_LT(only_attrs.num_rows(), all.num_rows());
  EXPECT_GT(only_attrs.num_rows(), 0u);
  for (const Row& row : only_attrs.rows()) {
    EXPECT_EQ(row[3].text_value(), "NaiveBayesAttribute");
  }
  Rowset supported = Must(
      "SELECT * FROM [A].CONTENT WHERE NODE_SUPPORT > 10 AND "
      "NODE_TYPE <> 'Model'");
  for (const Row& row : supported.rows()) {
    EXPECT_GT(row[7].double_value(), 10);
  }
  // Unknown column in the filter is a bind error.
  auto bad = conn_->Execute("SELECT * FROM [A].CONTENT WHERE GHOST = 1");
  EXPECT_TRUE(bad.status().IsBindError());
}

}  // namespace
}  // namespace dmx
