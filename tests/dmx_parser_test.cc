// DMX language: statement classification (DMX vs SQL through one pipe),
// CREATE MINING MODEL parsing with the full column-spec vocabulary, INSERT /
// PREDICTION JOIN / CONTENT parsing, and definition print->reparse fixpoints.

#include "core/dmx_parser.h"

#include <gtest/gtest.h>

namespace dmx {
namespace {

DmxParseResult MustParse(const std::string& text) {
  auto result = ParseDmx(text);
  EXPECT_TRUE(result.ok()) << text << "\n-> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : DmxParseResult{};
}

TEST(DmxClassifierTest, SqlFallsThrough) {
  EXPECT_TRUE(MustParse("SELECT a FROM t").is_sql);
  EXPECT_TRUE(MustParse("SELECT a FROM t WHERE b = 1 ORDER BY a").is_sql);
  EXPECT_TRUE(MustParse("CREATE TABLE t (a LONG)").is_sql);
  EXPECT_TRUE(MustParse("INSERT INTO t VALUES (1)").is_sql);
  EXPECT_TRUE(MustParse("DROP TABLE t").is_sql);
  EXPECT_TRUE(MustParse("DELETE FROM t WHERE a = 1").is_sql);
}

TEST(DmxClassifierTest, DmxIsRecognized) {
  EXPECT_FALSE(
      MustParse("CREATE MINING MODEL m (k LONG KEY, x TEXT DISCRETE PREDICT) "
                "USING Naive_Bayes")
          .is_sql);
  EXPECT_FALSE(MustParse("INSERT INTO m SELECT a, b FROM t").is_sql);
  EXPECT_FALSE(
      MustParse("INSERT INTO m (a, b) SHAPE {SELECT a, b FROM t} APPEND "
                "({SELECT k, c FROM u} RELATE a TO k) AS n")
          .is_sql);
  EXPECT_FALSE(MustParse("INSERT INTO m OPENROWSET('CSV', '/tmp/x.csv')")
                   .is_sql);
  EXPECT_FALSE(MustParse("SELECT Predict(x) FROM m NATURAL PREDICTION JOIN "
                         "(SELECT a FROM t) AS t")
                   .is_sql);
  EXPECT_FALSE(MustParse("SELECT * FROM m.CONTENT").is_sql);
  EXPECT_FALSE(MustParse("DROP MINING MODEL m").is_sql);
  // DELETE FROM with a bare name is provisionally DMX (provider re-routes).
  auto del = MustParse("DELETE FROM m");
  EXPECT_FALSE(del.is_sql);
  EXPECT_TRUE(std::holds_alternative<DeleteFromModelStatement>(*del.statement));
}

TEST(CreateModelTest, ParsesThePaperExample) {
  auto def = ParseCreateMiningModel(R"(
    CREATE MINING MODEL [Age Prediction] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Age] DOUBLE DISCRETIZED PREDICT,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Quantity] DOUBLE NORMAL CONTINUOUS,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name]
      )
    ) USING [Decision_Trees_101])");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->model_name, "Age Prediction");
  EXPECT_EQ(def->service_name, "Decision_Trees_101");
  ASSERT_EQ(def->columns.size(), 4u);
  EXPECT_EQ(def->columns[0].role, ContentRole::kKey);
  EXPECT_EQ(def->columns[1].attr_type, AttributeType::kDiscrete);
  EXPECT_EQ(def->columns[2].attr_type, AttributeType::kDiscretized);
  EXPECT_EQ(def->columns[2].usage, PredictUsage::kPredict);
  ASSERT_EQ(def->columns[3].nested.size(), 3u);
  EXPECT_EQ(def->columns[3].nested[1].distribution, DistributionHint::kNormal);
  EXPECT_EQ(def->columns[3].nested[2].role, ContentRole::kRelation);
  EXPECT_EQ(def->columns[3].nested[2].related_to, "Product Name");
  EXPECT_TRUE(def->Validate().ok());
}

TEST(CreateModelTest, FullColumnVocabulary) {
  auto def = ParseCreateMiningModel(R"(
    CREATE MINING MODEL m (
      k LONG KEY,
      a TEXT DISCRETE,
      b LONG ORDERED,
      c LONG CYCLICAL,
      d DOUBLE CONTINUOUS NOT NULL,
      e DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 7) PREDICT,
      f DOUBLE SEQUENCE_TIME,
      g DOUBLE PROBABILITY OF a,
      h DOUBLE VARIANCE OF d,
      i DOUBLE SUPPORT OF k,
      j DOUBLE PROBABILITY_VARIANCE OF a,
      o LONG ORDER OF f,
      p TEXT DISCRETE MODEL_EXISTENCE_ONLY,
      q TEXT DISCRETE PREDICT_ONLY,
      r DOUBLE POISSON CONTINUOUS
    ) USING Naive_Bayes(ALPHA = 0.5))");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->columns[4].not_null, true);
  EXPECT_EQ(def->columns[5].discretization,
            DiscretizationMethod::kEqualFrequencies);
  EXPECT_EQ(def->columns[5].discretization_buckets, 7);
  EXPECT_EQ(def->columns[7].role, ContentRole::kQualifier);
  EXPECT_EQ(def->columns[7].qualifier, QualifierKind::kProbability);
  EXPECT_EQ(def->columns[9].qualifier, QualifierKind::kSupport);
  EXPECT_EQ(def->columns[11].qualifier, QualifierKind::kOrder);
  EXPECT_TRUE(def->columns[12].model_existence_only);
  EXPECT_EQ(def->columns[13].usage, PredictUsage::kPredictOnly);
  EXPECT_EQ(def->columns[14].distribution, DistributionHint::kPoisson);
  ASSERT_EQ(def->parameters.size(), 1u);
  EXPECT_EQ(def->parameters[0].name, "ALPHA");
  EXPECT_DOUBLE_EQ(def->parameters[0].value.double_value(), 0.5);
}

TEST(CreateModelTest, PrintReparseFixpoint) {
  const char* sources[] = {
      R"(CREATE MINING MODEL m (k LONG KEY, a TEXT DISCRETE PREDICT)
         USING Naive_Bayes)",
      R"(CREATE MINING MODEL [With Space] (
           k LONG KEY,
           x DOUBLE DISCRETIZED(CLUSTERS, 3) PREDICT_ONLY,
           t TABLE (tk TEXT KEY, tv DOUBLE UNIFORM CONTINUOUS) PREDICT
         ) USING Clustering(CLUSTER_COUNT = 2, CLUSTER_METHOD = 'KMEANS'))",
      R"(CREATE MINING MODEL q (k LONG KEY, a TEXT DISCRETE,
           p DOUBLE PROBABILITY OF a, s DOUBLE SUPPORT OF k,
           z TEXT DISCRETE NOT NULL MODEL_EXISTENCE_ONLY PREDICT)
         USING Naive_Bayes)",
  };
  for (const char* source : sources) {
    auto def1 = ParseCreateMiningModel(source);
    ASSERT_TRUE(def1.ok()) << source << "\n" << def1.status().ToString();
    std::string printed1 = def1->ToDmx();
    auto def2 = ParseCreateMiningModel(printed1);
    ASSERT_TRUE(def2.ok()) << printed1 << "\n" << def2.status().ToString();
    EXPECT_EQ(def2->ToDmx(), printed1);
  }
}

TEST(CreateModelTest, ValidationErrors) {
  // Two case-level keys.
  auto two_keys = ParseCreateMiningModel(
      "CREATE MINING MODEL m (a LONG KEY, b LONG KEY, c TEXT DISCRETE "
      "PREDICT) USING Naive_Bayes");
  ASSERT_TRUE(two_keys.ok());
  EXPECT_FALSE(two_keys->Validate().ok());
  // No key.
  auto no_key = ParseCreateMiningModel(
      "CREATE MINING MODEL m (c TEXT DISCRETE PREDICT) USING Naive_Bayes");
  ASSERT_TRUE(no_key.ok());
  EXPECT_FALSE(no_key->Validate().ok());
  // RELATED TO a missing column.
  auto bad_rel = ParseCreateMiningModel(
      "CREATE MINING MODEL m (k LONG KEY, r TEXT DISCRETE RELATED TO ghost, "
      "c TEXT DISCRETE PREDICT) USING Naive_Bayes");
  ASSERT_TRUE(bad_rel.ok());
  EXPECT_TRUE(bad_rel->Validate().IsBindError());
  // Qualifier of a missing column.
  auto bad_qual = ParseCreateMiningModel(
      "CREATE MINING MODEL m (k LONG KEY, p DOUBLE PROBABILITY OF ghost, "
      "c TEXT DISCRETE PREDICT) USING Naive_Bayes");
  ASSERT_TRUE(bad_qual.ok());
  EXPECT_TRUE(bad_qual->Validate().IsBindError());
  // Continuous TEXT column.
  auto bad_type = ParseCreateMiningModel(
      "CREATE MINING MODEL m (k LONG KEY, c TEXT CONTINUOUS PREDICT) "
      "USING Naive_Bayes");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_FALSE(bad_type->Validate().ok());
  // Duplicate names.
  auto dup = ParseCreateMiningModel(
      "CREATE MINING MODEL m (k LONG KEY, x TEXT DISCRETE, x TEXT DISCRETE "
      "PREDICT) USING Naive_Bayes");
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(dup->Validate().ok());
  // PREDICT on the key.
  auto key_predict = ParseCreateMiningModel(
      "CREATE MINING MODEL m (k LONG KEY PREDICT, x TEXT DISCRETE) "
      "USING Naive_Bayes");
  ASSERT_TRUE(key_predict.ok());
  EXPECT_FALSE(key_predict->Validate().ok());
}

TEST(CreateModelTest, SyntaxErrors) {
  EXPECT_TRUE(ParseCreateMiningModel("CREATE MINING MODEL m USING x")
                  .status().IsParseError());
  EXPECT_TRUE(ParseCreateMiningModel(
                  "CREATE MINING MODEL m (k LONG KEY)")
                  .status().IsParseError());  // missing USING
  EXPECT_TRUE(ParseCreateMiningModel(
                  "CREATE MINING MODEL m (k BLOB KEY) USING x")
                  .status().IsParseError());  // bad type
  EXPECT_TRUE(ParseCreateMiningModel(
                  "CREATE MINING MODEL m (t TABLE (u TABLE (k LONG KEY))) "
                  "USING x")
                  .status().IsParseError());  // nested nesting
}

TEST(InsertIntoTest, ColumnListAndSources) {
  auto with_shape = MustParse(R"(
    INSERT INTO [M] ([K], [A], [T]([TK], [TV]))
    SHAPE {SELECT K, A FROM c ORDER BY K}
    APPEND ({SELECT FK, TK, TV FROM s ORDER BY FK} RELATE K TO FK) AS [T])");
  const auto& insert = std::get<InsertIntoStatement>(*with_shape.statement);
  EXPECT_EQ(insert.model_name, "M");
  ASSERT_EQ(insert.columns.size(), 3u);
  EXPECT_FALSE(insert.columns[0].is_table);
  EXPECT_TRUE(insert.columns[2].is_table);
  EXPECT_EQ(insert.columns[2].nested.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<shape::ShapeStatement>(insert.source));

  auto with_select = MustParse("INSERT INTO m SELECT a, b FROM t");
  EXPECT_TRUE(std::holds_alternative<rel::SelectStatement>(
      std::get<InsertIntoStatement>(*with_select.statement).source));

  auto with_csv = MustParse("INSERT INTO m OPENROWSET('CSV', '/tmp/f.csv')");
  const auto& open = std::get<OpenRowsetSource>(
      std::get<InsertIntoStatement>(*with_csv.statement).source);
  EXPECT_EQ(open.format, "CSV");
  EXPECT_EQ(open.path, "/tmp/f.csv");
}

TEST(PredictionJoinTest, ParsesFullForm) {
  auto parsed = MustParse(R"(
    SELECT FLATTENED TOP 5 t.[Id], [M].[X], PredictProbability([X], 'a') AS P,
           TopCount(PredictHistogram([X]), $Probability, 3)
    FROM [M] PREDICTION JOIN (SELECT Id, G FROM src) AS t
    ON [M].[G] = t.[G] AND [M].[T].[K] = t.[T].[K])");
  const auto& join = std::get<PredictionJoinStatement>(*parsed.statement);
  EXPECT_TRUE(join.flattened);
  EXPECT_EQ(*join.top, 5);
  ASSERT_EQ(join.items.size(), 4u);
  EXPECT_EQ(join.items[2].alias, "P");
  EXPECT_EQ(join.items[3].expr.kind, DmxExpr::Kind::kFunction);
  EXPECT_EQ(join.items[3].expr.args[1].kind, DmxExpr::Kind::kDollar);
  EXPECT_EQ(join.items[3].expr.args[1].dollar, "Probability");
  EXPECT_FALSE(join.natural);
  EXPECT_EQ(join.source_alias, "t");
  ASSERT_EQ(join.on.size(), 2u);
  EXPECT_EQ(join.on[1].left.size(), 3u);
}

TEST(PredictionJoinTest, NaturalFormAndErrors) {
  auto natural = MustParse(R"(
    SELECT Predict(x) FROM m NATURAL PREDICTION JOIN (SELECT a FROM t) AS t)");
  EXPECT_TRUE(std::get<PredictionJoinStatement>(*natural.statement).natural);
  // NATURAL with ON is an error.
  EXPECT_FALSE(ParseDmx(R"(
      SELECT Predict(x) FROM m NATURAL PREDICTION JOIN (SELECT a FROM t) AS t
      ON m.x = t.x)")
                   .ok());
  // Missing both NATURAL and ON is an error.
  EXPECT_FALSE(ParseDmx(R"(
      SELECT Predict(x) FROM m PREDICTION JOIN (SELECT a FROM t) AS t)")
                   .ok());
  // SELECT * on a prediction join is an error.
  EXPECT_FALSE(ParseDmx(R"(
      SELECT * FROM m NATURAL PREDICTION JOIN (SELECT a FROM t) AS t)")
                   .ok());
}

TEST(ContentSelectTest, Parses) {
  auto parsed = MustParse("SELECT * FROM [Age Prediction].CONTENT");
  const auto& content = std::get<SelectContentStatement>(*parsed.statement);
  EXPECT_EQ(content.model_name, "Age Prediction");
}

TEST(DmxExprTest, ToStringForms) {
  auto parsed = MustParse(R"(
    SELECT t.[Customer ID], Predict([Age Prediction].[Age], 3), $Probability
    FROM m NATURAL PREDICTION JOIN (SELECT a FROM t) AS t)");
  const auto& join = std::get<PredictionJoinStatement>(*parsed.statement);
  EXPECT_EQ(join.items[0].expr.ToString(), "t.[Customer ID]");
  EXPECT_EQ(join.items[1].expr.ToString(),
            "Predict([Age Prediction].Age, 3)");
  EXPECT_EQ(join.items[2].expr.ToString(), "$Probability");
}

TEST(DmxExprTest, DeepCallNestingFailsCleanly) {
  // Predict(Predict(...(x)...)) past kMaxRecursionDepth must be rejected
  // with kInvalidArgument, not a stack overflow.
  std::string expr;
  for (int i = 0; i < 200; ++i) expr += "Predict(";
  expr += 'x';
  for (int i = 0; i < 200; ++i) expr += ')';
  auto result = ParseDmx("SELECT " + expr +
                         " FROM m NATURAL PREDICTION JOIN (SELECT a FROM t) "
                         "AS t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("nests more than"),
            std::string::npos)
      << result.status().ToString();

  // Fifty levels is fine.
  std::string shallow;
  for (int i = 0; i < 50; ++i) shallow += "Predict(";
  shallow += 'x';
  for (int i = 0; i < 50; ++i) shallow += ')';
  EXPECT_FALSE(MustParse("SELECT " + shallow +
                         " FROM m NATURAL PREDICTION JOIN (SELECT a FROM t) "
                         "AS t")
                   .is_sql);
}

}  // namespace
}  // namespace dmx
