// Durable store: statements journaled through a provider survive process
// death. Covers the sharded WAL/snapshot round trip, checkpoint rotation,
// torn-tail vs mid-log corruption handling, IMPORT blob journaling, shard
// quarantine + per-model degraded mode + Repair, the namespace-aware stale
// sweep, parallel recovery, and the crash-point sweep — a fault injected at
// EVERY mutating I/O op must leave a state that recovers to exactly the
// successfully-executed statement prefix.

#include "store/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/provider.h"
#include "relational/database.h"
#include "store/log_format.h"

namespace dmx {
namespace {

// A fixed script exercising every journaled path: SQL DDL/DML, model DDL,
// training, retraining after DELETE FROM, and incremental data arrival.
const std::vector<std::string>& Script() {
  static const std::vector<std::string> kScript = {
      "CREATE TABLE People (Id LONG, Age DOUBLE, Income DOUBLE, "
      "Loyalty LONG)",
      "INSERT INTO People VALUES (1, 25, 100, 0), (2, 30, 210, 1), "
      "(3, 45, 300, 1), (4, 22, 90, 0), (5, 60, 400, 1), (6, 35, 150, 0)",
      "CREATE MINING MODEL [M] ([Id] LONG KEY, [Age] DOUBLE CONTINUOUS, "
      "[Income] DOUBLE CONTINUOUS, [Loyalty] LONG DISCRETE PREDICT) "
      "USING Clustering(CLUSTER_COUNT = 2, SEED = 7)",
      "INSERT INTO [M] SELECT [Id], [Age], [Income], [Loyalty] FROM People",
      "INSERT INTO People VALUES (7, 28, 120, 0), (8, 52, 380, 1)",
      "DELETE FROM [M]",
      "INSERT INTO [M] SELECT [Id], [Age], [Income], [Loyalty] FROM People",
  };
  return kScript;
}

// A script whose model trains *incrementally* (Naive_Bayes): its INSERT INTO
// statements journal as statements into the model's own shard, giving that
// shard a multi-record log to damage, quarantine and repair.
const std::vector<std::string>& NbScript() {
  static const std::vector<std::string> kScript = {
      Script()[0],
      Script()[1],
      "CREATE MINING MODEL [NB] ([Id] LONG KEY, [Age] DOUBLE DISCRETIZED, "
      "[Loyalty] LONG DISCRETE PREDICT) USING Naive_Bayes",
      "INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] FROM People",
      "INSERT INTO People VALUES (7, 28, 120, 0), (8, 52, 380, 1)",
      "INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] FROM People",
      "INSERT INTO People VALUES (9, 41, 260, 1)",
      "INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] FROM People",
  };
  return kScript;
}

constexpr const char* kPredictQuery =
    "SELECT t.[Id], Predict([Loyalty]) AS P, PredictProbability([Loyalty]) "
    "AS Q FROM [M] NATURAL PREDICTION JOIN "
    "(SELECT [Id], [Age], [Income] FROM People) AS t";

constexpr const char* kNbPredictQuery =
    "SELECT Predict([Loyalty]) AS P FROM [NB] NATURAL PREDICTION JOIN "
    "(SELECT [Id], [Age] FROM People) AS t";

// Serializes everything observable about a provider: table contents, model
// inventory (with case counts), and — when [M] is trained — its predictions.
// Two providers with equal StateStrings are behaviourally identical.
std::string StateString(Provider* provider) {
  std::string out;
  std::vector<std::string> tables = provider->database()->ListTables();
  std::sort(tables.begin(), tables.end());
  for (const std::string& name : tables) {
    auto table = provider->database()->GetTable(name);
    if (!table.ok()) return "table error: " + table.status().ToString();
    out += "table " + name + "\n" +
           rel::ToCsvString(*(*table)->schema(), (*table)->rows());
  }
  std::vector<std::string> models = provider->models()->ListModels();
  std::sort(models.begin(), models.end());
  auto conn = provider->Connect();
  for (const std::string& name : models) {
    auto model = provider->models()->GetModel(name);
    if (!model.ok()) return "model error: " + model.status().ToString();
    out += "model " + name + " cases=" +
           std::to_string((*model)->case_count()) + "\n";
    if ((*model)->is_trained() && name == "M") {
      auto rowset = conn->Execute(kPredictQuery);
      if (!rowset.ok()) {
        return "predict error: " + rowset.status().ToString();
      }
      out += rowset->ToString();
    }
  }
  return out;
}

// Executes the first `count` statements of `script` on a fresh in-memory
// provider — the oracle a recovered store is compared against.
std::string OracleState(const std::vector<std::string>& script, size_t count) {
  Provider provider;
  auto conn = provider.Connect();
  for (size_t i = 0; i < count; ++i) {
    auto result = conn->Execute(script[i]);
    EXPECT_TRUE(result.ok())
        << "oracle statement " << i << ": " << result.status().ToString();
  }
  return StateString(&provider);
}

std::string OracleState(size_t count) { return OracleState(Script(), count); }

std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/store_test_" + name;
  // Tests reuse names across runs; start from an empty directory
  // (including any quarantined shards from a previous run).
  Env* env = Env::Default();
  for (const std::string& sub : {dir + "/quarantine", dir}) {
    auto names = env->ListDir(sub);
    if (!names.ok()) continue;
    for (const std::string& f : *names) (void)env->DeleteFile(sub + "/" + f);
  }
  return dir;
}

// Returns the path of the first file in `dir` whose name starts with
// `prefix` — e.g. "shard-catalog-" or "shard-m" for model shards.
std::string FindShard(const std::string& dir, const std::string& prefix) {
  auto names = Env::Default()->ListDir(dir);
  EXPECT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.rfind(prefix, 0) == 0) return dir + "/" + name;
  }
  ADD_FAILURE() << "no " << prefix << "* file in " << dir;
  return "";
}

std::string FindSnapshot(const std::string& dir) {
  return FindShard(dir, "snapshot-");
}

// Rewrites the log at `path` flipping one payload byte of record `target`
// (0-based): that record's CRC fails while every record after it stays
// healthy — mid-log damage, not a torn tail.
void CorruptRecord(const std::string& path, size_t target) {
  auto data = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  auto parsed = store::ParseLog(*data);
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed->torn_tail);
  ASSERT_GT(parsed->records.size(), target + 1)
      << "need a record after the damaged one";
  std::string out;
  for (size_t i = 0; i < parsed->records.size(); ++i) {
    std::string frame;
    store::AppendRecordTo(&frame, parsed->records[i]);
    if (i == target) frame[8] ^= 0x01;  // first payload byte
    out += frame;
  }
  ASSERT_TRUE(Env::Default()->WriteStringToFile(path, out, true).ok());
}

TEST(StoreTest, StatePersistsAcrossReopen) {
  std::string dir = StoreDir("reopen");
  std::string before;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      auto result = conn->Execute(statement);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    before = StateString(&provider);
  }  // Dies without a checkpoint: recovery must come purely from the WAL.

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  const store::RecoveryStats& stats = reopened.store()->recovery_stats();
  // Training INSERTs into non-incremental models journal the trained model
  // blob, not the statement — and journaling a blob *rotates* the model's
  // shard, superseding the earlier blob and the DELETE FROM that preceded
  // it. What survives: 4 catalog statements + the final trained blob.
  EXPECT_EQ(stats.replayed_statements, Script().size() - 3);
  EXPECT_EQ(stats.replayed_blobs, 1u);
  EXPECT_FALSE(stats.torn_tail_truncated);
  EXPECT_EQ(stats.shards_quarantined, 0u);
  EXPECT_GE(stats.shards_recovered, 2u);  // catalog + [M]'s shard
  EXPECT_EQ(StateString(&reopened), before);
  EXPECT_EQ(before, OracleState(Script().size()));
}

TEST(StoreTest, CheckpointRotatesWalAndSpeedsRecovery) {
  std::string dir = StoreDir("checkpoint");
  std::string before;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
    EXPECT_EQ(provider.store()->wal_records(), 0u);
    // Post-checkpoint statements land in the rotated WAL.
    ASSERT_TRUE(
        conn->Execute("INSERT INTO People VALUES (9, 41, 260, 1)").ok());
    before = StateString(&provider);
  }

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  const store::RecoveryStats& stats = reopened.store()->recovery_stats();
  EXPECT_GT(stats.snapshot_seq, 0u);
  EXPECT_GT(stats.snapshot_entries, 0u);
  EXPECT_EQ(stats.replayed_statements, 1u);  // only the post-checkpoint row
  EXPECT_EQ(StateString(&reopened), before);

  // A second checkpoint bumps the sequence and still round-trips.
  ASSERT_TRUE(reopened.Checkpoint().ok());
  Provider again;
  ASSERT_TRUE(again.OpenStore(dir).ok());
  EXPECT_GT(again.store()->recovery_stats().snapshot_seq, stats.snapshot_seq);
  EXPECT_EQ(StateString(&again), before);
}

TEST(StoreTest, TornWalTailIsTruncatedSilently) {
  std::string dir = StoreDir("torn");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
  }
  // Simulate a crash mid-append on the catalog shard: a record header with
  // no payload behind it.
  std::string wal = FindShard(dir, "shard-catalog-");
  std::string tail;
  store::PutFixed32(&tail, 1000);  // claims 1000 payload bytes
  store::PutFixed32(&tail, 0xdeadbeef);
  tail += "only a few";
  {
    auto file = Env::Default()->NewWritableFile(wal, /*append=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(tail).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_TRUE(reopened.store()->recovery_stats().torn_tail_truncated);
  // 3 statements + 1 model blob: the [M] training insert journals a blob.
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_statements, 3u);
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_blobs, 1u);
  EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 0u);
  EXPECT_EQ(StateString(&reopened), OracleState(4));

  // The truncation repaired the file: a third open sees a clean log.
  Provider third;
  ASSERT_TRUE(third.OpenStore(dir).ok());
  EXPECT_FALSE(third.store()->recovery_stats().torn_tail_truncated);
  EXPECT_EQ(StateString(&third), OracleState(4));
}

TEST(StoreTest, ZeroFilledWalTailIsTornTail) {
  std::string dir = StoreDir("zerotail");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
  }
  // Block preallocation after power loss: the WAL gains a run of zero bytes
  // past the last fsynced record. Must recover silently, not quarantine.
  std::string wal = FindShard(dir, "shard-catalog-");
  {
    auto file = Env::Default()->NewWritableFile(wal, /*append=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(64, '\0')).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_TRUE(reopened.store()->recovery_stats().torn_tail_truncated);
  // 3 statements + 1 model blob (see TornWalTailIsTruncatedSilently).
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_statements, 3u);
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_blobs, 1u);
  EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 0u);
  EXPECT_EQ(StateString(&reopened), OracleState(4));
}

TEST(StoreTest, SnapshotRoundTripsNewlineAndEmptyCells) {
  std::string dir = StoreDir("newline_cells");
  std::string before;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto schema = Schema::Make({ColumnDef("Id", DataType::kLong),
                                ColumnDef("Body", DataType::kText)});
    auto table = provider.database()->CreateTable("Notes", schema);
    ASSERT_TRUE(table.ok());
    std::vector<Row> rows;
    rows.push_back({Value::Long(1),
                    Value::Text("line one\nline \"two\", with comma")});
    rows.push_back({Value::Long(2), Value::Text("")});
    rows.push_back({Value::Long(3), Value::Null()});
    ASSERT_TRUE((*table)->InsertAll(std::move(rows)).ok());
    ASSERT_TRUE(provider.Checkpoint().ok());
    before = StateString(&provider);
  }

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(StateString(&reopened), before);
  auto table = reopened.database()->GetTable("Notes");
  ASSERT_TRUE(table.ok());
  const std::vector<Row>& rows = (*table)->rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(
      rows[0][1].Equals(Value::Text("line one\nline \"two\", with comma")));
  // Empty string and NULL stay distinct across checkpoint + recovery.
  EXPECT_TRUE(rows[1][1].Equals(Value::Text("")));
  EXPECT_TRUE(rows[2][1].is_null());
}

// ---------------------------------------------------------------------------
// Quarantine + degraded mode — the acceptance criterion. Mid-log damage in
// ONE model's shard must not fail the open: the shard moves to quarantine/,
// the model serves kUnavailable, everything else keeps working, and Repair
// re-adopts the valid prefix.
// ---------------------------------------------------------------------------

TEST(StoreTest, ModelShardDamageQuarantinesAndDegrades) {
  std::string dir = StoreDir("quarantine");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : NbScript()) {
      auto result = conn->Execute(statement);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  }
  // [NB]'s shard holds {header, insert#1, insert#2, insert#3}. Damage
  // insert#2: a healthy record follows, so this is mid-log damage — the
  // valid prefix is insert#1.
  CorruptRecord(FindShard(dir, "shard-m"), 2);

  {
    Provider reopened;
    Status status = reopened.OpenStore(dir);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 1u);

    // The damaged shard is in quarantine/ with a reason sidecar.
    std::string qfile = FindShard(dir + "/quarantine", "shard-m");
    ASSERT_FALSE(qfile.empty());
    auto reason = Env::Default()->ReadFileToString(qfile + ".reason");
    ASSERT_TRUE(reason.ok());
    EXPECT_NE(reason->find("\"model\":\"NB\""), std::string::npos) << *reason;

    // [NB] is degraded: reads and writes against it say kUnavailable and
    // name the quarantined shard; they do NOT say kNotFound or kCorruption.
    auto conn = reopened.Connect();
    auto predict = conn->Execute(kNbPredictQuery);
    ASSERT_FALSE(predict.ok());
    EXPECT_TRUE(predict.status().IsUnavailable()) << predict.status().ToString();
    EXPECT_NE(predict.status().ToString().find("quarantined"),
              std::string::npos)
        << predict.status().ToString();
    auto retrain =
        conn->Execute("INSERT INTO [NB] SELECT [Id], [Age], [Loyalty] "
                      "FROM People");
    ASSERT_FALSE(retrain.ok());
    EXPECT_TRUE(retrain.status().IsUnavailable());
    auto drop = conn->Execute("DROP MINING MODEL [NB]");
    ASSERT_FALSE(drop.ok());
    EXPECT_TRUE(drop.status().IsUnavailable());
    // Re-creating a model whose name a quarantined shard still owns is also
    // refused — repairing later must not find the name taken.
    auto recreate = conn->Execute(NbScript()[2]);
    ASSERT_FALSE(recreate.ok());
    EXPECT_TRUE(recreate.status().IsUnavailable());

    // Everything else serves: reads and writes on other objects succeed.
    EXPECT_FALSE(reopened.StoreReadOnly());
    ASSERT_TRUE(
        conn->Execute("SELECT COUNT(*) AS N FROM People").ok());
    ASSERT_TRUE(
        conn->Execute("INSERT INTO People VALUES (10, 33, 140, 0)").ok());

    auto degraded = reopened.DegradedModels();
    ASSERT_EQ(degraded.size(), 1u);
    EXPECT_EQ(degraded[0].first, "NB");

    // The status report carries the quarantined row.
    store::StoreStatus report = reopened.store()->GetStatus();
    size_t quarantined_rows = 0;
    for (const store::ShardStatus& row : report.shards) {
      if (!row.quarantined) continue;
      ++quarantined_rows;
      EXPECT_EQ(row.model, "NB");
      EXPECT_FALSE(row.reason.empty());
    }
    EXPECT_EQ(quarantined_rows, 1u);
  }

  // The quarantine survives a reopen (reloaded from the reason sidecar).
  {
    Provider again;
    ASSERT_TRUE(again.OpenStore(dir).ok());
    ASSERT_EQ(again.DegradedModels().size(), 1u);
    auto conn = again.Connect();
    auto predict = conn->Execute(kNbPredictQuery);
    ASSERT_FALSE(predict.ok());
    EXPECT_TRUE(predict.status().IsUnavailable());

    // Repair re-adopts the valid prefix — by model name — and lifts the
    // degradation in place, no reopen needed.
    store::RepairStats stats;
    Status repaired = again.Repair("NB", &stats);
    ASSERT_TRUE(repaired.ok()) << repaired.ToString();
    EXPECT_EQ(stats.records_reapplied, 1u);  // insert#1 survives
    EXPECT_GT(stats.bytes_dropped, 0u);      // insert#2 + insert#3 dropped
    EXPECT_TRUE(again.DegradedModels().empty());
    ASSERT_TRUE(conn->Execute(kNbPredictQuery).ok());
    // The quarantine entry is gone from disk too.
    auto leftovers = Env::Default()->ListDir(dir + "/quarantine");
    if (leftovers.ok()) {
      EXPECT_TRUE(leftovers->empty());
    }
  }

  // After Repair the store reopens clean and [NB] serves.
  Provider final_check;
  ASSERT_TRUE(final_check.OpenStore(dir).ok());
  EXPECT_EQ(final_check.store()->recovery_stats().shards_quarantined, 0u);
  EXPECT_TRUE(final_check.DegradedModels().empty());
  auto conn = final_check.Connect();
  ASSERT_TRUE(conn->Execute(kNbPredictQuery).ok());
}

TEST(StoreTest, CatalogShardDamageMakesStoreReadOnly) {
  std::string dir = StoreDir("catquarantine");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
  }
  // Catalog shard: {header, CREATE TABLE, INSERT, CREATE MODEL}. Damage the
  // INSERT — the CREATE MODEL after it makes this mid-log damage.
  CorruptRecord(FindShard(dir, "shard-catalog-"), 2);

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reopened.StoreReadOnly());
  EXPECT_TRUE(reopened.store()->catalog_quarantined());

  // Every mutating statement is refused with kUnavailable...
  auto conn = reopened.Connect();
  auto insert =
      conn->Execute("INSERT INTO People VALUES (10, 33, 140, 0)");
  ASSERT_FALSE(insert.ok());
  EXPECT_TRUE(insert.status().IsUnavailable()) << insert.status().ToString();
  auto create = conn->Execute("CREATE TABLE Other (Id LONG)");
  ASSERT_FALSE(create.ok());
  EXPECT_TRUE(create.status().IsUnavailable());
  // ...as is checkpointing (it would discard the quarantined records).
  EXPECT_FALSE(reopened.Checkpoint().ok());

  // Reads still serve: [M]'s shard replayed its blob independently.
  auto model = reopened.models()->GetModel("M");
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->is_trained());
  ASSERT_TRUE(conn->GetSchemaRowset(SchemaRowsetKind::kMiningModels).ok());

  // Repair re-adopts the valid prefix (the CREATE TABLE) and lifts the
  // read-only mode.
  store::RepairStats stats;
  Status repaired = reopened.Repair(store::kCatalogShardId, &stats);
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_EQ(stats.records_reapplied, 1u);
  EXPECT_FALSE(reopened.StoreReadOnly());
  ASSERT_TRUE(
      conn->Execute("INSERT INTO People VALUES (1, 25, 100, 0)").ok());

  // And the repaired store round-trips.
  Provider again;
  ASSERT_TRUE(again.OpenStore(dir).ok());
  EXPECT_EQ(again.store()->recovery_stats().shards_quarantined, 0u);
  EXPECT_EQ(StateString(&again), StateString(&reopened));
}

TEST(StoreTest, MissingShardFileIsQuarantined) {
  std::string dir = StoreDir("missing");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
  }
  // The retrain rotated [M]'s shard, committing it to the MANIFEST with a
  // record floor — deleting the file is detectable data loss, not a
  // legitimately empty shard.
  ASSERT_TRUE(Env::Default()->DeleteFile(FindShard(dir, "shard-m")).ok());

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 1u);
  auto degraded = reopened.DegradedModels();
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0].first, "M");
  EXPECT_NE(degraded[0].second.find("missing"), std::string::npos)
      << degraded[0].second;

  // The catalog replayed normally around the hole.
  auto conn = reopened.Connect();
  auto predict = conn->Execute(kPredictQuery);
  ASSERT_FALSE(predict.ok());
  EXPECT_TRUE(predict.status().IsUnavailable());
  ASSERT_TRUE(conn->Execute("SELECT COUNT(*) AS N FROM People").ok());

  // Repair of a missing file re-adopts empty: [M] is back to its recovered
  // base (created, untrained) and writable — a retrain restores it fully.
  store::RepairStats stats;
  ASSERT_TRUE(reopened.Repair("M", &stats).ok());
  EXPECT_EQ(stats.records_reapplied, 0u);
  EXPECT_TRUE(reopened.DegradedModels().empty());
  ASSERT_TRUE(conn->Execute(Script()[6]).ok());  // retrain [M]
  ASSERT_TRUE(conn->Execute(kPredictQuery).ok());

  Provider again;
  ASSERT_TRUE(again.OpenStore(dir).ok());
  EXPECT_EQ(again.store()->recovery_stats().shards_quarantined, 0u);
  EXPECT_EQ(StateString(&again), StateString(&reopened));
}

// A MANIFEST that exists but does not decode must fail the open, never fall
// back to the directory scan: the fallback has no shard table, so a
// committed rotated shard (epoch >= 2, hence no epoch-1 file) would classify
// as stale and be swept — silent loss of acknowledged data.
TEST(StoreTest, UndecodableManifestFailsOpenWithoutSweepingShards) {
  std::string dir = StoreDir("badmanifest");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
  }  // The retrain rotated [M]'s shard to epoch 2, committed in MANIFEST.
  std::string shard = FindShard(dir, "shard-m");
  ASSERT_NE(shard.find("-000002.log"), std::string::npos) << shard;

  // A well-framed single record whose payload is a foreign/old format.
  std::string bogus;
  store::AppendRecordTo(&bogus, "DMXMANIFEST1 not the v2 shard table");
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(dir + "/MANIFEST", bogus, true).ok());

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  // The committed shard was NOT swept by a blind fallback recovery.
  EXPECT_TRUE(Env::Default()->FileExists(shard));
}

// A shard file that parses as a clean prefix but replays fewer records than
// the MANIFEST committed (fs rollback, lost writes) lost acknowledged
// records: recovery must quarantine it, not silently accept the short log.
TEST(StoreTest, ShardShorterThanManifestFloorQuarantines) {
  std::string dir = StoreDir("shortshard");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
  }  // [M]'s rotated shard is committed with min_records = 1 (its blob).
  // Rewrite the shard to header-only: a clean, complete-looking log.
  std::string shard = FindShard(dir, "shard-m");
  auto data = Env::Default()->ReadFileToString(shard);
  ASSERT_TRUE(data.ok());
  auto parsed = store::ParseLog(*data);
  ASSERT_TRUE(parsed.ok());
  ASSERT_GE(parsed->records.size(), 2u);
  std::string out;
  store::AppendRecordTo(&out, parsed->records[0]);
  ASSERT_TRUE(Env::Default()->WriteStringToFile(shard, out, true).ok());

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 1u);
  auto degraded = reopened.DegradedModels();
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0].first, "M");
  EXPECT_NE(degraded[0].second.find("manifest promises"), std::string::npos)
      << degraded[0].second;
  auto conn = reopened.Connect();
  auto predict = conn->Execute(kPredictQuery);
  ASSERT_FALSE(predict.ok());
  EXPECT_TRUE(predict.status().IsUnavailable()) << predict.status().ToString();
}

// A Repair that fails AFTER re-applying records (here: at the MANIFEST
// commit) has already mutated the live catalog; a same-session retry would
// re-execute that prefix on top of itself. The retry must be refused until
// a reopen replays from a consistent base.
TEST(StoreTest, RepairRetryAfterCommitFailureIsRefused) {
  std::string dir = StoreDir("repairretry");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : NbScript()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
  }
  CorruptRecord(FindShard(dir, "shard-m"), 2);  // valid prefix: insert#1

  FaultInjectionEnv env(Env::Default());
  store::StoreOptions options;
  options.env = &env;
  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir, options).ok());
  ASSERT_EQ(reopened.DegradedModels().size(), 1u);

  // Fail the MANIFEST commit of the repair; everything before it (the
  // catalog re-apply and the new epoch file) succeeds.
  env.SetPathFilter("MANIFEST");
  env.ArmFault(0, FaultInjectionEnv::FaultKind::kIOError);
  store::RepairStats stats;
  Status failed = reopened.Repair("NB", &stats);
  ASSERT_FALSE(failed.ok());
  env.Disarm();
  env.ClearPathFilter();
  ASSERT_EQ(reopened.DegradedModels().size(), 1u);  // still quarantined

  // insert#1 was re-applied before the commit failed: a same-session retry
  // must be refused, not double-applied.
  Status retry = reopened.Repair("NB");
  ASSERT_FALSE(retry.ok());
  EXPECT_TRUE(retry.IsInvalidState()) << retry.ToString();
  EXPECT_NE(retry.ToString().find("reopen"), std::string::npos)
      << retry.ToString();

  // After a reopen (consistent replay base) the repair goes through.
  Provider again;
  ASSERT_TRUE(again.OpenStore(dir).ok());
  ASSERT_EQ(again.DegradedModels().size(), 1u);
  store::RepairStats stats2;
  ASSERT_TRUE(again.Repair("NB", &stats2).ok());
  EXPECT_EQ(stats2.records_reapplied, 1u);
  EXPECT_TRUE(again.DegradedModels().empty());
  auto conn = again.Connect();
  ASSERT_TRUE(conn->Execute(kNbPredictQuery).ok());
}

// Losing the .reason sidecar must not orphan a quarantine: the owning model
// comes back from the shard file's own 'H' header, so the model stays
// degraded instead of forking its history onto a fresh shard. If even the
// header is unreadable, the quarantine may own ANY model, so every
// new-shard creation is refused until it is repaired.
TEST(StoreTest, SidecarLossRecoversOwnerFromShardHeader) {
  std::string dir = StoreDir("sidecarloss");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : NbScript()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
  }
  CorruptRecord(FindShard(dir, "shard-m"), 2);
  {  // Quarantine the shard, then lose its sidecar.
    Provider first;
    ASSERT_TRUE(first.OpenStore(dir).ok());
    ASSERT_EQ(first.DegradedModels().size(), 1u);
  }
  std::string qfile = FindShard(dir + "/quarantine", "shard-m");
  ASSERT_TRUE(Env::Default()->DeleteFile(qfile + ".reason").ok());

  {
    Provider reopened;
    ASSERT_TRUE(reopened.OpenStore(dir).ok());
    auto degraded = reopened.DegradedModels();
    ASSERT_EQ(degraded.size(), 1u);
    EXPECT_EQ(degraded[0].first, "NB");
    auto conn = reopened.Connect();
    auto insert = conn->Execute(NbScript()[3]);
    ASSERT_FALSE(insert.ok());
    EXPECT_TRUE(insert.status().IsUnavailable())
        << insert.status().ToString();
  }

  // Damage the header record too: the quarantine is now unattributable.
  auto qdata = Env::Default()->ReadFileToString(qfile);
  ASSERT_TRUE(qdata.ok());
  (*qdata)[8] ^= 0x01;  // first payload byte of the 'H' header record
  ASSERT_TRUE(Env::Default()->WriteStringToFile(qfile, *qdata, true).ok());

  Provider blind;
  ASSERT_TRUE(blind.OpenStore(dir).ok());
  auto conn = blind.Connect();
  ASSERT_TRUE(conn->Execute(
                      "CREATE MINING MODEL [NB2] ([Id] LONG KEY, "
                      "[Age] DOUBLE DISCRETIZED, [Loyalty] LONG DISCRETE "
                      "PREDICT) USING Naive_Bayes")
                  .ok());
  auto train = conn->Execute(
      "INSERT INTO [NB2] SELECT [Id], [Age], [Loyalty] FROM People");
  ASSERT_FALSE(train.ok());
  EXPECT_TRUE(train.status().IsUnavailable()) << train.status().ToString();
  EXPECT_NE(train.status().ToString().find("no recorded owner"),
            std::string::npos)
      << train.status().ToString();
}

TEST(StoreTest, StaleSweepSparesUserFilesAndQuarantine) {
  std::string dir = StoreDir("sweep_ns");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
    ASSERT_TRUE(
        conn->Execute("INSERT INTO People VALUES (7, 28, 120, 0)").ok());
  }
  Env* env = Env::Default();
  // A user file, an orphaned temp file, a shard the MANIFEST never heard of
  // (an unreadable header means its creation was never acknowledged), and an
  // uncommitted snapshot.
  ASSERT_TRUE(env->WriteStringToFile(dir + "/notes.txt", "user data").ok());
  ASSERT_TRUE(env->WriteStringToFile(dir + "/leftover.tmp", "junk").ok());
  ASSERT_TRUE(
      env->WriteStringToFile(dir + "/shard-m000099-000001.log", "junk").ok());
  ASSERT_TRUE(env->WriteStringToFile(dir + "/snapshot-000099", "junk").ok());

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 0u);
  {
    // Recovery round-tripped the checkpointed + journaled state.
    Provider oracle;
    auto oconn = oracle.Connect();
    ASSERT_TRUE(oconn->Execute(Script()[0]).ok());
    ASSERT_TRUE(oconn->Execute(Script()[1]).ok());
    ASSERT_TRUE(
        oconn->Execute("INSERT INTO People VALUES (7, 28, 120, 0)").ok());
    EXPECT_EQ(StateString(&reopened), StateString(&oracle));
  }
  // Only the store's own stale namespace is swept; the user file survives.
  EXPECT_TRUE(env->FileExists(dir + "/notes.txt"));
  EXPECT_FALSE(env->FileExists(dir + "/leftover.tmp"));
  EXPECT_FALSE(env->FileExists(dir + "/shard-m000099-000001.log"));
  EXPECT_FALSE(env->FileExists(dir + "/snapshot-000099"));
  // The committed snapshot is untouched.
  EXPECT_FALSE(FindSnapshot(dir).empty());
}

TEST(StoreTest, ParallelRecoveryMatchesSerial) {
  std::string dir = StoreDir("parallel");
  constexpr int kModels = 5;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    ASSERT_TRUE(conn->Execute(Script()[0]).ok());
    ASSERT_TRUE(conn->Execute(Script()[1]).ok());
    for (int i = 0; i < kModels; ++i) {
      const std::string name = "NB" + std::to_string(i);
      ASSERT_TRUE(conn->Execute("CREATE MINING MODEL [" + name +
                                "] ([Id] LONG KEY, [Age] DOUBLE DISCRETIZED, "
                                "[Loyalty] LONG DISCRETE PREDICT) "
                                "USING Naive_Bayes")
                      .ok());
      ASSERT_TRUE(conn->Execute("INSERT INTO [" + name +
                                "] SELECT [Id], [Age], [Loyalty] FROM People")
                      .ok());
    }
  }

  std::string serial_state;
  {
    Provider serial;
    store::StoreOptions options;
    options.recovery_threads = 1;
    ASSERT_TRUE(serial.OpenStore(dir, options).ok());
    EXPECT_EQ(serial.store()->recovery_stats().shards_recovered,
              1u + kModels);  // catalog + one shard per model
    serial_state = StateString(&serial);
  }

  Provider parallel;
  store::StoreOptions options;
  options.recovery_threads = 4;
  ASSERT_TRUE(parallel.OpenStore(dir, options).ok());
  EXPECT_EQ(parallel.store()->recovery_stats().shards_recovered,
            1u + kModels);
  EXPECT_EQ(StateString(&parallel), serial_state);
  EXPECT_GE(parallel.store()->recovery_report().size(), 1u + kModels);
}

TEST(StoreTest, SnapshotDamageSurfacesCorruption) {
  std::string dir = StoreDir("badsnap");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
  }
  std::string snapshot = FindSnapshot(dir);
  auto data = Env::Default()->ReadFileToString(snapshot);
  ASSERT_TRUE(data.ok());
  (*data)[data->size() / 2] ^= 0x01;
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(snapshot, *data, true).ok());

  // The snapshot is the shared base of every shard: there is no per-model
  // blast radius to contain, so damage is still a failed open.
  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
}

TEST(StoreTest, ImportedModelSurvivesSourceFileDeletion) {
  // Train and export from a store-less provider.
  std::string xml = ::testing::TempDir() + "/store_test_import.xml";
  {
    Provider trainer;
    auto conn = trainer.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(
        conn->Execute("EXPORT MINING MODEL [M] TO '" + xml + "'").ok());
  }

  std::string dir = StoreDir("import");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    auto result =
        conn->Execute("IMPORT MINING MODEL FROM '" + xml + "'");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // The journal must not depend on the exported file still existing.
  ASSERT_TRUE(Env::Default()->DeleteFile(xml).ok());

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_blobs, 1u);
  auto model = reopened.models()->GetModel("M");
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->is_trained());
  EXPECT_DOUBLE_EQ((*model)->case_count(), 6.0);
}

TEST(StoreTest, RecoveredStateReplacesPreloadedObjects) {
  std::string dir = StoreDir("authoritative");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
  }
  // A provider that already has a conflicting People table (e.g. dmxsh
  // --warehouse preload) — the recovered snapshot wins.
  Provider reopened;
  auto conn = reopened.Connect();
  ASSERT_TRUE(conn->Execute("CREATE TABLE People (Id LONG)").ok());
  ASSERT_TRUE(conn->Execute("INSERT INTO People VALUES (99)").ok());
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_EQ(StateString(&reopened), OracleState(2));
}

// ---------------------------------------------------------------------------
// Crash-point sweep — the acceptance criterion. With FaultInjectionEnv
// failing at every successive write/fsync/rename/... offset (and as a torn
// write, and as ENOSPC), reopening the store must always succeed with a
// clean env and recover EXACTLY the successfully-executed statement prefix:
// never a partial statement, never a crash, never a quarantine — injected
// crashes are torn tails and lost appends, not mid-log damage. The workload
// spans the catalog shard, a blob shard (with an epoch-bumping rotation) and
// an incremental statement shard, with auto-checkpoints rewriting the
// MANIFEST mid-run.
// ---------------------------------------------------------------------------

const std::vector<std::string>& SweepScript() {
  static const std::vector<std::string> kScript = [] {
    std::vector<std::string> script = Script();
    script.push_back(
        "CREATE MINING MODEL [N] ([Id] LONG KEY, [Age] DOUBLE DISCRETIZED, "
        "[Loyalty] LONG DISCRETE PREDICT) USING Naive_Bayes");
    script.push_back(
        "INSERT INTO [N] SELECT [Id], [Age], [Loyalty] FROM People");
    return script;
  }();
  return kScript;
}

class CrashPointSweep
    : public ::testing::TestWithParam<FaultInjectionEnv::FaultKind> {};

const char* KindName(FaultInjectionEnv::FaultKind kind) {
  switch (kind) {
    case FaultInjectionEnv::FaultKind::kIOError: return "IOError";
    case FaultInjectionEnv::FaultKind::kTornWrite: return "TornWrite";
    case FaultInjectionEnv::FaultKind::kNoSpace: return "NoSpace";
  }
  return "Unknown";
}

TEST_P(CrashPointSweep, EveryFaultOffsetRecoversToAPrefix) {
  const FaultInjectionEnv::FaultKind kind = GetParam();
  // The three kinds run as separate concurrent ctest processes — keep their
  // scratch directories disjoint.
  const std::string tag = KindName(kind);
  const std::vector<std::string>& script = SweepScript();

  // Pass 1: count the mutating ops of a fault-free run.
  int64_t total_ops = 0;
  {
    std::string dir = StoreDir("sweep_count_" + tag);
    FaultInjectionEnv env(Env::Default());
    env.ArmFault(INT64_MAX, kind);
    store::StoreOptions options;
    options.env = &env;
    options.auto_checkpoint_interval = 4;  // exercise mid-run checkpoints
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir, options).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : script) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
    total_ops = env.op_count();
    ASSERT_FALSE(env.fault_fired());
  }
  ASSERT_GT(total_ops, 10);

  // Cache oracle states — StateString per statement prefix.
  std::vector<std::string> oracle(script.size() + 1);
  for (size_t i = 0; i <= script.size(); ++i) {
    oracle[i] = OracleState(script, i);
  }

  // Pass 2: fail at every offset.
  for (int64_t fail_at = 0; fail_at < total_ops; ++fail_at) {
    SCOPED_TRACE("fail_at=" + std::to_string(fail_at));
    std::string dir = StoreDir("sweep_" + tag);
    FaultInjectionEnv env(Env::Default());
    env.ArmFault(fail_at, kind);
    store::StoreOptions options;
    options.env = &env;
    options.auto_checkpoint_interval = 4;

    size_t ok_prefix = 0;
    {
      Provider provider;
      if (provider.OpenStore(dir, options).ok()) {
        auto conn = provider.Connect();
        for (const std::string& statement : script) {
          if (!conn->Execute(statement).ok()) break;
          ++ok_prefix;
        }
      }
    }

    // Reopen with a healthy filesystem: recovery must succeed — an injected
    // crash or ENOSPC is never corruption — and land on the state of a
    // statement PREFIX. The failing statement itself may or may not be
    // durable (its WAL bytes can reach the disk even when the fsync reports
    // the fault), but a statement must never be half-applied, and a crash
    // must never quarantine a shard.
    Provider reopened;
    Status status = reopened.OpenStore(dir);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(reopened.store()->recovery_stats().shards_quarantined, 0u);
    std::string recovered = StateString(&reopened);
    size_t next = std::min(ok_prefix + 1, script.size());
    EXPECT_TRUE(recovered == oracle[ok_prefix] || recovered == oracle[next])
        << "ok_prefix=" << ok_prefix << "\nrecovered:\n"
        << recovered << "\nexpected either prefix " << ok_prefix << ":\n"
        << oracle[ok_prefix] << "\nor prefix " << next << ":\n"
        << oracle[next];
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultKinds, CrashPointSweep,
    ::testing::Values(FaultInjectionEnv::FaultKind::kIOError,
                      FaultInjectionEnv::FaultKind::kTornWrite,
                      FaultInjectionEnv::FaultKind::kNoSpace),
    [](const ::testing::TestParamInfo<FaultInjectionEnv::FaultKind>& info) {
      return KindName(info.param);
    });

// Record framing unit coverage: ParseLog's three verdicts.
TEST(LogFormatTest, ParseLogVerdicts) {
  std::string log;
  store::AppendRecordTo(&log, "alpha");
  store::AppendRecordTo(&log, "beta");

  auto clean = store::ParseLog(log);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  ASSERT_EQ(clean->records.size(), 2u);
  EXPECT_EQ(clean->records[0], "alpha");
  EXPECT_EQ(clean->records[1], "beta");
  EXPECT_EQ(clean->valid_bytes, log.size());

  // Every strict prefix that cuts into the second record is a torn tail
  // preserving record one.
  for (size_t cut = clean->valid_bytes - 1; cut > 13; --cut) {
    auto torn = store::ParseLog(std::string_view(log).substr(0, cut));
    ASSERT_TRUE(torn.ok()) << "cut=" << cut;
    EXPECT_TRUE(torn->torn_tail);
    ASSERT_EQ(torn->records.size(), 1u);
    EXPECT_EQ(torn->records[0], "alpha");
  }

  // A corrupted first record with a healthy record after it is mid-log
  // damage.
  std::string damaged = log;
  damaged[9] ^= 0x01;  // inside "alpha"'s payload
  auto corrupt = store::ParseLog(damaged);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kCorruption);

  // The same damage on the FINAL record is indistinguishable from a torn
  // write and recovers silently.
  std::string tail_damaged = log;
  tail_damaged[tail_damaged.size() - 1] ^= 0x01;
  auto tail = store::ParseLog(tail_damaged);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail->torn_tail);
  ASSERT_EQ(tail->records.size(), 1u);

  // A zero-filled tail (preallocated blocks after power loss) must never
  // frame as valid empty records — the masked, header-covering CRC rejects
  // it — and, running to EOF, it is a torn tail, not corruption.
  std::string zero_tail = log + std::string(32, '\0');
  auto zeros = store::ParseLog(zero_tail);
  ASSERT_TRUE(zeros.ok());
  EXPECT_TRUE(zeros->torn_tail);
  ASSERT_EQ(zeros->records.size(), 2u);
  EXPECT_EQ(zeros->valid_bytes, log.size());

  // An all-zero file is an empty torn log, not a log of empty records.
  auto all_zero = store::ParseLog(std::string(24, '\0'));
  ASSERT_TRUE(all_zero.ok());
  EXPECT_TRUE(all_zero->torn_tail);
  EXPECT_TRUE(all_zero->records.empty());
}

}  // namespace
}  // namespace dmx
