// Durable store: statements journaled through a provider survive process
// death. Covers the WAL/snapshot round trip, checkpoint rotation, torn-tail
// vs mid-log corruption handling, IMPORT blob journaling, and the crash-point
// sweep — a fault injected at EVERY mutating I/O op must leave a state that
// recovers to exactly the successfully-executed statement prefix.

#include "store/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/provider.h"
#include "relational/database.h"
#include "store/log_format.h"

namespace dmx {
namespace {

// A fixed script exercising every journaled path: SQL DDL/DML, model DDL,
// training, retraining after DELETE FROM, and incremental data arrival.
const std::vector<std::string>& Script() {
  static const std::vector<std::string> kScript = {
      "CREATE TABLE People (Id LONG, Age DOUBLE, Income DOUBLE, "
      "Loyalty LONG)",
      "INSERT INTO People VALUES (1, 25, 100, 0), (2, 30, 210, 1), "
      "(3, 45, 300, 1), (4, 22, 90, 0), (5, 60, 400, 1), (6, 35, 150, 0)",
      "CREATE MINING MODEL [M] ([Id] LONG KEY, [Age] DOUBLE CONTINUOUS, "
      "[Income] DOUBLE CONTINUOUS, [Loyalty] LONG DISCRETE PREDICT) "
      "USING Clustering(CLUSTER_COUNT = 2, SEED = 7)",
      "INSERT INTO [M] SELECT [Id], [Age], [Income], [Loyalty] FROM People",
      "INSERT INTO People VALUES (7, 28, 120, 0), (8, 52, 380, 1)",
      "DELETE FROM [M]",
      "INSERT INTO [M] SELECT [Id], [Age], [Income], [Loyalty] FROM People",
  };
  return kScript;
}

constexpr const char* kPredictQuery =
    "SELECT t.[Id], Predict([Loyalty]) AS P, PredictProbability([Loyalty]) "
    "AS Q FROM [M] NATURAL PREDICTION JOIN "
    "(SELECT [Id], [Age], [Income] FROM People) AS t";

// Serializes everything observable about a provider: table contents, model
// inventory (with case counts), and — when [M] is trained — its predictions.
// Two providers with equal StateStrings are behaviourally identical.
std::string StateString(Provider* provider) {
  std::string out;
  std::vector<std::string> tables = provider->database()->ListTables();
  std::sort(tables.begin(), tables.end());
  for (const std::string& name : tables) {
    auto table = provider->database()->GetTable(name);
    if (!table.ok()) return "table error: " + table.status().ToString();
    out += "table " + name + "\n" +
           rel::ToCsvString(*(*table)->schema(), (*table)->rows());
  }
  std::vector<std::string> models = provider->models()->ListModels();
  std::sort(models.begin(), models.end());
  auto conn = provider->Connect();
  for (const std::string& name : models) {
    auto model = provider->models()->GetModel(name);
    if (!model.ok()) return "model error: " + model.status().ToString();
    out += "model " + name + " cases=" +
           std::to_string((*model)->case_count()) + "\n";
    if ((*model)->is_trained() && name == "M") {
      auto rowset = conn->Execute(kPredictQuery);
      if (!rowset.ok()) {
        return "predict error: " + rowset.status().ToString();
      }
      out += rowset->ToString();
    }
  }
  return out;
}

// Executes the first `count` script statements on a fresh in-memory provider
// — the oracle a recovered store is compared against.
std::string OracleState(size_t count) {
  Provider provider;
  auto conn = provider.Connect();
  for (size_t i = 0; i < count; ++i) {
    auto result = conn->Execute(Script()[i]);
    EXPECT_TRUE(result.ok())
        << "oracle statement " << i << ": " << result.status().ToString();
  }
  return StateString(&provider);
}

std::string StoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/store_test_" + name;
  // Tests reuse names across runs; start from an empty directory.
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)env->DeleteFile(dir + "/" + f);
  }
  return dir;
}

// Returns the path of the single wal-*.log file in `dir`.
std::string FindWal(const std::string& dir) {
  auto names = Env::Default()->ListDir(dir);
  EXPECT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.rfind("wal-", 0) == 0) return dir + "/" + name;
  }
  ADD_FAILURE() << "no WAL file in " << dir;
  return "";
}

std::string FindSnapshot(const std::string& dir) {
  auto names = Env::Default()->ListDir(dir);
  EXPECT_TRUE(names.ok());
  for (const std::string& name : *names) {
    if (name.rfind("snapshot-", 0) == 0) return dir + "/" + name;
  }
  ADD_FAILURE() << "no snapshot file in " << dir;
  return "";
}

TEST(StoreTest, StatePersistsAcrossReopen) {
  std::string dir = StoreDir("reopen");
  std::string before;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      auto result = conn->Execute(statement);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
    before = StateString(&provider);
  }  // Dies without a checkpoint: recovery must come purely from the WAL.

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  const store::RecoveryStats& stats = reopened.store()->recovery_stats();
  // Training INSERTs into non-incremental models (the two [M] Clustering
  // inserts) journal the trained model blob, not the statement: statement
  // replay cannot reproduce a retrain whose case cache is volatile.
  EXPECT_EQ(stats.replayed_statements, Script().size() - 2);
  EXPECT_EQ(stats.replayed_blobs, 2u);
  EXPECT_FALSE(stats.torn_tail_truncated);
  EXPECT_EQ(StateString(&reopened), before);
  EXPECT_EQ(before, OracleState(Script().size()));
}

TEST(StoreTest, CheckpointRotatesWalAndSpeedsRecovery) {
  std::string dir = StoreDir("checkpoint");
  std::string before;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
    EXPECT_EQ(provider.store()->wal_records(), 0u);
    // Post-checkpoint statements land in the rotated WAL.
    ASSERT_TRUE(
        conn->Execute("INSERT INTO People VALUES (9, 41, 260, 1)").ok());
    before = StateString(&provider);
  }

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  const store::RecoveryStats& stats = reopened.store()->recovery_stats();
  EXPECT_GT(stats.snapshot_seq, 0u);
  EXPECT_GT(stats.snapshot_entries, 0u);
  EXPECT_EQ(stats.replayed_statements, 1u);  // only the post-checkpoint row
  EXPECT_EQ(StateString(&reopened), before);

  // A second checkpoint bumps the sequence and still round-trips.
  ASSERT_TRUE(reopened.Checkpoint().ok());
  Provider again;
  ASSERT_TRUE(again.OpenStore(dir).ok());
  EXPECT_GT(again.store()->recovery_stats().snapshot_seq, stats.snapshot_seq);
  EXPECT_EQ(StateString(&again), before);
}

TEST(StoreTest, TornWalTailIsTruncatedSilently) {
  std::string dir = StoreDir("torn");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
  }
  // Simulate a crash mid-append: a record header with no payload behind it.
  std::string wal = FindWal(dir);
  std::string tail;
  store::PutFixed32(&tail, 1000);  // claims 1000 payload bytes
  store::PutFixed32(&tail, 0xdeadbeef);
  tail += "only a few";
  {
    auto file = Env::Default()->NewWritableFile(wal, /*append=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(tail).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_TRUE(reopened.store()->recovery_stats().torn_tail_truncated);
  // 3 statements + 1 model blob: the [M] training insert journals a blob.
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_statements, 3u);
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_blobs, 1u);
  EXPECT_EQ(StateString(&reopened), OracleState(4));

  // The truncation repaired the file: a third open sees a clean log.
  Provider third;
  ASSERT_TRUE(third.OpenStore(dir).ok());
  EXPECT_FALSE(third.store()->recovery_stats().torn_tail_truncated);
  EXPECT_EQ(StateString(&third), OracleState(4));
}

TEST(StoreTest, ZeroFilledWalTailIsTornTail) {
  std::string dir = StoreDir("zerotail");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
  }
  // Block preallocation after power loss: the WAL gains a run of zero bytes
  // past the last fsynced record. Must recover silently, not kCorruption.
  std::string wal = FindWal(dir);
  {
    auto file = Env::Default()->NewWritableFile(wal, /*append=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(64, '\0')).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_TRUE(reopened.store()->recovery_stats().torn_tail_truncated);
  // 3 statements + 1 model blob (see TornWalTailIsTruncatedSilently).
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_statements, 3u);
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_blobs, 1u);
  EXPECT_EQ(StateString(&reopened), OracleState(4));
}

TEST(StoreTest, SnapshotRoundTripsNewlineAndEmptyCells) {
  std::string dir = StoreDir("newline_cells");
  std::string before;
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto schema = Schema::Make({ColumnDef("Id", DataType::kLong),
                                ColumnDef("Body", DataType::kText)});
    auto table = provider.database()->CreateTable("Notes", schema);
    ASSERT_TRUE(table.ok());
    std::vector<Row> rows;
    rows.push_back({Value::Long(1),
                    Value::Text("line one\nline \"two\", with comma")});
    rows.push_back({Value::Long(2), Value::Text("")});
    rows.push_back({Value::Long(3), Value::Null()});
    ASSERT_TRUE((*table)->InsertAll(std::move(rows)).ok());
    ASSERT_TRUE(provider.Checkpoint().ok());
    before = StateString(&provider);
  }

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(StateString(&reopened), before);
  auto table = reopened.database()->GetTable("Notes");
  ASSERT_TRUE(table.ok());
  const std::vector<Row>& rows = (*table)->rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(
      rows[0][1].Equals(Value::Text("line one\nline \"two\", with comma")));
  // Empty string and NULL stay distinct across checkpoint + recovery.
  EXPECT_TRUE(rows[1][1].Equals(Value::Text("")));
  EXPECT_TRUE(rows[2][1].is_null());
}

TEST(StoreTest, MidLogDamageSurfacesCorruption) {
  std::string dir = StoreDir("midlog");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
  }
  // Flip a byte inside the FIRST record's payload — damage followed by more
  // records is not a torn tail and must not be silently dropped.
  std::string wal = FindWal(dir);
  auto data = Env::Default()->ReadFileToString(wal);
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->size(), 16u);
  (*data)[10] ^= 0x40;
  ASSERT_TRUE(Env::Default()->WriteStringToFile(wal, *data, true).ok());

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(StoreTest, SnapshotDamageSurfacesCorruption) {
  std::string dir = StoreDir("badsnap");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
  }
  std::string snapshot = FindSnapshot(dir);
  auto data = Env::Default()->ReadFileToString(snapshot);
  ASSERT_TRUE(data.ok());
  (*data)[data->size() / 2] ^= 0x01;
  ASSERT_TRUE(
      Env::Default()->WriteStringToFile(snapshot, *data, true).ok());

  Provider reopened;
  Status status = reopened.OpenStore(dir);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
}

TEST(StoreTest, ImportedModelSurvivesSourceFileDeletion) {
  // Train and export from a store-less provider.
  std::string xml = ::testing::TempDir() + "/store_test_import.xml";
  {
    Provider trainer;
    auto conn = trainer.Connect();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(
        conn->Execute("EXPORT MINING MODEL [M] TO '" + xml + "'").ok());
  }

  std::string dir = StoreDir("import");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    auto result =
        conn->Execute("IMPORT MINING MODEL FROM '" + xml + "'");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // The journal must not depend on the exported file still existing.
  ASSERT_TRUE(Env::Default()->DeleteFile(xml).ok());

  Provider reopened;
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_EQ(reopened.store()->recovery_stats().replayed_blobs, 1u);
  auto model = reopened.models()->GetModel("M");
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->is_trained());
  EXPECT_DOUBLE_EQ((*model)->case_count(), 6.0);
}

TEST(StoreTest, RecoveredStateReplacesPreloadedObjects) {
  std::string dir = StoreDir("authoritative");
  {
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir).ok());
    auto conn = provider.Connect();
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(conn->Execute(Script()[i]).ok());
    }
    ASSERT_TRUE(provider.Checkpoint().ok());
  }
  // A provider that already has a conflicting People table (e.g. dmxsh
  // --warehouse preload) — the recovered snapshot wins.
  Provider reopened;
  auto conn = reopened.Connect();
  ASSERT_TRUE(conn->Execute("CREATE TABLE People (Id LONG)").ok());
  ASSERT_TRUE(conn->Execute("INSERT INTO People VALUES (99)").ok());
  ASSERT_TRUE(reopened.OpenStore(dir).ok());
  EXPECT_EQ(StateString(&reopened), OracleState(2));
}

// ---------------------------------------------------------------------------
// Crash-point sweep — the acceptance criterion. With FaultInjectionEnv
// failing at every successive write/fsync/rename/... offset (and as a torn
// write, and as ENOSPC), reopening the store must always succeed with a
// clean env and recover EXACTLY the successfully-executed statement prefix:
// never a partial statement, never a crash, never kCorruption.
// ---------------------------------------------------------------------------

class CrashPointSweep
    : public ::testing::TestWithParam<FaultInjectionEnv::FaultKind> {};

const char* KindName(FaultInjectionEnv::FaultKind kind) {
  switch (kind) {
    case FaultInjectionEnv::FaultKind::kIOError: return "IOError";
    case FaultInjectionEnv::FaultKind::kTornWrite: return "TornWrite";
    case FaultInjectionEnv::FaultKind::kNoSpace: return "NoSpace";
  }
  return "Unknown";
}

TEST_P(CrashPointSweep, EveryFaultOffsetRecoversToAPrefix) {
  const FaultInjectionEnv::FaultKind kind = GetParam();
  // The three kinds run as separate concurrent ctest processes — keep their
  // scratch directories disjoint.
  const std::string tag = KindName(kind);

  // Pass 1: count the mutating ops of a fault-free run.
  int64_t total_ops = 0;
  {
    std::string dir = StoreDir("sweep_count_" + tag);
    FaultInjectionEnv env(Env::Default());
    env.ArmFault(INT64_MAX, kind);
    store::StoreOptions options;
    options.env = &env;
    options.auto_checkpoint_interval = 4;  // exercise mid-run checkpoints
    Provider provider;
    ASSERT_TRUE(provider.OpenStore(dir, options).ok());
    auto conn = provider.Connect();
    for (const std::string& statement : Script()) {
      ASSERT_TRUE(conn->Execute(statement).ok());
    }
    total_ops = env.op_count();
    ASSERT_FALSE(env.fault_fired());
  }
  ASSERT_GT(total_ops, 10);

  // Cache oracle states — StateString per statement prefix.
  std::vector<std::string> oracle(Script().size() + 1);
  for (size_t i = 0; i <= Script().size(); ++i) oracle[i] = OracleState(i);

  // Pass 2: fail at every offset.
  for (int64_t fail_at = 0; fail_at < total_ops; ++fail_at) {
    SCOPED_TRACE("fail_at=" + std::to_string(fail_at));
    std::string dir = StoreDir("sweep_" + tag);
    FaultInjectionEnv env(Env::Default());
    env.ArmFault(fail_at, kind);
    store::StoreOptions options;
    options.env = &env;
    options.auto_checkpoint_interval = 4;

    size_t ok_prefix = 0;
    {
      Provider provider;
      if (provider.OpenStore(dir, options).ok()) {
        auto conn = provider.Connect();
        for (const std::string& statement : Script()) {
          if (!conn->Execute(statement).ok()) break;
          ++ok_prefix;
        }
      }
    }

    // Reopen with a healthy filesystem: recovery must succeed — an injected
    // crash or ENOSPC is never corruption — and land on the state of a
    // statement PREFIX. The failing statement itself may or may not be
    // durable (its WAL bytes can reach the disk even when the fsync reports
    // the fault), but a statement must never be half-applied.
    Provider reopened;
    Status status = reopened.OpenStore(dir);
    ASSERT_TRUE(status.ok()) << status.ToString();
    std::string recovered = StateString(&reopened);
    size_t next = std::min(ok_prefix + 1, Script().size());
    EXPECT_TRUE(recovered == oracle[ok_prefix] || recovered == oracle[next])
        << "ok_prefix=" << ok_prefix << "\nrecovered:\n"
        << recovered << "\nexpected either prefix " << ok_prefix << ":\n"
        << oracle[ok_prefix] << "\nor prefix " << next << ":\n"
        << oracle[next];
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultKinds, CrashPointSweep,
    ::testing::Values(FaultInjectionEnv::FaultKind::kIOError,
                      FaultInjectionEnv::FaultKind::kTornWrite,
                      FaultInjectionEnv::FaultKind::kNoSpace),
    [](const ::testing::TestParamInfo<FaultInjectionEnv::FaultKind>& info) {
      return KindName(info.param);
    });

// Record framing unit coverage: ParseLog's three verdicts.
TEST(LogFormatTest, ParseLogVerdicts) {
  std::string log;
  store::AppendRecordTo(&log, "alpha");
  store::AppendRecordTo(&log, "beta");

  auto clean = store::ParseLog(log);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  ASSERT_EQ(clean->records.size(), 2u);
  EXPECT_EQ(clean->records[0], "alpha");
  EXPECT_EQ(clean->records[1], "beta");
  EXPECT_EQ(clean->valid_bytes, log.size());

  // Every strict prefix that cuts into the second record is a torn tail
  // preserving record one.
  for (size_t cut = clean->valid_bytes - 1; cut > 13; --cut) {
    auto torn = store::ParseLog(std::string_view(log).substr(0, cut));
    ASSERT_TRUE(torn.ok()) << "cut=" << cut;
    EXPECT_TRUE(torn->torn_tail);
    ASSERT_EQ(torn->records.size(), 1u);
    EXPECT_EQ(torn->records[0], "alpha");
  }

  // A corrupted first record with a healthy record after it is mid-log
  // damage.
  std::string damaged = log;
  damaged[9] ^= 0x01;  // inside "alpha"'s payload
  auto corrupt = store::ParseLog(damaged);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kCorruption);

  // The same damage on the FINAL record is indistinguishable from a torn
  // write and recovers silently.
  std::string tail_damaged = log;
  tail_damaged[tail_damaged.size() - 1] ^= 0x01;
  auto tail = store::ParseLog(tail_damaged);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail->torn_tail);
  ASSERT_EQ(tail->records.size(), 1u);

  // A zero-filled tail (preallocated blocks after power loss) must never
  // frame as valid empty records — the masked, header-covering CRC rejects
  // it — and, running to EOF, it is a torn tail, not corruption.
  std::string zero_tail = log + std::string(32, '\0');
  auto zeros = store::ParseLog(zero_tail);
  ASSERT_TRUE(zeros.ok());
  EXPECT_TRUE(zeros->torn_tail);
  ASSERT_EQ(zeros->records.size(), 2u);
  EXPECT_EQ(zeros->valid_bytes, log.size());

  // An all-zero file is an empty torn log, not a log of empty records.
  auto all_zero = store::ParseLog(std::string(24, '\0'));
  ASSERT_TRUE(all_zero.ok());
  EXPECT_TRUE(all_zero->torn_tail);
  EXPECT_TRUE(all_zero->records.empty());
}

}  // namespace
}  // namespace dmx
