// CondVar timing semantics and AdmissionController queue behaviour under
// real contention (DESIGN.md §9). These tests assert wall-clock bounds, so
// the binary is registered SERIAL — it never races a `ctest -j` storm.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/exec_guard.h"
#include "common/mutex.h"
#include "core/admission.h"

namespace dmx {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

int64_t ElapsedMs(steady_clock::time_point start) {
  return std::chrono::duration_cast<milliseconds>(steady_clock::now() - start)
      .count();
}

// With nobody notifying, WaitFor must come back via the timeout — close to
// the requested budget, not instantly (spurious wakeups are legal but a
// systematic early return would turn every poll loop into a spin).
TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  constexpr int64_t kTimeoutMs = 60;

  mu.Lock();
  const auto start = steady_clock::now();
  int64_t waited = 0;
  // Tolerate spurious wakeups: keep waiting until the budget has truly
  // elapsed, like every real WaitFor condition loop does.
  while ((waited = ElapsedMs(start)) < kTimeoutMs) {
    cv.WaitFor(&mu, milliseconds(kTimeoutMs - waited));
  }
  mu.AssertHeld();  // WaitFor re-acquires before returning
  mu.Unlock();

  EXPECT_GE(waited, kTimeoutMs);
}

// A notify must win the race against a long timeout: the waiter wakes when
// the flag flips, orders of magnitude before the 10 s budget.
TEST(CondVarTest, NotifyWakesWaiterBeforeTimeout) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread notifier([&] {
    std::this_thread::sleep_for(milliseconds(20));
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.NotifyOne();
  });

  const auto start = steady_clock::now();
  mu.Lock();
  while (!ready) {
    cv.WaitFor(&mu, milliseconds(10'000));
    ASSERT_LT(ElapsedMs(start), 5'000) << "waiter slept through the notify";
  }
  mu.Unlock();
  notifier.join();
  EXPECT_LT(ElapsedMs(start), 5'000);
}

// NotifyAll releases every parked waiter, not just one.
TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> awake{0};

  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      mu.Lock();
      while (!go) cv.WaitFor(&mu, milliseconds(10'000));
      mu.Unlock();
      awake.fetch_add(1);
    });
  }

  std::this_thread::sleep_for(milliseconds(20));
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(awake.load(), kWaiters);
}

// Queue drain under contention: with 2 slots and a queue of 6, all 8
// statements are admitted exactly once, the queue drains in full, and the
// observed concurrency never exceeds the cap (atomic high-water mark).
TEST(AdmissionQueueTest, DrainsQueueWithoutExceedingCap) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/2, /*max_queued=*/6);

  constexpr int kStatements = 8;
  std::atomic<int> admitted{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> high_water{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kStatements; ++i) {
    threads.emplace_back([&] {
      Status status = admission.Admit(/*guard=*/nullptr);
      ASSERT_TRUE(status.ok()) << status.ToString();
      admitted.fetch_add(1);
      int now = concurrent.fetch_add(1) + 1;
      int seen = high_water.load();
      while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(milliseconds(10));  // hold the slot
      concurrent.fetch_sub(1);
      admission.Release();
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(admitted.load(), kStatements);  // queue drained in full
  EXPECT_LE(high_water.load(), 2);
  EXPECT_EQ(admission.active(), 0u);
}

// Beyond the queue the controller fails fast instead of piling up.
TEST(AdmissionQueueTest, RejectsBeyondQueueCapacity) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/1);

  ASSERT_TRUE(admission.Admit(nullptr).ok());  // occupies the only slot

  std::atomic<bool> queued_done{false};
  std::thread queued([&] {
    Status status = admission.Admit(nullptr);  // parks in the queue
    EXPECT_TRUE(status.ok()) << status.ToString();
    admission.Release();
    queued_done.store(true);
  });
  std::this_thread::sleep_for(milliseconds(30));  // let it reach the queue

  Status overflow = admission.Admit(nullptr);
  EXPECT_TRUE(overflow.IsResourceExhausted()) << overflow.ToString();

  admission.Release();  // frees the slot; the queued waiter takes it
  queued.join();
  EXPECT_TRUE(queued_done.load());
  EXPECT_EQ(admission.active(), 0u);
}

// A cancelled statement leaves the queue (kCancelled, slot intact) instead
// of occupying it forever — the guard is polled while waiting.
TEST(AdmissionQueueTest, CancelWhileQueuedLeavesTheQueue) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/2);

  ASSERT_TRUE(admission.Admit(nullptr).ok());  // saturate

  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  ExecGuard guard(limits);
  std::atomic<bool> cancelled_seen{false};
  std::thread waiter([&] {
    Status status = admission.Admit(&guard);
    EXPECT_TRUE(status.IsCancelled()) << status.ToString();
    cancelled_seen.store(true);
  });
  std::this_thread::sleep_for(milliseconds(30));
  limits.cancel->Cancel();
  waiter.join();
  ASSERT_TRUE(cancelled_seen.load());

  // The departed waiter freed its queue slot: the queue accepts new
  // waiters again, and the active slot was never released by the trip.
  std::thread reuse([&] { EXPECT_TRUE(admission.Admit(nullptr).ok()); });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(admission.active(), 1u);  // still just the original holder
  admission.Release();
  reuse.join();
  admission.Release();
}

// The global rejection is diagnosable from the message alone: live
// occupancy plus the configured limits, rendered exactly like this
// (admission.cc promises the wording; the serving front end forwards it to
// clients verbatim inside a Done frame).
TEST(AdmissionQueueTest, GlobalRejectionMessageCarriesLimitsAndDepth) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/1);

  ASSERT_TRUE(admission.Admit(nullptr).ok());  // occupies the only slot
  std::atomic<bool> queued_ok{false};
  std::thread queued([&] {
    Status status = admission.Admit(nullptr);  // fills the queue
    EXPECT_TRUE(status.ok()) << status.ToString();
    queued_ok.store(true);
    admission.Release();
  });
  std::this_thread::sleep_for(milliseconds(30));  // let it park

  Status overflow = admission.Admit(nullptr);
  ASSERT_TRUE(overflow.IsResourceExhausted()) << overflow.ToString();
  EXPECT_EQ(overflow.message(),
            "too many concurrent statements (1 executing, 1 queued; "
            "limits 1 active, 1 queued); retry later");

  admission.Release();
  queued.join();
  EXPECT_TRUE(queued_ok.load());
  EXPECT_EQ(admission.active(), 0u);
}

// A tenant over its own quota is rejected by name — with its occupancy and
// quota — even though the global gate has plenty of room.
TEST(AdmissionQueueTest, TenantQuotaRejectionMessageNamesTheTenant) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/8, /*max_queued=*/8);
  admission.SetTenantLimits(/*max_active=*/1, /*max_queued=*/0);

  ASSERT_TRUE(admission.Admit(nullptr, "acme").ok());
  Status over = admission.Admit(nullptr, "acme");
  ASSERT_TRUE(over.IsResourceExhausted()) << over.ToString();
  EXPECT_EQ(over.message(),
            "tenant \"acme\" over quota (1 executing, 0 queued; "
            "quota 1 active, 0 queued); retry later");

  // Another tenant, and the anonymous session, are unaffected.
  EXPECT_TRUE(admission.Admit(nullptr, "globex").ok());
  EXPECT_TRUE(admission.Admit(nullptr).ok());
  EXPECT_EQ(admission.tenant_active("acme"), 1u);
  EXPECT_EQ(admission.tenant_active("globex"), 1u);

  admission.Release("acme");
  admission.Release("globex");
  admission.Release();
  EXPECT_EQ(admission.active(), 0u);
  // Per-tenant bookkeeping is erased at zero occupancy, not accumulated.
  EXPECT_EQ(admission.tenant_active("acme"), 0u);
  EXPECT_EQ(admission.tenant_active("globex"), 0u);
}

// A waiter queued behind its tenant's quota (global gate open) is released
// when that tenant's slot frees — Release must NotifyAll so the right
// tenant's waiter wakes.
TEST(AdmissionQueueTest, TenantWaiterWakesWhenTenantSlotFrees) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/8, /*max_queued=*/8);
  admission.SetTenantLimits(/*max_active=*/1, /*max_queued=*/1);

  ASSERT_TRUE(admission.Admit(nullptr, "acme").ok());
  std::atomic<bool> through{false};
  std::thread waiter([&] {
    Status status = admission.Admit(nullptr, "acme");
    EXPECT_TRUE(status.ok()) << status.ToString();
    through.store(true);
    admission.Release("acme");
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(through.load());  // parked behind the tenant cap

  admission.Release("acme");
  waiter.join();
  EXPECT_TRUE(through.load());
  EXPECT_EQ(admission.active(), 0u);
}

// The retry-after hint: absent with admission off, present and bounded
// once a cap exists (the serving front end forwards it in Done frames).
TEST(AdmissionQueueTest, SuggestedRetryHintTracksConfiguration) {
  AdmissionController admission;
  EXPECT_EQ(admission.SuggestedRetryMs(), 0u);  // admission off: no opinion

  admission.SetLimits(/*max_active=*/1, /*max_queued=*/4);
  uint32_t hint = admission.SuggestedRetryMs();
  EXPECT_GE(hint, 10u);
  EXPECT_LE(hint, 1'000u);
}

// Raising the cap mid-wait frees queued statements immediately (SetLimits
// notifies the condvar) — no 5 ms poll lag pile-up, no lost wakeups.
TEST(AdmissionQueueTest, RaisingTheCapFreesWaiters) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/4);

  ASSERT_TRUE(admission.Admit(nullptr).ok());
  std::atomic<int> through{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      Status status = admission.Admit(nullptr);
      EXPECT_TRUE(status.ok()) << status.ToString();
      through.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(through.load(), 0);  // all parked behind the cap of 1

  admission.SetLimits(/*max_active=*/4, /*max_queued=*/4);
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(through.load(), 3);
  for (int i = 0; i < 4; ++i) admission.Release();
}

}  // namespace
}  // namespace dmx
