// SQL engine extensions: singleton (FROM-less) SELECT, aggregates with and
// without GROUP BY, and the prediction-join WHERE filter built on top.

#include <gtest/gtest.h>

#include "core/provider.h"
#include "datagen/warehouse.h"
#include "relational/sql_executor.h"

namespace dmx {
namespace {

class SqlExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE Orders (Id LONG, Customer TEXT, Amount DOUBLE, "
         "Region TEXT)");
    Must(R"(INSERT INTO Orders VALUES
        (1, 'ann', 10, 'north'), (2, 'ann', 20, 'north'),
        (3, 'bob', 5, 'south'), (4, 'cid', 8, 'south'),
        (5, 'cid', 12, 'north'))");
  }

  Rowset Must(const std::string& sql) {
    auto result = rel::ExecuteSql(&db_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  rel::Database db_;
};

TEST_F(SqlExtensionsTest, SingletonSelect) {
  Rowset r = Must("SELECT 1 AS Id, 'Male' AS Gender, 2.5 AS Score");
  ASSERT_EQ(r.num_rows(), 1u);
  ASSERT_EQ(r.num_columns(), 3u);
  EXPECT_EQ(r.schema()->column(1).name, "Gender");
  EXPECT_TRUE(r.at(0, 0).Equals(Value::Long(1)));
  EXPECT_TRUE(r.at(0, 1).Equals(Value::Text("Male")));
  // Expressions evaluate; column refs are (correctly) bind errors.
  Rowset computed = Must("SELECT 2 * 3 + 1 AS X");
  EXPECT_TRUE(computed.at(0, 0).Equals(Value::Long(7)));
  EXPECT_FALSE(rel::ExecuteSql(&db_, "SELECT ghost").ok());
}

TEST_F(SqlExtensionsTest, GlobalAggregates) {
  Rowset r = Must(
      "SELECT COUNT(*) AS N, SUM(Amount) AS S, AVG(Amount) AS A, "
      "MIN(Amount) AS Lo, MAX(Amount) AS Hi FROM Orders");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_TRUE(r.Get(0, "N")->Equals(Value::Long(5)));
  EXPECT_TRUE(r.Get(0, "S")->Equals(Value::Double(55)));
  EXPECT_TRUE(r.Get(0, "A")->Equals(Value::Double(11)));
  EXPECT_TRUE(r.Get(0, "Lo")->Equals(Value::Double(5)));
  EXPECT_TRUE(r.Get(0, "Hi")->Equals(Value::Double(20)));
}

TEST_F(SqlExtensionsTest, GroupByWithOrderAndTop) {
  Rowset r = Must(R"(
      SELECT Region, COUNT(*) AS N, SUM(Amount) AS Total
      FROM Orders GROUP BY Region ORDER BY Total DESC)");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_TRUE(r.at(0, 0).Equals(Value::Text("north")));
  EXPECT_TRUE(r.at(0, 2).Equals(Value::Double(42)));
  EXPECT_TRUE(r.at(1, 2).Equals(Value::Double(13)));

  Rowset top = Must(R"(
      SELECT TOP 1 Customer, COUNT(*) AS N FROM Orders
      GROUP BY Customer ORDER BY N DESC, Customer)");
  ASSERT_EQ(top.num_rows(), 1u);
  EXPECT_TRUE(top.at(0, 0).Equals(Value::Text("ann")));
}

TEST_F(SqlExtensionsTest, AggregatesRespectWhereAndNulls) {
  Must("INSERT INTO Orders (Id, Customer) VALUES (6, 'dee')");  // NULL amount
  Rowset r = Must(
      "SELECT COUNT(*) AS N, COUNT(Amount) AS NA, AVG(Amount) AS A "
      "FROM Orders WHERE Region IS NULL OR Region = 'north'");
  EXPECT_TRUE(r.Get(0, "N")->Equals(Value::Long(4)));
  EXPECT_TRUE(r.Get(0, "NA")->Equals(Value::Long(3)));  // NULL skipped
  EXPECT_TRUE(r.Get(0, "A")->Equals(Value::Double(14)));
  // All-NULL aggregate -> NULL.
  Rowset none = Must("SELECT SUM(Amount) AS S FROM Orders WHERE Id = 6");
  EXPECT_TRUE(none.at(0, 0).is_null());
}

TEST_F(SqlExtensionsTest, AggregateExpressionArithmetic) {
  Rowset r = Must(
      "SELECT SUM(Amount) / COUNT(*) AS MeanByHand, AVG(Amount) AS Mean "
      "FROM Orders");
  EXPECT_TRUE(r.at(0, 0).Equals(r.at(0, 1)));
}

TEST_F(SqlExtensionsTest, AggregateErrorPaths) {
  // Non-grouped column in an aggregate query.
  EXPECT_FALSE(
      rel::ExecuteSql(&db_, "SELECT Customer, COUNT(*) FROM Orders").ok());
  // Unknown function.
  EXPECT_FALSE(
      rel::ExecuteSql(&db_, "SELECT MEDIAN(Amount) FROM Orders").ok());
  // Star with aggregates.
  EXPECT_FALSE(
      rel::ExecuteSql(&db_, "SELECT * FROM Orders GROUP BY Region").ok());
  // Aggregates in WHERE.
  EXPECT_FALSE(
      rel::ExecuteSql(&db_, "SELECT Id FROM Orders WHERE COUNT(*) > 1").ok());
}

class PredictionWhereTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = provider_.Connect();
    datagen::WarehouseConfig config;
    config.num_customers = 300;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
    Must(R"(CREATE MINING MODEL [M] (
              [Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
              [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT)
            USING Naive_Bayes)");
    Must("INSERT INTO [M] SELECT [Customer ID], [Gender], [Age] "
         "FROM Customers");
  }

  Rowset Must(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_TRUE(result.ok()) << command << " -> "
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(PredictionWhereTest, FiltersOnUdfValues) {
  Rowset all = Must(R"(
    SELECT t.[Customer ID], PredictProbability([Age]) AS P FROM [M]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM Customers) AS t)");
  Rowset confident = Must(R"(
    SELECT t.[Customer ID], PredictProbability([Age]) AS P FROM [M]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM Customers) AS t
    WHERE PredictProbability([Age]) > 0.3)");
  EXPECT_LT(confident.num_rows(), all.num_rows());
  EXPECT_GT(confident.num_rows(), 0u);
  for (const Row& row : confident.rows()) {
    EXPECT_GT(row[1].double_value(), 0.3);
  }
  // The filtered set is exactly the subset passing the threshold.
  size_t expected = 0;
  for (const Row& row : all.rows()) {
    if (row[1].double_value() > 0.3) ++expected;
  }
  EXPECT_EQ(confident.num_rows(), expected);
}

TEST_F(PredictionWhereTest, FiltersOnSourceColumnsAndConjunction) {
  Rowset r = Must(R"(
    SELECT t.[Customer ID], t.[Gender] FROM [M]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM Customers) AS t
    WHERE t.[Gender] = 'Male' AND PredictSupport([Age]) >= 1)");
  ASSERT_GT(r.num_rows(), 0u);
  for (const Row& row : r.rows()) {
    EXPECT_EQ(row[1].text_value(), "Male");
  }
}

TEST_F(PredictionWhereTest, TopCountsFilteredRows) {
  Rowset r = Must(R"(
    SELECT TOP 5 t.[Customer ID] FROM [M]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM Customers) AS t
    WHERE t.[Gender] = 'Female')");
  EXPECT_EQ(r.num_rows(), 5u);
}

TEST_F(PredictionWhereTest, SingletonPredictionQuery) {
  // The classic DMX singleton form: predict for one ad-hoc case.
  Rowset r = Must(R"(
    SELECT Predict([Age]) AS A, PredictProbability([Age]) AS P FROM [M]
    NATURAL PREDICTION JOIN (SELECT 'Male' AS [Gender]) AS t)");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_FALSE(r.at(0, 0).is_null());
  EXPECT_GT(r.at(0, 1).double_value(), 0);
}

}  // namespace
}  // namespace dmx
