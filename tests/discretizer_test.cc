// Discretization service: exact behaviour on hand data plus property sweeps
// over (method, bucket count, value distribution).

#include "algorithms/discretizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/random.h"
#include "model/attribute_set.h"

namespace dmx {
namespace {

TEST(DiscretizerTest, EqualRangesOnKnownData) {
  auto bounds = ComputeBucketBounds({0, 10}, DiscretizationMethod::kEqualRanges,
                                    4);
  ASSERT_TRUE(bounds.ok());
  ASSERT_EQ(bounds->size(), 3u);
  EXPECT_DOUBLE_EQ((*bounds)[0], 2.5);
  EXPECT_DOUBLE_EQ((*bounds)[1], 5.0);
  EXPECT_DOUBLE_EQ((*bounds)[2], 7.5);
}

TEST(DiscretizerTest, EqualFrequenciesBalancesCounts) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  auto bounds = ComputeBucketBounds(values,
                                    DiscretizationMethod::kEqualFrequencies, 4);
  ASSERT_TRUE(bounds.ok());
  ASSERT_EQ(bounds->size(), 3u);
  EXPECT_DOUBLE_EQ((*bounds)[0], 25);
  EXPECT_DOUBLE_EQ((*bounds)[1], 50);
  EXPECT_DOUBLE_EQ((*bounds)[2], 75);
}

TEST(DiscretizerTest, ClustersSeparateObviousModes) {
  std::vector<double> values;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) values.push_back(rng.Gaussian(0, 0.5));
  for (int i = 0; i < 200; ++i) values.push_back(rng.Gaussian(100, 0.5));
  auto bounds = ComputeBucketBounds(values, DiscretizationMethod::kClusters, 2);
  ASSERT_TRUE(bounds.ok());
  ASSERT_EQ(bounds->size(), 1u);
  EXPECT_GT((*bounds)[0], 10);
  EXPECT_LT((*bounds)[0], 90);
}

TEST(DiscretizerTest, DegenerateInputs) {
  // Constant column: no usable bounds, a single bucket.
  auto constant = ComputeBucketBounds({5, 5, 5},
                                      DiscretizationMethod::kEqualRanges, 4);
  ASSERT_TRUE(constant.ok());
  EXPECT_TRUE(constant->empty());
  // Empty column.
  auto empty = ComputeBucketBounds({}, DiscretizationMethod::kEqualFrequencies,
                                   3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  // NaNs are filtered.
  auto nans = ComputeBucketBounds({1, std::nan(""), 2},
                                  DiscretizationMethod::kEqualRanges, 2);
  ASSERT_TRUE(nans.ok());
  EXPECT_EQ(nans->size(), 1u);
  // Fewer than 2 buckets is an error.
  EXPECT_FALSE(
      ComputeBucketBounds({1, 2}, DiscretizationMethod::kEqualRanges, 1).ok());
}

TEST(DiscretizerTest, DuplicateHeavyDataCollapsesBounds) {
  // 90% of mass at one value: equal frequencies cannot produce 5 distinct
  // bounds and must deduplicate rather than emit non-increasing ones.
  std::vector<double> values(90, 7.0);
  for (int i = 0; i < 10; ++i) values.push_back(100 + i);
  auto bounds = ComputeBucketBounds(values,
                                    DiscretizationMethod::kEqualFrequencies, 6);
  ASSERT_TRUE(bounds.ok());
  for (size_t i = 1; i < bounds->size(); ++i) {
    EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: bounds are strictly increasing, within [min, max], and no
// more numerous than buckets - 1 — across methods, bucket counts and
// distributions.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<DiscretizationMethod, int, int /*distribution*/>;

class DiscretizerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DiscretizerSweep, BoundsInvariants) {
  auto [method, buckets, distribution] = GetParam();
  Rng rng(77 + buckets + distribution * 13);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    switch (distribution) {
      case 0:
        values.push_back(rng.NextDouble() * 100);
        break;
      case 1:
        values.push_back(rng.Gaussian(50, 10));
        break;
      case 2:  // bimodal
        values.push_back(rng.Chance(0.5) ? rng.Gaussian(10, 2)
                                         : rng.Gaussian(90, 2));
        break;
      default:  // heavy ties
        values.push_back(static_cast<double>(rng.Uniform(5)));
        break;
    }
  }
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  auto bounds = ComputeBucketBounds(values, method, buckets);
  ASSERT_TRUE(bounds.ok());
  EXPECT_LE(bounds->size(), static_cast<size_t>(buckets - 1));
  for (size_t i = 0; i < bounds->size(); ++i) {
    if (i > 0) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
    EXPECT_GE((*bounds)[i], lo);
    EXPECT_LE((*bounds)[i], hi);
  }
  // Attribute::BucketOf must place every value into a valid bucket.
  Attribute attr;
  attr.declared_type = AttributeType::kDiscretized;
  attr.bucket_bounds = *bounds;
  for (double v : values) {
    int bucket = attr.BucketOf(v);
    EXPECT_GE(bucket, 0);
    EXPECT_LE(bucket, static_cast<int>(bounds->size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiscretizerSweep,
    ::testing::Combine(::testing::Values(DiscretizationMethod::kEqualRanges,
                                         DiscretizationMethod::kEqualFrequencies,
                                         DiscretizationMethod::kClusters),
                       ::testing::Values(2, 3, 5, 10),
                       ::testing::Values(0, 1, 2, 3)));

TEST(DiscretizerTest, MethodNamesRoundTrip) {
  for (DiscretizationMethod m : {DiscretizationMethod::kEqualRanges,
                                 DiscretizationMethod::kEqualFrequencies,
                                 DiscretizationMethod::kClusters}) {
    auto parsed = DiscretizationMethodFromString(DiscretizationMethodToString(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(DiscretizationMethodFromString("MAGIC").ok());
}

}  // namespace
}  // namespace dmx
