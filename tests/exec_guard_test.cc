// Execution guards: deadlines, cooperative cancellation and row budgets must
// trip at checkpoints inside every executor and every mining service's
// training/prediction hot loops, unwind with the right status code and
// context frames, and leave the catalogs exactly as they were. Admission
// control is unit-tested directly for its accept/queue/reject semantics.

#include "common/exec_guard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/admission.h"
#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

// ---------------------------------------------------------------------------
// ExecGuard unit behaviour
// ---------------------------------------------------------------------------

TEST(ExecGuardTest, UnarmedGuardNeverTrips) {
  ExecGuard guard{ExecLimits{}};
  EXPECT_FALSE(guard.armed());
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.ChargeOutputRows(1 << 20).ok());
  EXPECT_TRUE(guard.ChargeWorkingSet(1 << 20).ok());
}

TEST(ExecGuardTest, CancelTokenTripsCheck) {
  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.armed());
  EXPECT_TRUE(guard.Check().ok());
  limits.cancel->Cancel();
  Status s = guard.Check();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
}

TEST(ExecGuardTest, DeadlineTripsAfterExpiry) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status s = guard.Check();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST(ExecGuardTest, OutputRowBudgetTrips) {
  ExecLimits limits;
  limits.max_output_rows = 3;
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.ChargeOutputRows(3).ok());
  Status s = guard.ChargeOutputRows(1);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

TEST(ExecGuardTest, WorkingSetBudgetTrips) {
  ExecLimits limits;
  limits.max_working_set_rows = 10;
  ExecGuard guard(limits);
  EXPECT_TRUE(guard.ChargeWorkingSet(10).ok());
  Status s = guard.ChargeWorkingSet(1);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

TEST(ExecGuardTest, FreeHelpersAreNoOpsWithoutScope) {
  ASSERT_EQ(CurrentExecGuard(), nullptr);
  EXPECT_TRUE(GuardCheck().ok());
  EXPECT_TRUE(GuardChargeOutputRows(1 << 30).ok());
  EXPECT_TRUE(GuardChargeWorkingSet(1 << 30).ok());
}

TEST(ExecGuardTest, ScopeInstallsAndRestores) {
  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  ExecGuard outer(limits);
  {
    ExecGuardScope outer_scope(&outer);
    EXPECT_EQ(CurrentExecGuard(), &outer);
    EXPECT_TRUE(GuardCheck().IsCancelled());
    ExecGuard inner{ExecLimits{}};
    {
      ExecGuardScope inner_scope(&inner);
      EXPECT_EQ(CurrentExecGuard(), &inner);
      EXPECT_TRUE(GuardCheck().ok());  // innermost wins
    }
    EXPECT_EQ(CurrentExecGuard(), &outer);
  }
  EXPECT_EQ(CurrentExecGuard(), nullptr);
}

// ---------------------------------------------------------------------------
// AdmissionController unit behaviour
// ---------------------------------------------------------------------------

TEST(AdmissionTest, DisabledByDefault) {
  AdmissionController admission;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.Admit(nullptr).ok());
  }
}

TEST(AdmissionTest, RejectsBeyondQueue) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/0);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  EXPECT_EQ(admission.active(), 1u);
  // Slot taken, queue size 0: fail fast.
  Status s = admission.Admit(nullptr);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  admission.Release();
  EXPECT_EQ(admission.active(), 0u);
  EXPECT_TRUE(admission.Admit(nullptr).ok());
  admission.Release();
}

TEST(AdmissionTest, QueuedStatementRunsWhenSlotFrees) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/1);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  Status queued = Status::OK();
  std::thread waiter([&] {
    queued = admission.Admit(nullptr);
    if (queued.ok()) admission.Release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  admission.Release();
  waiter.join();
  EXPECT_TRUE(queued.ok()) << queued.ToString();
  EXPECT_EQ(admission.active(), 0u);
}

TEST(AdmissionTest, QueuedStatementHonoursCancellation) {
  AdmissionController admission;
  admission.SetLimits(/*max_active=*/1, /*max_queued=*/1);
  ASSERT_TRUE(admission.Admit(nullptr).ok());
  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  ExecGuard guard(limits);
  // Queue has room, but the guard is already cancelled: the wait must abort
  // with kCancelled instead of blocking until the slot frees.
  Status s = admission.Admit(&guard);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  admission.Release();
}

TEST(AdmissionTest, ProviderRejectsWhenSaturated) {
  Provider provider;
  provider.SetAdmissionLimits(/*max_active=*/1, /*max_queued=*/0);
  datagen::WarehouseConfig config;
  config.num_customers = 50;
  ASSERT_TRUE(datagen::PopulateWarehouse(provider.database(), config).ok());

  // Hold the single slot with a statement parked on an uncancelled token by
  // running it from another thread against a cold catalog lock: simplest is
  // to saturate via a slow SELECT in a second thread, but a deterministic
  // variant drives the controller through the provider by nesting — so here
  // we assert the plumbing end-to-end with a burst of concurrent SELECTs and
  // require at least one rejection OR all successes with cap 1 (they may
  // serialize). With max_queued=0 and 8 simultaneous statements, at least
  // one rejection is overwhelmingly likely; tolerate the lucky case.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> rejected{0};
  std::atomic<int> succeeded{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto conn = provider.Connect();
      auto result = conn->Execute(
          "SELECT [Customer ID], [Age] FROM Customers ORDER BY [Age]");
      if (result.ok()) {
        succeeded.fetch_add(1);
      } else if (result.status().IsResourceExhausted()) {
        rejected.fetch_add(1);
      } else {
        ADD_FAILURE() << result.status().ToString();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rejected.load() + succeeded.load(), kThreads);
  EXPECT_GE(succeeded.load(), 1);
}

// ---------------------------------------------------------------------------
// Guard checkpoints inside every registered mining service
// ---------------------------------------------------------------------------

struct ServiceCase {
  const char* name;     ///< registered service name the model trains USING
  const char* create;   ///< CREATE MINING MODEL [P] ... USING <name>
  const char* insert;   ///< training statement
  const char* query;    ///< prediction statement
};

constexpr const char* kInsertFlat =
    "INSERT INTO [P] SELECT [Customer ID], [Gender], [Age], [Income], "
    "[Customer Loyalty] FROM Customers";

constexpr const char* kInsertBasket = R"(
  INSERT INTO [P]
  SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
  APPEND ({SELECT [CustID], [Product Name] FROM Sales ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";

constexpr const char* kInsertSequence = R"(
  INSERT INTO [P]
  SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
  APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
           ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";

constexpr const char* kQueryAge = R"(
  SELECT t.[Customer ID], Predict([Age]) AS P0
  FROM [P] NATURAL PREDICTION JOIN
    (SELECT [Customer ID], [Gender], [Income], [Customer Loyalty]
     FROM Customers) AS t)";

constexpr const char* kQueryLoyalty = R"(
  SELECT t.[Customer ID], Predict([Customer Loyalty]) AS P0
  FROM [P] NATURAL PREDICTION JOIN
    (SELECT [Customer ID], [Age], [Income] FROM Customers) AS t)";

constexpr const char* kQueryBasket = R"(
  SELECT FLATTENED t.[Customer ID], Predict([Product Purchases], 3) AS R
  FROM [P] NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
     APPEND ({SELECT [CustID], [Product Name] FROM Sales ORDER BY [CustID]}
             RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

constexpr const char* kQuerySequence = R"(
  SELECT FLATTENED t.[Customer ID], Predict([Product Purchases], 3) AS R
  FROM [P] NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
     APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
              ORDER BY [CustID]}
             RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

// All seven registered service names (six services + the paper's
// Decision_Trees_101 alias) — enforced against the registry below.
constexpr ServiceCase kServices[] = {
    {"Decision_Trees",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Gender] TEXT DISCRETE,
          [Income] DOUBLE CONTINUOUS,
          [Customer Loyalty] LONG DISCRETE,
          [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT
        ) USING Decision_Trees(MINIMUM_SUPPORT = 5.0))",
     kInsertFlat, kQueryAge},
    {"Decision_Trees_101",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Gender] TEXT DISCRETE,
          [Income] DOUBLE CONTINUOUS,
          [Customer Loyalty] LONG DISCRETE,
          [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT
        ) USING Decision_Trees_101(MINIMUM_SUPPORT = 5.0))",
     kInsertFlat, kQueryAge},
    {"Naive_Bayes",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Gender] TEXT DISCRETE,
          [Income] DOUBLE DISCRETIZED(EQUAL_RANGES, 5),
          [Customer Loyalty] LONG DISCRETE,
          [Age] DOUBLE DISCRETIZED(EQUAL_RANGES, 5) PREDICT
        ) USING Naive_Bayes)",
     kInsertFlat, kQueryAge},
    {"Clustering",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Age] DOUBLE CONTINUOUS,
          [Income] DOUBLE CONTINUOUS,
          [Customer Loyalty] LONG DISCRETE PREDICT
        ) USING Clustering(CLUSTER_COUNT = 3, SEED = 11))",
     kInsertFlat, kQueryLoyalty},
    {"Association_Rules",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT
        ) USING Association_Rules(MINIMUM_SUPPORT = 0.05,
                                  MINIMUM_PROBABILITY = 0.3))",
     kInsertBasket, kQueryBasket},
    {"Linear_Regression",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Gender] TEXT DISCRETE,
          [Customer Loyalty] LONG ORDERED,
          [Income] DOUBLE CONTINUOUS,
          [Age] DOUBLE CONTINUOUS PREDICT
        ) USING Linear_Regression)",
     kInsertFlat, kQueryAge},
    {"Sequence_Analysis",
     R"(CREATE MINING MODEL [P] (
          [Customer ID] LONG KEY,
          [Product Purchases] TABLE(
            [Product Name] TEXT KEY,
            [Purchase Time] DOUBLE SEQUENCE_TIME) PREDICT
        ) USING Sequence_Analysis)",
     kInsertSequence, kQuerySequence},
};

// The table must not silently fall behind the registry: every registered
// service (and the alias) appears exactly once.
TEST(ExecGuardServiceTable, CoversEveryRegisteredService) {
  Provider provider;
  std::vector<std::string> names = provider.services()->ListServices();
  names.push_back("Decision_Trees_101");
  for (const std::string& name : names) {
    int covered = 0;
    for (const ServiceCase& sc : kServices) {
      if (name == sc.name) ++covered;
    }
    EXPECT_EQ(covered, 1) << "service '" << name
                          << "' missing from kServices";
  }
}

class GuardedServiceTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    datagen::WarehouseConfig config;
    config.num_customers = 120;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
    conn_ = provider_.Connect();
  }

  void Arm(std::shared_ptr<CancelToken> token) {
    ExecLimits limits;
    limits.cancel = std::move(token);
    conn_->set_limits(limits);
  }

  void Disarm() { conn_->set_limits(ExecLimits{}); }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

// Cancel mid-training: a pre-fired token trips at the first checkpoint
// inside the training pipeline. The statement must unwind with kCancelled,
// name the phase in its context, and leave the model untrained — and the
// same statement must succeed once the token is disarmed.
TEST_P(GuardedServiceTest, CancelMidTrainingUnwindsCleanly) {
  const ServiceCase& sc = kServices[GetParam()];
  ASSERT_TRUE(conn_->Execute(sc.create).ok());

  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  Arm(token);
  auto result = conn_->Execute(sc.insert);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();

  // Clean unwind: the model survives in the catalog, still untrained.
  auto model = provider_.models()->GetModel("P");
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE((*model)->is_trained());

  // The cancelled statement left nothing behind: training now succeeds and
  // predictions flow.
  Disarm();
  auto retrain = conn_->Execute(sc.insert);
  ASSERT_TRUE(retrain.ok()) << sc.name << ": " << retrain.status().ToString();
  EXPECT_TRUE((*provider_.models()->GetModel("P"))->is_trained());
  auto predict = conn_->Execute(sc.query);
  ASSERT_TRUE(predict.ok()) << sc.name << ": " << predict.status().ToString();
  EXPECT_GT(predict->num_rows(), 0u);
}

// Cancel mid-prediction: train first, then fire the token. The prediction
// must unwind with kCancelled without touching the trained model.
TEST_P(GuardedServiceTest, CancelMidPredictionUnwindsCleanly) {
  const ServiceCase& sc = kServices[GetParam()];
  ASSERT_TRUE(conn_->Execute(sc.create).ok());
  auto trained = conn_->Execute(sc.insert);
  ASSERT_TRUE(trained.ok()) << sc.name << ": " << trained.status().ToString();

  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  Arm(token);
  auto result = conn_->Execute(sc.query);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();

  // The model is untouched: disarm and the same query runs.
  Disarm();
  EXPECT_TRUE((*provider_.models()->GetModel("P"))->is_trained());
  auto predict = conn_->Execute(sc.query);
  ASSERT_TRUE(predict.ok()) << sc.name << ": " << predict.status().ToString();
  EXPECT_GT(predict->num_rows(), 0u);
}

// Refresh training on an already-trained model: a cancelled refresh must
// roll the model back to its previous trained state, not leave a torn one.
TEST_P(GuardedServiceTest, CancelMidRefreshRestoresPreviousModel) {
  const ServiceCase& sc = kServices[GetParam()];
  ASSERT_TRUE(conn_->Execute(sc.create).ok());
  ASSERT_TRUE(conn_->Execute(sc.insert).ok());
  auto before = conn_->Execute(sc.query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  Arm(token);
  auto refresh = conn_->Execute(sc.insert);
  ASSERT_FALSE(refresh.ok());
  EXPECT_TRUE(refresh.status().IsCancelled()) << refresh.status().ToString();

  Disarm();
  auto model = provider_.models()->GetModel("P");
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->is_trained());
  auto after = conn_->Execute(sc.query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(before->num_rows(), after->num_rows());
  for (size_t r = 0; r < before->num_rows(); ++r) {
    for (size_t c = 0; c < before->num_columns(); ++c) {
      EXPECT_TRUE(before->at(r, c).Equals(after->at(r, c)))
          << sc.name << " row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllServices, GuardedServiceTest,
                         ::testing::Range(0, 7));

// ---------------------------------------------------------------------------
// Statement-level guard semantics through Connection::Execute
// ---------------------------------------------------------------------------

class GuardedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::WarehouseConfig config;
    config.num_customers = 100;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
    conn_ = provider_.Connect();
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(GuardedStatementTest, OutputRowBudgetTripsSelect) {
  ExecLimits limits;
  limits.max_output_rows = 10;
  conn_->set_limits(limits);
  auto result = conn_->Execute("SELECT [Customer ID] FROM Customers");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
}

TEST_F(GuardedStatementTest, WorkingSetBudgetTripsJoin) {
  ExecLimits limits;
  limits.max_working_set_rows = 20;
  conn_->set_limits(limits);
  // The Sales self-join materializes far more than 20 joined rows.
  auto result = conn_->Execute(
      "SELECT s.[Product Name] FROM Sales s INNER JOIN Sales t "
      "ON s.[Product Name] = t.[Product Name]");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
}

TEST_F(GuardedStatementTest, BudgetsWithHeadroomDoNotTrip) {
  ExecLimits limits;
  limits.max_output_rows = 1000000;
  limits.max_working_set_rows = 10000000;
  limits.deadline_ms = 60000;
  conn_->set_limits(limits);
  auto result = conn_->Execute("SELECT [Customer ID] FROM Customers");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 100u);
}

TEST_F(GuardedStatementTest, CancelledTrainingNamesThePhase) {
  ASSERT_TRUE(conn_->Execute(
                       "CREATE MINING MODEL [P] ([Customer ID] LONG KEY, "
                       "[Gender] TEXT DISCRETE, [Age] DOUBLE DISCRETIZED "
                       "PREDICT) USING Naive_Bayes")
                  .ok());
  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  conn_->set_limits(limits);
  auto result = conn_->Execute(
      "INSERT INTO [P] SELECT [Customer ID], [Gender], [Age] FROM Customers");
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  bool names_training = false;
  for (const std::string& frame : result.status().context()) {
    if (frame.find("training model 'P'") != std::string::npos) {
      names_training = true;
    }
  }
  EXPECT_TRUE(names_training) << result.status().ToString();
}

TEST_F(GuardedStatementTest, CancelledPredictionNamesThePhase) {
  ASSERT_TRUE(conn_->Execute(
                       "CREATE MINING MODEL [P] ([Customer ID] LONG KEY, "
                       "[Gender] TEXT DISCRETE, [Age] DOUBLE DISCRETIZED "
                       "PREDICT) USING Naive_Bayes")
                  .ok());
  ASSERT_TRUE(conn_->Execute("INSERT INTO [P] SELECT [Customer ID], "
                             "[Gender], [Age] FROM Customers")
                  .ok());
  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  conn_->set_limits(limits);
  auto result = conn_->Execute(
      "SELECT Predict([Age]) FROM [P] NATURAL PREDICTION JOIN "
      "(SELECT [Customer ID], [Gender] FROM Customers) AS t");
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  bool names_prediction = false;
  for (const std::string& frame : result.status().context()) {
    if (frame.find("predicting with model 'P'") != std::string::npos) {
      names_prediction = true;
    }
  }
  EXPECT_TRUE(names_prediction) << result.status().ToString();
}

TEST_F(GuardedStatementTest, DeadlineTripsLongStatement) {
  ExecLimits limits;
  limits.deadline_ms = 30;
  conn_->set_limits(limits);
  // An unindexed self-join on a constant-heavy predicate: quadratic in the
  // Sales table, far beyond 30 ms of work, checkpointed per joined row.
  auto start = std::chrono::steady_clock::now();
  auto result = conn_->Execute(
      "SELECT COUNT(*) AS N FROM Sales s INNER JOIN Sales t "
      "ON s.[CustID] < t.[CustID]");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // Well-placed checkpoints stop the statement near its deadline, not after
  // finishing the whole join. Allow generous slack for loaded CI machines.
  EXPECT_LT(elapsed.count(), 2000) << "statement overran its deadline by "
                                   << (elapsed.count() - 30) << " ms";
}

TEST_F(GuardedStatementTest, CancelledStatementLeavesTablesUnchanged) {
  ASSERT_TRUE(conn_->Execute("CREATE TABLE T (A LONG)").ok());
  ASSERT_TRUE(conn_->Execute("INSERT INTO T VALUES (1)").ok());
  ExecLimits limits;
  limits.cancel = std::make_shared<CancelToken>();
  limits.cancel->Cancel();
  conn_->set_limits(limits);
  auto result = conn_->Execute("DELETE FROM T");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  conn_->set_limits(ExecLimits{});
  auto rows = conn_->Execute("SELECT * FROM T");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->num_rows(), 1u);
}

}  // namespace
}  // namespace dmx
