// MiningModel lifecycle: population strategies (incremental streaming vs
// cache-and-retrain), refresh, reset, state guards and catalog behaviour.

#include "core/mining_model.h"

#include <gtest/gtest.h>

#include "algorithms/builtin_services.h"
#include "core/catalog.h"
#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx {
namespace {

class MiningModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    conn_ = provider_.Connect();
    datagen::WarehouseConfig config;
    config.num_customers = 200;
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), config).ok());
    datagen::WarehouseConfig more;
    more.num_customers = 100;
    more.seed = 9;
    more.first_customer_id = 100000;
    more.customers_table = "MoreCustomers";
    more.sales_table = "MoreSales";
    more.cars_table = "MoreCars";
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_.database(), more).ok());
  }

  Rowset Must(const std::string& command) {
    auto result = conn_->Execute(command);
    EXPECT_TRUE(result.ok()) << command << "\n-> "
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset();
  }

  MiningModel* Model(const std::string& name) {
    auto model = provider_.models()->GetModel(name);
    EXPECT_TRUE(model.ok());
    return model.ok() ? *model : nullptr;
  }

  void CreateModel(const std::string& service) {
    Must("CREATE MINING MODEL [L] ([Customer ID] LONG KEY, "
         "[Gender] TEXT DISCRETE, [Age] DOUBLE DISCRETIZED, "
         "[Customer Loyalty] LONG DISCRETE PREDICT) USING " + service);
  }

  void Insert(const std::string& table) {
    Must("INSERT INTO [L] SELECT [Customer ID], [Gender], [Age], "
         "[Customer Loyalty] FROM " + table);
  }

  Provider provider_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(MiningModelTest, IncrementalServiceKeepsNoCache) {
  CreateModel("Naive_Bayes");
  Insert("Customers");
  MiningModel* model = Model("L");
  EXPECT_TRUE(model->is_trained());
  EXPECT_DOUBLE_EQ(model->case_count(), 200);
  EXPECT_EQ(model->cached_cases(), 0u);  // streamed, not cached
  Insert("MoreCustomers");
  EXPECT_DOUBLE_EQ(model->case_count(), 300);
  EXPECT_EQ(model->cached_cases(), 0u);
}

TEST_F(MiningModelTest, BatchServiceCachesAndRetrains) {
  CreateModel("Decision_Trees");
  Insert("Customers");
  MiningModel* model = Model("L");
  EXPECT_TRUE(model->is_trained());
  EXPECT_EQ(model->cached_cases(), 200u);
  Insert("MoreCustomers");
  EXPECT_EQ(model->cached_cases(), 300u);  // union retrain
  EXPECT_DOUBLE_EQ(model->case_count(), 300);
}

TEST_F(MiningModelTest, RefreshChangesPredictions) {
  CreateModel("Naive_Bayes");
  Insert("Customers");
  std::string query = R"(
    SELECT TOP 1 PredictProbability([Customer Loyalty]) AS P FROM [L]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender], [Age] FROM Customers) AS t)";
  double before = Must(query).at(0, 0).double_value();
  Insert("MoreCustomers");
  double after = Must(query).at(0, 0).double_value();
  EXPECT_NE(before, after);  // counts moved
}

TEST_F(MiningModelTest, ResetReturnsToUntrained) {
  CreateModel("Decision_Trees");
  Insert("Customers");
  MiningModel* model = Model("L");
  ASSERT_TRUE(model->Reset().ok());
  EXPECT_FALSE(model->is_trained());
  EXPECT_EQ(model->cached_cases(), 0u);
  EXPECT_EQ(model->attributes().attributes[0].cardinality(), 0);
  // And it can be repopulated from scratch.
  Insert("MoreCustomers");
  EXPECT_TRUE(model->is_trained());
  EXPECT_DOUBLE_EQ(model->case_count(), 100);
}

TEST_F(MiningModelTest, DiscretizationBoundsPinnedAtFirstTraining) {
  CreateModel("Naive_Bayes");
  Insert("Customers");
  MiningModel* model = Model("L");
  int age = model->attributes().FindAttribute("Age");
  ASSERT_GE(age, 0);
  std::vector<double> bounds = model->attributes().attributes[age].bucket_bounds;
  ASSERT_FALSE(bounds.empty());
  Insert("MoreCustomers");
  EXPECT_EQ(model->attributes().attributes[age].bucket_bounds, bounds);
}

TEST_F(MiningModelTest, PredictBeforeTrainingFails) {
  CreateModel("Naive_Bayes");
  MiningModel* model = Model("L");
  DataCase c;
  c.values.assign(model->attributes().attributes.size(), kMissing);
  c.groups.resize(model->attributes().groups.size());
  auto p = model->Predict(c, {});
  EXPECT_TRUE(p.status().IsInvalidState());
  EXPECT_TRUE(model->BuildContent().status().IsInvalidState());
}

TEST_F(MiningModelTest, InsertZeroCasesFailsForBatchServices) {
  CreateModel("Decision_Trees");
  auto result = conn_->Execute(
      "INSERT INTO [L] SELECT [Customer ID], [Gender], [Age], "
      "[Customer Loyalty] FROM Customers WHERE [Customer ID] < 0");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidState());
}

TEST_F(MiningModelTest, CatalogLifecycle) {
  ModelCatalog catalog;
  ServiceRegistry registry;
  ASSERT_TRUE(RegisterBuiltinServices(&registry).ok());
  ModelDefinition def;
  def.model_name = "X";
  def.service_name = "Naive_Bayes";
  ModelColumn key;
  key.name = "K";
  key.role = ContentRole::kKey;
  key.data_type = DataType::kLong;
  ModelColumn target;
  target.name = "T";
  target.data_type = DataType::kText;
  target.usage = PredictUsage::kPredict;
  def.columns = {key, target};
  ASSERT_TRUE(catalog.CreateModel(def, registry).ok());
  EXPECT_TRUE(catalog.CreateModel(def, registry).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.HasModel("x"));  // case-insensitive
  EXPECT_EQ(catalog.ListModels().size(), 1u);
  ASSERT_TRUE(catalog.DropModel("X").ok());
  EXPECT_TRUE(catalog.DropModel("X").IsNotFound());
  // Unknown service.
  def.service_name = "Quantum_Oracle";
  EXPECT_TRUE(catalog.CreateModel(def, registry).status().IsNotFound());
  // Unknown parameter.
  def.service_name = "Naive_Bayes";
  def.parameters = {{"BOGUS", Value::Long(1)}};
  EXPECT_FALSE(catalog.CreateModel(def, registry).ok());
}

}  // namespace
}  // namespace dmx
