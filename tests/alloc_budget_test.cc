// Allocation-budget regression gates (DESIGN.md §14): hard ceilings on
// allocs/row for the guard-checkpointed hot operations, measured after the
// PR-9 hot-path fixes and locked in with slack. A change that re-introduces
// per-row allocation — a hoisted temporary moved back into the loop, a
// string-keyed lookup per row, a dropped reserve — fails these tests in the
// hotpath CI job instead of waiting for a reviewer to spot it.
//
// Methodology (mirrors bench/bench_hotpath.cc): run the operation twice —
// the first run warms caches, lazy statics and the model catalogs — then
// measure the second with an AllocStats::Region and divide by the rows
// processed. Ceilings are the measured value times ~1.5 (libstdc++ growth
// policies and SSO thresholds vary across versions) rounded up. They are
// per-row asymptotes: fixed per-statement costs (parse, bind, schema
// construction) are amortized over the row count, so keep kCustomers large
// enough that they stay in the noise.
//
// The whole suite skips unless the binary was built with
// -DDMX_ALLOC_STATS=ON (the hotpath CI job; build-alloc locally).

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "common/alloc_stats.h"
#include "core/provider.h"
#include "datagen/warehouse.h"
#include "gtest/gtest.h"
#include "shape/shape_executor.h"
#include "shape/shape_parser.h"

namespace dmx {
namespace {

constexpr int kCustomers = 200;
constexpr int kTestCustomers = 100;

class AllocBudgetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    provider_ = new Provider();
    datagen::WarehouseConfig train;
    train.num_customers = kCustomers;
    train.seed = 42;
    ASSERT_TRUE(
        datagen::PopulateWarehouse(provider_->database(), train).ok());
    datagen::WarehouseConfig test;
    test.num_customers = kTestCustomers;
    test.seed = 43;
    test.first_customer_id = 10000000;
    test.customers_table = "TestCustomers";
    test.sales_table = "TestSales";
    test.cars_table = "TestCars";
    ASSERT_TRUE(datagen::PopulateWarehouse(provider_->database(), test).ok());
  }

  static void TearDownTestSuite() {
    delete provider_;
    provider_ = nullptr;
  }

  void SetUp() override {
    if (!AllocStats::Enabled()) {
      GTEST_SKIP() << "allocation budgets need -DDMX_ALLOC_STATS=ON";
    }
  }

  static Rowset Exec(Connection* conn, const std::string& command) {
    auto result = conn->Execute(command);
    EXPECT_TRUE(result.ok()) << command << "\n"
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : Rowset(nullptr);
  }

  /// The paper's [Age Prediction] model DDL over `service`.
  static std::string ModelDdl(const std::string& name,
                              const std::string& service) {
    return "CREATE MINING MODEL [" + name + "] (\n"
           "  [Customer ID] LONG KEY,\n"
           "  [Gender] TEXT DISCRETE,\n"
           "  [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,\n"
           "  [Product Purchases] TABLE(\n"
           "    [Product Name] TEXT KEY,\n"
           "    [Product Type] TEXT DISCRETE RELATED TO [Product Name]))\n"
           "USING " + service;
  }

  static std::string InsertDml(const std::string& name) {
    return "INSERT INTO [" + name + "] (\n"
           "  [Customer ID], [Gender], [Age],\n"
           "  [Product Purchases]([Product Name], [Product Type]))\n"
           "SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers"
           " ORDER BY [Customer ID]}\n"
           "APPEND ({SELECT [CustID], [Product Name], [Product Type]"
           " FROM Sales ORDER BY [CustID]}\n"
           "  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]";
  }

  static std::string PredictDmx(const std::string& name) {
    return "SELECT t.[Customer ID], Predict([Age]) AS [P] FROM [" + name +
           "]\nNATURAL PREDICTION JOIN\n"
           "  (SHAPE {SELECT [Customer ID], [Gender] FROM TestCustomers"
           " ORDER BY [Customer ID]}\n"
           "   APPEND ({SELECT [CustID], [Product Name], [Product Type]"
           " FROM TestSales ORDER BY [CustID]}\n"
           "     RELATE [Customer ID] TO [CustID]) AS [Product Purchases])"
           " AS t";
  }

  /// Trains the Age model under `service` once per suite run (idempotent:
  /// re-uses an already-created model).
  static void EnsureModel(Connection* conn, const std::string& name,
                          const std::string& service) {
    auto existing = provider_->models()->GetModel(name);
    if (existing.ok()) return;
    Exec(conn, ModelDdl(name, service));
    Exec(conn, InsertDml(name));
  }

  /// allocs/row of `fn` processing `rows` rows: one warm-up run, then one
  /// measured run on this thread. Always logs the measurement so ceiling
  /// updates can be read off a passing run.
  template <typename Fn>
  static double MeasureAllocsPerRow(const char* label, double rows,
                                    const Fn& fn) {
    fn();  // warm-up: lazy statics, catalog growth, first-touch caches
    AllocStats::Region r;
    fn();
    AllocCounts d = r.Delta();
    double per_row = static_cast<double>(d.allocs) / rows;
    std::cout << "[ measured ] " << label << ": " << per_row
              << " allocs/row (" << static_cast<double>(d.bytes) / rows
              << " bytes/row)\n";
    return per_row;
  }

  static Provider* provider_;
};

Provider* AllocBudgetTest::provider_ = nullptr;

// --- ceilings: measured post-fix allocs/row * ~1.5 slack, rounded up ----

// SELECT + numeric WHERE over Customers (every row scanned, ~half kept).
// Measured 0.49 after the selection-vector scan (was 1.42 pre-fix).
constexpr double kFilterScanCeiling = 1.0;

// ShapedCaseReader: child index build + one Next() per case. Measured 21.3.
constexpr double kShapeCeiling = 32.0;

// INSERT INTO (SHAPE ingest + statistics + train), per training case.
// Measured 26.7 after the BindCaseInto reuse path (was 37.1 pre-fix).
constexpr double kInsertCeiling = 40.0;

// NATURAL PREDICTION JOIN scoring, per test case, per service. Measured
// 33.7 / 48.7 / 31.7 / 31.9 after the per-statement binding cache.
constexpr double kPredictNaiveBayesCeiling = 51.0;
constexpr double kPredictClusteringCeiling = 73.0;
constexpr double kPredictDecisionTreesCeiling = 48.0;
constexpr double kPredictLinearRegressionCeiling = 48.0;

TEST_F(AllocBudgetTest, RelationalFilterScan) {
  auto conn = provider_->Connect();
  double per_row = MeasureAllocsPerRow("FilterScan", kCustomers, [&] {
    Rowset out = Exec(conn.get(),
                      "SELECT [Customer ID], [Age] FROM Customers"
                      " WHERE [Age] > 40");
    ASSERT_GT(out.rows().size(), 0u);
  });
  EXPECT_LE(per_row, kFilterScanCeiling);
}

TEST_F(AllocBudgetTest, ShapeChildIndexing) {
  auto stmt = shape::ParseShape(
      "SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers"
      " ORDER BY [Customer ID]}\n"
      "APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales"
      " ORDER BY [CustID]}\n"
      "  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  double per_row = MeasureAllocsPerRow("Shape", kCustomers, [&] {
    auto reader = shape::ShapedCaseReader::Create(*provider_->database(),
                                                  *stmt);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    Row row;
    size_t cases = 0;
    while (true) {
      auto more = (*reader)->Next(&row);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      ++cases;
    }
    ASSERT_EQ(cases, static_cast<size_t>(kCustomers));
  });
  EXPECT_LE(per_row, kShapeCeiling);
}

TEST_F(AllocBudgetTest, InsertCases) {
  auto conn = provider_->Connect();
  int round = 0;
  double per_row = MeasureAllocsPerRow("InsertCases", kCustomers, [&] {
    const std::string name = "Budget Insert " + std::to_string(round++);
    Exec(conn.get(), ModelDdl(name, "Naive_Bayes"));
    Exec(conn.get(), InsertDml(name));
  });
  EXPECT_LE(per_row, kInsertCeiling);
}

TEST_F(AllocBudgetTest, PredictionJoinNaiveBayes) {
  auto conn = provider_->Connect();
  EnsureModel(conn.get(), "Budget NB", "Naive_Bayes");
  double per_row = MeasureAllocsPerRow("PredictNB", kTestCustomers, [&] {
    Rowset out = Exec(conn.get(), PredictDmx("Budget NB"));
    ASSERT_EQ(out.rows().size(), static_cast<size_t>(kTestCustomers));
  });
  EXPECT_LE(per_row, kPredictNaiveBayesCeiling);
}

TEST_F(AllocBudgetTest, PredictionJoinClustering) {
  auto conn = provider_->Connect();
  EnsureModel(conn.get(), "Budget Clu", "Clustering");
  double per_row = MeasureAllocsPerRow("PredictClu", kTestCustomers, [&] {
    Rowset out = Exec(conn.get(), PredictDmx("Budget Clu"));
    ASSERT_EQ(out.rows().size(), static_cast<size_t>(kTestCustomers));
  });
  EXPECT_LE(per_row, kPredictClusteringCeiling);
}

TEST_F(AllocBudgetTest, PredictionJoinDecisionTrees) {
  auto conn = provider_->Connect();
  EnsureModel(conn.get(), "Budget DT", "Decision_Trees");
  double per_row = MeasureAllocsPerRow("PredictDT", kTestCustomers, [&] {
    Rowset out = Exec(conn.get(), PredictDmx("Budget DT"));
    ASSERT_EQ(out.rows().size(), static_cast<size_t>(kTestCustomers));
  });
  EXPECT_LE(per_row, kPredictDecisionTreesCeiling);
}

TEST_F(AllocBudgetTest, PredictionJoinLinearRegression) {
  auto conn = provider_->Connect();
  // LR predicts a continuous target: Age stays un-discretized and the model
  // regresses on [Customer Loyalty], which the join source carries through.
  if (!provider_->models()->GetModel("Budget LR").ok()) {
    Exec(conn.get(),
         "CREATE MINING MODEL [Budget LR] (\n"
         "  [Customer ID] LONG KEY,\n"
         "  [Gender] TEXT DISCRETE,\n"
         "  [Customer Loyalty] LONG ORDERED,\n"
         "  [Age] DOUBLE CONTINUOUS PREDICT,\n"
         "  [Product Purchases] TABLE(\n"
         "    [Product Name] TEXT KEY,\n"
         "    [Product Type] TEXT DISCRETE RELATED TO [Product Name]))\n"
         "USING Linear_Regression");
    Exec(conn.get(),
         "INSERT INTO [Budget LR] (\n"
         "  [Customer ID], [Gender], [Customer Loyalty], [Age],\n"
         "  [Product Purchases]([Product Name], [Product Type]))\n"
         "SHAPE {SELECT [Customer ID], [Gender], [Customer Loyalty], [Age]"
         " FROM Customers ORDER BY [Customer ID]}\n"
         "APPEND ({SELECT [CustID], [Product Name], [Product Type]"
         " FROM Sales ORDER BY [CustID]}\n"
         "  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]");
  }
  const std::string query =
      "SELECT t.[Customer ID], Predict([Age]) AS [P] FROM [Budget LR]\n"
      "NATURAL PREDICTION JOIN\n"
      "  (SHAPE {SELECT [Customer ID], [Gender], [Customer Loyalty]"
      " FROM TestCustomers ORDER BY [Customer ID]}\n"
      "   APPEND ({SELECT [CustID], [Product Name], [Product Type]"
      " FROM TestSales ORDER BY [CustID]}\n"
      "     RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t";
  double per_row = MeasureAllocsPerRow("PredictLR", kTestCustomers, [&] {
    Rowset out = Exec(conn.get(), query);
    ASSERT_EQ(out.rows().size(), static_cast<size_t>(kTestCustomers));
  });
  EXPECT_LE(per_row, kPredictLinearRegressionCeiling);
}

}  // namespace
}  // namespace dmx
