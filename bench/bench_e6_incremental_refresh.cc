// E6 — Model refresh (paper §1 and §3): models are populated "possibly
// repeatedly" via INSERT INTO, and "support for incremental model
// maintenance" is a declared provider capability. This harness refreshes a
// deployed model with 10% new data five times and compares:
//   * Naive_Bayes (incremental: consumes only the new cases),
//   * Decision_Trees (batch: retrains on the growing union),
// reporting per-refresh time and post-refresh accuracy parity.

#include "bench_util.h"

namespace dmx {
namespace {

void RunExperiment() {
  constexpr int kInitial = 4000;
  constexpr int kBatch = 400;
  constexpr int kRefreshes = 5;

  bench::Table table({"refresh #", "NB refresh s", "DT retrain s",
                      "DT/NB", "NB accuracy", "DT accuracy"});

  Provider provider;
  bench::SetupWarehouses(&provider, kInitial, 800);
  auto conn = provider.Connect();
  bench::MustExecute(conn.get(), bench::AgeModelDmx("NB", "Naive_Bayes"));
  bench::MustExecute(conn.get(),
                     bench::AgeModelDmx("DT", "Decision_Trees"));
  bench::MustExecute(conn.get(), bench::AgeInsertDmx("NB", "Customers",
                                                     "Sales"));
  bench::MustExecute(conn.get(), bench::AgeInsertDmx("DT", "Customers",
                                                     "Sales"));

  for (int refresh = 1; refresh <= kRefreshes; ++refresh) {
    // A new month of data lands in fresh tables.
    datagen::WarehouseConfig fresh;
    fresh.num_customers = kBatch;
    fresh.seed = 1000 + refresh;
    fresh.first_customer_id = 1000000 * refresh;
    fresh.customers_table = "Fresh" + std::to_string(refresh);
    fresh.sales_table = "FreshSales" + std::to_string(refresh);
    fresh.cars_table = "FreshCars" + std::to_string(refresh);
    bench::Check(datagen::PopulateWarehouse(provider.database(), fresh),
                 "fresh data");

    double nb_seconds = bench::MeasureSeconds([&] {
      bench::MustExecute(conn.get(),
                         bench::AgeInsertDmx("NB", fresh.customers_table,
                                             fresh.sales_table));
    });
    double dt_seconds = bench::MeasureSeconds([&] {
      bench::MustExecute(conn.get(),
                         bench::AgeInsertDmx("DT", fresh.customers_table,
                                             fresh.sales_table));
    });

    Rowset nb_predictions = bench::MustExecute(
        conn.get(), bench::AgePredictDmx("NB", "TestCustomers", "TestSales"));
    Rowset dt_predictions = bench::MustExecute(
        conn.get(), bench::AgePredictDmx("DT", "TestCustomers", "TestSales"));
    double nb_accuracy = bench::AgeBucketAccuracy(
        &provider, "NB", "TestCustomers", nb_predictions);
    double dt_accuracy = bench::AgeBucketAccuracy(
        &provider, "DT", "TestCustomers", dt_predictions);

    table.AddRow({std::to_string(refresh), bench::Fmt(nb_seconds),
                  bench::Fmt(dt_seconds),
                  bench::Fmt(dt_seconds / std::max(nb_seconds, 1e-9), 1) + "x",
                  bench::Fmt(nb_accuracy), bench::Fmt(dt_accuracy)});
  }
  table.Print();
  std::cout <<
      "\nThe incremental service's refresh cost tracks the batch size (400\n"
      "cases); the batch service retrains on the whole union each time, so\n"
      "its cost grows with every refresh while accuracy stays comparable.\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E6", "claim §1/§3: INSERT INTO refresh & incremental maintenance",
      "incremental refresh cost is flat per batch; cache-and-retrain grows "
      "with accumulated data; accuracies stay on par");
  dmx::RunExperiment();
  return 0;
}
