// R1 — sharded recovery: OpenStore latency against a store holding many
// trained models, serial (recovery_threads=1) vs parallel (recovery_threads=0,
// hardware concurrency). Each model lives in its own WAL shard whose blob is
// deserialized by the recovery scan workers, so the parallel column should
// beat the serial one once the model count clears the thread count. Run via
// tools/run_bench.sh, which captures the google-benchmark JSON as
// BENCH_recovery.json — real_time per reopen is the tracked figure.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_util.h"
#include "common/env.h"
#include "store/store.h"

namespace dmx {
namespace {

/// Store directories prebuilt in main(), keyed by model count.
std::map<int, std::string>* g_dirs = nullptr;

void WipeDir(const std::string& dir) {
  Env* env = Env::Default();
  const std::string quarantine = dir + "/quarantine";
  auto qnames = env->ListDir(quarantine);
  if (qnames.ok()) {
    for (const std::string& f : *qnames) {
      (void)env->DeleteFile(quarantine + "/" + f);
    }
  }
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)env->DeleteFile(dir + "/" + f);
  }
}

/// Builds a store with `models` trained Clustering models sharing one
/// training table. Every model's blob lands in its own shard, so reopening
/// replays `models` + 1 shards.
void BuildStore(const std::string& dir, int models) {
  WipeDir(dir);
  Provider provider;
  bench::Check(provider.OpenStore(dir), "open store for build");
  auto conn = provider.Connect();
  bench::MustExecute(conn.get(),
                     "CREATE TABLE Train ([Id] LONG, [F0] DOUBLE, "
                     "[F1] DOUBLE, [F2] DOUBLE, [F3] DOUBLE, [F4] DOUBLE, "
                     "[Loyalty] LONG)");
  std::string insert = "INSERT INTO Train VALUES ";
  for (int r = 0; r < 240; ++r) {
    if (r > 0) insert += ", ";
    insert += "(" + std::to_string(r);
    for (int c = 0; c < 5; ++c) {
      insert += ", " + std::to_string(((r * 7 + c * 13) % 97) / 9.7);
    }
    insert += ", " + std::to_string(r % 2) + ")";
  }
  bench::MustExecute(conn.get(), insert);
  // 8-cluster models over five continuous features: the serialized blob is
  // big enough that deserializing it is the dominant per-shard cost — the
  // work the recovery scan pool parallelizes.
  for (int m = 0; m < models; ++m) {
    const std::string name = "R" + std::to_string(m);
    bench::MustExecute(conn.get(),
                       "CREATE MINING MODEL [" + name +
                           "] ([K] LONG KEY, [F0] DOUBLE CONTINUOUS, "
                           "[F1] DOUBLE CONTINUOUS, [F2] DOUBLE CONTINUOUS, "
                           "[F3] DOUBLE CONTINUOUS, [F4] DOUBLE CONTINUOUS, "
                           "[Loyalty] LONG DISCRETE PREDICT) "
                           "USING Clustering(CLUSTER_COUNT = 8, SEED = " +
                           std::to_string(7 + m) + ")");
    bench::MustExecute(conn.get(),
                       "INSERT INTO [" + name +
                           "] SELECT Id, F0, F1, F2, F3, F4, Loyalty "
                           "FROM Train");
  }
}

/// One iteration = one cold OpenStore (snapshot load + shard scan + replay).
void BM_Reopen(benchmark::State& state) {
  const int models = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const std::string& dir = (*g_dirs)[models];
  for (auto _ : state) {
    Provider provider;
    store::StoreOptions options;
    options.recovery_threads = threads;
    Status open = provider.OpenStore(dir, options);
    if (!open.ok()) {
      state.SkipWithError(open.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(provider.store()->recovery_report().size());
  }
  state.SetItemsProcessed(state.iterations() * models);
  state.counters["models"] = models;
  state.counters["recovery_threads"] = threads;
}
// range(1): 1 = serial replay, 0 = hardware concurrency (capped at 8).
BENCHMARK(BM_Reopen)
    ->Args({25, 1})
    ->Args({25, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->Args({200, 1})
    ->Args({200, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dmx

int main(int argc, char** argv) {
  dmx::bench::Banner(
      "R1", "Sharded recovery (parallel replay latency)",
      "reopen latency grows with model count; recovery_threads=0 (parallel "
      "scan) beats recovery_threads=1 (serial) on multi-model stores");

  std::map<int, std::string> dirs;
  for (int models : {25, 100, 200}) {
    std::string dir =
        "/tmp/dmx_bench_recovery_store_" + std::to_string(models);
    dmx::BuildStore(dir, models);
    dirs[models] = dir;
  }
  dmx::g_dirs = &dirs;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
