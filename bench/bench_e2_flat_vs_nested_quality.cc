// E2 — Flattened vs nested representation quality (paper §3.1).
//
// "Since the information about an entity instance is scattered among
// multiple rows, the quality of output from data mining algorithms is
// negatively impacted by such flattened representation."
//
// Both models predict the (discretized) age bucket:
//   nested: one case per customer with the full purchase basket;
//   flat:   one training row per (customer, purchase) — the join output —
//           so each row sees ONE product and replicated demographics.
// Accuracy is evaluated per customer on a held-out warehouse (the flat
// model's per-row predictions are majority-voted per customer, the best
// aggregation available to the flattened pipeline).

#include <map>

#include "bench_util.h"
#include "relational/sql_executor.h"

namespace dmx {
namespace {

// Materializes the flat join (customer x purchase) into a base table with a
// synthetic row key.
void BuildFlatTable(Provider* provider, const std::string& customers,
                    const std::string& sales, const std::string& out) {
  auto joined = rel::ExecuteSql(
      provider->database(),
      "SELECT c.[Customer ID], c.[Gender], c.[Age], s.[Product Name], "
      "s.[Product Type] FROM " + customers + " c INNER JOIN " + sales +
      " s ON c.[Customer ID] = s.[CustID]");
  bench::Check(joined.status(), "flat join");
  auto schema = Schema::Make({{"RowId", DataType::kLong},
                              {"Customer ID", DataType::kLong},
                              {"Gender", DataType::kText},
                              {"Age", DataType::kLong},
                              {"Product Name", DataType::kText},
                              {"Product Type", DataType::kText}});
  auto table = provider->database()->CreateTable(out, schema);
  bench::Check(table.status(), "flat table");
  int64_t row_id = 0;
  for (const Row& row : joined->rows()) {
    Row with_key = {Value::Long(row_id++), row[0], row[1],
                    row[2],               row[3], row[4]};
    bench::Check((*table)->Insert(std::move(with_key)), "flat insert");
  }
}

struct QualityResult {
  double accuracy = 0;
  size_t training_rows = 0;
  double train_seconds = 0;
};

QualityResult RunNested(Provider* provider, const std::string& service) {
  auto conn = provider->Connect();
  bench::MustExecute(conn.get(), bench::AgeModelDmx("Nested", service));
  QualityResult result;
  result.train_seconds = bench::MeasureSeconds([&] {
    bench::MustExecute(conn.get(),
                       bench::AgeInsertDmx("Nested", "Customers", "Sales"));
  });
  result.training_rows = 0;
  auto customers = provider->database()->GetTable("Customers");
  result.training_rows = (*customers)->num_rows();
  Rowset predictions = bench::MustExecute(
      conn.get(), bench::AgePredictDmx("Nested", "TestCustomers",
                                       "TestSales"));
  result.accuracy = bench::AgeBucketAccuracy(provider, "Nested",
                                             "TestCustomers", predictions);
  bench::MustExecute(conn.get(), "DROP MINING MODEL [Nested]");
  return result;
}

QualityResult RunFlat(Provider* provider, const std::string& service) {
  auto conn = provider->Connect();
  bench::MustExecute(conn.get(), R"(
    CREATE MINING MODEL [Flat] (
      [RowId] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,
      [Product Name] TEXT DISCRETE,
      [Product Type] TEXT DISCRETE
    ) USING )" + service);
  QualityResult result;
  result.train_seconds = bench::MeasureSeconds([&] {
    bench::MustExecute(conn.get(), R"(
      INSERT INTO [Flat]
      SELECT [RowId], [Gender], [Age], [Product Name], [Product Type]
      FROM FlatTrain)");
  });
  result.training_rows = (*provider->database()->GetTable("FlatTrain"))
                             ->num_rows();

  // Per-row predictions over the flat test table, majority-voted per
  // customer against the true bucket.
  Rowset predictions = bench::MustExecute(conn.get(), R"(
    SELECT t.[Customer ID], Predict([Age]) AS P, t.[Age] AS Truth
    FROM [Flat]
    NATURAL PREDICTION JOIN
      (SELECT [RowId], [Customer ID], [Gender], [Age], [Product Name],
              [Product Type] FROM FlatTest) AS t)");
  auto model = provider->models()->GetModel("Flat");
  bench::Check(model.status(), "flat model");
  int age_attr = (*model)->attributes().FindAttribute("Age");
  const Attribute& attr = (*model)->attributes().attributes[age_attr];

  struct Vote {
    std::map<int, int> buckets;
    int truth = -1;
  };
  std::map<int64_t, Vote> votes;
  for (const Row& row : predictions.rows()) {
    Vote& vote = votes[row[0].long_value()];
    vote.buckets[attr.BucketOf(*row[1].AsDouble())]++;
    vote.truth = attr.BucketOf(*row[2].AsDouble());
  }
  int correct = 0;
  for (const auto& [id, vote] : votes) {
    int best_bucket = -1;
    int best_count = -1;
    for (const auto& [bucket, count] : vote.buckets) {
      if (count > best_count) {
        best_count = count;
        best_bucket = bucket;
      }
    }
    if (best_bucket == vote.truth) ++correct;
  }
  result.accuracy =
      votes.empty() ? 0 : static_cast<double>(correct) / votes.size();
  bench::MustExecute(conn.get(), "DROP MINING MODEL [Flat]");
  return result;
}

void RunExperiment() {
  Provider provider;
  bench::SetupWarehouses(&provider, 3000, 1000);
  BuildFlatTable(&provider, "Customers", "Sales", "FlatTrain");
  BuildFlatTable(&provider, "TestCustomers", "TestSales", "FlatTest");

  bench::Table table({"service", "representation", "training rows",
                      "age-bucket accuracy", "train s"});
  for (const char* service : {"Naive_Bayes", "Decision_Trees"}) {
    QualityResult nested = RunNested(&provider, service);
    QualityResult flat = RunFlat(&provider, service);
    table.AddRow({service, "nested caseset",
                  std::to_string(nested.training_rows),
                  bench::Fmt(nested.accuracy), bench::Fmt(nested.train_seconds)});
    table.AddRow({service, "flattened join",
                  std::to_string(flat.training_rows),
                  bench::Fmt(flat.accuracy), bench::Fmt(flat.train_seconds)});
  }
  table.Print();
  std::cout << "\n(baseline: 4 equal-frequency buckets => ~0.25 by chance)\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E2", "claim §3.1: flattening hurts mining quality",
      "models trained on the nested caseset beat the same service trained on "
      "the replicated flat join, which also carries several times more rows");
  dmx::RunExperiment();
  return 0;
}
