// H1 — hot-path allocation accounting (DESIGN.md §14): allocs/row and
// bytes/row for the four guard-checkpointed inner loops the paper's
// integration argument rests on — relational scan+filter, SHAPE child
// indexing, InsertCases ingest+train, and PREDICTION JOIN scoring per
// service. Run via tools/run_bench.sh, which builds a dedicated
// -DDMX_ALLOC_STATS=ON tree and captures the google-benchmark JSON as
// BENCH_hotpath.json; the committed copy is the baseline the columnar
// refactor (ROADMAP item 1) has to beat, and tests/alloc_budget_test.cc
// turns the same numbers into hard CI ceilings.
//
// Without -DDMX_ALLOC_STATS=ON the binary still runs (wall-clock numbers
// stay meaningful) but every *_per_row counter reports 0; the console
// banner says which mode this is.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/alloc_stats.h"
#include "shape/shape_executor.h"
#include "shape/shape_parser.h"

namespace dmx {
namespace {

constexpr int kTrainCustomers = 400;
constexpr int kTestCustomers = 200;

Provider* g_provider = nullptr;

/// Attaches allocs/bytes-per-row counters from an accumulated delta.
void SetPerRowCounters(benchmark::State& state, const AllocCounts& total,
                       double rows) {
  state.counters["allocs_per_row"] =
      benchmark::Counter(static_cast<double>(total.allocs) / rows);
  state.counters["bytes_per_row"] =
      benchmark::Counter(static_cast<double>(total.bytes) / rows);
  state.counters["alloc_stats_enabled"] =
      benchmark::Counter(AllocStats::Enabled() ? 1 : 0);
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}

/// Relational scan + filter: one SELECT with a numeric WHERE over the
/// Customers table. Rows = table size (every row is scanned; ~half pass).
void BM_RelationalFilterScan(benchmark::State& state) {
  auto conn = g_provider->Connect();
  const std::string query =
      "SELECT [Customer ID], [Age] FROM Customers WHERE [Age] > 40";
  AllocCounts total;
  int64_t iters = 0;
  for (auto _ : state) {
    AllocStats::Region r;
    Rowset out = bench::MustExecute(conn.get(), query);
    benchmark::DoNotOptimize(out.rows().size());
    AllocCounts d = r.Delta();
    total.allocs += d.allocs;
    total.bytes += d.bytes;
    ++iters;
  }
  SetPerRowCounters(state, total,
                    static_cast<double>(iters) * kTrainCustomers);
}
BENCHMARK(BM_RelationalFilterScan);

/// SHAPE child indexing + case assembly: build the keyed child index and
/// stream every hierarchical case through ShapedCaseReader. Rows = master
/// rows (one case per customer).
void BM_ShapeChildIndexing(benchmark::State& state) {
  const std::string shape_text =
      "SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers"
      " ORDER BY [Customer ID]}\n"
      "APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales"
      " ORDER BY [CustID]}\n"
      "  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]";
  auto stmt = shape::ParseShape(shape_text);
  bench::Check(stmt.status(), "parse shape");
  AllocCounts total;
  int64_t iters = 0;
  for (auto _ : state) {
    AllocStats::Region r;
    auto reader = shape::ShapedCaseReader::Create(*g_provider->database(),
                                                  *stmt);
    bench::Check(reader.status(), "shape reader");
    Row row;
    size_t cases = 0;
    while (true) {
      auto more = (*reader)->Next(&row);
      bench::Check(more.status(), "shape next");
      if (!*more) break;
      ++cases;
    }
    benchmark::DoNotOptimize(cases);
    AllocCounts d = r.Delta();
    total.allocs += d.allocs;
    total.bytes += d.bytes;
    ++iters;
  }
  SetPerRowCounters(state, total,
                    static_cast<double>(iters) * kTrainCustomers);
}
BENCHMARK(BM_ShapeChildIndexing);

/// INSERT INTO (InsertCases): SHAPE ingest + statistics + training, the
/// paper's §3.1 case-at-a-time consumption path. The model is re-created
/// outside the measured region each iteration; rows = training cases.
void BM_InsertCases(benchmark::State& state) {
  auto conn = g_provider->Connect();
  AllocCounts total;
  int64_t iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    (void)conn->Execute("DROP MINING MODEL [H1 Insert]");
    bench::MustExecute(conn.get(),
                       bench::AgeModelDmx("H1 Insert", "Naive_Bayes"));
    state.ResumeTiming();
    AllocStats::Region r;
    bench::MustExecute(conn.get(),
                       bench::AgeInsertDmx("H1 Insert", "Customers", "Sales"));
    AllocCounts d = r.Delta();
    total.allocs += d.allocs;
    total.bytes += d.bytes;
    ++iters;
  }
  SetPerRowCounters(state, total,
                    static_cast<double>(iters) * kTrainCustomers);
}
BENCHMARK(BM_InsertCases);

/// PREDICTION JOIN scoring over the test warehouse, one benchmark per
/// registered service family (the [Age Prediction] model shape from the
/// paper). Rows = test cases scored.
void PredictionJoinBody(benchmark::State& state, const std::string& model) {
  auto conn = g_provider->Connect();
  const std::string query =
      bench::AgePredictDmx(model, "TestCustomers", "TestSales");
  AllocCounts total;
  int64_t iters = 0;
  for (auto _ : state) {
    AllocStats::Region r;
    Rowset out = bench::MustExecute(conn.get(), query);
    benchmark::DoNotOptimize(out.rows().size());
    AllocCounts d = r.Delta();
    total.allocs += d.allocs;
    total.bytes += d.bytes;
    ++iters;
  }
  SetPerRowCounters(state, total,
                    static_cast<double>(iters) * kTestCustomers);
}

void BM_PredictionJoin_NaiveBayes(benchmark::State& state) {
  PredictionJoinBody(state, "H1 NB");
}
BENCHMARK(BM_PredictionJoin_NaiveBayes);

void BM_PredictionJoin_Clustering(benchmark::State& state) {
  PredictionJoinBody(state, "H1 Clu");
}
BENCHMARK(BM_PredictionJoin_Clustering);

void BM_PredictionJoin_DecisionTrees(benchmark::State& state) {
  PredictionJoinBody(state, "H1 DT");
}
BENCHMARK(BM_PredictionJoin_DecisionTrees);

void BM_PredictionJoin_LinearRegression(benchmark::State& state) {
  // The LR model predicts continuous Age from [Customer Loyalty]; its
  // prediction join carries that column through the SHAPE source.
  auto conn = g_provider->Connect();
  const std::string query =
      "SELECT t.[Customer ID], Predict([Age]) AS [P] FROM [H1 LR]\n"
      "NATURAL PREDICTION JOIN\n"
      "  (SHAPE {SELECT [Customer ID], [Gender], [Customer Loyalty] FROM "
      "TestCustomers ORDER BY [Customer ID]}\n"
      "   APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM "
      "TestSales ORDER BY [CustID]}\n"
      "     RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t";
  AllocCounts total;
  int64_t iters = 0;
  for (auto _ : state) {
    AllocStats::Region r;
    Rowset out = bench::MustExecute(conn.get(), query);
    benchmark::DoNotOptimize(out.rows().size());
    AllocCounts d = r.Delta();
    total.allocs += d.allocs;
    total.bytes += d.bytes;
    ++iters;
  }
  SetPerRowCounters(state, total,
                    static_cast<double>(iters) * kTestCustomers);
}
BENCHMARK(BM_PredictionJoin_LinearRegression);

}  // namespace
}  // namespace dmx

int main(int argc, char** argv) {
  dmx::bench::Banner(
      "H1", "Hot-path allocation accounting (allocs/row, bytes/row)",
      std::string("per-row allocation counts for scan+filter, SHAPE "
                  "indexing, InsertCases and per-service prediction joins; "
                  "alloc counters ") +
          (dmx::AllocStats::Enabled() ? "ENABLED" : "DISABLED (wall-clock "
                                                    "only; configure with "
                                                    "-DDMX_ALLOC_STATS=ON)"));

  dmx::g_provider = new dmx::Provider();
  dmx::bench::SetupWarehouses(dmx::g_provider, dmx::kTrainCustomers,
                              dmx::kTestCustomers);
  auto conn = dmx::g_provider->Connect();
  const struct {
    const char* model;
    const char* service;
  } kModels[] = {{"H1 NB", "Naive_Bayes"},
                 {"H1 Clu", "Clustering"},
                 {"H1 DT", "Decision_Trees"}};
  for (const auto& m : kModels) {
    dmx::bench::MustExecute(conn.get(),
                            dmx::bench::AgeModelDmx(m.model, m.service));
    dmx::bench::MustExecute(
        conn.get(), dmx::bench::AgeInsertDmx(m.model, "Customers", "Sales"));
  }
  // Linear_Regression predicts a continuous target, so its model keeps Age
  // un-discretized and regresses on [Customer Loyalty].
  dmx::bench::MustExecute(
      conn.get(),
      "CREATE MINING MODEL [H1 LR] (\n"
      "  [Customer ID] LONG KEY,\n"
      "  [Gender] TEXT DISCRETE,\n"
      "  [Customer Loyalty] LONG ORDERED,\n"
      "  [Age] DOUBLE CONTINUOUS PREDICT,\n"
      "  [Product Purchases] TABLE(\n"
      "    [Product Name] TEXT KEY,\n"
      "    [Product Type] TEXT DISCRETE RELATED TO [Product Name]))\n"
      "USING Linear_Regression");
  dmx::bench::MustExecute(
      conn.get(),
      "INSERT INTO [H1 LR] (\n"
      "  [Customer ID], [Gender], [Customer Loyalty], [Age],\n"
      "  [Product Purchases]([Product Name], [Product Type]))\n"
      "SHAPE {SELECT [Customer ID], [Gender], [Customer Loyalty], [Age] FROM "
      "Customers ORDER BY [Customer ID]}\n"
      "APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales "
      "ORDER BY [CustID]}\n"
      "  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  delete dmx::g_provider;
  return 0;
}
