// E5 — PREDICTION JOIN as the deployment vehicle (paper §3.3). Measures
// prediction-join throughput (cases/second) with google-benchmark across:
//   * model classes (NB / DT / clustering),
//   * join forms (NATURAL vs explicit ON),
//   * projection richness (plain Predict vs histogram + TopCount + stats).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dmx {
namespace {

struct Fixture {
  Provider provider;
  std::unique_ptr<Connection> conn;
  static constexpr int kTestCases = 500;

  Fixture() {
    conn = provider.Connect();
    bench::SetupWarehouses(&provider, 2000, kTestCases);
    bench::MustExecute(conn.get(), bench::AgeModelDmx("NB", "Naive_Bayes"));
    bench::MustExecute(conn.get(), bench::AgeInsertDmx("NB", "Customers",
                                                       "Sales"));
    bench::MustExecute(conn.get(),
                       bench::AgeModelDmx("DT", "Decision_Trees"));
    bench::MustExecute(conn.get(), bench::AgeInsertDmx("DT", "Customers",
                                                       "Sales"));
    bench::MustExecute(conn.get(), R"(
      CREATE MINING MODEL [CL] (
        [Customer ID] LONG KEY,
        [Age] DOUBLE CONTINUOUS,
        [Income] DOUBLE CONTINUOUS
      ) USING Clustering(CLUSTER_COUNT = 4, SEED = 3))");
    bench::MustExecute(conn.get(), R"(
      INSERT INTO [CL]
      SELECT [Customer ID], [Age], [Income] FROM Customers)");
  }
};

Fixture* fixture = nullptr;

std::string NaturalSource() {
  return R"(
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM TestCustomers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type]
                FROM TestSales ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";
}

void RunJoin(benchmark::State& state, const std::string& query) {
  for (auto _ : state) {
    Rowset result = bench::MustExecute(fixture->conn.get(), query);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * Fixture::kTestCases);
}

void BM_NaiveBayes_Plain(benchmark::State& state) {
  RunJoin(state, "SELECT t.[Customer ID], Predict([Age]) AS P FROM [NB]" +
                     NaturalSource());
}
BENCHMARK(BM_NaiveBayes_Plain);

void BM_NaiveBayes_RichProjection(benchmark::State& state) {
  RunJoin(state, R"(
    SELECT t.[Customer ID], Predict([Age]) AS P,
           PredictProbability([Age]) AS Prob, PredictSupport([Age]) AS Supp,
           TopCount(PredictHistogram([Age]), $Probability, 3) AS H
    FROM [NB])" + NaturalSource());
}
BENCHMARK(BM_NaiveBayes_RichProjection);

void BM_DecisionTree_Plain(benchmark::State& state) {
  RunJoin(state, "SELECT t.[Customer ID], Predict([Age]) AS P FROM [DT]" +
                     NaturalSource());
}
BENCHMARK(BM_DecisionTree_Plain);

void BM_Clustering_ClusterUdf(benchmark::State& state) {
  RunJoin(state, R"(
    SELECT t.[Customer ID], Cluster() AS C, ClusterProbability() AS P
    FROM [CL]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Age], [Income] FROM TestCustomers) AS t)");
}
BENCHMARK(BM_Clustering_ClusterUdf);

void BM_NaiveBayes_OnClause(benchmark::State& state) {
  RunJoin(state, R"(
    SELECT t.[Customer ID], Predict([Age]) AS P FROM [NB]
    PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM TestCustomers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type]
                FROM TestSales ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
    ON [NB].[Gender] = t.[Gender] AND
       [NB].[Product Purchases].[Product Name] =
         t.[Product Purchases].[Product Name] AND
       [NB].[Product Purchases].[Product Type] =
         t.[Product Purchases].[Product Type])");
}
BENCHMARK(BM_NaiveBayes_OnClause);

void BM_Flattened_Histogram(benchmark::State& state) {
  RunJoin(state, R"(
    SELECT FLATTENED t.[Customer ID], PredictHistogram([Age]) AS H
    FROM [NB])" + NaturalSource());
}
BENCHMARK(BM_Flattened_Histogram);

}  // namespace
}  // namespace dmx

int main(int argc, char** argv) {
  dmx::bench::Banner(
      "E5", "claim §3.3: deployment == writing prediction queries",
      "thousands of cases/second through the full stack; NATURAL and ON "
      "forms cost the same; rich projections add modest per-case overhead");
  dmx::fixture = new dmx::Fixture();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  delete dmx::fixture;
  return 0;
}
