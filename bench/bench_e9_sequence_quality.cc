// E9 — Sequence analysis (the §3 capability class): does ordering buy
// anything? Task: hide each held-out customer's LAST purchase, feed the
// model the ordered history, and score whether the hidden item appears in
// the top-k predictions. Compared against two order-blind baselines:
//   * global popularity (top-k most purchased products),
//   * the association-rules service recommending from the same history.
// Expected shape: sequences > association rules > popularity, because the
// generator plants "A then B" orders, not just co-occurrence.

#include <map>

#include "bench_util.h"

namespace dmx {
namespace {

struct HeldOutCase {
  int64_t customer;
  std::string truth;        ///< The hidden (chronologically last) purchase.
  std::string previous;     ///< The last item left in the history.
  bool order_signal = false;  ///< previous=>truth is a planted bundle.
};

// Splits TestSales into a history table (all but each customer's last
// purchase) plus the hidden truth items.
std::vector<HeldOutCase> BuildHistoryTables(Provider* provider) {
  auto sales = provider->database()->GetTable("TestSales");
  bench::Check(sales.status(), "TestSales");
  const Schema& schema = *(*sales)->schema();
  size_t id_col = *schema.ResolveColumn("CustID");
  size_t name_col = *schema.ResolveColumn("Product Name");
  size_t time_col = *schema.ResolveColumn("Purchase Time");

  struct PerCustomer {
    std::vector<Row> rows;
    double last_time = -1;
    size_t last_row = 0;
  };
  std::map<int64_t, PerCustomer> by_customer;
  for (const Row& row : (*sales)->rows()) {
    PerCustomer& pc = by_customer[row[id_col].long_value()];
    double t = *row[time_col].AsDouble();
    if (t > pc.last_time) {
      pc.last_time = t;
      pc.last_row = pc.rows.size();
    }
    pc.rows.push_back(row);
  }

  auto history = provider->database()->CreateTable(
      "HistSales", (*sales)->schema());
  bench::Check(history.status(), "HistSales");
  std::vector<HeldOutCase> held_out;
  for (auto& [customer, pc] : by_customer) {
    if (pc.rows.size() < 2) continue;  // Need history + a hidden item.
    HeldOutCase test;
    test.customer = customer;
    test.truth = pc.rows[pc.last_row][name_col].text_value();
    // The most recent item remaining in the history.
    double best = -1;
    for (size_t i = 0; i < pc.rows.size(); ++i) {
      if (i == pc.last_row) continue;
      double t = *pc.rows[i][time_col].AsDouble();
      if (t > best) {
        best = t;
        test.previous = pc.rows[i][name_col].text_value();
      }
      bench::Check((*history)->Insert(pc.rows[i]), "history insert");
    }
    for (const datagen::PlantedBundle& bundle : datagen::PlantedBundles()) {
      if (test.previous == bundle.antecedent &&
          test.truth == bundle.consequent) {
        test.order_signal = true;
      }
    }
    held_out.push_back(std::move(test));
  }
  return held_out;
}

// Hit@k over a (customer -> ranked items) prediction rowset.
// `slice`: 0 = all held-out cases, 1 = only cases where the hidden item is a
// planted "previous => truth" transition (order carries the signal).
double HitRate(const Rowset& predictions,
               const std::vector<HeldOutCase>& held_out, size_t k,
               int slice = 0) {
  std::map<int64_t, const NestedTable*> ranked;
  for (const Row& row : predictions.rows()) {
    ranked[row[0].long_value()] = row[1].table_value().get();
  }
  int hits = 0;
  int total = 0;
  for (const HeldOutCase& test : held_out) {
    if (slice == 1 && !test.order_signal) continue;
    ++total;
    auto it = ranked.find(test.customer);
    if (it == ranked.end() || it->second == nullptr) continue;
    const NestedTable& items = *it->second;
    for (size_t i = 0; i < items.num_rows() && i < k; ++i) {
      if (items.rows()[i][0].Equals(Value::Text(test.truth))) {
        ++hits;
        break;
      }
    }
  }
  return total > 0 ? static_cast<double>(hits) / total : 0;
}

void RunExperiment() {
  Provider provider;
  bench::SetupWarehouses(&provider, 6000, 1500);
  auto conn = provider.Connect();
  std::vector<HeldOutCase> held_out = BuildHistoryTables(&provider);
  std::cout << "held-out customers with >= 2 purchases: " << held_out.size()
            << "\n\n";

  const std::string predict_query = R"(
    SELECT t.[Customer ID], Predict([Product Purchases], 5) AS [Next]
    FROM [%MODEL%]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID] FROM TestCustomers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Purchase Time]
                FROM HistSales ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";
  auto run_predictions = [&](const std::string& model) {
    std::string query = predict_query;
    query.replace(query.find("%MODEL%"), 7, model);
    return bench::MustExecute(conn.get(), query);
  };

  int order_cases = 0;
  for (const HeldOutCase& test : held_out) {
    if (test.order_signal) ++order_cases;
  }
  std::cout << "cases where the hidden item is a planted next-in-order "
               "transition: " << order_cases << "\n\n";

  bench::Table table({"predictor", "hit@1 (all)", "hit@3 (all)",
                      "hit@1 (order slice)", "train s"});

  // --- Sequence_Analysis ---
  bench::MustExecute(conn.get(), R"(
    CREATE MINING MODEL [Seq] (
      [Customer ID] LONG KEY,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Purchase Time] DOUBLE SEQUENCE_TIME) PREDICT
    ) USING Sequence_Analysis)");
  double seq_seconds = bench::MeasureSeconds([&] {
    bench::MustExecute(conn.get(), R"(
      INSERT INTO [Seq]
      SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
      APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
               ORDER BY [CustID]}
              RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  });
  Rowset seq_predictions = run_predictions("Seq");
  table.AddRow({"Sequence_Analysis",
                bench::Fmt(HitRate(seq_predictions, held_out, 1)),
                bench::Fmt(HitRate(seq_predictions, held_out, 3)),
                bench::Fmt(HitRate(seq_predictions, held_out, 1, 1)),
                bench::Fmt(seq_seconds)});

  // --- Association_Rules (order-blind) ---
  bench::MustExecute(conn.get(), R"(
    CREATE MINING MODEL [Assoc] (
      [Customer ID] LONG KEY,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Purchase Time] DOUBLE SEQUENCE_TIME) PREDICT
    ) USING Association_Rules(MINIMUM_SUPPORT = 0.03,
                              MINIMUM_PROBABILITY = 0.2))");
  double assoc_seconds = bench::MeasureSeconds([&] {
    bench::MustExecute(conn.get(), R"(
      INSERT INTO [Assoc]
      SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
      APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
               ORDER BY [CustID]}
              RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  });
  Rowset assoc_predictions = run_predictions("Assoc");
  table.AddRow({"Association_Rules",
                bench::Fmt(HitRate(assoc_predictions, held_out, 1)),
                bench::Fmt(HitRate(assoc_predictions, held_out, 3)),
                bench::Fmt(HitRate(assoc_predictions, held_out, 1, 1)),
                bench::Fmt(assoc_seconds)});

  // --- Popularity baseline (top products in the training warehouse) ---
  Rowset popular = bench::MustExecute(conn.get(), R"(
    SELECT [Product Name], COUNT(*) AS N FROM Sales
    GROUP BY [Product Name] ORDER BY N DESC)");
  auto popularity_hit = [&](size_t k, int slice) {
    int hits = 0;
    int total = 0;
    for (const HeldOutCase& test : held_out) {
      if (slice == 1 && !test.order_signal) continue;
      ++total;
      for (size_t i = 0; i < k && i < popular.num_rows(); ++i) {
        if (popular.at(i, 0).Equals(Value::Text(test.truth))) {
          ++hits;
          break;
        }
      }
    }
    return total > 0 ? static_cast<double>(hits) / total : 0;
  };
  table.AddRow({"Popularity baseline", bench::Fmt(popularity_hit(1, 0)),
                bench::Fmt(popularity_hit(3, 0)),
                bench::Fmt(popularity_hit(1, 1)), "-"});

  table.Print();
  std::cout <<
      "\nOverall, the association service's whole-basket evidence beats the\n"
      "first-order Markov model (which conditions on one item). But on the\n"
      "slice where the hidden purchase IS the planted next-in-order item,\n"
      "the sequence model dominates - that gap is exactly the signal\n"
      "SEQUENCE_TIME exists to expose, and why the paper lists sequence\n"
      "analysis as a distinct provider capability.\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E9", "claim §3: sequence analysis as a provider capability",
      "association's whole-basket evidence wins overall; the sequence model "
      "dominates on the slice where order carries the signal");
  dmx::RunExperiment();
  return 0;
}
