// T1 — Paper Table 1: nested cases vs the flattened join.
//
// Part 1 reproduces the paper's worked example: all information about
// customer 1 as (a) the flat 3-table join ("lots of replication") and (b)
// one hierarchical case. Part 2 scales the same comparison over synthetic
// warehouses: flat rows grow as customers x purchases x cars while the
// caseset stays one row per customer, with correspondingly smaller byte
// footprints.

#include "bench_util.h"
#include "relational/sql_executor.h"
#include "shape/shape_executor.h"
#include "shape/shape_parser.h"

namespace dmx {
namespace {

constexpr const char* kFlatJoin = R"(
  SELECT c.[Customer ID], c.[Gender], c.[Hair Color], c.[Age],
         c.[Age Probability], s.[Product Name], s.[Quantity],
         s.[Product Type], o.[Car], o.[Car Probability]
  FROM Customers c
  INNER JOIN Sales s ON c.[Customer ID] = s.[CustID]
  INNER JOIN CarOwnership o ON c.[Customer ID] = o.[CustID])";

constexpr const char* kShape = R"(
  SHAPE {SELECT [Customer ID], [Gender], [Hair Color], [Age],
                [Age Probability] FROM Customers ORDER BY [Customer ID]}
  APPEND ({SELECT [CustID], [Product Name], [Quantity], [Product Type]
           FROM Sales ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
  APPEND ({SELECT [CustID], [Car], [Car Probability] FROM CarOwnership
           ORDER BY [CustID]}
          RELATE [Customer ID] TO [CustID]) AS [Car Ownership])";

void Part1PaperExample() {
  std::cout << "\n--- Part 1: the paper's customer 1 ---\n";
  rel::Database db;
  bench::Check(datagen::LoadPaperExample(&db), "paper example");

  auto flat = rel::ExecuteSql(&db, std::string(kFlatJoin) +
                                       " WHERE c.[Customer ID] = 1");
  bench::Check(flat.status(), "flat join");
  auto stmt = shape::ParseShape(kShape);
  bench::Check(stmt.status(), "shape parse");
  auto caseset = shape::ExecuteShape(db, *stmt);
  bench::Check(caseset.status(), "shape exec");

  std::cout << "flattened join for customer 1: " << flat->num_rows()
            << " rows (4 purchases x 2 cars; the paper's variant of the\n"
            << "data yields 12 -- same multiplicative blow-up, every customer "
               "attribute\nreplicated per (purchase, car) pair)\n\n";
  std::cout << flat->ToString() << "\n";
  std::cout << "nested caseset: 1 case for customer 1 (Table 1's layout):\n\n";
  Rowset customer1(caseset->schema(), {caseset->rows()[0]});
  std::cout << customer1.ToString(/*expand_nested=*/true) << "\n";
}

void Part2Scaling() {
  std::cout << "--- Part 2: representation size vs warehouse size ---\n";
  bench::Table table({"customers", "flat rows", "caseset rows", "row blow-up",
                      "flat KB", "caseset KB", "flat build s",
                      "caseset build s"});
  for (int n : {100, 1000, 5000}) {
    Provider provider;
    datagen::WarehouseConfig config;
    config.num_customers = n;
    // Table 1's customer owns several products AND several cars; use that
    // density so the multiplicative blow-up is visible.
    config.avg_purchases = 6.0;
    config.avg_cars = 2.0;
    bench::Check(datagen::PopulateWarehouse(provider.database(), config),
                 "warehouse");
    Rowset flat;
    double flat_seconds = bench::MeasureSeconds([&] {
      auto result = rel::ExecuteSql(provider.database(), kFlatJoin);
      bench::Check(result.status(), "flat join");
      flat = std::move(result).value();
    });
    Rowset caseset;
    double caseset_seconds = bench::MeasureSeconds([&] {
      auto stmt = shape::ParseShape(kShape);
      bench::Check(stmt.status(), "shape parse");
      auto result = shape::ExecuteShape(*provider.database(), *stmt);
      bench::Check(result.status(), "shape exec");
      caseset = std::move(result).value();
    });
    table.AddRow({std::to_string(n), std::to_string(flat.num_rows()),
                  std::to_string(caseset.num_rows()),
                  bench::Fmt(static_cast<double>(flat.num_rows()) /
                                 std::max<size_t>(1, caseset.num_rows()),
                             1) + "x",
                  bench::FmtInt(flat.ApproxBytes() / 1024.0),
                  bench::FmtInt(caseset.ApproxBytes() / 1024.0),
                  bench::Fmt(flat_seconds), bench::Fmt(caseset_seconds)});
  }
  table.Print();
  std::cout <<
      "\nNote: customers without a car vanish from the flat INNER JOIN (the\n"
      "consistency hazard of mining a flattened extract) but keep their case\n"
      "with an empty [Car Ownership] table in the caseset.\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "T1", "Table 1 (nested case representation)",
      "flat join replicates each customer by purchases x cars; the caseset "
      "holds one hierarchical row per customer");
  dmx::Part1PaperExample();
  dmx::Part2Scaling();
  return 0;
}
