// S1 — serving front end: statement QPS and latency percentiles through the
// full wire stack (frame codec + transport + session loop + provider) at
// 1 / 8 / 32 concurrent sessions, plus graceful-drain latency with idle
// sessions connected. Sessions run over in-memory pipes, so the numbers
// isolate the serving stack itself from kernel socket noise. Run via
// tools/run_bench.sh, which captures the google-benchmark JSON as
// BENCH_serving.json — items_per_second is the statements/s figure and the
// p50/p95/p99 counters carry the per-statement latency distribution.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "server/client.h"
#include "server/server.h"
#include "server/transport.h"

namespace dmx {
namespace {

using Clock = std::chrono::steady_clock;

/// Statements each session executes per iteration.
constexpr int kStatementsPerSession = 25;

void PopulateServingCatalog(Provider* provider) {
  auto conn = provider->Connect();
  bench::MustExecute(conn.get(),
                     "CREATE TABLE W (Id LONG, Age DOUBLE, City TEXT)");
  std::string insert = "INSERT INTO W VALUES ";
  for (int i = 0; i < 64; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(20 + i % 50) +
              ", 'c" + std::to_string(i % 7) + "')";
  }
  bench::MustExecute(conn.get(), insert);
}

double PercentileUs(std::vector<double>* latencies_us, double q) {
  if (latencies_us->empty()) return 0;
  std::sort(latencies_us->begin(), latencies_us->end());
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             latencies_us->size() - 1));
  return (*latencies_us)[index];
}

/// One iteration: N concurrent sessions over in-memory pipes, each running
/// kStatementsPerSession statements; per-statement wall latency recorded.
void BM_ServeStatements(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  Provider provider;
  PopulateServingCatalog(&provider);
  server::DmxServer server(&provider, {});

  std::vector<double> latencies_us;
  int64_t statements = 0;
  for (auto _ : state) {
    std::vector<std::thread> serving;
    std::vector<std::thread> clients;
    std::vector<std::vector<double>> per_session(
        static_cast<size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      auto [server_end, client_end] = server::MakeLocalPipe();
      serving.emplace_back(
          [&server, end = std::move(server_end)]() mutable {
            server.ServeConnection(std::move(end));
          });
      clients.emplace_back([&per_session, i,
                            end = std::move(client_end)]() mutable {
        auto client = server::DmxClient::Handshake(std::move(end), {});
        if (!client.ok()) return;
        per_session[static_cast<size_t>(i)].reserve(kStatementsPerSession);
        for (int s = 0; s < kStatementsPerSession; ++s) {
          auto start = Clock::now();
          auto rows = (*client)->Execute("SELECT Id, Age FROM W");
          auto end_time = Clock::now();
          if (!rows.ok()) return;
          per_session[static_cast<size_t>(i)].push_back(
              std::chrono::duration<double, std::micro>(end_time - start)
                  .count());
        }
        (*client)->Close();
      });
    }
    for (auto& thread : clients) thread.join();
    for (auto& thread : serving) thread.join();
    for (const auto& session : per_session) {
      statements += static_cast<int64_t>(session.size());
      latencies_us.insert(latencies_us.end(), session.begin(), session.end());
    }
  }

  state.SetItemsProcessed(statements);
  state.counters["p50_us"] = PercentileUs(&latencies_us, 0.50);
  state.counters["p95_us"] = PercentileUs(&latencies_us, 0.95);
  state.counters["p99_us"] = PercentileUs(&latencies_us, 0.99);
}
BENCHMARK(BM_ServeStatements)->Arg(1)->Arg(8)->Arg(32)->UseRealTime();

/// Graceful-drain latency: N idle sessions connected, then Drain() — the
/// measured time covers the drain state machine (notice the flag at the
/// next read slice, exit, join) but no in-flight statements.
void BM_DrainLatency(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Provider provider;
    PopulateServingCatalog(&provider);
    auto server = std::make_unique<server::DmxServer>(&provider,
                                                      server::ServerOptions{});
    std::vector<std::thread> serving;
    std::vector<std::unique_ptr<server::DmxClient>> clients;
    for (int i = 0; i < sessions; ++i) {
      auto [server_end, client_end] = server::MakeLocalPipe();
      serving.emplace_back(
          [srv = server.get(), end = std::move(server_end)]() mutable {
            srv->ServeConnection(std::move(end));
          });
      auto client = server::DmxClient::Handshake(std::move(client_end), {});
      bench::Check(client.status(), "handshake");
      clients.push_back(std::move(*client));
    }

    auto start = Clock::now();
    bench::Check(server->Drain(), "drain");
    state.SetIterationTime(
        std::chrono::duration<double>(Clock::now() - start).count());

    for (auto& thread : serving) thread.join();
    for (auto& client : clients) client->Close();
  }
}
BENCHMARK(BM_DrainLatency)->Arg(1)->Arg(8)->Arg(32)->UseManualTime();

}  // namespace
}  // namespace dmx

int main(int argc, char** argv) {
  dmx::bench::Banner(
      "S1", "Serving front end (wire QPS, latency, drain)",
      "statement throughput and p50/p95/p99 latency through the framed "
      "protocol at 1/8/32 sessions; drain latency with idle sessions");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
