// E1 — In-database mining vs the export pipeline (paper §1).
//
// The paper's motivating claim: "data is dumped or sampled out of the
// database ... creating an entire new data management problem outside the
// database". This harness trains the same model two ways:
//   in-database:  INSERT INTO <model> ... SHAPE {...}   (no data leaves)
//   export:       dump base tables to CSV, re-parse the files, rebuild
//                 tables in a second engine, then shape + train there
// and reports wall time plus the exported footprint the file-based pipeline
// leaves behind.

#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "relational/sql_executor.h"

namespace dmx {
namespace {

void RunExperiment() {
  bench::Table table({"customers", "in-db train s", "export pipeline s",
                      "slowdown", "exported KB"});
  for (int n : {500, 2000, 8000}) {
    // --- In-database path ---
    Provider in_db;
    datagen::WarehouseConfig config;
    config.num_customers = n;
    bench::Check(datagen::PopulateWarehouse(in_db.database(), config),
                 "warehouse");
    auto conn = in_db.Connect();
    bench::MustExecute(conn.get(), bench::AgeModelDmx("M", "Naive_Bayes"));
    double in_db_seconds = bench::MeasureSeconds([&] {
      bench::MustExecute(conn.get(),
                         bench::AgeInsertDmx("M", "Customers", "Sales"));
    });

    // --- Export path: the paper's "trail of droppings in the file system".
    std::string dir = std::filesystem::temp_directory_path().string();
    std::string customers_csv = dir + "/e1_customers.csv";
    std::string sales_csv = dir + "/e1_sales.csv";
    size_t exported_bytes = 0;
    double export_seconds = bench::MeasureSeconds([&] {
      // 1. Dump.
      auto customers = in_db.database()->GetTable("Customers");
      auto sales = in_db.database()->GetTable("Sales");
      bench::Check(customers.status(), "customers");
      bench::Check(rel::SaveCsv(**customers, customers_csv), "dump customers");
      bench::Check(rel::SaveCsv(**sales, sales_csv), "dump sales");
      exported_bytes = std::filesystem::file_size(customers_csv) +
                       std::filesystem::file_size(sales_csv);
      // 2. Re-parse into the external environment (a second engine).
      Provider external;
      auto loaded_customers = rel::LoadCsv(customers_csv);
      auto loaded_sales = rel::LoadCsv(sales_csv);
      bench::Check(loaded_customers.status(), "reload customers");
      bench::Check(loaded_sales.status(), "reload sales");
      auto table_c = external.database()->CreateTable(
          "Customers", loaded_customers->schema());
      auto table_s = external.database()->CreateTable(
          "Sales", loaded_sales->schema());
      bench::Check(table_c.status(), "create customers");
      bench::Check(table_s.status(), "create sales");
      bench::Check((*table_c)->InsertAll(loaded_customers->rows()),
                   "fill customers");
      bench::Check((*table_s)->InsertAll(loaded_sales->rows()), "fill sales");
      // 3. Mine outside.
      auto external_conn = external.Connect();
      bench::MustExecute(external_conn.get(),
                         bench::AgeModelDmx("M", "Naive_Bayes"));
      bench::MustExecute(external_conn.get(),
                         bench::AgeInsertDmx("M", "Customers", "Sales"));
    });
    table.AddRow({std::to_string(n), bench::Fmt(in_db_seconds),
                  bench::Fmt(export_seconds),
                  bench::Fmt(export_seconds / in_db_seconds, 2) + "x",
                  bench::FmtInt(exported_bytes / 1024.0)});
    std::remove(customers_csv.c_str());
    std::remove(sales_csv.c_str());
  }
  table.Print();
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E1", "claim §1: avoid export-and-mine-outside",
      "the export pipeline pays dump + reparse + reload on top of the same "
      "training work, so in-database wins at every size and the gap is a "
      "constant multiple (plus the on-disk droppings)");
  dmx::RunExperiment();
  return 0;
}
