// F1 — Figure 1: the provider stack. The paper's architecture routes every
// consumer interaction through one command pipe (consumer -> OLE DB DM
// provider -> relational engine). This harness measures the latency of each
// layer of that stack with google-benchmark: command classification+parse,
// relational query execution, shaping, model training, per-case prediction
// and content browsing — the cost decomposition of a Figure-1 round trip.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/dmx_parser.h"
#include "relational/sql_executor.h"
#include "shape/shape_executor.h"
#include "shape/shape_parser.h"

namespace dmx {
namespace {

// Shared fixture state: one provider with a 1000-customer warehouse and a
// trained model, built once.
struct Stack {
  Provider provider;
  std::unique_ptr<Connection> conn;

  Stack() {
    conn = provider.Connect();
    bench::SetupWarehouses(&provider, 1000, 200);
    bench::MustExecute(conn.get(),
                       bench::AgeModelDmx("M", "Naive_Bayes"));
    bench::MustExecute(conn.get(), bench::AgeInsertDmx("M", "Customers",
                                                       "Sales"));
  }
};

Stack* stack = nullptr;

constexpr const char* kPredictionJoin = R"(
  SELECT t.[Customer ID], Predict([Age]) AS P FROM [M]
  NATURAL PREDICTION JOIN
    (SHAPE {SELECT [Customer ID], [Gender] FROM TestCustomers
            ORDER BY [Customer ID]}
     APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM TestSales
              ORDER BY [CustID]}
             RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t)";

void BM_ParseAndClassify_Create(benchmark::State& state) {
  std::string command = bench::AgeModelDmx("M", "Naive_Bayes");
  for (auto _ : state) {
    auto parsed = ParseDmx(command);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseAndClassify_Create);

void BM_ParseAndClassify_PredictionJoin(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ParseDmx(kPredictionJoin);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseAndClassify_PredictionJoin);

void BM_RelationalLayer_Select(benchmark::State& state) {
  for (auto _ : state) {
    auto result = rel::ExecuteSql(
        stack->provider.database(),
        "SELECT [Customer ID], [Gender], [Age] FROM Customers "
        "ORDER BY [Customer ID]");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RelationalLayer_Select);

void BM_ShapingLayer_Caseset(benchmark::State& state) {
  auto stmt = shape::ParseShape(R"(
    SHAPE {SELECT [Customer ID], [Gender], [Age] FROM Customers
           ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
             ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  for (auto _ : state) {
    auto result = shape::ExecuteShape(*stack->provider.database(), *stmt);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ShapingLayer_Caseset);

void BM_MiningLayer_TrainRefresh(benchmark::State& state) {
  // Incremental refresh: one full warehouse pass through the NB learner.
  std::string insert = bench::AgeInsertDmx("M", "Customers", "Sales");
  for (auto _ : state) {
    bench::MustExecute(stack->conn.get(), insert);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MiningLayer_TrainRefresh);

void BM_FullStack_PredictionJoin(benchmark::State& state) {
  for (auto _ : state) {
    Rowset result = bench::MustExecute(stack->conn.get(), kPredictionJoin);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_FullStack_PredictionJoin);

void BM_BrowseLayer_Content(benchmark::State& state) {
  for (auto _ : state) {
    Rowset result = bench::MustExecute(stack->conn.get(),
                                       "SELECT * FROM [M].CONTENT");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BrowseLayer_Content);

void BM_SchemaRowset_Services(benchmark::State& state) {
  for (auto _ : state) {
    auto result =
        stack->conn->GetSchemaRowset(SchemaRowsetKind::kMiningServices);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SchemaRowset_Services);

}  // namespace
}  // namespace dmx

int main(int argc, char** argv) {
  dmx::bench::Banner(
      "F1", "Figure 1 (provider architecture)",
      "parse cost is microseconds; shaping and training dominate a Figure-1 "
      "round trip; prediction joins amortize to sub-millisecond per case");
  dmx::stack = new dmx::Stack();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  delete dmx::stack;
  return 0;
}
