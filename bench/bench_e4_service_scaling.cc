// E4 — One API, every model class (paper §2): "it is not specialized to any
// specific mining model but is structured to cater to all well-known mining
// models". All six built-in services are trained through IDENTICAL DMX
// statement shapes over one caseset family; this harness reports training
// time vs caseset size per service (the scaling curves).

#include "bench_util.h"

namespace dmx {
namespace {

struct ServicePlan {
  const char* label;
  std::string create;
  std::string insert;
};

std::vector<ServicePlan> Plans() {
  std::string basket_create = R"(
    CREATE MINING MODEL [M] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT
    ) USING Association_Rules(MINIMUM_SUPPORT = 0.05,
                              MINIMUM_PROBABILITY = 0.4))";
  std::string basket_insert = R"(
    INSERT INTO [M]
    SHAPE {SELECT [Customer ID], [Gender] FROM Customers
           ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name] FROM Sales ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";
  std::string regression_create = R"(
    CREATE MINING MODEL [M] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Customer Loyalty] LONG ORDERED,
      [Age] DOUBLE CONTINUOUS PREDICT,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name])
    ) USING Linear_Regression)";
  std::string regression_insert = R"(
    INSERT INTO [M]
    SHAPE {SELECT [Customer ID], [Gender], [Customer Loyalty], [Age]
           FROM Customers ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
             ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";
  std::string clustering_create = R"(
    CREATE MINING MODEL [M] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Age] DOUBLE CONTINUOUS,
      [Income] DOUBLE CONTINUOUS,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name])
    ) USING Clustering(CLUSTER_COUNT = 4, MAX_ITERATIONS = 25, SEED = 7))";
  std::string clustering_insert = R"(
    INSERT INTO [M]
    SHAPE {SELECT [Customer ID], [Gender], [Age], [Income] FROM Customers
           ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
             ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";
  std::string sequence_create = R"(
    CREATE MINING MODEL [M] (
      [Customer ID] LONG KEY,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Purchase Time] DOUBLE SEQUENCE_TIME
      ) PREDICT
    ) USING Sequence_Analysis)";
  std::string sequence_insert = R"(
    INSERT INTO [M]
    SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
             ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])";
  return {
      {"Decision_Trees", bench::AgeModelDmx("M", "Decision_Trees"),
       bench::AgeInsertDmx("M", "Customers", "Sales")},
      {"Naive_Bayes", bench::AgeModelDmx("M", "Naive_Bayes"),
       bench::AgeInsertDmx("M", "Customers", "Sales")},
      {"Clustering", clustering_create, clustering_insert},
      {"Association_Rules", basket_create, basket_insert},
      {"Linear_Regression", regression_create, regression_insert},
      {"Sequence_Analysis", sequence_create, sequence_insert},
  };
}

void RunExperiment() {
  const std::vector<int> sizes = {250, 1000, 4000};
  std::vector<std::string> headers = {"service"};
  for (int n : sizes) headers.push_back("train s (N=" + std::to_string(n) + ")");
  headers.push_back("content nodes (N=4000)");
  bench::Table table(headers);

  for (const ServicePlan& plan : Plans()) {
    std::vector<std::string> row = {plan.label};
    std::string content_nodes;
    for (int n : sizes) {
      Provider provider;
      datagen::WarehouseConfig config;
      config.num_customers = n;
      bench::Check(datagen::PopulateWarehouse(provider.database(), config),
                   "warehouse");
      auto conn = provider.Connect();
      bench::MustExecute(conn.get(), plan.create);
      double seconds = bench::MeasureSeconds(
          [&] { bench::MustExecute(conn.get(), plan.insert); });
      row.push_back(bench::Fmt(seconds));
      if (n == sizes.back()) {
        Rowset content = bench::MustExecute(conn.get(),
                                            "SELECT * FROM [M].CONTENT");
        content_nodes = std::to_string(content.num_rows());
      }
    }
    row.push_back(content_nodes);
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E4", "claim §2: one framework, all well-known model classes",
      "all six services train through identical DMX shapes; time grows "
      "roughly linearly in cases for the counting learners, EM and Apriori "
      "carry larger constants");
  dmx::RunExperiment();
  return 0;
}
