// E7 — DISCRETIZED ablation (paper §3.2.2): "the data ... should be
// transformed into and modeled as a number of ORDERED states by the
// provider". How the provider buckets a continuous target is a modeling
// choice; this ablation sweeps method x bucket count and reports the
// decision tree's age-bucket accuracy (normalized by chance level, since
// more buckets make the task harder) and training time.

#include "bench_util.h"

namespace dmx {
namespace {

void RunExperiment() {
  bench::Table table({"method", "buckets", "accuracy", "lift over chance",
                      "train s"});
  Provider provider;
  bench::SetupWarehouses(&provider, 3000, 1000);
  auto conn = provider.Connect();

  for (const char* method :
       {"EQUAL_RANGES", "EQUAL_FREQUENCIES", "CLUSTERS"}) {
    for (int buckets : {3, 4, 6, 8}) {
      std::string create =
          "CREATE MINING MODEL [M] (\n"
          "  [Customer ID] LONG KEY,\n"
          "  [Gender] TEXT DISCRETE,\n"
          "  [Age] DOUBLE DISCRETIZED(" + std::string(method) + ", " +
          std::to_string(buckets) + ") PREDICT,\n"
          "  [Product Purchases] TABLE(\n"
          "    [Product Name] TEXT KEY,\n"
          "    [Product Type] TEXT DISCRETE RELATED TO [Product Name]))\n"
          "USING Decision_Trees(MINIMUM_SUPPORT = 20.0)";
      bench::MustExecute(conn.get(), create);
      double seconds = bench::MeasureSeconds([&] {
        bench::MustExecute(conn.get(),
                           bench::AgeInsertDmx("M", "Customers", "Sales"));
      });
      Rowset predictions = bench::MustExecute(
          conn.get(), bench::AgePredictDmx("M", "TestCustomers", "TestSales"));
      double accuracy = bench::AgeBucketAccuracy(&provider, "M",
                                                 "TestCustomers", predictions);
      double chance = 1.0 / buckets;
      table.AddRow({method, std::to_string(buckets), bench::Fmt(accuracy),
                    bench::Fmt(accuracy / chance, 2) + "x",
                    bench::Fmt(seconds)});
      bench::MustExecute(conn.get(), "DROP MINING MODEL [M]");
    }
  }
  table.Print();
  std::cout <<
      "\nEqual-frequency buckets track the age distribution's mass and\n"
      "dominate equal-width ones at matched bucket counts (equal-width\n"
      "wastes buckets on sparse tails); CLUSTERS adapts to the planted age\n"
      "modes. Raw accuracy falls as buckets multiply while lift over chance\n"
      "rises - the bucket count is a real modeling decision, exactly why\n"
      "the API exposes it per column.\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E7", "claim §3.2.2: DISCRETIZED is a provider-side modeling choice",
      "equal-frequency >= equal-range accuracy at matched bucket counts; raw "
      "accuracy falls and lift over chance rises as buckets multiply");
  dmx::RunExperiment();
  return 0;
}
