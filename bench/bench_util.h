// Shared helpers for the experiment harnesses: timing, aligned table
// printing, standard warehouse + model setup, and prediction accuracy
// evaluation against the generator's ground truth.

#ifndef DMX_BENCH_BENCH_UTIL_H_
#define DMX_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace dmx::bench {

/// Wall-clock seconds for one invocation of `fn`.
inline double MeasureSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Executes a command, aborting the bench with a message on failure.
inline Rowset MustExecute(Connection* conn, const std::string& command) {
  auto result = conn->Execute(command);
  if (!result.ok()) {
    std::cerr << "bench command failed: " << result.status().ToString()
              << "\n" << command << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << what << ": " << status.ToString() << "\n";
    std::exit(1);
  }
}

/// Fixed-width row printer for experiment tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const std::string& h : headers_) widths_.push_back(h.size());
  }

  void AddRow(std::vector<std::string> cells) {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (size_t i = 0; i < headers_.size(); ++i) {
      if (i > 0) rule += "-+-";
      rule += std::string(widths_[i], '-');
    }
    std::cout << "  " << rule << "\n";
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::cout << "  ";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) std::cout << " | ";
      std::cout << cells[i]
                << std::string(widths_[i] - std::min(widths_[i],
                                                     cells[i].size()),
                               ' ');
    }
    std::cout << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Prints the experiment banner: id, paper artifact, expectation.
inline void Banner(const std::string& id, const std::string& artifact,
                   const std::string& expectation) {
  std::cout << "==================================================\n"
            << id << " - " << artifact << "\n"
            << "expected shape: " << expectation << "\n"
            << "==================================================\n";
}

/// Populates the standard train/test warehouses into `provider`.
inline void SetupWarehouses(Provider* provider, int train_customers,
                            int test_customers, uint64_t seed = 42) {
  datagen::WarehouseConfig train;
  train.num_customers = train_customers;
  train.seed = seed;
  Check(datagen::PopulateWarehouse(provider->database(), train), "train data");
  datagen::WarehouseConfig test;
  test.num_customers = test_customers;
  test.seed = seed + 1;
  test.first_customer_id = 10000000;
  test.customers_table = "TestCustomers";
  test.sales_table = "TestSales";
  test.cars_table = "TestCars";
  Check(datagen::PopulateWarehouse(provider->database(), test), "test data");
}

/// The paper's [Age Prediction] model over a given service.
inline std::string AgeModelDmx(const std::string& name,
                               const std::string& service,
                               const std::string& params = "") {
  return "CREATE MINING MODEL [" + name + "] (\n"
         "  [Customer ID] LONG KEY,\n"
         "  [Gender] TEXT DISCRETE,\n"
         "  [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,\n"
         "  [Product Purchases] TABLE(\n"
         "    [Product Name] TEXT KEY,\n"
         "    [Product Type] TEXT DISCRETE RELATED TO [Product Name]))\n"
         "USING " + service + params;
}

/// INSERT INTO <model> from the (customers, sales) tables via SHAPE.
inline std::string AgeInsertDmx(const std::string& name,
                                const std::string& customers,
                                const std::string& sales) {
  return "INSERT INTO [" + name + "] (\n"
         "  [Customer ID], [Gender], [Age],\n"
         "  [Product Purchases]([Product Name], [Product Type]))\n"
         "SHAPE {SELECT [Customer ID], [Gender], [Age] FROM " + customers +
         " ORDER BY [Customer ID]}\n"
         "APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM " +
         sales + " ORDER BY [CustID]}\n"
         "  RELATE [Customer ID] TO [CustID]) AS [Product Purchases]";
}

/// Prediction join over the test warehouse returning (id, predicted age).
inline std::string AgePredictDmx(const std::string& name,
                                 const std::string& customers,
                                 const std::string& sales) {
  return "SELECT t.[Customer ID], Predict([Age]) AS [P] FROM [" + name + "]\n"
         "NATURAL PREDICTION JOIN\n"
         "  (SHAPE {SELECT [Customer ID], [Gender] FROM " + customers +
         " ORDER BY [Customer ID]}\n"
         "   APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM " +
         sales + " ORDER BY [CustID]}\n"
         "     RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t";
}

/// Bucket-level age accuracy of `predictions` (id, predicted age value)
/// against the true ages in `customers_table`, using the model's
/// discretization bounds.
inline double AgeBucketAccuracy(Provider* provider, const std::string& model,
                                const std::string& customers_table,
                                const Rowset& predictions) {
  auto model_ptr = provider->models()->GetModel(model);
  Check(model_ptr.status(), "model lookup");
  int age_attr = (*model_ptr)->attributes().FindAttribute("Age");
  const Attribute& attr = (*model_ptr)->attributes().attributes[age_attr];

  auto table = provider->database()->GetTable(customers_table);
  Check(table.status(), "customers table");
  std::unordered_map<int64_t, double> truth;
  size_t id_col = *(*table)->schema()->ResolveColumn("Customer ID");
  size_t age_col = *(*table)->schema()->ResolveColumn("Age");
  for (const Row& row : (*table)->rows()) {
    truth[row[id_col].long_value()] = *row[age_col].AsDouble();
  }
  int correct = 0;
  int total = 0;
  for (const Row& row : predictions.rows()) {
    auto it = truth.find(row[0].long_value());
    if (it == truth.end() || row[1].is_null()) continue;
    ++total;
    int truth_bucket = attr.BucketOf(it->second);
    int predicted_bucket = attr.BucketOf(*row[1].AsDouble());
    if (truth_bucket == predicted_bucket) ++correct;
  }
  return total > 0 ? static_cast<double>(correct) / total : 0;
}

}  // namespace dmx::bench

#endif  // DMX_BENCH_BENCH_UTIL_H_
