// E8 — Content browsing and PMML persistence (paper §3.3 / §4). Model
// content is exposed as a navigable rowset and persisted in a PMML-inspired
// XML format; this harness sweeps model size (via tree depth and warehouse
// size) and reports content-graph size, content-rowset generation time, and
// PMML export/import times + document size, verifying each round trip.

#include "bench_util.h"
#include "pmml/pmml.h"

namespace dmx {
namespace {

void RunExperiment() {
  bench::Table table({"depth", "customers", "content nodes", "content s",
                      "PMML KB", "export s", "import s"});
  for (int depth : {2, 4, 8}) {
    for (int n : {1000, 4000}) {
      Provider provider;
      datagen::WarehouseConfig config;
      config.num_customers = n;
      bench::Check(datagen::PopulateWarehouse(provider.database(), config),
                   "warehouse");
      auto conn = provider.Connect();
      bench::MustExecute(
          conn.get(),
          bench::AgeModelDmx("M", "Decision_Trees",
                             "(MAXIMUM_DEPTH = " + std::to_string(depth) +
                                 ", MINIMUM_SUPPORT = 5.0)"));
      bench::MustExecute(conn.get(),
                         bench::AgeInsertDmx("M", "Customers", "Sales"));

      Rowset content;
      double content_seconds = bench::MeasureSeconds([&] {
        content = bench::MustExecute(conn.get(),
                                     "SELECT * FROM [M].CONTENT");
      });

      auto model = provider.models()->GetModel("M");
      bench::Check(model.status(), "model");
      std::string document;
      double export_seconds = bench::MeasureSeconds([&] {
        auto serialized = SerializeModel(**model);
        bench::Check(serialized.status(), "serialize");
        document = std::move(serialized).value();
      });
      double import_seconds = bench::MeasureSeconds([&] {
        auto loaded = DeserializeModel(document, *provider.services());
        bench::Check(loaded.status(), "deserialize");
        // Verify the round trip really worked.
        if ((*loaded)->case_count() != (*model)->case_count()) {
          std::cerr << "round-trip case count mismatch\n";
          std::exit(1);
        }
      });

      table.AddRow({std::to_string(depth), std::to_string(n),
                    std::to_string(content.num_rows()),
                    bench::Fmt(content_seconds),
                    bench::FmtInt(document.size() / 1024.0),
                    bench::Fmt(export_seconds), bench::Fmt(import_seconds)});
    }
  }
  table.Print();
  std::cout <<
      "\nContent and PMML sizes track the learned structure (tree depth),\n"
      "not the training-set size - the models really are the compact\n"
      "abstractions the paper contrasts with tables (its footnote 2).\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E8", "claim §3.3/§4: browsable content, open persistence",
      "content node counts and PMML bytes grow with model complexity (depth) "
      "but not with training rows; export/import are milliseconds");
  dmx::RunExperiment();
  return 0;
}
