// C1 — concurrency throughput: statements/second through one provider under
// the PR-3 mixed 8-thread stress shape (per-thread DML + reads + cross-thread
// peeks on a store-backed provider), plus pure shared-lock readers and a
// checkpointer racing writers. Run via tools/run_bench.sh, which captures the
// google-benchmark JSON as BENCH_concurrency.json — items_per_second is the
// statements/s figure for tracking lock-regime regressions across PRs.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.h"
#include "common/env.h"

namespace dmx {
namespace {

Provider* g_provider = nullptr;

/// The PR-3 stress shape: every thread owns a private table (S<i>) it
/// inserts into, reads back and trims, plus a peek at its neighbour's table
/// to force genuine reader/writer interleavings on the catalog lock.
void BM_MixedStress(benchmark::State& state) {
  auto conn = g_provider->Connect();
  const std::string table = "S" + std::to_string(state.thread_index());
  const std::string other =
      "S" + std::to_string((state.thread_index() + 1) % state.threads());
  // May already exist when the harness re-runs the body to calibrate.
  (void)conn->Execute("CREATE TABLE [" + table + "] ([A] LONG, [X] DOUBLE)");

  int64_t ops = 0;
  int64_t row = 0;
  for (auto _ : state) {
    ++row;
    bench::MustExecute(conn.get(), "INSERT INTO [" + table + "] VALUES (" +
                                       std::to_string(row) + ", 1.5)");
    bench::MustExecute(conn.get(),
                       "SELECT COUNT(*) AS N FROM [" + table + "]");
    auto peek = conn->Execute("SELECT COUNT(*) AS N FROM [" + other + "]");
    if (!peek.ok() && !peek.status().IsNotFound()) {
      state.SkipWithError(peek.status().ToString().c_str());
      break;
    }
    bench::MustExecute(conn.get(), "DELETE FROM [" + table + "] WHERE [A] = " +
                                       std::to_string(row));
    ops += 4;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_MixedStress)->Threads(8)->UseRealTime();

/// Pure reader concurrency: every thread holds only the shared catalog lock.
/// Scaling loss here is lock overhead, not data contention.
void BM_SharedReaders(benchmark::State& state) {
  auto conn = g_provider->Connect();
  int64_t ops = 0;
  for (auto _ : state) {
    bench::MustExecute(conn.get(),
                       "SELECT COUNT(*) AS N FROM Customers");
    auto rowset = conn->GetSchemaRowset(SchemaRowsetKind::kMiningServices);
    if (!rowset.ok()) {
      state.SkipWithError(rowset.status().ToString().c_str());
      break;
    }
    ops += 2;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_SharedReaders)->Threads(1)->Threads(8)->UseRealTime();

/// Checkpointer vs writers: thread 0 rotates snapshot + WAL (exclusive
/// catalog lock + store mutex) while the rest run DML — the
/// catalog -> store lock ordering under real contention.
void BM_CheckpointVsWriters(benchmark::State& state) {
  auto conn = g_provider->Connect();
  const std::string table = "C" + std::to_string(state.thread_index());
  if (state.thread_index() != 0) {
    (void)conn->Execute("CREATE TABLE [" + table + "] ([A] LONG)");
  }
  int64_t ops = 0;
  int64_t row = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      bench::Check(g_provider->Checkpoint(), "checkpoint");
      ops += 1;
    } else {
      ++row;
      bench::MustExecute(conn.get(), "INSERT INTO [" + table + "] VALUES (" +
                                         std::to_string(row) + ")");
      bench::MustExecute(conn.get(), "DELETE FROM [" + table +
                                         "] WHERE [A] = " +
                                         std::to_string(row));
      ops += 2;
    }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_CheckpointVsWriters)->Threads(8)->UseRealTime();

}  // namespace
}  // namespace dmx

int main(int argc, char** argv) {
  dmx::bench::Banner(
      "C1", "Concurrency (lock regime throughput)",
      "mixed 8-thread DML+reads sustain provider throughput; shared readers "
      "scale with threads; checkpoints slow but never starve writers");

  const std::string dir = "/tmp/dmx_bench_concurrency_store";
  dmx::Env* env = dmx::Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const std::string& f : *names) (void)env->DeleteFile(dir + "/" + f);
  }

  dmx::g_provider = new dmx::Provider();
  dmx::bench::Check(dmx::g_provider->OpenStore(dir), "open store");
  dmx::bench::SetupWarehouses(dmx::g_provider, 500, 100);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  delete dmx::g_provider;
  return 0;
}
