// E3 — Case-at-a-time streaming (paper §3.1).
//
// "Data mining algorithms are designed so that they consume an entity
// instance at a time ... it increases scalability as it eliminates the need
// for data mining algorithms to do considerable bookkeeping."
//
// An incremental service (Naive_Bayes) consumes the shaped caseset through
// the streaming reader: only a bounded bootstrap buffer is ever resident in
// the mining layer. A batch service (Decision_Trees) must cache every bound
// case for retraining. This harness reports the resident-case footprint and
// wall time of both paths as the warehouse grows.

#include "bench_util.h"

namespace dmx {
namespace {

// Approximate bytes of one cached DataCase for the age model: 3 scalar
// slots + item entries.
size_t ApproxCaseBytes(const MiningModel& model) {
  size_t scalar = model.attributes().attributes.size() * sizeof(double);
  return sizeof(DataCase) + scalar + 6 * sizeof(CaseItem);
}

void RunExperiment() {
  bench::Table table({"customers", "service", "train s", "resident cases",
                      "resident case KB"});
  for (int n : {1000, 5000, 20000}) {
    for (const char* service : {"Naive_Bayes", "Decision_Trees"}) {
      Provider provider;
      datagen::WarehouseConfig config;
      config.num_customers = n;
      bench::Check(datagen::PopulateWarehouse(provider.database(), config),
                   "warehouse");
      auto conn = provider.Connect();
      bench::MustExecute(conn.get(), bench::AgeModelDmx("M", service));
      double seconds = bench::MeasureSeconds([&] {
        bench::MustExecute(conn.get(),
                           bench::AgeInsertDmx("M", "Customers", "Sales"));
      });
      auto model = provider.models()->GetModel("M");
      bench::Check(model.status(), "model");
      // Streaming residency: the bootstrap buffer only; batch residency: the
      // whole training cache.
      size_t resident =
          (*model)->cached_cases() > 0
              ? (*model)->cached_cases()
              : std::min<size_t>(MiningModel::kBootstrapCases,
                                 static_cast<size_t>(n));
      double resident_kb =
          resident * ApproxCaseBytes(**model) / 1024.0;
      table.AddRow({std::to_string(n), service, bench::Fmt(seconds),
                    std::to_string(resident), bench::FmtInt(resident_kb)});
    }
  }
  table.Print();
  std::cout <<
      "\nStreaming keeps the mining layer's footprint bounded (the bootstrap\n"
      "buffer pins DISCRETIZED bounds, then cases flow through one at a\n"
      "time); the batch service's cache grows linearly with the caseset.\n";
}

}  // namespace
}  // namespace dmx

int main() {
  dmx::bench::Banner(
      "E3", "claim §3.1: case-at-a-time consumption scales",
      "the incremental service's resident case count stays constant (1024 "
      "bootstrap cases) while the batch service caches all N");
  dmx::RunExperiment();
  return 0;
}
