// ServiceRegistry: the provider's table of installed mining services.
// CREATE MINING MODEL ... USING <name> resolves here, and the
// MINING_SERVICES / SERVICE_PARAMETERS schema rowsets are generated from the
// registered capabilities. Aliases let the paper's example names
// ("Decision_Trees_101") map onto real services.

#ifndef DMX_MODEL_SERVICE_REGISTRY_H_
#define DMX_MODEL_SERVICE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "model/mining_service.h"

namespace dmx {

/// \brief Case-insensitive name -> MiningService map with alias support.
class ServiceRegistry {
 public:
  /// Registers a service under its capability name. AlreadyExists on clash.
  Status Register(std::shared_ptr<MiningService> service);

  /// Registers an alternative DMX name for an existing service.
  Status RegisterAlias(const std::string& alias, const std::string& target);

  /// Resolves a USING-clause name (alias-aware). NotFound with the list of
  /// known services on failure.
  Result<std::shared_ptr<MiningService>> Find(const std::string& name) const;

  /// Capability names (not aliases) in sorted order.
  std::vector<std::string> ListServices() const;

 private:
  std::map<std::string, std::shared_ptr<MiningService>, LessCi> services_;
  std::map<std::string, std::string, LessCi> aliases_;
};

}  // namespace dmx

#endif  // DMX_MODEL_SERVICE_REGISTRY_H_
