#include "model/column_spec.h"

#include "common/string_util.h"

namespace dmx {

const char* ContentRoleToString(ContentRole role) {
  switch (role) {
    case ContentRole::kKey: return "KEY";
    case ContentRole::kAttribute: return "ATTRIBUTE";
    case ContentRole::kRelation: return "RELATION";
    case ContentRole::kQualifier: return "QUALIFIER";
    case ContentRole::kTable: return "TABLE";
  }
  return "?";
}

const char* AttributeTypeToString(AttributeType type) {
  switch (type) {
    case AttributeType::kDiscrete: return "DISCRETE";
    case AttributeType::kOrdered: return "ORDERED";
    case AttributeType::kCyclical: return "CYCLICAL";
    case AttributeType::kContinuous: return "CONTINUOUS";
    case AttributeType::kDiscretized: return "DISCRETIZED";
    case AttributeType::kSequenceTime: return "SEQUENCE_TIME";
  }
  return "?";
}

const char* QualifierKindToString(QualifierKind kind) {
  switch (kind) {
    case QualifierKind::kProbability: return "PROBABILITY";
    case QualifierKind::kVariance: return "VARIANCE";
    case QualifierKind::kSupport: return "SUPPORT";
    case QualifierKind::kProbabilityVariance: return "PROBABILITY_VARIANCE";
    case QualifierKind::kOrder: return "ORDER";
  }
  return "?";
}

const char* DistributionHintToString(DistributionHint hint) {
  switch (hint) {
    case DistributionHint::kNone: return "";
    case DistributionHint::kNormal: return "NORMAL";
    case DistributionHint::kLogNormal: return "LOG_NORMAL";
    case DistributionHint::kUniform: return "UNIFORM";
    case DistributionHint::kBinomial: return "BINOMIAL";
    case DistributionHint::kMultinomial: return "MULTINOMIAL";
    case DistributionHint::kPoisson: return "POISSON";
    case DistributionHint::kMixture: return "MIXTURE";
  }
  return "";
}

const char* DiscretizationMethodToString(DiscretizationMethod method) {
  switch (method) {
    case DiscretizationMethod::kEqualRanges: return "EQUAL_RANGES";
    case DiscretizationMethod::kEqualFrequencies: return "EQUAL_FREQUENCIES";
    case DiscretizationMethod::kClusters: return "CLUSTERS";
  }
  return "?";
}

Result<DiscretizationMethod> DiscretizationMethodFromString(
    const std::string& s) {
  if (EqualsCi(s, "EQUAL_RANGES") || EqualsCi(s, "EQUAL_AREAS")) {
    return DiscretizationMethod::kEqualRanges;
  }
  if (EqualsCi(s, "EQUAL_FREQUENCIES")) {
    return DiscretizationMethod::kEqualFrequencies;
  }
  if (EqualsCi(s, "CLUSTERS")) return DiscretizationMethod::kClusters;
  return ParseError() << "unknown discretization method '" << s << "'";
}

std::string ModelColumn::ToDmx() const {
  std::string out = QuoteIdentifier(name);
  if (role == ContentRole::kTable) {
    out += " TABLE(";
    for (size_t i = 0; i < nested.size(); ++i) {
      if (i > 0) out += ", ";
      out += nested[i].ToDmx();
    }
    out += ")";
    if (usage == PredictUsage::kPredict) out += " PREDICT";
    if (usage == PredictUsage::kPredictOnly) out += " PREDICT_ONLY";
    return out;
  }
  out += ' ';
  out += DataTypeToString(data_type);
  switch (role) {
    case ContentRole::kKey:
      out += " KEY";
      break;
    case ContentRole::kAttribute: {
      const char* hint = DistributionHintToString(distribution);
      if (*hint != '\0') {
        out += ' ';
        out += hint;
      }
      out += ' ';
      out += AttributeTypeToString(attr_type);
      if (attr_type == AttributeType::kDiscretized) {
        out += '(';
        out += DiscretizationMethodToString(discretization);
        out += ", " + std::to_string(discretization_buckets) + ")";
      }
      break;
    }
    case ContentRole::kRelation:
      out += " DISCRETE RELATED TO " + QuoteIdentifier(related_to);
      break;
    case ContentRole::kQualifier:
      out += ' ';
      out += QualifierKindToString(qualifier);
      out += " OF " + QuoteIdentifier(related_to);
      break;
    case ContentRole::kTable:
      break;  // handled above
  }
  if (not_null) out += " NOT NULL";
  if (model_existence_only) out += " MODEL_EXISTENCE_ONLY";
  if (usage == PredictUsage::kPredict) out += " PREDICT";
  if (usage == PredictUsage::kPredictOnly) out += " PREDICT_ONLY";
  return out;
}

namespace {

const ModelColumn* FindByName(const std::vector<ModelColumn>& columns,
                              const std::string& name) {
  for (const ModelColumn& col : columns) {
    if (EqualsCi(col.name, name)) return &col;
  }
  return nullptr;
}

}  // namespace

Status ValidateColumns(const std::vector<ModelColumn>& columns,
                       bool top_level) {
  if (columns.empty()) {
    return InvalidArgument() << "a mining model needs at least one column";
  }
  int key_count = 0;
  for (const ModelColumn& col : columns) {
    // Duplicate names.
    int dups = 0;
    for (const ModelColumn& other : columns) {
      if (EqualsCi(other.name, col.name)) ++dups;
    }
    if (dups > 1) {
      return InvalidArgument() << "duplicate column name '" << col.name << "'";
    }
    switch (col.role) {
      case ContentRole::kKey:
        ++key_count;
        if (col.is_output()) {
          return InvalidArgument()
                 << "key column '" << col.name << "' cannot be PREDICT";
        }
        break;
      case ContentRole::kAttribute:
        if ((col.attr_type == AttributeType::kContinuous ||
             col.attr_type == AttributeType::kDiscretized ||
             col.attr_type == AttributeType::kSequenceTime) &&
            col.data_type == DataType::kText) {
          return InvalidArgument()
                 << "column '" << col.name << "': " << "a "
                 << AttributeTypeToString(col.attr_type)
                 << " attribute must have a numeric data type";
        }
        break;
      case ContentRole::kRelation: {
        const ModelColumn* target = FindByName(columns, col.related_to);
        if (target == nullptr) {
          return BindError() << "RELATED TO target '" << col.related_to
                             << "' of column '" << col.name
                             << "' is not a column at the same level";
        }
        if (target->role == ContentRole::kTable) {
          return InvalidArgument() << "RELATED TO target '" << col.related_to
                                   << "' cannot be a TABLE column";
        }
        break;
      }
      case ContentRole::kQualifier: {
        const ModelColumn* target = FindByName(columns, col.related_to);
        if (target == nullptr) {
          return BindError() << "qualifier '" << col.name << "' modifies '"
                             << col.related_to
                             << "', which is not a column at the same level";
        }
        if (target->role != ContentRole::kAttribute &&
            target->role != ContentRole::kKey) {
          return InvalidArgument()
                 << "qualifier '" << col.name
                 << "' must modify an attribute or key column";
        }
        if (col.data_type == DataType::kText ||
            col.data_type == DataType::kTable) {
          return InvalidArgument()
                 << "qualifier '" << col.name << "' must be numeric";
        }
        break;
      }
      case ContentRole::kTable: {
        if (!top_level) {
          return InvalidArgument()
                 << "nested table '" << col.name
                 << "' inside a nested table: only one level of nesting is "
                    "supported (the paper's casesets are one level deep)";
        }
        DMX_RETURN_IF_ERROR(ValidateColumns(col.nested, /*top_level=*/false));
        break;
      }
    }
  }
  if (top_level && key_count != 1) {
    return InvalidArgument()
           << "a mining model needs exactly one case-level KEY column, got "
           << key_count;
  }
  if (!top_level && key_count != 1) {
    return InvalidArgument()
           << "a nested table needs exactly one KEY column, got " << key_count;
  }
  return Status::OK();
}

}  // namespace dmx
