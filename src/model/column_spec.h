// Model column specifications: the rich column metadata of paper §3.2 —
// content roles (KEY / ATTRIBUTE / RELATION / QUALIFIER / TABLE), attribute
// types (DISCRETE / CONTINUOUS / DISCRETIZED / ORDERED / CYCLICAL /
// SEQUENCE_TIME), qualifiers (PROBABILITY OF, VARIANCE OF, SUPPORT OF, ...),
// distribution hints, modeling flags and prediction markers.

#ifndef DMX_MODEL_COLUMN_SPEC_H_
#define DMX_MODEL_COLUMN_SPEC_H_

#include <string>
#include <vector>

#include "common/source_span.h"
#include "common/status.h"
#include "common/value.h"

namespace dmx {

/// Content role of a model column (paper §3.2.1).
enum class ContentRole {
  kKey,        ///< Identifies the case (top level) or the nested row.
  kAttribute,  ///< A modeling attribute.
  kRelation,   ///< Classifies another column (RELATED TO target).
  kQualifier,  ///< Statistical modifier of an attribute (OF target).
  kTable,      ///< Nested table column.
};

/// Attribute types (paper §3.2.2).
enum class AttributeType {
  kDiscrete,
  kOrdered,
  kCyclical,
  kContinuous,
  kDiscretized,
  kSequenceTime,
};

/// Qualifier kinds (paper §3.2.1, QUALIFIER examples a-e).
enum class QualifierKind {
  kProbability,
  kVariance,
  kSupport,
  kProbabilityVariance,
  kOrder,
};

/// Distribution hints (paper §3.2.3).
enum class DistributionHint {
  kNone,
  kNormal,
  kLogNormal,
  kUniform,
  kBinomial,
  kMultinomial,
  kPoisson,
  kMixture,
};

/// Prediction marker: plain input, PREDICT (input and output) or
/// PREDICT_ONLY (output only).
enum class PredictUsage { kInput, kPredict, kPredictOnly };

/// Discretization methods accepted by DISCRETIZED(<method>, <buckets>).
enum class DiscretizationMethod { kEqualRanges, kEqualFrequencies, kClusters };

const char* ContentRoleToString(ContentRole role);
const char* AttributeTypeToString(AttributeType type);
const char* QualifierKindToString(QualifierKind kind);
const char* DistributionHintToString(DistributionHint hint);
const char* DiscretizationMethodToString(DiscretizationMethod method);
Result<DiscretizationMethod> DiscretizationMethodFromString(
    const std::string& s);

/// \brief One column of a CREATE MINING MODEL definition. TABLE columns
/// carry their nested column list.
struct ModelColumn {
  std::string name;
  /// Where the column name appeared in the CREATE statement (zero when the
  /// definition was built programmatically, e.g. on the PMML import path).
  SourceSpan span;
  DataType data_type = DataType::kText;
  ContentRole role = ContentRole::kAttribute;
  AttributeType attr_type = AttributeType::kDiscrete;

  // RELATION: the classified column; QUALIFIER: the modified attribute.
  std::string related_to;
  QualifierKind qualifier = QualifierKind::kProbability;

  DistributionHint distribution = DistributionHint::kNone;
  bool not_null = false;
  /// MODEL_EXISTENCE_ONLY: "the information of interest is ... that a value
  /// is present" (paper §3.2.3).
  bool model_existence_only = false;
  PredictUsage usage = PredictUsage::kInput;

  // DISCRETIZED options.
  DiscretizationMethod discretization = DiscretizationMethod::kEqualRanges;
  int discretization_buckets = 5;

  // Nested columns when role == kTable.
  std::vector<ModelColumn> nested;

  bool is_key() const { return role == ContentRole::kKey; }
  bool is_table() const { return role == ContentRole::kTable; }
  bool is_output() const { return usage != PredictUsage::kInput; }
  bool is_input() const { return usage != PredictUsage::kPredictOnly; }

  /// Round-trippable DMX fragment ("[Age] DOUBLE DISCRETIZED PREDICT").
  std::string ToDmx() const;
};

/// Structural validation of a column list (one KEY per level, RELATED TO /
/// OF targets exist, TABLE nesting only one level deep, qualifier types,
/// ...). `top_level` distinguishes case-level from nested-level rules.
Status ValidateColumns(const std::vector<ModelColumn>& columns, bool top_level);

}  // namespace dmx

#endif  // DMX_MODEL_COLUMN_SPEC_H_
