#include "model/mining_service.h"

namespace dmx {

Status TrainedModel::ConsumeCase(const AttributeSet& attrs, const DataCase& c) {
  (void)attrs;
  (void)c;
  return NotSupported() << "service '" << service_name()
                        << "' does not support incremental training";
}

Result<ParamMap> MiningService::ResolveParams(
    const std::vector<AlgorithmParam>& params) const {
  ParamMap out;
  for (const ServiceParameter& declared : capabilities().parameters) {
    out[declared.name] = declared.default_value;
  }
  for (const AlgorithmParam& given : params) {
    auto it = out.find(given.name);
    if (it == out.end()) {
      return InvalidArgument()
             << "service '" << capabilities().name
             << "' has no parameter named '" << given.name << "'";
    }
    it->second = given.value;
  }
  return out;
}

Result<std::unique_ptr<TrainedModel>> MiningService::CreateEmpty(
    const AttributeSet& attrs, const ParamMap& params) const {
  (void)attrs;
  (void)params;
  return NotSupported() << "service '" << capabilities().name
                        << "' does not support incremental training";
}

Status MiningService::ValidateBinding(const AttributeSet& attrs) const {
  const ServiceCapabilities& caps = capabilities();
  bool any_output = false;
  for (const Attribute& attr : attrs.attributes) {
    if (!attr.is_output) continue;
    any_output = true;
    if (attr.is_continuous && !caps.supports_continuous_targets) {
      return NotSupported()
             << "service '" << caps.name
             << "' cannot predict continuous attribute '" << attr.name
             << "' (declare it DISCRETIZED instead)";
    }
    if (!attr.is_continuous && !caps.supports_discrete_targets) {
      return NotSupported() << "service '" << caps.name
                            << "' cannot predict discrete attribute '"
                            << attr.name << "'";
    }
  }
  for (const NestedGroup& group : attrs.groups) {
    if (group.is_output) {
      any_output = true;
      if (!caps.supports_table_prediction) {
        return NotSupported() << "service '" << caps.name
                              << "' cannot predict nested table '" << group.name
                              << "'";
      }
    }
  }
  if (!any_output && caps.supports_prediction && !caps.is_segmentation) {
    return InvalidArgument() << "model has no PREDICT column but service '"
                             << caps.name << "' is a predictive service";
  }
  return Status::OK();
}

}  // namespace dmx
