// ContentNode: the directed-graph view of a trained model's content
// (paper §3.3, "Browsing model content"). Every service renders its learned
// structure — tree nodes, clusters, itemsets, rules, regression terms — as a
// tree of ContentNodes; the provider exposes it through the
// MINING_MODEL_CONTENT schema rowset and `SELECT * FROM <model>.CONTENT`.

#ifndef DMX_MODEL_CONTENT_NODE_H_
#define DMX_MODEL_CONTENT_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rowset.h"

namespace dmx {

/// Node types, following the OLE DB DM MINING_MODEL_CONTENT taxonomy.
enum class NodeType {
  kModel,
  kTree,
  kInterior,
  kLeaf,
  kCluster,
  kItemset,
  kRule,
  kRegression,
  kNaiveBayesAttribute,
  kDistribution,
};

const char* NodeTypeToString(NodeType type);

/// One row of a node's NODE_DISTRIBUTION nested table.
struct DistributionEntry {
  std::string attribute;  ///< Attribute name the statistic refers to.
  Value value;            ///< Attribute value / state.
  double support = 0;
  double probability = 0;
  double variance = 0;
};

/// \brief One node of the model-content graph.
struct ContentNode {
  NodeType type = NodeType::kModel;
  std::string unique_name;   ///< NODE_UNIQUE_NAME, unique within the model.
  std::string caption;       ///< Short display label.
  std::string description;   ///< Longer human-readable description.
  std::string rule;          ///< Path/condition, e.g. "Gender = 'Male'".
  double probability = 0;    ///< P(node) among sibling paths.
  double marginal_probability = 0;  ///< P(node | parent).
  double support = 0;        ///< Training cases covered.
  double score = 0;          ///< Service-specific quality score.
  std::vector<DistributionEntry> distribution;
  std::vector<std::shared_ptr<ContentNode>> children;

  /// Total number of nodes in this subtree (including this node).
  size_t SubtreeSize() const;

  /// Depth-first flatten of the subtree with parent unique names, in the
  /// order MINING_MODEL_CONTENT rows are emitted.
  void Flatten(const std::string& parent_unique_name,
               std::vector<std::pair<const ContentNode*, std::string>>* out)
      const;

  /// Renders the distribution as the standard nested rowset
  /// (ATTRIBUTE_NAME, ATTRIBUTE_VALUE, SUPPORT, PROBABILITY, VARIANCE).
  std::shared_ptr<const NestedTable> DistributionTable() const;
};

using ContentNodePtr = std::shared_ptr<ContentNode>;

}  // namespace dmx

#endif  // DMX_MODEL_CONTENT_NODE_H_
