// MiningService: the pluggable-algorithm contract at the heart of the
// paper's design ("our intent is not to propose new algorithms, but to
// suggest a system infrastructure that makes it possible to 'plug in' any
// algorithm"). A service declares its capabilities (surfaced verbatim in the
// MINING_SERVICES schema rowset), validates USING-clause parameters, and
// produces TrainedModel instances that can predict, be browsed as a content
// graph, and optionally be trained incrementally.

#ifndef DMX_MODEL_MINING_SERVICE_H_
#define DMX_MODEL_MINING_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/attribute_set.h"
#include "model/content_node.h"
#include "model/model_definition.h"
#include "model/prediction.h"

namespace dmx {

/// One declared algorithm parameter (SERVICE_PARAMETERS schema rowset row).
struct ServiceParameter {
  std::string name;
  std::string description;
  Value default_value;
};

/// \brief Self-description of a mining service (MINING_SERVICES row).
struct ServiceCapabilities {
  std::string name;          ///< DMX name used in USING, e.g. "Decision_Trees".
  std::string display_name;
  std::string description;
  /// Task flags, as the paper's schema rowsets "describe the supported
  /// capabilities (e.g. prediction, segmentation, sequence analysis, ...)".
  bool supports_prediction = true;
  bool is_segmentation = false;
  bool supports_association = false;
  /// Incremental model maintenance: cases can be consumed one at a time and
  /// repeatedly (INSERT INTO refresh without retraining).
  bool supports_incremental = false;
  bool supports_continuous_targets = false;
  bool supports_discrete_targets = true;
  /// Can predict nested TABLE columns (ranked item sets).
  bool supports_table_prediction = false;
  /// Sequence analysis: consumes SEQUENCE_TIME-ordered nested items.
  bool supports_sequence_analysis = false;
  std::vector<ServiceParameter> parameters;
};

/// \brief A trained data mining model's algorithm-side state.
///
/// The provider-side MiningModel object owns one of these after INSERT INTO;
/// DELETE FROM destroys it.
class TrainedModel {
 public:
  virtual ~TrainedModel() = default;

  /// The service that produced this model (for persistence round-trips).
  virtual const std::string& service_name() const = 0;

  /// Number of training cases consumed (weighted).
  virtual double case_count() const = 0;

  /// Computes predictions for every output attribute/group of `attrs`.
  /// `input` carries the bound input attribute values; output slots are
  /// ignored (they are what is being predicted).
  virtual Result<CasePrediction> Predict(const AttributeSet& attrs,
                                         const DataCase& input,
                                         const PredictOptions& options) const = 0;

  /// Renders the learned structure as a content graph rooted at a
  /// NodeType::kModel node.
  virtual Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const = 0;

  /// Incremental maintenance: consume one more training case. Default:
  /// NotSupported (the provider falls back to cache-and-retrain).
  virtual Status ConsumeCase(const AttributeSet& attrs, const DataCase& c);
};

/// \brief A mining algorithm plug-in.
class MiningService {
 public:
  virtual ~MiningService() = default;

  virtual const ServiceCapabilities& capabilities() const = 0;

  /// Resolves USING-clause parameters against the declared list: unknown
  /// names fail, missing ones take defaults.
  Result<ParamMap> ResolveParams(const std::vector<AlgorithmParam>& params) const;

  /// Batch training over fully bound cases.
  virtual Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const = 0;

  /// Creates an empty model for incremental consumption (services with
  /// supports_incremental). Default: NotSupported.
  virtual Result<std::unique_ptr<TrainedModel>> CreateEmpty(
      const AttributeSet& attrs, const ParamMap& params) const;

  /// Service-specific validation of the bound attribute space (e.g. a
  /// regression service requiring a continuous target). Default: checks the
  /// generic capability flags against the outputs.
  virtual Status ValidateBinding(const AttributeSet& attrs) const;
};

}  // namespace dmx

#endif  // DMX_MODEL_MINING_SERVICE_H_
