// Prediction result structures (paper §3.2.4): a prediction is not just a
// value — it carries probability, support, variance, and optionally a full
// histogram of alternatives; set-valued targets (nested tables) predict a
// ranked collection of items. The DMX UDFs (Predict, PredictProbability,
// PredictHistogram, TopCount, ...) read these structures.

#ifndef DMX_MODEL_PREDICTION_H_
#define DMX_MODEL_PREDICTION_H_

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/value.h"

namespace dmx {

/// One histogram entry: a candidate value with its statistics.
struct ScoredValue {
  Value value;
  double probability = 0;
  double support = 0;
  double variance = 0;
  /// Categorical state / bucket / item index behind `value` (-1 when the
  /// entry is not dictionary-backed). RangeMin/Mid/Max resolve DISCRETIZED
  /// bucket bounds through this.
  int state = -1;

  /// Standard deviation derived from variance.
  double stdev() const { return variance > 0 ? std::sqrt(variance) : 0; }
};

/// \brief The prediction for one target (scalar attribute or nested table).
struct AttributePrediction {
  /// Best estimate: the argmax value for discrete targets, the posterior
  /// mean for continuous ones, NULL when the model cannot say.
  Value predicted;
  double probability = 0;  ///< Of `predicted` (continuous: of the leaf/cluster).
  double support = 0;      ///< Training cases behind the prediction.
  double variance = 0;     ///< Continuous targets: predictive variance.

  /// All candidate values sorted by descending probability. For nested-table
  /// targets: the ranked item recommendations. Continuous targets may carry
  /// a bucketed histogram when the service provides one.
  std::vector<ScoredValue> histogram;

  /// For segmentation services: the winning cluster id (else -1).
  int cluster_id = -1;
};

/// \brief All target predictions for one input case, keyed by the model
/// column name ("Age") or nested table name ("Product Purchases").
struct CasePrediction {
  std::map<std::string, AttributePrediction, LessCi> targets;

  const AttributePrediction* Find(const std::string& name) const {
    auto it = targets.find(name);
    return it == targets.end() ? nullptr : &it->second;
  }
};

/// Options a caller can pass down to TrainedModel::Predict.
struct PredictOptions {
  /// Cap on histogram length for set-valued targets (<=0: no cap).
  int max_histogram = 0;
  /// Include states with zero posterior probability.
  bool include_zero_probability = false;
};

}  // namespace dmx

#endif  // DMX_MODEL_PREDICTION_H_
