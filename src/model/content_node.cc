#include "model/content_node.h"

#include <cmath>

namespace dmx {

const char* NodeTypeToString(NodeType type) {
  switch (type) {
    case NodeType::kModel: return "Model";
    case NodeType::kTree: return "Tree";
    case NodeType::kInterior: return "Interior";
    case NodeType::kLeaf: return "Leaf";
    case NodeType::kCluster: return "Cluster";
    case NodeType::kItemset: return "Itemset";
    case NodeType::kRule: return "Rule";
    case NodeType::kRegression: return "Regression";
    case NodeType::kNaiveBayesAttribute: return "NaiveBayesAttribute";
    case NodeType::kDistribution: return "Distribution";
  }
  return "?";
}

size_t ContentNode::SubtreeSize() const {
  size_t total = 1;
  for (const ContentNodePtr& child : children) total += child->SubtreeSize();
  return total;
}

void ContentNode::Flatten(
    const std::string& parent_unique_name,
    std::vector<std::pair<const ContentNode*, std::string>>* out) const {
  out->emplace_back(this, parent_unique_name);
  for (const ContentNodePtr& child : children) {
    child->Flatten(unique_name, out);
  }
}

std::shared_ptr<const NestedTable> ContentNode::DistributionTable() const {
  static const auto kSchema = Schema::Make({{"ATTRIBUTE_NAME", DataType::kText},
                                            {"ATTRIBUTE_VALUE", DataType::kText},
                                            {"SUPPORT", DataType::kDouble},
                                            {"PROBABILITY", DataType::kDouble},
                                            {"VARIANCE", DataType::kDouble}});
  std::vector<Row> rows;
  rows.reserve(distribution.size());
  for (const DistributionEntry& entry : distribution) {
    rows.push_back({Value::Text(entry.attribute),
                    Value::Text(entry.value.ToString()),
                    Value::Double(entry.support),
                    Value::Double(entry.probability),
                    Value::Double(entry.variance)});
  }
  return NestedTable::Make(kSchema, std::move(rows));
}

}  // namespace dmx
