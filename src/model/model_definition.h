// ModelDefinition: the parsed form of CREATE MINING MODEL — the model name,
// its column specifications, and the USING clause (mining service plus
// algorithm parameters).

#ifndef DMX_MODEL_MODEL_DEFINITION_H_
#define DMX_MODEL_MODEL_DEFINITION_H_

#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/value.h"
#include "model/column_spec.h"

namespace dmx {

/// One USING-clause parameter, e.g. CLUSTER_COUNT = 4.
struct AlgorithmParam {
  std::string name;
  Value value;
};

/// Algorithm parameters resolved against a service's declared parameter list.
using ParamMap = std::map<std::string, Value, LessCi>;

/// \brief The definition half of a data mining model (paper §3.2).
struct ModelDefinition {
  std::string model_name;
  SourceSpan name_span;     ///< Model-name position in the CREATE text.
  std::vector<ModelColumn> columns;
  std::string service_name;
  SourceSpan service_span;  ///< USING-clause service-name position.
  std::vector<AlgorithmParam> parameters;

  /// Finds a top-level column by name; nullptr when absent.
  const ModelColumn* FindColumn(const std::string& name) const;

  /// All top-level output (PREDICT / PREDICT_ONLY) columns.
  std::vector<const ModelColumn*> OutputColumns() const;

  /// The case-level KEY column (validated definitions have exactly one).
  const ModelColumn* KeyColumn() const;

  /// Structural validation (delegates to ValidateColumns and checks that at
  /// least one column or nested table is an output).
  Status Validate() const;

  /// Round-trippable CREATE MINING MODEL text.
  std::string ToDmx() const;
};

}  // namespace dmx

#endif  // DMX_MODEL_MODEL_DEFINITION_H_
