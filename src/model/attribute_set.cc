#include "model/attribute_set.h"

#include <algorithm>

#include "common/string_util.h"

namespace dmx {

int Attribute::InternCategory(const Value& value) {
  auto it = category_index.find(value);
  if (it != category_index.end()) return it->second;
  int index = static_cast<int>(categories.size());
  categories.push_back(value);
  category_index.emplace(value, index);
  return index;
}

int Attribute::LookupCategory(const Value& value) const {
  auto it = category_index.find(value);
  return it == category_index.end() ? -1 : it->second;
}

int Attribute::BucketOf(double v) const {
  int bucket = 0;
  while (bucket < static_cast<int>(bucket_bounds.size()) &&
         v >= bucket_bounds[bucket]) {
    ++bucket;
  }
  return bucket;
}

std::string Attribute::StateName(int index) const {
  if (existence_only) return index == 1 ? "Existing" : "Missing";
  if (is_discretized()) {
    const size_t n = bucket_bounds.size();
    if (index <= 0) {
      if (n == 0) return "(all)";
      return "< " + FormatDouble(bucket_bounds[0]);
    }
    if (static_cast<size_t>(index) >= n) {
      return ">= " + FormatDouble(bucket_bounds[n - 1]);
    }
    return "[" + FormatDouble(bucket_bounds[index - 1]) + ", " +
           FormatDouble(bucket_bounds[index]) + ")";
  }
  if (index < 0 || index >= static_cast<int>(categories.size())) {
    return "<unknown>";
  }
  return categories[index].ToString();
}

Value Attribute::StateValue(int index) const {
  if (existence_only) return Value::Bool(index == 1);
  if (is_discretized()) {
    // Representative value: the bucket midpoint (ends use the boundary).
    const size_t n = bucket_bounds.size();
    if (n == 0) return Value::Double(0);
    if (index <= 0) return Value::Double(bucket_bounds[0]);
    if (static_cast<size_t>(index) >= n) return Value::Double(bucket_bounds[n - 1]);
    return Value::Double((bucket_bounds[index - 1] + bucket_bounds[index]) / 2);
  }
  if (index < 0 || index >= static_cast<int>(categories.size())) {
    return Value::Null();
  }
  return categories[index];
}

int NestedGroup::InternKey(const Value& value) {
  auto it = key_index.find(value);
  if (it != key_index.end()) return it->second;
  int index = static_cast<int>(keys.size());
  keys.push_back(value);
  key_index.emplace(value, index);
  return index;
}

int NestedGroup::LookupKey(const Value& value) const {
  auto it = key_index.find(value);
  return it == key_index.end() ? -1 : it->second;
}

int AttributeSet::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (EqualsCi(attributes[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

int AttributeSet::FindGroup(const std::string& name) const {
  for (size_t i = 0; i < groups.size(); ++i) {
    if (EqualsCi(groups[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> AttributeSet::InputAttributeIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].is_input) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> AttributeSet::OutputAttributeIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].is_output) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace dmx
