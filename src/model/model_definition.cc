#include "model/model_definition.h"

namespace dmx {

const ModelColumn* ModelDefinition::FindColumn(const std::string& name) const {
  for (const ModelColumn& col : columns) {
    if (EqualsCi(col.name, name)) return &col;
  }
  return nullptr;
}

std::vector<const ModelColumn*> ModelDefinition::OutputColumns() const {
  std::vector<const ModelColumn*> out;
  for (const ModelColumn& col : columns) {
    if (col.is_output()) out.push_back(&col);
  }
  return out;
}

const ModelColumn* ModelDefinition::KeyColumn() const {
  for (const ModelColumn& col : columns) {
    if (col.is_key()) return &col;
  }
  return nullptr;
}

Status ModelDefinition::Validate() const {
  if (model_name.empty()) {
    return InvalidArgument() << "mining model name is empty";
  }
  if (service_name.empty()) {
    return InvalidArgument() << "mining model '" << model_name
                             << "' has no USING clause";
  }
  DMX_RETURN_IF_ERROR(ValidateColumns(columns, /*top_level=*/true));
  bool has_output = false;
  for (const ModelColumn& col : columns) {
    if (col.is_output()) has_output = true;
    if (col.is_table()) {
      for (const ModelColumn& nested : col.nested) {
        if (nested.is_output()) has_output = true;
      }
    }
  }
  // Segmentation models legitimately have no PREDICT column; whether one is
  // required is decided by the service at bind time, so only warn-level
  // validation happens here.
  (void)has_output;
  return Status::OK();
}

std::string ModelDefinition::ToDmx() const {
  std::string out = "CREATE MINING MODEL " + QuoteIdentifier(model_name) + " (\n";
  for (size_t i = 0; i < columns.size(); ++i) {
    out += "  " + columns[i].ToDmx();
    if (i + 1 < columns.size()) out += ',';
    out += '\n';
  }
  out += ") USING " + QuoteIdentifier(service_name);
  if (!parameters.empty()) {
    out += '(';
    for (size_t i = 0; i < parameters.size(); ++i) {
      if (i > 0) out += ", ";
      out += QuoteIdentifier(parameters[i].name) + " = ";
      if (parameters[i].value.is_text()) {
        out += "'" + parameters[i].value.text_value() + "'";
      } else {
        out += parameters[i].value.ToString();
      }
    }
    out += ')';
  }
  return out;
}

}  // namespace dmx
