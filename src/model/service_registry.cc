#include "model/service_registry.h"

namespace dmx {

Status ServiceRegistry::Register(std::shared_ptr<MiningService> service) {
  const std::string& name = service->capabilities().name;
  if (services_.count(name) > 0 || aliases_.count(name) > 0) {
    return AlreadyExists() << "mining service '" << name
                           << "' is already registered";
  }
  services_.emplace(name, std::move(service));
  return Status::OK();
}

Status ServiceRegistry::RegisterAlias(const std::string& alias,
                                      const std::string& target) {
  if (services_.count(alias) > 0 || aliases_.count(alias) > 0) {
    return AlreadyExists() << "name '" << alias << "' is already registered";
  }
  if (services_.count(target) == 0) {
    return NotFound() << "alias target service '" << target
                      << "' is not registered";
  }
  aliases_.emplace(alias, target);
  return Status::OK();
}

Result<std::shared_ptr<MiningService>> ServiceRegistry::Find(
    const std::string& name) const {
  auto it = services_.find(name);
  if (it != services_.end()) return it->second;
  auto alias = aliases_.find(name);
  if (alias != aliases_.end()) {
    it = services_.find(alias->second);
    if (it != services_.end()) return it->second;
  }
  std::string known;
  for (const auto& [service_name, service] : services_) {
    if (!known.empty()) known += ", ";
    known += service_name;
  }
  return NotFound() << "unknown mining service '" << name
                    << "' (registered services: " << known << ")";
}

std::vector<std::string> ServiceRegistry::ListServices() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, service] : services_) out.push_back(name);
  return out;
}

}  // namespace dmx
