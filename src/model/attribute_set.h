// AttributeSet and DataCase: the uniform representation handed to mining
// services. Case binding (core/case_binder) turns each hierarchical case of
// a caseset into a DataCase:
//
//  * every scalar ATTRIBUTE column becomes one Attribute slot — categorical
//    attributes carry a value dictionary, continuous ones a raw double,
//    DISCRETIZED ones a bucket index (the bucket bounds live on the
//    Attribute);
//  * every TABLE column becomes a NestedGroup with a dictionary over its KEY
//    values, and each case carries the set of item indices present (plus the
//    per-item values of non-key nested attributes);
//  * QUALIFIER columns do not become attributes — they feed case weights
//    (SUPPORT OF) and soft labels (PROBABILITY OF) on their target.
//
// This realizes the paper's claim that consolidated cases let "traditional
// data mining algorithms ... be leveraged with relative ease": services see
// plain attribute vectors regardless of how the relational data was shaped.

#ifndef DMX_MODEL_ATTRIBUTE_SET_H_
#define DMX_MODEL_ATTRIBUTE_SET_H_

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "model/column_spec.h"

namespace dmx {

/// Missing-value sentinel in DataCase::values.
inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

inline bool IsMissing(double v) { return std::isnan(v); }

/// \brief One scalar modeling attribute.
struct Attribute {
  std::string name;  ///< Model column name, or "Table.Column" for nested.
  bool is_continuous = false;
  bool is_input = true;
  bool is_output = false;
  AttributeType declared_type = AttributeType::kDiscrete;
  DistributionHint hint = DistributionHint::kNone;
  /// MODEL_EXISTENCE_ONLY: values collapse to Existing / Missing.
  bool existence_only = false;

  // Categorical dictionary (value <-> dense index). Used by discrete,
  // ordered and cyclical attributes; ordered dictionaries are sorted.
  std::vector<Value> categories;
  std::unordered_map<Value, int, ValueHash> category_index;

  // DISCRETIZED: bucket i covers [bounds[i-1], bounds[i]) with open ends.
  // Filled during binding; size == bucket_count - 1 once trained.
  std::vector<double> bucket_bounds;
  DiscretizationMethod discretization = DiscretizationMethod::kEqualRanges;
  int requested_buckets = 5;

  bool is_discretized() const {
    return declared_type == AttributeType::kDiscretized;
  }
  bool is_cyclical() const { return declared_type == AttributeType::kCyclical; }

  /// Number of categorical states (discretized: bucket count).
  int cardinality() const {
    if (is_discretized()) return static_cast<int>(bucket_bounds.size()) + 1;
    return static_cast<int>(categories.size());
  }

  /// Interns `value`, growing the dictionary, and returns its index.
  int InternCategory(const Value& value);

  /// Index of `value`, or -1 if unseen.
  int LookupCategory(const Value& value) const;

  /// Bucket index of a continuous value per bucket_bounds.
  int BucketOf(double v) const;

  /// Display form of categorical state `index` (bucket ranges for
  /// discretized attributes: "[18.0, 32.4)").
  std::string StateName(int index) const;

  /// The Value representing state `index` (bucket midpoint for discretized).
  Value StateValue(int index) const;
};

/// \brief One nested TABLE column, modeled as a set-valued attribute group.
struct NestedGroup {
  std::string name;  ///< The TABLE column's name, e.g. "Product Purchases".
  bool is_input = true;
  bool is_output = false;

  // Dictionary over the nested KEY values ("items": products, cars, ...).
  std::vector<Value> keys;
  std::unordered_map<Value, int, ValueHash> key_index;

  /// Names of non-key nested value attributes (e.g. "Quantity"); per-case
  /// item values align with this list.
  std::vector<std::string> value_names;

  /// Index into value_names of the SEQUENCE_TIME column (-1: unordered
  /// group). Sequence services order a case's items by this value.
  int sequence_time_value = -1;

  int InternKey(const Value& value);
  int LookupKey(const Value& value) const;
};

/// \brief The bound attribute space of a mining model.
struct AttributeSet {
  std::vector<Attribute> attributes;
  std::vector<NestedGroup> groups;

  /// Index of the scalar attribute named `name` (case-insensitive), or -1.
  int FindAttribute(const std::string& name) const;
  /// Index of the nested group named `name`, or -1.
  int FindGroup(const std::string& name) const;

  std::vector<int> InputAttributeIndices() const;
  std::vector<int> OutputAttributeIndices() const;
};

/// One item occurrence inside a nested group.
struct CaseItem {
  int key = -1;                 ///< Index into NestedGroup::keys.
  std::vector<double> values;   ///< Aligned with NestedGroup::value_names.
};

/// \brief One case, bound to an AttributeSet.
struct DataCase {
  /// One slot per AttributeSet::attributes entry: the raw double for
  /// continuous attributes, the dense category/bucket index for categorical
  /// ones, kMissing for NULL/absent.
  std::vector<double> values;

  /// Case weight (SUPPORT OF qualifier; default 1).
  double weight = 1.0;

  /// Per-attribute label confidence (PROBABILITY OF qualifier; default 1).
  /// Sparse: empty vector means "all 1".
  std::vector<double> confidences;

  /// One item list per AttributeSet::groups entry.
  std::vector<std::vector<CaseItem>> groups;

  double confidence(size_t attribute) const {
    return attribute < confidences.size() ? confidences[attribute] : 1.0;
  }
};

}  // namespace dmx

#endif  // DMX_MODEL_ATTRIBUTE_SET_H_
