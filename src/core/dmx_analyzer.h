// DmxAnalyzer: the semantic-analysis front end of the provider. It walks a
// parsed DMX statement (and the model definition inside CREATE MINING MODEL)
// *before* execution and accumulates every rule violation into one
// AnalysisReport, instead of failing on the first bad Status the way the
// execution path does. Each finding carries a stable rule id, a severity, a
// source span and a fix hint, so consumers (dmxsh's ANALYZE command, CI
// linting of model scripts) can render compiler-style diagnostics:
//
//   error [key-count] at 1:26: mining model 'm' needs exactly one case-level
//       KEY column, got 0  (hint: mark the case id column KEY)
//
// The rules encode the paper's column-metadata contract (§3.2): KEY
// uniqueness per nesting level, RELATED TO / qualifier targets, distribution
// hints, SEQUENCE_TIME ordering, PREDICT-column presence for prediction
// joins, plus lint-grade warnings (unused columns, shadowed aliases).

#ifndef DMX_CORE_DMX_ANALYZER_H_
#define DMX_CORE_DMX_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/source_span.h"
#include "common/status.h"
#include "core/dmx_ast.h"
#include "model/service_registry.h"

namespace dmx {

namespace rel {
class Database;
}  // namespace rel

class ModelCatalog;

/// Stable rule identifiers. Tests and docs refer to these by name; treat
/// them as public API (renaming one is a breaking change).
namespace rules {
// Errors.
inline constexpr const char kParseError[] = "parse-error";
inline constexpr const char kKeyCount[] = "key-count";
inline constexpr const char kTableNestedKey[] = "table-nested-key";
inline constexpr const char kNestingDepth[] = "nesting-depth";
inline constexpr const char kDuplicateColumn[] = "duplicate-column";
inline constexpr const char kKeyPredict[] = "key-predict";
inline constexpr const char kRelatedToTarget[] = "related-to-target";
inline constexpr const char kQualifierTarget[] = "qualifier-target";
inline constexpr const char kDistributionContinuous[] =
    "distribution-continuous";
inline constexpr const char kNumericAttribute[] = "numeric-attribute";
inline constexpr const char kSequenceTime[] = "sequence-time";
inline constexpr const char kPredictPresence[] = "predict-presence";
inline constexpr const char kUnknownService[] = "unknown-service";
inline constexpr const char kUnknownModel[] = "unknown-model";
inline constexpr const char kUnknownColumn[] = "unknown-column";
/// Two qualifier columns of the same kind (PROBABILITY OF, SUPPORT OF, ...)
/// modifying the same sibling column: the second binding is ambiguous.
inline constexpr const char kDuplicateQualifier[] = "duplicate-qualifier";
// Warnings.
inline constexpr const char kUnusedColumn[] = "unused-column";
inline constexpr const char kShadowedAlias[] = "shadowed-alias";
inline constexpr const char kQualifierOfInput[] = "qualifier-of-input";
inline constexpr const char kSequenceTimeCaseLevel[] =
    "sequence-time-case-level";
/// A prediction join's ON clause feeds a model PREDICT column from the
/// source — the statement supplies the very value it asks the model to
/// predict — without a RELATED TO column declaring that dependence.
inline constexpr const char kPredictInput[] = "predict-input";

/// Every rule id, errors then warnings. A new rule MUST be added here: the
/// rule-coverage meta-test (tests/rule_coverage_test.cc) walks this array
/// and fails unless some committed fuzz corpus seed triggers each entry, so
/// rules cannot ship without fuzzer-visible coverage.
inline constexpr const char* kAll[] = {
    kParseError,     kKeyCount,        kTableNestedKey,
    kNestingDepth,   kDuplicateColumn, kKeyPredict,
    kRelatedToTarget, kQualifierTarget, kDistributionContinuous,
    kNumericAttribute, kSequenceTime,   kPredictPresence,
    kUnknownService, kUnknownModel,    kUnknownColumn,
    kDuplicateQualifier,
    kUnusedColumn,   kShadowedAlias,   kQualifierOfInput,
    kSequenceTimeCaseLevel, kPredictInput,
};
}  // namespace rules

enum class DiagSeverity { kError, kWarning };

/// \brief One finding of the semantic analyzer.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  std::string rule;      ///< One of the rules:: identifiers.
  std::string message;
  SourceSpan span;       ///< Offending range in the statement text.
  std::string fix_hint;  ///< How to repair the statement; may be empty.

  /// "error [key-count] at 1:26: <message>  (hint: ...)". Line:column is
  /// resolved against `source`; omitted when the span carries no position.
  std::string ToString(std::string_view source = "") const;
};

/// \brief The accumulated outcome of analyzing one statement.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  size_t error_count() const;
  size_t warning_count() const;
  bool ok() const { return error_count() == 0; }

  /// True when some diagnostic carries `rule`.
  bool HasRule(std::string_view rule) const;

  /// One diagnostic per line, followed by an "N error(s), M warning(s)"
  /// trailer ("no issues found" for a clean report).
  std::string ToString(std::string_view source = "") const;

  /// OK when the report has no errors; otherwise an InvalidArgument whose
  /// message is the full multi-diagnostic rendering (warnings included).
  Status ToStatus(std::string_view source = "") const;
};

/// \brief Optional name-resolution context. Null members simply disable the
/// checks that need them (unknown-model, unknown-service, ...).
struct AnalyzerContext {
  const ModelCatalog* catalog = nullptr;
  const ServiceRegistry* services = nullptr;
  const rel::Database* database = nullptr;  ///< DELETE FROM disambiguation.
};

class DmxAnalyzer {
 public:
  explicit DmxAnalyzer(AnalyzerContext context = {}) : context_(context) {}

  /// Checks a CREATE MINING MODEL definition (column-metadata rules).
  AnalysisReport AnalyzeDefinition(const ModelDefinition& def) const;

  /// Checks any parsed DMX statement, resolving names through the context.
  AnalysisReport AnalyzeStatement(const DmxStatement& statement) const;

  /// Checks one prediction join (PREDICT-column presence, shadowed aliases,
  /// model column paths). Exposed separately so the execution path can
  /// preflight without copying the statement's caseset source.
  AnalysisReport AnalyzePredictionJoin(const PredictionJoinStatement& stmt) const;

  /// Parses `text` and analyzes the result. Lexer/parser failures become a
  /// `parse-error` diagnostic; plain SQL yields an empty report (the
  /// relational engine has its own binder).
  AnalysisReport AnalyzeText(const std::string& text) const;

 private:
  AnalyzerContext context_;
};

}  // namespace dmx

#endif  // DMX_CORE_DMX_ANALYZER_H_
