#include "core/catalog.h"

#include "core/dmx_analyzer.h"

namespace dmx {

Result<MiningModel*> ModelCatalog::CreateModel(ModelDefinition definition,
                                               const ServiceRegistry& registry) {
  // Service resolution first so an unknown service keeps its kNotFound
  // contract (the analyzer would fold it into a semantic error instead).
  DMX_ASSIGN_OR_RETURN(std::shared_ptr<MiningService> service,
                       registry.Find(definition.service_name));
  // Semantic analysis next: unlike the legacy first-error Validate(), the
  // analyzer reports every column-metadata violation in one message. The
  // registry goes into the context so service-dependent rules fire exactly
  // as they do for standalone AnalyzeText — notably predict-presence, which
  // hardens from warning to error for non-segmentation services. The
  // fuzzer's differential oracle holds both paths to the same verdict.
  AnalyzerContext context;
  context.services = &registry;
  DMX_RETURN_IF_ERROR(
      DmxAnalyzer(context).AnalyzeDefinition(definition).ToStatus());
  if (models_.count(definition.model_name) > 0) {
    return AlreadyExists() << "mining model '" << definition.model_name
                           << "' already exists";
  }
  DMX_ASSIGN_OR_RETURN(ParamMap params,
                       service->ResolveParams(definition.parameters));
  auto model = std::make_unique<MiningModel>(std::move(definition),
                                             std::move(service),
                                             std::move(params));
  MiningModel* raw = model.get();
  models_.emplace(raw->definition().model_name, std::move(model));
  return raw;
}

Result<MiningModel*> ModelCatalog::GetModel(const std::string& name) {
  auto it = models_.find(name);
  if (it == models_.end()) {
    return NotFound() << "mining model '" << name << "' does not exist";
  }
  return it->second.get();
}

Result<const MiningModel*> ModelCatalog::GetModel(
    const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end()) {
    return NotFound() << "mining model '" << name << "' does not exist";
  }
  return static_cast<const MiningModel*>(it->second.get());
}

Status ModelCatalog::DropModel(const std::string& name) {
  if (models_.erase(name) == 0) {
    return NotFound() << "mining model '" << name << "' does not exist";
  }
  return Status::OK();
}

Status ModelCatalog::AdoptModel(std::unique_ptr<MiningModel> model) {
  const std::string& name = model->definition().model_name;
  if (models_.count(name) > 0) {
    return AlreadyExists() << "mining model '" << name << "' already exists";
  }
  models_.emplace(name, std::move(model));
  return Status::OK();
}

std::vector<std::string> ModelCatalog::ListModels() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

}  // namespace dmx
