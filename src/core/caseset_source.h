// Turning a DMX caseset source (SHAPE / SELECT / OPENROWSET) into a row
// stream. INSERT INTO consumes the streaming form so incremental services
// really see one case at a time; PREDICTION JOIN materializes.

#ifndef DMX_CORE_CASESET_SOURCE_H_
#define DMX_CORE_CASESET_SOURCE_H_

#include <memory>
#include <optional>

#include "common/rowset.h"
#include "core/dmx_ast.h"
#include "relational/database.h"

namespace dmx {

/// Loads the file-backed payload of an OPENROWSET source; empty for SHAPE
/// and SELECT sources, which read catalog state instead of the filesystem.
/// This is the *only* entry point that touches a file: callers run it
/// before taking the catalog lock and hand the result to Open/Materialize,
/// so statement execution under the lock never blocks on I/O.
Result<std::optional<Rowset>> PreloadCasesetSource(const CasesetSource& source);

/// Opens the source as a pull-based reader. An OPENROWSET source consumes
/// `*preloaded` (from PreloadCasesetSource) and fails if it is absent.
Result<std::unique_ptr<RowsetReader>> OpenCasesetSource(
    const rel::Database& db, const CasesetSource& source,
    std::optional<Rowset>* preloaded = nullptr);

/// Materializes the source into a rowset. Same preload contract as
/// OpenCasesetSource.
Result<Rowset> MaterializeCasesetSource(
    const rel::Database& db, const CasesetSource& source,
    std::optional<Rowset>* preloaded = nullptr);

}  // namespace dmx

#endif  // DMX_CORE_CASESET_SOURCE_H_
