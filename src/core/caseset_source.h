// Turning a DMX caseset source (SHAPE / SELECT / OPENROWSET) into a row
// stream. INSERT INTO consumes the streaming form so incremental services
// really see one case at a time; PREDICTION JOIN materializes.

#ifndef DMX_CORE_CASESET_SOURCE_H_
#define DMX_CORE_CASESET_SOURCE_H_

#include <memory>

#include "common/rowset.h"
#include "core/dmx_ast.h"
#include "relational/database.h"

namespace dmx {

/// Opens the source as a pull-based reader.
Result<std::unique_ptr<RowsetReader>> OpenCasesetSource(
    const rel::Database& db, const CasesetSource& source);

/// Materializes the source into a rowset.
Result<Rowset> MaterializeCasesetSource(const rel::Database& db,
                                        const CasesetSource& source);

}  // namespace dmx

#endif  // DMX_CORE_CASESET_SOURCE_H_
