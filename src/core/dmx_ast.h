// AST for the DMX statements of paper §3:
//
//   CREATE MINING MODEL <name> ( <column specs> ) USING <service>[(params)]
//   INSERT INTO <model> [(<column list>)] <source>
//   SELECT [FLATTENED] [TOP n] <items> FROM <model>
//       [NATURAL] PREDICTION JOIN <source> [AS alias] [ON <path> = <path> ...]
//   SELECT * FROM <model>.CONTENT
//   DELETE FROM <model>
//   DROP MINING MODEL <model>
//
// <source> is a SHAPE statement, an embedded SELECT (optionally braced), or
// OPENROWSET('CSV', '<path>') — the OLE DB escape hatch for external data.

#ifndef DMX_CORE_DMX_AST_H_
#define DMX_CORE_DMX_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/source_span.h"
#include "common/value.h"
#include "model/model_definition.h"
#include "relational/sql_ast.h"
#include "shape/shape_ast.h"

namespace dmx {

/// OPENROWSET('CSV', 'path'): reads an external file as the caseset source.
struct OpenRowsetSource {
  std::string format;  ///< Only "CSV" is supported.
  std::string path;
};

/// The three caseset sources an INSERT INTO / PREDICTION JOIN can consume.
using CasesetSource =
    std::variant<shape::ShapeStatement, rel::SelectStatement, OpenRowsetSource>;

struct CreateModelStatement {
  ModelDefinition definition;
};

/// One entry of an INSERT INTO column list. Names refer to *model* columns;
/// binding against the source rowset is by column name (see case_binder.h).
struct InsertColumn {
  std::string name;
  SourceSpan span;  ///< Name position in the INSERT column list.
  bool is_table = false;
  std::vector<std::string> nested;  ///< Nested model column names.
};

struct InsertIntoStatement {
  std::string model_name;
  SourceSpan model_span;  ///< Model-name position in the statement text.
  std::vector<InsertColumn> columns;  ///< Empty: populate all model columns.
  CasesetSource source;
};

/// \brief DMX projection expression: a column path, a UDF call, a literal,
/// or a $-statistic reference (usable inside TopCount et al.).
struct DmxExpr {
  enum class Kind { kColumnPath, kFunction, kLiteral, kDollar };
  Kind kind = Kind::kColumnPath;

  /// Position of the expression's first token.
  SourceSpan span;

  /// kColumnPath: qualified segments, e.g. {"Age Prediction", "Age"} or
  /// {"t", "Customer ID"} or just {"Age"}.
  std::vector<std::string> path;

  /// kFunction: case-insensitive UDF name and arguments.
  std::string function;
  std::vector<DmxExpr> args;

  /// kLiteral.
  Value literal;

  /// kDollar: statistic name without the '$' ("Probability", "Support").
  std::string dollar;

  std::string ToString() const;
};

struct DmxSelectItem {
  DmxExpr expr;
  std::string alias;
};

/// One ON-clause equality: a model-side column path joined to a source-side
/// path. Which side is which is resolved at bind time (the model-side path
/// starts with the model name).
struct OnPair {
  std::vector<std::string> left;
  std::vector<std::string> right;
};

/// One WHERE conjunct of a prediction query: <expr> <cmp> <expr>, where
/// either side may be a UDF call ("WHERE PredictProbability([Age]) > 0.6").
struct DmxFilter {
  DmxExpr lhs;
  std::string op;  ///< =, <>, <, <=, >, >=
  DmxExpr rhs;
};

struct PredictionJoinStatement {
  bool flattened = false;
  std::optional<int64_t> top;
  std::vector<DmxSelectItem> items;
  std::string model_name;
  SourceSpan model_span;  ///< Model-name position in the statement text.
  bool natural = false;
  CasesetSource source;
  std::string source_alias;  ///< "AS t"; empty when unaliased.
  SourceSpan alias_span;     ///< Alias position; invalid when unaliased.
  std::vector<OnPair> on;    ///< Empty for NATURAL joins.
  std::vector<DmxFilter> where;  ///< Conjunction; empty = no filter.
};

struct SelectContentStatement {
  std::string model_name;
  SourceSpan model_span;
  /// Optional WHERE over the content rowset's columns
  /// (e.g. NODE_TYPE = 'Rule' AND NODE_SUPPORT > 100). May be null.
  rel::ExprPtr where;
};

/// DELETE FROM <name>: resolved against the model catalog first, falling
/// back to the relational engine when <name> is a table.
struct DeleteFromModelStatement {
  std::string model_name;
  SourceSpan model_span;
};

struct DropModelStatement {
  std::string model_name;
  SourceSpan model_span;
};

/// EXPORT MINING MODEL <name> TO '<path>': persist as PMML-style XML.
struct ExportModelStatement {
  std::string model_name;
  SourceSpan model_span;
  std::string path;
};

/// IMPORT MINING MODEL FROM '<path>': load a persisted model into the
/// catalog under its stored name.
struct ImportModelStatement {
  std::string path;
};

using DmxStatement =
    std::variant<CreateModelStatement, InsertIntoStatement,
                 PredictionJoinStatement, SelectContentStatement,
                 DeleteFromModelStatement, DropModelStatement,
                 ExportModelStatement, ImportModelStatement>;

}  // namespace dmx

#endif  // DMX_CORE_DMX_AST_H_
