#include "core/caseset_source.h"

#include "common/string_util.h"
#include "relational/sql_executor.h"
#include "shape/shape_executor.h"

namespace dmx {

Result<std::optional<Rowset>> PreloadCasesetSource(
    const CasesetSource& source) {
  const auto* open = std::get_if<OpenRowsetSource>(&source);
  if (open == nullptr) return std::optional<Rowset>();
  if (!EqualsCi(open->format, "CSV")) {
    return NotSupported() << "OPENROWSET format '" << open->format
                          << "' (only 'CSV' is supported)";
  }
  DMX_ASSIGN_OR_RETURN(Rowset rowset, rel::LoadCsv(open->path));
  return std::optional<Rowset>(std::move(rowset));
}

Result<std::unique_ptr<RowsetReader>> OpenCasesetSource(
    const rel::Database& db, const CasesetSource& source,
    std::optional<Rowset>* preloaded) {
  if (const auto* shape_stmt = std::get_if<shape::ShapeStatement>(&source)) {
    DMX_ASSIGN_OR_RETURN(std::unique_ptr<shape::ShapedCaseReader> reader,
                         shape::ShapedCaseReader::Create(db, *shape_stmt));
    return std::unique_ptr<RowsetReader>(std::move(reader));
  }
  if (const auto* select = std::get_if<rel::SelectStatement>(&source)) {
    DMX_ASSIGN_OR_RETURN(Rowset rowset, rel::ExecuteSelect(db, *select));
    return std::unique_ptr<RowsetReader>(
        new VectorRowsetReader(std::move(rowset)));
  }
  // OPENROWSET: the file was read by PreloadCasesetSource before the
  // caller took the catalog lock; refusing to read it here keeps every
  // under-lock path free of filesystem stalls.
  if (preloaded == nullptr || !preloaded->has_value()) {
    return Internal() << "OPENROWSET caseset was not preloaded before "
                         "execution";
  }
  Rowset rowset = std::move(**preloaded);
  preloaded->reset();
  return std::unique_ptr<RowsetReader>(
      new VectorRowsetReader(std::move(rowset)));
}

Result<Rowset> MaterializeCasesetSource(const rel::Database& db,
                                        const CasesetSource& source,
                                        std::optional<Rowset>* preloaded) {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<RowsetReader> reader,
                       OpenCasesetSource(db, source, preloaded));
  return reader->ReadAll();
}

}  // namespace dmx
