#include "core/udf.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dmx {

namespace {

// ---------------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------------

using BoundPath = DmxExprBindings::BoundPath;

Result<BoundPath> ResolvePath(const std::vector<std::string>& path,
                              const MiningModel& model,
                              const Schema& source,
                              const std::string& source_alias) {
  const std::string& model_name = model.definition().model_name;
  BoundPath out;
  if (path.size() == 2) {
    if (!source_alias.empty() && EqualsCi(path[0], source_alias)) {
      DMX_ASSIGN_OR_RETURN(size_t idx, source.ResolveColumn(path[1]));
      out.source_column = static_cast<int>(idx);
      return out;
    }
    if (EqualsCi(path[0], model_name)) {
      if (model.definition().FindColumn(path[1]) == nullptr) {
        return BindError() << "model '" << model_name << "' has no column '"
                           << path[1] << "'";
      }
      out.is_model = true;
      out.model_column = path[1];
      return out;
    }
    return BindError() << "unknown qualifier '" << path[0]
                       << "' (expected the model name or the source alias)";
  }
  if (path.size() == 1) {
    // Prefer the model column (the paper qualifies ambiguous references).
    if (model.definition().FindColumn(path[0]) != nullptr) {
      out.is_model = true;
      out.model_column = path[0];
      return out;
    }
    int idx = source.FindColumn(path[0]);
    if (idx >= 0) {
      out.source_column = idx;
      return out;
    }
    return BindError() << "column '" << path[0]
                       << "' exists neither in the model nor in the source";
  }
  return BindError() << "unsupported column path depth " << path.size();
}

// The prediction for a model column; errors when the column is not a target.
Result<const AttributePrediction*> TargetPrediction(
    const std::string& column, const PredictionRowContext& ctx) {
  const AttributePrediction* p = ctx.prediction->Find(column);
  if (p == nullptr) {
    return BindError() << "column '" << column
                       << "' is not predicted by model '"
                       << ctx.model->definition().model_name
                       << "' (is it marked PREDICT?)";
  }
  return p;
}

// The binding for a column-path expression: the statement's prepared cache
// when available, live resolution into `scratch` otherwise. The returned
// pointer aliases either the cache or `scratch` — no per-row string copies.
Result<const BoundPath*> BoundPathFor(const DmxExpr& expr,
                                      const PredictionRowContext& ctx,
                                      BoundPath* scratch) {
  if (ctx.bindings != nullptr) {
    if (const BoundPath* bound = ctx.bindings->Find(expr)) return bound;
  }
  DMX_ASSIGN_OR_RETURN(*scratch, ResolvePath(expr.path, *ctx.model,
                                             *ctx.source_schema,
                                             ctx.source_alias));
  return scratch;
}

// Resolving Predict*-style first arguments down to a model column binding.
Result<const BoundPath*> ModelColumnArg(const DmxExpr& arg,
                                        const PredictionRowContext& ctx,
                                        BoundPath* scratch) {
  if (arg.kind != DmxExpr::Kind::kColumnPath) {
    return BindError() << "expected a model column reference, got "
                       << arg.ToString();
  }
  DMX_ASSIGN_OR_RETURN(const BoundPath* bound, BoundPathFor(arg, ctx, scratch));
  if (!bound->is_model) {
    return BindError() << arg.ToString() << " is a source column; Predict "
                       << "functions take model columns";
  }
  return bound;
}

// ---------------------------------------------------------------------------
// Nested-table construction
// ---------------------------------------------------------------------------

DataType ModelColumnType(const MiningModel& model, const std::string& column) {
  const ModelColumn* spec = model.definition().FindColumn(column);
  if (spec == nullptr) return DataType::kText;
  if (spec->attr_type == AttributeType::kDiscretized) return DataType::kDouble;
  return spec->data_type;
}

// Name of the value column inside histogram tables: the nested KEY name for
// TABLE targets, the column's own name for scalar targets.
std::string HistogramValueColumnName(const MiningModel& model,
                                     const std::string& column) {
  const ModelColumn* spec = model.definition().FindColumn(column);
  if (spec != nullptr && spec->is_table()) {
    for (const ModelColumn& nested : spec->nested) {
      if (nested.is_key()) return nested.name;
    }
  }
  return column;
}

DataType HistogramValueColumnType(const MiningModel& model,
                                  const std::string& column) {
  const ModelColumn* spec = model.definition().FindColumn(column);
  if (spec != nullptr && spec->is_table()) {
    for (const ModelColumn& nested : spec->nested) {
      if (nested.is_key()) return nested.data_type;
    }
  }
  return ModelColumnType(model, column);
}

std::shared_ptr<const Schema> HistogramSchema(const MiningModel& model,
                                              const std::string& column) {
  return Schema::Make({{HistogramValueColumnName(model, column),
                        HistogramValueColumnType(model, column)},
                       {"$SUPPORT", DataType::kDouble},
                       {"$PROBABILITY", DataType::kDouble},
                       {"$VARIANCE", DataType::kDouble},
                       {"$STDEV", DataType::kDouble}});
}

Value HistogramTable(const MiningModel& model, const BoundPath& bound,
                     const AttributePrediction& prediction, int limit) {
  std::vector<Row> rows;
  size_t n = prediction.histogram.size();
  if (limit > 0) n = std::min(n, static_cast<size_t>(limit));
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const ScoredValue& sv = prediction.histogram[i];
    rows.push_back({sv.value, Value::Double(sv.support),
                    Value::Double(sv.probability), Value::Double(sv.variance),
                    Value::Double(sv.stdev())});
  }
  std::shared_ptr<const Schema> schema =
      bound.histogram_schema != nullptr
          ? bound.histogram_schema
          : HistogramSchema(model, bound.model_column);
  return Value::Table(NestedTable::Make(std::move(schema), std::move(rows)));
}

// Histogram entry matching an explicit value argument.
const ScoredValue* FindHistogramValue(const AttributePrediction& prediction,
                                      const Value& value) {
  for (const ScoredValue& sv : prediction.histogram) {
    if (sv.value.Equals(value)) return &sv;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Individual UDFs
// ---------------------------------------------------------------------------

Result<Value> EvalPredict(const DmxExpr& expr, const PredictionRowContext& ctx) {
  if (expr.args.empty() || expr.args.size() > 2) {
    return InvalidArgument() << "Predict takes 1 or 2 arguments";
  }
  BoundPath scratch;
  DMX_ASSIGN_OR_RETURN(const BoundPath* bound,
                       ModelColumnArg(expr.args[0], ctx, &scratch));
  DMX_ASSIGN_OR_RETURN(const AttributePrediction* p,
                       TargetPrediction(bound->model_column, ctx));
  const ModelColumn* spec =
      ctx.model->definition().FindColumn(bound->model_column);
  if (spec != nullptr && spec->is_table()) {
    int limit = 10;
    if (expr.args.size() == 2) {
      if (expr.args[1].kind != DmxExpr::Kind::kLiteral ||
          !expr.args[1].literal.is_long()) {
        return InvalidArgument() << "Predict(<table>, n): n must be an integer";
      }
      limit = static_cast<int>(expr.args[1].literal.long_value());
    }
    return HistogramTable(*ctx.model, *bound, *p, limit);
  }
  return p->predicted;
}

enum class Stat { kProbability, kSupport, kVariance, kStdev };

Result<Value> EvalPredictStat(const DmxExpr& expr,
                              const PredictionRowContext& ctx, Stat stat) {
  if (expr.args.empty() || expr.args.size() > 2) {
    return InvalidArgument() << expr.function << " takes 1 or 2 arguments";
  }
  BoundPath scratch;
  DMX_ASSIGN_OR_RETURN(const BoundPath* bound,
                       ModelColumnArg(expr.args[0], ctx, &scratch));
  DMX_ASSIGN_OR_RETURN(const AttributePrediction* p,
                       TargetPrediction(bound->model_column, ctx));
  double probability = p->probability;
  double support = p->support;
  double variance = p->variance;
  if (expr.args.size() == 2) {
    if (expr.args[1].kind != DmxExpr::Kind::kLiteral) {
      return InvalidArgument() << expr.function
                               << ": second argument must be a literal value";
    }
    const ScoredValue* sv = FindHistogramValue(*p, expr.args[1].literal);
    if (sv == nullptr) {
      probability = 0;
      support = 0;
      variance = 0;
    } else {
      probability = sv->probability;
      support = sv->support;
      variance = sv->variance;
    }
  }
  switch (stat) {
    case Stat::kProbability:
      return Value::Double(probability);
    case Stat::kSupport:
      return Value::Double(support);
    case Stat::kVariance:
      return Value::Double(variance);
    case Stat::kStdev:
      return Value::Double(variance > 0 ? std::sqrt(variance) : 0);
  }
  return Internal() << "unreachable stat";
}

Result<Value> EvalPredictHistogram(const DmxExpr& expr,
                                   const PredictionRowContext& ctx) {
  if (expr.args.size() != 1) {
    return InvalidArgument() << "PredictHistogram takes exactly 1 argument";
  }
  BoundPath scratch;
  DMX_ASSIGN_OR_RETURN(const BoundPath* bound,
                       ModelColumnArg(expr.args[0], ctx, &scratch));
  DMX_ASSIGN_OR_RETURN(const AttributePrediction* p,
                       TargetPrediction(bound->model_column, ctx));
  return HistogramTable(*ctx.model, *bound, *p, /*limit=*/0);
}

Result<Value> EvalTopCount(const DmxExpr& expr,
                           const PredictionRowContext& ctx) {
  if (expr.args.size() != 3) {
    return InvalidArgument()
           << "TopCount takes (table expr, rank column, count)";
  }
  DMX_ASSIGN_OR_RETURN(Value table, EvaluateDmxExpr(expr.args[0], ctx));
  if (!table.is_table() || table.table_value() == nullptr) {
    return InvalidArgument() << "TopCount: first argument is not a table";
  }
  // Rank column: $Stat or a column name.
  std::string rank_name;
  if (expr.args[1].kind == DmxExpr::Kind::kDollar) {
    rank_name = "$" + ToUpper(expr.args[1].dollar);
  } else if (expr.args[1].kind == DmxExpr::Kind::kColumnPath &&
             expr.args[1].path.size() == 1) {
    rank_name = expr.args[1].path[0];
  } else {
    return InvalidArgument() << "TopCount: rank must be $Stat or a column name";
  }
  if (expr.args[2].kind != DmxExpr::Kind::kLiteral ||
      !expr.args[2].literal.is_long()) {
    return InvalidArgument() << "TopCount: count must be an integer literal";
  }
  int64_t count = expr.args[2].literal.long_value();
  const NestedTable& nested = *table.table_value();
  DMX_ASSIGN_OR_RETURN(size_t rank_col,
                       nested.schema()->ResolveColumn(rank_name));
  std::vector<Row> rows = nested.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [rank_col](const Row& a, const Row& b) {
                     return a[rank_col].Compare(b[rank_col]) > 0;
                   });
  if (rows.size() > static_cast<size_t>(count)) {
    rows.resize(static_cast<size_t>(count));
  }
  return Value::Table(NestedTable::Make(nested.schema(), std::move(rows)));
}

enum class RangePoint { kMin, kMid, kMax };

Result<Value> EvalRange(const DmxExpr& expr, const PredictionRowContext& ctx,
                        RangePoint point) {
  if (expr.args.size() != 1) {
    return InvalidArgument() << expr.function << " takes exactly 1 argument";
  }
  BoundPath scratch;
  DMX_ASSIGN_OR_RETURN(const BoundPath* bound,
                       ModelColumnArg(expr.args[0], ctx, &scratch));
  const std::string& column = bound->model_column;
  int attr_index = ctx.model->attributes().FindAttribute(column);
  if (attr_index < 0) {
    return BindError() << expr.function << ": '" << column
                       << "' is not a scalar attribute";
  }
  const Attribute& attr = ctx.model->attributes().attributes[attr_index];
  if (!attr.is_discretized()) {
    return InvalidArgument() << expr.function << ": '" << column
                             << "' is not DISCRETIZED";
  }
  DMX_ASSIGN_OR_RETURN(const AttributePrediction* p,
                       TargetPrediction(column, ctx));
  if (p->histogram.empty() || p->histogram[0].state < 0) return Value::Null();
  int bucket = p->histogram[0].state;
  const auto& bounds = attr.bucket_bounds;
  const int n = static_cast<int>(bounds.size());
  if (n == 0) return Value::Null();
  bool open_low = bucket <= 0;
  bool open_high = bucket >= n;
  double lo = open_low ? bounds[0] : bounds[bucket - 1];
  double hi = open_high ? bounds[n - 1] : bounds[bucket];
  switch (point) {
    case RangePoint::kMin:
      return open_low ? Value::Null() : Value::Double(lo);
    case RangePoint::kMax:
      return open_high ? Value::Null() : Value::Double(hi);
    case RangePoint::kMid:
      if (open_low) return Value::Double(bounds[0]);
      if (open_high) return Value::Double(bounds[n - 1]);
      return Value::Double((lo + hi) / 2);
  }
  return Internal() << "unreachable range point";
}

Result<Value> EvalCluster(const DmxExpr& expr,
                          const PredictionRowContext& ctx, bool probability) {
  if (!expr.args.empty()) {
    return InvalidArgument() << expr.function << " takes no arguments";
  }
  const AttributePrediction* p = ctx.prediction->Find("$CLUSTER");
  if (p == nullptr) {
    return InvalidState() << expr.function << " requires a segmentation model";
  }
  return probability ? Value::Double(p->probability) : p->predicted;
}

}  // namespace

void DmxExprBindings::Prepare(const DmxExpr& expr, const MiningModel& model,
                              const Schema& source,
                              const std::string& source_alias) {
  switch (expr.kind) {
    case DmxExpr::Kind::kLiteral:
    case DmxExpr::Kind::kDollar:
      return;
    case DmxExpr::Kind::kColumnPath: {
      if (paths_.count(&expr) > 0) return;
      Result<BoundPath> resolved =
          ResolvePath(expr.path, model, source, source_alias);
      // Leave unresolvable paths unbound: evaluation re-resolves and reports
      // the same diagnostic, so prepare-time failures change nothing.
      if (!resolved.ok()) return;
      BoundPath bound = std::move(resolved).value();
      if (bound.is_model) {
        bound.histogram_schema = HistogramSchema(model, bound.model_column);
      }
      paths_.emplace(&expr, std::move(bound));
      return;
    }
    case DmxExpr::Kind::kFunction:
      break;
  }
  // TopCount's rank argument names a column *inside* the nested table value,
  // not a model or source column — it must stay unbound.
  const bool is_top_count = EqualsCi(expr.function, "TopCount");
  for (size_t i = 0; i < expr.args.size(); ++i) {
    if (is_top_count && i == 1) continue;
    Prepare(expr.args[i], model, source, source_alias);
  }
}

const DmxExprBindings::BoundPath* DmxExprBindings::Find(
    const DmxExpr& expr) const {
  auto it = paths_.find(&expr);
  return it == paths_.end() ? nullptr : &it->second;
}

Result<Value> EvaluateDmxExpr(const DmxExpr& expr,
                              const PredictionRowContext& ctx) {
  switch (expr.kind) {
    case DmxExpr::Kind::kLiteral:
      return expr.literal;
    case DmxExpr::Kind::kDollar:
      return BindError() << "$" << expr.dollar
                         << " is only meaningful inside table functions";
    case DmxExpr::Kind::kColumnPath: {
      BoundPath scratch;
      DMX_ASSIGN_OR_RETURN(const BoundPath* bound,
                           BoundPathFor(expr, ctx, &scratch));
      if (!bound->is_model) return (*ctx.source_row)[bound->source_column];
      // A bare model column reference means its prediction (the paper's
      // "SELECT ..., [Age Prediction].[Age] FROM ... PREDICTION JOIN ...").
      DMX_ASSIGN_OR_RETURN(const AttributePrediction* p,
                           TargetPrediction(bound->model_column, ctx));
      return p->predicted;
    }
    case DmxExpr::Kind::kFunction:
      break;
  }
  const std::string& f = expr.function;
  if (EqualsCi(f, "Predict") || EqualsCi(f, "PredictAssociation")) {
    return EvalPredict(expr, ctx);
  }
  if (EqualsCi(f, "PredictProbability")) {
    return EvalPredictStat(expr, ctx, Stat::kProbability);
  }
  if (EqualsCi(f, "PredictSupport")) {
    return EvalPredictStat(expr, ctx, Stat::kSupport);
  }
  if (EqualsCi(f, "PredictVariance")) {
    return EvalPredictStat(expr, ctx, Stat::kVariance);
  }
  if (EqualsCi(f, "PredictStdev")) {
    return EvalPredictStat(expr, ctx, Stat::kStdev);
  }
  if (EqualsCi(f, "PredictHistogram")) return EvalPredictHistogram(expr, ctx);
  if (EqualsCi(f, "TopCount")) return EvalTopCount(expr, ctx);
  if (EqualsCi(f, "RangeMin")) return EvalRange(expr, ctx, RangePoint::kMin);
  if (EqualsCi(f, "RangeMid")) return EvalRange(expr, ctx, RangePoint::kMid);
  if (EqualsCi(f, "RangeMax")) return EvalRange(expr, ctx, RangePoint::kMax);
  if (EqualsCi(f, "Cluster")) return EvalCluster(expr, ctx, false);
  if (EqualsCi(f, "ClusterProbability")) return EvalCluster(expr, ctx, true);
  return NotSupported() << "unknown function '" << f << "'";
}

Result<ColumnDef> InferDmxItemColumn(const DmxExpr& expr,
                                     const std::string& alias,
                                     const MiningModel& model,
                                     const Schema& source,
                                     const std::string& source_alias) {
  ColumnDef def;
  def.name = !alias.empty()
                 ? alias
                 : (expr.kind == DmxExpr::Kind::kColumnPath
                        ? expr.path.back()
                        : expr.ToString());
  switch (expr.kind) {
    case DmxExpr::Kind::kLiteral:
      def.type = expr.literal.is_long()     ? DataType::kLong
                 : expr.literal.is_double() ? DataType::kDouble
                 : expr.literal.is_bool()   ? DataType::kBool
                                            : DataType::kText;
      return def;
    case DmxExpr::Kind::kDollar:
      return BindError() << "$" << expr.dollar
                         << " cannot be a projection item";
    case DmxExpr::Kind::kColumnPath: {
      DMX_ASSIGN_OR_RETURN(BoundPath resolved,
                           ResolvePath(expr.path, model, source, source_alias));
      if (!resolved.is_model) {
        def.type = source.column(resolved.source_column).type;
        def.nested = source.column(resolved.source_column).nested;
        return def;
      }
      const ModelColumn* spec = model.definition().FindColumn(
          resolved.model_column);
      if (spec != nullptr && spec->is_table()) {
        def.type = DataType::kTable;
        def.nested = HistogramSchema(model, resolved.model_column);
        return def;
      }
      def.type = ModelColumnType(model, resolved.model_column);
      return def;
    }
    case DmxExpr::Kind::kFunction:
      break;
  }
  const std::string& f = expr.function;
  auto table_result = [&](const std::string& column) {
    def.type = DataType::kTable;
    def.nested = HistogramSchema(model, column);
    return def;
  };
  if (EqualsCi(f, "PredictHistogram") ||
      ((EqualsCi(f, "Predict") || EqualsCi(f, "PredictAssociation")) &&
       !expr.args.empty())) {
    DMX_ASSIGN_OR_RETURN(std::string column,
                         [&]() -> Result<std::string> {
                           if (expr.args[0].kind !=
                               DmxExpr::Kind::kColumnPath) {
                             return BindError() << f << ": bad argument";
                           }
                           DMX_ASSIGN_OR_RETURN(
                               BoundPath resolved,
                               ResolvePath(expr.args[0].path, model, source,
                                           source_alias));
                           if (!resolved.is_model) {
                             return BindError()
                                    << f << ": argument is not a model column";
                           }
                           return resolved.model_column;
                         }());
    const ModelColumn* spec = model.definition().FindColumn(column);
    if (EqualsCi(f, "PredictHistogram") ||
        (spec != nullptr && spec->is_table())) {
      return table_result(column);
    }
    def.type = ModelColumnType(model, column);
    return def;
  }
  if (EqualsCi(f, "TopCount")) {
    if (expr.args.empty()) return BindError() << "TopCount needs arguments";
    DMX_ASSIGN_OR_RETURN(ColumnDef inner,
                         InferDmxItemColumn(expr.args[0], "", model, source,
                                            source_alias));
    def.type = inner.type;
    def.nested = inner.nested;
    return def;
  }
  if (EqualsCi(f, "Cluster")) {
    def.type = DataType::kText;
    return def;
  }
  if (EqualsCi(f, "PredictProbability") || EqualsCi(f, "PredictSupport") ||
      EqualsCi(f, "PredictVariance") || EqualsCi(f, "PredictStdev") ||
      EqualsCi(f, "ClusterProbability") || EqualsCi(f, "RangeMin") ||
      EqualsCi(f, "RangeMid") || EqualsCi(f, "RangeMax")) {
    def.type = DataType::kDouble;
    return def;
  }
  return NotSupported() << "unknown function '" << f << "'";
}

}  // namespace dmx
