#include "core/prediction_join.h"

#include "common/exec_guard.h"
#include "core/case_binder.h"
#include "core/caseset_source.h"
#include "core/dmx_analyzer.h"
#include "core/udf.h"

namespace dmx {

namespace {

// One flattening step: unnests the single TABLE column at `column`. Fails
// (rather than silently dropping the row) when a nested table's arity does
// not match the schema the outer column declares.
Result<Rowset> FlattenOneColumn(const Rowset& input, size_t column) {
  const Schema& schema = *input.schema();
  const ColumnDef& table_col = schema.column(column);
  std::vector<ColumnDef> columns;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c != column) {
      columns.push_back(schema.column(c));
      continue;
    }
    for (const ColumnDef& nested : table_col.nested->columns()) {
      ColumnDef renamed = nested;
      renamed.name = table_col.name + "." + nested.name;
      columns.push_back(std::move(renamed));
    }
  }
  Rowset out(Schema::Make(std::move(columns)));
  const size_t nested_width = table_col.nested->num_columns();
  for (const Row& row : input.rows()) {
    DMX_RETURN_IF_ERROR(GuardCheck());
    std::vector<Row> nested_rows;
    if (row[column].is_table() && row[column].table_value() != nullptr &&
        row[column].table_value()->num_rows() > 0) {
      nested_rows = row[column].table_value()->rows();
    } else {
      nested_rows.push_back(Row(nested_width, Value::Null()));
    }
    for (const Row& nested : nested_rows) {
      DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(1));
      Row flat;
      flat.reserve(row.size() - 1 + nested_width);
      for (size_t c = 0; c < row.size(); ++c) {
        if (c != column) {
          flat.push_back(row[c]);
        } else {
          flat.insert(flat.end(), nested.begin(), nested.end());
        }
      }
      DMX_RETURN_IF_ERROR(
          out.Append(std::move(flat))
              .WithContext("flattening nested table column '" +
                           table_col.name + "'"));
    }
  }
  return out;
}

}  // namespace

Result<Rowset> FlattenRowset(const Rowset& input) {
  Rowset current = input;
  while (true) {
    int table_column = -1;
    for (size_t c = 0; c < current.schema()->num_columns(); ++c) {
      if (current.schema()->column(c).type == DataType::kTable &&
          current.schema()->column(c).nested != nullptr) {
        table_column = static_cast<int>(c);
        break;
      }
    }
    if (table_column < 0) return current;
    DMX_ASSIGN_OR_RETURN(
        current, FlattenOneColumn(current, static_cast<size_t>(table_column)));
  }
}

Result<Rowset> ExecutePredictionJoin(const rel::Database& db,
                                     ModelCatalog* catalog,
                                     const PredictionJoinStatement& stmt,
                                     std::optional<Rowset>* preloaded_source) {
  DMX_ASSIGN_OR_RETURN(MiningModel * model, catalog->GetModel(stmt.model_name));
  // Semantic preflight: reject statements the binder would only fail on one
  // Status at a time (no PREDICT column, unknown model paths, ...) with the
  // full multi-diagnostic report.
  AnalyzerContext analyzer_context;
  analyzer_context.catalog = catalog;
  analyzer_context.database = &db;
  DMX_RETURN_IF_ERROR(
      DmxAnalyzer(analyzer_context).AnalyzePredictionJoin(stmt).ToStatus());
  if (!model->is_trained()) {
    return InvalidState() << "model '" << stmt.model_name
                          << "' has not been trained (INSERT INTO it first)";
  }
  DMX_ASSIGN_OR_RETURN(
      Rowset source,
      MaterializeCasesetSource(db, stmt.source, preloaded_source));

  DMX_ASSIGN_OR_RETURN(
      CaseBinder binder,
      CaseBinder::CreateForPrediction(model->definition(), *source.schema(),
                                      stmt.source_alias,
                                      stmt.natural ? nullptr : &stmt.on));

  // Output schema from the projection items.
  std::vector<ColumnDef> columns;
  columns.reserve(stmt.items.size());
  for (const DmxSelectItem& item : stmt.items) {
    DMX_ASSIGN_OR_RETURN(
        ColumnDef def,
        InferDmxItemColumn(item.expr, item.alias, *model, *source.schema(),
                           stmt.source_alias));
    columns.push_back(std::move(def));
  }
  Rowset out(Schema::Make(std::move(columns)));

  PredictOptions options;

  // Per-statement binding: resolve every column path in the projection and
  // WHERE clause once, so the per-case loop below does no name lookups and
  // builds no schemas.
  DmxExprBindings bindings;
  for (const DmxSelectItem& item : stmt.items) {
    bindings.Prepare(item.expr, *model, *source.schema(), stmt.source_alias);
  }
  for (const DmxFilter& filter : stmt.where) {
    bindings.Prepare(filter.lhs, *model, *source.schema(), stmt.source_alias);
    bindings.Prepare(filter.rhs, *model, *source.schema(), stmt.source_alias);
  }
  PredictionRowContext ctx;
  ctx.model = model;
  ctx.source_schema = source.schema().get();
  ctx.source_alias = stmt.source_alias;
  ctx.bindings = &bindings;

  size_t limit = stmt.top.has_value() ? static_cast<size_t>(*stmt.top)
                                      : source.num_rows();
  DataCase input;
  // dmx-hot-begin(prediction-scoring)
  for (size_t r = 0; r < source.num_rows() && out.num_rows() < limit; ++r) {
    DMX_RETURN_IF_ERROR(GuardCheck());
    const Row& source_row = source.rows()[r];
    DMX_RETURN_IF_ERROR(
        binder.BindCaseInto(source_row, model->attributes(), &input));
    DMX_ASSIGN_OR_RETURN(CasePrediction prediction,
                         model->Predict(input, options));
    ctx.prediction = &prediction;
    ctx.source_row = &source_row;
    // WHERE: every conjunct must hold (NULL comparisons are false).
    bool keep = true;
    for (const DmxFilter& filter : stmt.where) {
      DMX_ASSIGN_OR_RETURN(Value lhs, EvaluateDmxExpr(filter.lhs, ctx));
      DMX_ASSIGN_OR_RETURN(Value rhs, EvaluateDmxExpr(filter.rhs, ctx));
      if (lhs.is_null() || rhs.is_null()) {
        keep = false;
        break;
      }
      int cmp = lhs.Compare(rhs);
      bool pass = filter.op == "=" ? lhs.Equals(rhs)
                  : filter.op == "<>" ? !lhs.Equals(rhs)
                  : filter.op == "<" ? cmp < 0
                  : filter.op == "<=" ? cmp <= 0
                  : filter.op == ">" ? cmp > 0
                                     : cmp >= 0;
      if (!pass) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    // Each output row is moved into the result, so its buffer cannot be
    // reused across cases.
    Row out_row;  // dmx-lint: allow(hot-loop-alloc)
    out_row.reserve(stmt.items.size());
    for (const DmxSelectItem& item : stmt.items) {
      DMX_ASSIGN_OR_RETURN(Value v, EvaluateDmxExpr(item.expr, ctx));
      out_row.push_back(std::move(v));
    }
    DMX_RETURN_IF_ERROR(GuardChargeOutputRows(1));
    DMX_RETURN_IF_ERROR(out.Append(std::move(out_row)));
  }
  // dmx-hot-end(prediction-scoring)
  if (stmt.flattened) return FlattenRowset(out);
  return out;
}

}  // namespace dmx
