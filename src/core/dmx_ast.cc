#include "core/dmx_ast.h"

#include "common/string_util.h"

namespace dmx {

std::string DmxExpr::ToString() const {
  switch (kind) {
    case Kind::kColumnPath: {
      std::string out;
      for (size_t i = 0; i < path.size(); ++i) {
        if (i > 0) out += '.';
        out += QuoteIdentifier(path[i]);
      }
      return out;
    }
    case Kind::kFunction: {
      std::string out = function + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i].ToString();
      }
      out += ')';
      return out;
    }
    case Kind::kLiteral:
      if (literal.is_text()) return "'" + literal.text_value() + "'";
      return literal.ToString();
    case Kind::kDollar:
      return "$" + dollar;
  }
  return "?";
}

}  // namespace dmx
