// DMX projection evaluation: column paths and the provider's user-defined
// functions over prediction results (paper §3.2.4: "Each provider ships a
// set of functions that can be referenced in the prediction query. Some
// UDFs are scalar-valued, such as probability or support. Others have tables
// as values, such as histogram, and hence return nested tables").
//
// Shipped UDFs:
//   Predict(<col> [, n])           best estimate; on a TABLE column: nested
//                                  table of the top-n recommended items
//   PredictProbability(<col> [, value])
//   PredictSupport(<col> [, value])
//   PredictVariance(<col>) / PredictStdev(<col>)
//   PredictHistogram(<col>)        nested table: value, $SUPPORT,
//                                  $PROBABILITY, $VARIANCE, $STDEV
//   TopCount(<table expr>, <rank column | $stat>, n)
//   RangeMin/RangeMid/RangeMax(<col>)   DISCRETIZED bucket bounds
//   Cluster() / ClusterProbability()    segmentation membership

#ifndef DMX_CORE_UDF_H_
#define DMX_CORE_UDF_H_

#include <string>
#include <vector>

#include "common/rowset.h"
#include "core/dmx_ast.h"
#include "core/mining_model.h"

namespace dmx {

/// Evaluation context for one joined case.
struct PredictionRowContext {
  const MiningModel* model = nullptr;
  const CasePrediction* prediction = nullptr;
  const Row* source_row = nullptr;
  const Schema* source_schema = nullptr;
  std::string source_alias;
};

/// Static (schema-time) description of one projection item: its output
/// column definition. Must stay consistent with EvaluateDmxExpr.
Result<ColumnDef> InferDmxItemColumn(const DmxExpr& expr,
                                     const std::string& alias,
                                     const MiningModel& model,
                                     const Schema& source,
                                     const std::string& source_alias);

/// Evaluates one projection expression for one joined case.
Result<Value> EvaluateDmxExpr(const DmxExpr& expr,
                              const PredictionRowContext& ctx);

}  // namespace dmx

#endif  // DMX_CORE_UDF_H_
