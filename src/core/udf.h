// DMX projection evaluation: column paths and the provider's user-defined
// functions over prediction results (paper §3.2.4: "Each provider ships a
// set of functions that can be referenced in the prediction query. Some
// UDFs are scalar-valued, such as probability or support. Others have tables
// as values, such as histogram, and hence return nested tables").
//
// Shipped UDFs:
//   Predict(<col> [, n])           best estimate; on a TABLE column: nested
//                                  table of the top-n recommended items
//   PredictProbability(<col> [, value])
//   PredictSupport(<col> [, value])
//   PredictVariance(<col>) / PredictStdev(<col>)
//   PredictHistogram(<col>)        nested table: value, $SUPPORT,
//                                  $PROBABILITY, $VARIANCE, $STDEV
//   TopCount(<table expr>, <rank column | $stat>, n)
//   RangeMin/RangeMid/RangeMax(<col>)   DISCRETIZED bucket bounds
//   Cluster() / ClusterProbability()    segmentation membership

#ifndef DMX_CORE_UDF_H_
#define DMX_CORE_UDF_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rowset.h"
#include "core/dmx_ast.h"
#include "core/mining_model.h"

namespace dmx {

/// Per-statement binding cache for prediction-join expressions. Column-path
/// resolution (model-vs-source disambiguation, case-insensitive name lookup)
/// and histogram schema construction are per-statement work; without this
/// cache they were redone for every joined case. Prepare() walks one
/// expression tree and records every resolvable column path, keyed by AST
/// node address — so a cache is only valid while the statement it was
/// prepared from is alive and unmoved. Unresolvable paths are simply left
/// unbound: evaluation falls back to live resolution and reports the same
/// diagnostic it always did.
class DmxExprBindings {
 public:
  struct BoundPath {
    bool is_model = false;
    int source_column = -1;        ///< When !is_model.
    std::string model_column;      ///< When is_model: scalar or TABLE name.
    /// When is_model: the histogram/nested-table schema for this column,
    /// shared by every table value the statement produces.
    std::shared_ptr<const Schema> histogram_schema;
  };

  void Prepare(const DmxExpr& expr, const MiningModel& model,
               const Schema& source, const std::string& source_alias);

  /// The binding for `expr`, or nullptr when it was not prepared (or did not
  /// resolve at prepare time).
  const BoundPath* Find(const DmxExpr& expr) const;

 private:
  std::unordered_map<const DmxExpr*, BoundPath> paths_;
};

/// Evaluation context for one joined case.
struct PredictionRowContext {
  const MiningModel* model = nullptr;
  const CasePrediction* prediction = nullptr;
  const Row* source_row = nullptr;
  const Schema* source_schema = nullptr;
  std::string source_alias;
  /// Optional per-statement cache; evaluation works without one (tests,
  /// ad-hoc calls) but then re-resolves paths on every call.
  const DmxExprBindings* bindings = nullptr;
};

/// Static (schema-time) description of one projection item: its output
/// column definition. Must stay consistent with EvaluateDmxExpr.
Result<ColumnDef> InferDmxItemColumn(const DmxExpr& expr,
                                     const std::string& alias,
                                     const MiningModel& model,
                                     const Schema& source,
                                     const std::string& source_alias);

/// Evaluates one projection expression for one joined case.
Result<Value> EvaluateDmxExpr(const DmxExpr& expr,
                              const PredictionRowContext& ctx);

}  // namespace dmx

#endif  // DMX_CORE_UDF_H_
