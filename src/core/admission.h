// Admission control: a provider-level cap on concurrently executing
// statements with a bounded wait queue, plus per-tenant quotas layered
// under the global cap (the serving front end's fairness knob). Beyond the
// queue, statements fail fast with kResourceExhausted instead of piling up
// — the DBMS-grade behaviour under overload the paper's server-object
// model assumes.

#ifndef DMX_CORE_ADMISSION_H_
#define DMX_CORE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/exec_guard.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dmx {

/// \brief Counting gate in front of statement execution. Thread-safe: every
/// counter is GUARDED_BY(mu_), checked by clang -Wthread-safety.
///
/// Two layers:
///   * global — `max_active == 0` disables admission entirely (the default;
///     a single-session provider pays nothing). With a cap set, up to
///     `max_active` statements execute at once, up to `max_queued` more
///     wait, the rest are rejected immediately.
///   * per tenant — with a tenant quota set, each named tenant is held to
///     its own active/queued bounds *under* the global cap, so one noisy
///     tenant saturates its quota, not the server. Statements admitted
///     with an empty tenant id bypass the tenant layer (in-process
///     callers; the network front end always names a tenant).
///
/// Rejection messages carry the current limits and queue depth (and the
/// tenant, for tenant-quota rejections) so a client log is diagnosable
/// without server access; SuggestedRetryMs() is the machine-readable
/// retry-after hint the server forwards in its Done frames.
class AdmissionController {
 public:
  void SetLimits(uint32_t max_active, uint32_t max_queued) DMX_EXCLUDES(mu_);

  /// Default quota applied to every named tenant (0 = tenant layer off).
  void SetTenantLimits(uint32_t max_active, uint32_t max_queued)
      DMX_EXCLUDES(mu_);

  /// Acquires an execution slot for `tenant` ("" = no tenant accounting).
  /// Blocks in the wait queue when saturated; while queued, `guard` (may
  /// be nullptr) is polled so a cancellation or deadline trips the wait
  /// instead of the statement occupying a queue slot forever. Returns
  /// kResourceExhausted when the relevant queue is full.
  Status Admit(ExecGuard* guard, const std::string& tenant = "")
      DMX_EXCLUDES(mu_);

  /// Releases a slot acquired by a successful Admit() with `tenant`.
  void Release(const std::string& tenant = "") DMX_EXCLUDES(mu_);

  /// Statements currently executing (diagnostics / tests).
  uint32_t active() const DMX_EXCLUDES(mu_);
  /// Statements currently executing for `tenant`.
  uint32_t tenant_active(const std::string& tenant) const DMX_EXCLUDES(mu_);

  /// Suggested client backoff before retrying a rejection, scaled to the
  /// current queue depth. 0 when admission is disabled.
  uint32_t SuggestedRetryMs() const DMX_EXCLUDES(mu_);

 private:
  /// Per-tenant occupancy; erased when both counters return to zero so the
  /// map never grows with tenant churn.
  struct TenantCounts {
    uint32_t active = 0;
    uint32_t queued = 0;
  };

  mutable Mutex mu_{"admission.mu"};
  CondVar slot_freed_;
  uint32_t max_active_ DMX_GUARDED_BY(mu_) = 0;  ///< 0: unlimited.
  uint32_t max_queued_ DMX_GUARDED_BY(mu_) = 0;
  uint32_t tenant_max_active_ DMX_GUARDED_BY(mu_) = 0;  ///< 0: layer off.
  uint32_t tenant_max_queued_ DMX_GUARDED_BY(mu_) = 0;
  uint32_t active_ DMX_GUARDED_BY(mu_) = 0;
  uint32_t queued_ DMX_GUARDED_BY(mu_) = 0;
  std::map<std::string, TenantCounts> tenants_ DMX_GUARDED_BY(mu_);
};

/// RAII release of an admission slot.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* controller,
                         std::string tenant = "")
      : controller_(controller), tenant_(std::move(tenant)) {}
  ~AdmissionSlot() {
    if (controller_ != nullptr) controller_->Release(tenant_);
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* controller_;
  std::string tenant_;
};

}  // namespace dmx

#endif  // DMX_CORE_ADMISSION_H_
