// Admission control: a provider-level cap on concurrently executing
// statements with a bounded wait queue. Beyond the queue, statements fail
// fast with kResourceExhausted instead of piling up — the DBMS-grade
// behaviour under overload the paper's server-object model assumes.

#ifndef DMX_CORE_ADMISSION_H_
#define DMX_CORE_ADMISSION_H_

#include <cstdint>

#include "common/exec_guard.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dmx {

/// \brief Counting gate in front of statement execution. Thread-safe: every
/// counter is GUARDED_BY(mu_), checked by clang -Wthread-safety.
///
/// `max_active == 0` disables admission control entirely (the default — a
/// single-session provider pays nothing). With a cap set, up to `max_active`
/// statements execute at once; up to `max_queued` more wait for a slot, and
/// anything beyond that is rejected immediately.
class AdmissionController {
 public:
  void SetLimits(uint32_t max_active, uint32_t max_queued) DMX_EXCLUDES(mu_);

  /// Acquires an execution slot. Blocks in the wait queue when the provider
  /// is saturated; while queued, `guard` (may be nullptr) is polled so a
  /// cancellation or deadline trips the wait instead of the statement
  /// occupying a queue slot forever. Returns kResourceExhausted when the
  /// queue itself is full.
  Status Admit(ExecGuard* guard) DMX_EXCLUDES(mu_);

  /// Releases a slot acquired by a successful Admit().
  void Release() DMX_EXCLUDES(mu_);

  /// Statements currently executing (diagnostics / tests).
  uint32_t active() const DMX_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"admission.mu"};
  CondVar slot_freed_;
  uint32_t max_active_ DMX_GUARDED_BY(mu_) = 0;  ///< 0: unlimited.
  uint32_t max_queued_ DMX_GUARDED_BY(mu_) = 0;
  uint32_t active_ DMX_GUARDED_BY(mu_) = 0;
  uint32_t queued_ DMX_GUARDED_BY(mu_) = 0;
};

/// RAII release of an admission slot.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* controller)
      : controller_(controller) {}
  ~AdmissionSlot() {
    if (controller_ != nullptr) controller_->Release();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionController* controller_;
};

}  // namespace dmx

#endif  // DMX_CORE_ADMISSION_H_
