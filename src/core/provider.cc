#include "core/provider.h"

#include <cassert>
#include <chrono>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>

#include "algorithms/builtin_services.h"
#include "common/mutex.h"
#include "core/caseset_source.h"
#include "core/prediction_join.h"
#include "pmml/pmml.h"
#include "relational/sql_executor.h"
#include "relational/sql_parser.h"
#include "store/log_format.h"

namespace dmx {

namespace {

// Snapshot schema encoding: u32 column count, then per column the type name
// and column name, each length-prefixed (names may contain any byte).
std::string EncodeSchema(const Schema& schema) {
  std::string out;
  store::PutFixed32(&out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    store::PutLengthPrefixed(&out, DataTypeToString(col.type));
    store::PutLengthPrefixed(&out, col.name);
  }
  return out;
}

Result<std::shared_ptr<const Schema>> DecodeSchema(const std::string& meta) {
  std::string_view src(meta);
  uint32_t num_columns = 0;
  if (!store::GetFixed32(&src, &num_columns)) {
    return Corruption() << "table snapshot schema is truncated";
  }
  std::vector<ColumnDef> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    std::string_view type_name;
    std::string_view col_name;
    if (!store::GetLengthPrefixed(&src, &type_name) ||
        !store::GetLengthPrefixed(&src, &col_name)) {
      return Corruption() << "table snapshot schema is truncated";
    }
    DMX_ASSIGN_OR_RETURN(DataType type,
                         DataTypeFromString(std::string(type_name)));
    columns.emplace_back(std::string(col_name), type);
  }
  return Schema::Make(std::move(columns));
}

/// Acquires `mu` exclusively while honouring the statement's guard: a waiter
/// whose deadline lapses or whose token is cancelled gives up (returning
/// false with `*trip` set) instead of queueing on the mutex forever. The
/// TRY_ACQUIRE annotation tells the analysis the lock is held iff this
/// returns true.
bool LockExclusiveWithGuard(SharedMutex* mu, ExecGuard* guard, Status* trip)
    DMX_TRY_ACQUIRE(true, mu) {
  if (!guard->has_deadline() && guard->cancel_token() == nullptr) {
    mu->Lock();
    return true;
  }
  while (!mu->TryLockFor(std::chrono::milliseconds(5))) {
    Status check = guard->Check();
    if (!check.ok()) {
      *trip = check.WithContext("waiting for the catalog lock");
      return false;
    }
  }
  return true;
}

/// Shared-mode counterpart of LockExclusiveWithGuard.
bool LockSharedWithGuard(SharedMutex* mu, ExecGuard* guard, Status* trip)
    DMX_TRY_ACQUIRE_SHARED(true, mu) {
  if (!guard->has_deadline() && guard->cancel_token() == nullptr) {
    mu->LockShared();
    return true;
  }
  while (!mu->TryLockSharedFor(std::chrono::milliseconds(5))) {
    Status check = guard->Check();
    if (!check.ok()) {
      *trip = check.WithContext("waiting for the catalog lock");
      return false;
    }
  }
  return true;
}

}  // namespace

/// Bridges the durable store to the provider's catalogs: replays journaled
/// statements / model blobs on recovery and serializes the whole catalog
/// (tables as CSV, models as PMML) for snapshots. Every entry point runs on
/// a thread that already owns the catalog lock exclusively (OpenStore during
/// recovery, a mutating statement or Checkpoint during snapshots), which the
/// AssertHeld calls make visible to the thread-safety analysis.
class Provider::CatalogStoreClient : public store::StoreClient {
 public:
  explicit CatalogStoreClient(Provider* provider) : provider_(provider) {}

  Status ApplyStatement(const std::string& text) override {
    // Recovery runs before the store is attached to the provider, so this
    // Execute cannot re-journal the statement. The internal connection also
    // skips guards and admission, and asserts (rather than takes) the
    // catalog lock: OpenStore already owns it.
    std::unique_ptr<Connection> conn = provider_->ConnectInternal();
    return conn->Execute(text).status().WithContext(
        "re-executing recovered statement");
  }

  Status ApplyModelBlob(const std::string& name,
                        const std::string& pmml) override {
    provider_->catalog_mu_.AssertHeld();
    DMX_ASSIGN_OR_RETURN(std::unique_ptr<MiningModel> model,
                         DeserializeModel(pmml, provider_->services_));
    // The store is authoritative: replace any same-named in-memory model.
    if (provider_->models_.HasModel(name)) {
      DMX_RETURN_IF_ERROR(provider_->models_.DropModel(name));
    }
    return provider_->models_.AdoptModel(std::move(model));
  }

  Status ApplyTableSnapshot(const store::StoreRecord& record) override {
    provider_->catalog_mu_.AssertHeld();
    DMX_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                         DecodeSchema(record.meta));
    DMX_ASSIGN_OR_RETURN(Rowset rowset,
                         rel::ParseCsvString(record.data, schema));
    rel::Database* db = &provider_->database_;
    if (db->HasTable(record.name)) {
      DMX_RETURN_IF_ERROR(db->DropTable(record.name));
    }
    DMX_ASSIGN_OR_RETURN(rel::Table * table,
                         db->CreateTable(record.name, std::move(schema)));
    return table->InsertAll(std::move(rowset.mutable_rows()));
  }

  // --- parallel-recovery seam: Prepare* run on the store's recovery worker
  // threads while the OpenStore/Repair thread owns the catalog lock
  // exclusively and blocks joining the pool. Reading the (unchanging,
  // lock-protected-by-the-parked-owner) service registry is therefore safe,
  // but neither the static analysis nor AssertHeld's per-thread ownership
  // check can see that cross-thread ownership — hence the suppression.

  Result<store::PreparedObject> PrepareModelBlob(const std::string& name,
                                                 const std::string& pmml)
      override DMX_NO_THREAD_SAFETY_ANALYSIS {
    (void)name;
    auto holder = std::make_shared<PreparedModel>();
    DMX_ASSIGN_OR_RETURN(holder->model,
                         DeserializeModel(pmml, provider_->services_));
    return store::PreparedObject(std::move(holder));
  }

  Status ApplyPreparedModel(const std::string& name, const std::string& pmml,
                            const store::PreparedObject& prepared) override {
    if (prepared == nullptr) return ApplyModelBlob(name, pmml);
    provider_->catalog_mu_.AssertHeld();
    auto* holder = static_cast<PreparedModel*>(prepared.get());
    if (holder->model == nullptr) return ApplyModelBlob(name, pmml);
    if (provider_->models_.HasModel(name)) {
      DMX_RETURN_IF_ERROR(provider_->models_.DropModel(name));
    }
    return provider_->models_.AdoptModel(std::move(holder->model));
  }

  Result<store::PreparedObject> PrepareTableSnapshot(
      const store::StoreRecord& record) override {
    // Pure parsing — touches no provider state, so it needs no lock claim.
    auto holder = std::make_shared<PreparedTable>();
    DMX_ASSIGN_OR_RETURN(holder->schema, DecodeSchema(record.meta));
    DMX_ASSIGN_OR_RETURN(holder->rowset,
                         rel::ParseCsvString(record.data, holder->schema));
    return store::PreparedObject(std::move(holder));
  }

  Status ApplyPreparedTable(const store::StoreRecord& record,
                            const store::PreparedObject& prepared) override {
    if (prepared == nullptr) return ApplyTableSnapshot(record);
    provider_->catalog_mu_.AssertHeld();
    auto* holder = static_cast<PreparedTable*>(prepared.get());
    rel::Database* db = &provider_->database_;
    if (db->HasTable(record.name)) {
      DMX_RETURN_IF_ERROR(db->DropTable(record.name));
    }
    DMX_ASSIGN_OR_RETURN(rel::Table * table,
                         db->CreateTable(record.name, holder->schema));
    return table->InsertAll(std::move(holder->rowset.mutable_rows()));
  }

  Result<std::vector<store::StoreRecord>> CaptureSnapshot() override {
    provider_->catalog_mu_.AssertHeld();
    std::vector<store::StoreRecord> out;
    for (const std::string& name : provider_->database_.ListTables()) {
      DMX_ASSIGN_OR_RETURN(rel::Table * table,
                           provider_->database_.GetTable(name));
      store::StoreRecord record;
      record.kind = 'T';
      record.name = table->name();
      record.meta = EncodeSchema(*table->schema());
      record.data = rel::ToCsvString(*table->schema(), table->rows());
      out.push_back(std::move(record));
    }
    for (const std::string& name : provider_->models_.ListModels()) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models_.GetModel(name));
      store::StoreRecord record;
      record.kind = 'M';
      record.name = model->definition().model_name;
      DMX_ASSIGN_OR_RETURN(record.data, SerializeModel(*model));
      out.push_back(std::move(record));
    }
    return out;
  }

 private:
  /// Holders passed through the opaque PreparedObject seam.
  struct PreparedModel {
    std::unique_ptr<MiningModel> model;
  };
  struct PreparedTable {
    std::shared_ptr<const Schema> schema;
    Rowset rowset;
  };

  Provider* provider_;
};

Provider::Provider() {
  Status status = RegisterBuiltinServices(&services_);
  assert(status.ok());
  (void)status;
}

Provider::~Provider() = default;

std::unique_ptr<Connection> Provider::Connect() {
  return std::make_unique<Connection>(this);
}

std::unique_ptr<Connection> Provider::ConnectInternal() {
  return std::unique_ptr<Connection>(
      new Connection(this, /*internal=*/true));
}

void Provider::SetAdmissionLimits(uint32_t max_active, uint32_t max_queued) {
  admission_.SetLimits(max_active, max_queued);
}

void Provider::SetTenantAdmissionLimits(uint32_t max_active,
                                        uint32_t max_queued) {
  admission_.SetTenantLimits(max_active, max_queued);
}

Status Provider::OpenStore(const std::string& store_dir,
                           store::StoreOptions options) {
  // Exclusive: recovery rewrites the catalogs, and the one-shot check below
  // must not race with a concurrent OpenStore or statement.
  WriterMutexLock lock(&catalog_mu_);
  if (store_client_ != nullptr) {
    return InvalidState()
           << "OpenStore may be called at most once per provider"
           << (store_ != nullptr ? " (a store is already attached at '" +
                                       store_->dir() + "')"
                                 : "");
  }
  store_client_ = std::make_unique<CatalogStoreClient>(this);
  Result<std::unique_ptr<store::DurableStore>> store =
      store::DurableStore::Open(store_dir, store_client_.get(), options);
  if (!store.ok()) {
    return store.status().WithContext("attaching durable store");
  }
  store_ = std::move(store).value();
  // Shards that failed recovery were quarantined rather than failing the
  // open; degrade their models (and the whole store, for the catalog shard).
  RefreshDegradedLocked();
  return Status::OK();
}

void Provider::RefreshDegradedLocked() {
  degraded_models_.clear();
  store_read_only_ = false;
  if (store_ == nullptr) return;
  store::StoreStatus status = store_->GetStatus();
  for (const store::ShardStatus& shard : status.shards) {
    if (!shard.quarantined) continue;
    if (shard.id == store::kCatalogShardId) {
      store_read_only_ = true;
    } else if (!shard.model.empty()) {
      degraded_models_[shard.model] = DegradedState{shard.id, shard.reason};
    }
  }
}

Status Provider::CheckModelServable(const std::string& name) const {
  auto it = degraded_models_.find(name);
  if (it == degraded_models_.end()) return Status::OK();
  Status status = Unavailable() << "model '" << name
                                << "' is degraded: " << it->second.reason;
  return status.WithContext("quarantined shard '" + it->second.shard_id +
                            "'");
}

Status Provider::CheckStoreWritable() const {
  if (!store_read_only_) return Status::OK();
  Status status = Unavailable()
                  << "the store is read-only: its catalog shard failed "
                     "recovery; repair the shard to restore writes";
  return status.WithContext(std::string("quarantined shard '") +
                            store::kCatalogShardId + "'");
}

Status Provider::Repair(const std::string& target,
                        store::RepairStats* stats) {
  // Exclusive for the same reason as OpenStore: the repair replays the
  // shard's records into the catalogs through an internal connection.
  WriterMutexLock lock(&catalog_mu_);
  if (store_ == nullptr) {
    return InvalidState() << "no durable store attached";
  }
  std::string shard_id;
  store::StoreStatus status = store_->GetStatus();
  for (const store::ShardStatus& shard : status.shards) {
    if (shard.quarantined &&
        (shard.id == target || (!shard.model.empty() &&
                                shard.model == target))) {
      shard_id = shard.id;
      break;
    }
  }
  if (shard_id.empty()) {
    return NotFound() << "no quarantined shard or degraded model '" << target
                      << "'";
  }
  DMX_RETURN_IF_ERROR(store_->Repair(shard_id, stats));
  RefreshDegradedLocked();
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> Provider::DegradedModels()
    const {
  ReaderMutexLock lock(&catalog_mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(degraded_models_.size());
  for (const auto& [model, state] : degraded_models_) {
    out.emplace_back(model, state.reason);
  }
  return out;
}

Status Provider::Checkpoint() {
  // Exclusive: a snapshot must capture a statement-consistent catalog image
  // and must never interleave with WAL appends.
  WriterMutexLock lock(&catalog_mu_);
  if (store_ == nullptr) {
    return InvalidState() << "no durable store attached";
  }
  return store_->Checkpoint();
}

Status Provider::JournalStatementLocked(const std::string& text) {
  if (store_ == nullptr) return Status::OK();
  return store_->JournalStatement(text);
}

Result<Rowset> Connection::Execute(const std::string& command) {
  ExecGuard guard(limits_);
  return ExecuteGuarded(command, &guard);
}

Result<Rowset> Connection::ExecuteGuarded(const std::string& command,
                                          ExecGuard* guard) {
  Result<DmxParseResult> parsed = ParseDmx(command);
  if (!parsed.ok()) {
    return parsed.status().WithContext("parsing statement");
  }

  // SQL text is parsed once here; the parse both classifies the lock mode
  // and feeds execution in Dispatch.
  std::optional<rel::SqlStatement> sql;
  if (parsed->is_sql) {
    Result<rel::SqlStatement> sql_parsed = rel::ParseSql(command);
    if (!sql_parsed.ok()) {
      return sql_parsed.status().WithContext("parsing statement");
    }
    sql = std::move(*sql_parsed);
  }

  // Lock regime: reads share the catalogs, everything that can mutate them
  // is exclusive. DELETE FROM is ambiguous (model or table) and mutates
  // either way; EXPORT only reads catalog state.
  bool read_only;
  if (parsed->is_sql) {
    read_only = std::holds_alternative<rel::SelectStatement>(*sql);
  } else {
    const DmxStatement& statement = *parsed->statement;
    read_only = std::holds_alternative<PredictionJoinStatement>(statement) ||
                std::holds_alternative<SelectContentStatement>(statement) ||
                std::holds_alternative<ExportModelStatement>(statement);
  }

  // All file inputs (IMPORT documents, OPENROWSET casesets) are read here,
  // before any lock business: execution under the catalog mutex must never
  // wait on a disk. EXPORT is the mirror image — serialized under the lock,
  // written by FinishStatementIo after it drops.
  StatementIo io;
  if (!parsed->is_sql) {
    DMX_RETURN_IF_ERROR(PrepareStatementIo(*parsed, &io));
  }

  if (internal_) {
    // Recovery replay: OpenStore holds the catalog lock exclusively; assert
    // that ownership to the analysis instead of self-deadlocking on it.
    provider_->catalog_mu_.AssertHeld();
    if (read_only) return DispatchRead(*parsed, sql, io);
    return DispatchWrite(*parsed, sql, command, nullptr, io);
  }

  // Admission before locks: a saturated provider rejects (or queues) the
  // statement without touching the catalog mutex. The "statement
  // admission" context frame marks the one rejection made *before*
  // execution begins — the serving front end's licence to tell clients
  // "retry" (a row-budget kResourceExhausted mid-statement never gets it).
  Status admitted = provider_->admission_.Admit(guard, tenant_);
  if (!admitted.ok()) {
    return admitted.WithContext("statement admission");
  }
  AdmissionSlot slot(&provider_->admission_, tenant_);
  ExecGuardScope scope(guard);

  if (read_only) {
    Status trip;
    if (!LockSharedWithGuard(&provider_->catalog_mu_, guard, &trip)) {
      return trip;
    }
    Result<Rowset> result = [&]() -> Result<Rowset> {
      AdoptedReaderLock lock(&provider_->catalog_mu_);
      return DispatchRead(*parsed, sql, io);
    }();
    if (result.ok()) {
      DMX_RETURN_IF_ERROR(FinishStatementIo(io));
    }
    return result;
  }
  Status trip;
  if (!LockExclusiveWithGuard(&provider_->catalog_mu_, guard, &trip)) {
    return trip;
  }
  Result<Rowset> result = [&]() -> Result<Rowset> {
    AdoptedWriterLock lock(&provider_->catalog_mu_);
    return DispatchWrite(*parsed, sql, command, guard, io);
  }();
  if (result.ok()) {
    DMX_RETURN_IF_ERROR(FinishStatementIo(io));
  }
  return result;
}

Status Connection::PrepareStatementIo(const DmxParseResult& parsed,
                                      StatementIo* io) {
  const DmxStatement& statement = *parsed.statement;
  if (const auto* import_stmt =
          std::get_if<ImportModelStatement>(&statement)) {
    Result<std::string> document =
        Env::Default()->ReadFileToString(import_stmt->path);
    if (!document.ok()) {
      return document.status().WithContext("importing model from '" +
                                           import_stmt->path + "'");
    }
    io->import_document = std::move(*document);
    return Status::OK();
  }
  if (const auto* insert = std::get_if<InsertIntoStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(io->caseset_rows,
                         PreloadCasesetSource(insert->source));
    return Status::OK();
  }
  if (const auto* join = std::get_if<PredictionJoinStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(io->caseset_rows,
                         PreloadCasesetSource(join->source));
    return Status::OK();
  }
  if (const auto* export_stmt =
          std::get_if<ExportModelStatement>(&statement)) {
    io->export_path = export_stmt->path;
  }
  return Status::OK();
}

Status Connection::FinishStatementIo(StatementIo& io) {
  if (!io.export_document.has_value()) return Status::OK();
  return Env::Default()
      ->AtomicWriteFile(io.export_path, *io.export_document)
      .WithContext("exporting model '" + io.export_model + "'");
}

Result<Rowset> Connection::DispatchRead(DmxParseResult& parsed,
                                        std::optional<rel::SqlStatement>& sql,
                                        StatementIo& io) {
  if (parsed.is_sql) {
    return rel::Execute(&provider_->database_, *sql);
  }
  DmxStatement& statement = *parsed.statement;

  // Degraded models answer kUnavailable (naming their quarantined shard)
  // before name resolution, so clients can tell "temporarily unserveable"
  // from "does not exist". Internal (recovery/repair) connections bypass
  // the check — they are the path that un-degrades a model.
  if (!internal_) {
    const std::string* target = nullptr;
    if (auto* join = std::get_if<PredictionJoinStatement>(&statement)) {
      target = &join->model_name;
    } else if (auto* content =
                   std::get_if<SelectContentStatement>(&statement)) {
      target = &content->model_name;
    } else if (auto* export_stmt =
                   std::get_if<ExportModelStatement>(&statement)) {
      target = &export_stmt->model_name;
    }
    if (target != nullptr) {
      DMX_RETURN_IF_ERROR(provider_->CheckModelServable(*target));
    }
  }

  if (auto* join = std::get_if<PredictionJoinStatement>(&statement)) {
    Result<Rowset> rowset =
        ExecutePredictionJoin(provider_->database_, &provider_->models_,
                              *join, &io.caseset_rows);
    if (!rowset.ok()) {
      return rowset.status().WithContext("predicting with model '" +
                                         join->model_name + "'");
    }
    return rowset;
  }
  if (auto* content = std::get_if<SelectContentStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(const MiningModel* model,
                         provider_->models_.GetModel(content->model_name));
    DMX_ASSIGN_OR_RETURN(Rowset rowset, GetContentRowset(*model));
    if (content->where == nullptr) return rowset;
    // Filter in place over the content rowset's own columns.
    rel::Scope scope;
    scope.AddRange("CONTENT", *rowset.schema(), 0);
    DMX_RETURN_IF_ERROR(rel::BindExpr(content->where.get(), scope));
    Rowset filtered(rowset.schema());
    // dmx-hot-begin(content-filter)
    for (Row& row : rowset.mutable_rows()) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(bool keep,
                           rel::EvalPredicate(*content->where, row));
      if (keep) DMX_RETURN_IF_ERROR(filtered.Append(std::move(row)));
    }
    // dmx-hot-end(content-filter)
    return filtered;
  }
  if (auto* export_stmt = std::get_if<ExportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        const MiningModel* model,
        provider_->models_.GetModel(export_stmt->model_name));
    // Reads catalog state only — nothing to journal. Serialize under the
    // shared lock; the file write itself is FinishStatementIo's, after the
    // lock is released.
    Result<std::string> document = SerializeModel(*model);
    if (!document.ok()) {
      return document.status().WithContext("exporting model '" +
                                           export_stmt->model_name + "'");
    }
    io.export_document = std::move(*document);
    io.export_model = export_stmt->model_name;
    return Rowset();
  }
  return Internal() << "read-only dispatch of a mutating DMX statement";
}

Result<Rowset> Connection::DispatchWrite(DmxParseResult& parsed,
                                         std::optional<rel::SqlStatement>& sql,
                                         const std::string& command,
                                         const ExecGuard* guard,
                                         StatementIo& io) {
  // Store-wide read-only degraded mode: while the catalog shard is
  // quarantined no mutation can be journaled, so none may execute. Degraded
  // models refuse writes the same way reads do — their quarantined shard is
  // the only durable home for these statements. Internal connections bypass
  // both checks (they replay already-durable records).
  if (!internal_) {
    DMX_RETURN_IF_ERROR(provider_->CheckStoreWritable());
  }

  if (parsed.is_sql) {
    DMX_ASSIGN_OR_RETURN(Rowset rowset,
                         rel::Execute(&provider_->database_, *sql));
    DMX_RETURN_IF_ERROR(JournalLocked(command));
    return rowset;
  }
  DmxStatement& statement = *parsed.statement;

  if (auto* create = std::get_if<CreateModelStatement>(&statement)) {
    if (!internal_) {
      // A degraded model still owns its name: its quarantined shard will
      // re-materialize it on Repair, so a colliding CREATE is refused.
      DMX_RETURN_IF_ERROR(
          provider_->CheckModelServable(create->definition.model_name));
    }
    DMX_RETURN_IF_ERROR(provider_->models_
                            .CreateModel(std::move(create->definition),
                                         provider_->services_)
                            .status());
    DMX_RETURN_IF_ERROR(JournalLocked(command));
    return Rowset();
  }
  if (auto* insert = std::get_if<InsertIntoStatement>(&statement)) {
    if (!internal_) {
      DMX_RETURN_IF_ERROR(provider_->CheckModelServable(insert->model_name));
    }
    DMX_ASSIGN_OR_RETURN(MiningModel * model,
                         provider_->models_.GetModel(insert->model_name));
    // A tripping guard can abort training mid-stream, so snapshot enough
    // state to leave the catalog looking untouched. Unguarded statements
    // skip the snapshot cost entirely.
    const bool guarded = guard != nullptr && guard->armed();
    const bool was_trained = model->is_trained();
    std::string backup;
    if (guarded && was_trained) {
      DMX_ASSIGN_OR_RETURN(backup, SerializeModel(*model));
    }
    Status trained = [&]() -> Status {
      DMX_ASSIGN_OR_RETURN(
          std::unique_ptr<RowsetReader> reader,
          OpenCasesetSource(provider_->database_, insert->source,
                            &io.caseset_rows));
      return model->InsertCases(
          reader.get(), insert->columns.empty() ? nullptr : &insert->columns);
    }();
    if (!trained.ok()) {
      if (guarded) {
        // Unwind: restore the pre-statement model (trained state from the
        // serialized backup, untrained back to its pristine definition).
        if (was_trained) {
          Result<std::unique_ptr<MiningModel>> restored =
              DeserializeModel(backup, provider_->services_);
          if (restored.ok()) {
            (void)provider_->models_.DropModel(insert->model_name);
            (void)provider_->models_.AdoptModel(std::move(*restored));
          }
        } else {
          (void)model->Reset();
        }
      }
      return trained.WithContext("training model '" + insert->model_name +
                                 "'");
    }
    if (internal_) {
      // Recovery/repair replay: the record being applied is already durable
      // in the shard being replayed.
    } else if (provider_->store_ != nullptr &&
               !model->service().capabilities().supports_incremental) {
      // Non-incremental training is not a pure function of (catalog,
      // statement): the retrain folds in the volatile case cache, which
      // snapshots do not capture. Replaying the statement after a snapshot
      // restore would retrain on the new rows alone and silently shrink the
      // model (fuzz finding: fuzz/regressions/store_recovery/
      // retrain-after-checkpoint). Journal the trained model itself — the
      // IMPORT precedent — so recovery restores the exact post-statement
      // state.
      DMX_ASSIGN_OR_RETURN(std::string pmml, SerializeModel(*model));
      DMX_RETURN_IF_ERROR(provider_->store_->JournalModelBlob(
          model->definition().model_name, pmml));
    } else if (provider_->store_ != nullptr) {
      // Incremental training is replayable: journal the statement into the
      // model's own WAL shard.
      DMX_RETURN_IF_ERROR(provider_->store_->JournalModelStatement(
          insert->model_name, command));
    }
    return Rowset();
  }
  if (auto* del = std::get_if<DeleteFromModelStatement>(&statement)) {
    if (!internal_) {
      DMX_RETURN_IF_ERROR(provider_->CheckModelServable(del->model_name));
    }
    // DELETE FROM is shared syntax: models win, tables fall through.
    if (provider_->models_.HasModel(del->model_name)) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models_.GetModel(del->model_name));
      DMX_RETURN_IF_ERROR(model->Reset());
      if (!internal_ && provider_->store_ != nullptr) {
        DMX_RETURN_IF_ERROR(provider_->store_->JournalModelStatement(
            del->model_name, command));
      }
    } else {
      DMX_RETURN_IF_ERROR(
          rel::ExecuteSql(&provider_->database_, command).status());
      DMX_RETURN_IF_ERROR(JournalLocked(command));
    }
    return Rowset();
  }
  if (auto* drop = std::get_if<DropModelStatement>(&statement)) {
    if (!internal_) {
      DMX_RETURN_IF_ERROR(provider_->CheckModelServable(drop->model_name));
    }
    DMX_RETURN_IF_ERROR(provider_->models_.DropModel(drop->model_name));
    DMX_RETURN_IF_ERROR(JournalLocked(command));
    return Rowset();
  }
  if (auto* import_stmt = std::get_if<ImportModelStatement>(&statement)) {
    // The document was read off disk by PrepareStatementIo, before the
    // exclusive lock; only the (in-memory) deserialization happens here,
    // because the service registry it binds against is lock-guarded.
    if (!io.import_document.has_value()) {
      return Internal() << "IMPORT document for '" << import_stmt->path
                        << "' was not preloaded before execution";
    }
    DMX_ASSIGN_OR_RETURN(
        std::unique_ptr<MiningModel> model,
        DeserializeModel(*io.import_document, provider_->services_));
    std::string name = model->definition().model_name;
    if (!internal_) {
      DMX_RETURN_IF_ERROR(provider_->CheckModelServable(name));
    }
    std::string pmml;
    const bool journal = !internal_ && provider_->store_ != nullptr;
    if (journal) {
      // Journal the serialized model itself, not the IMPORT statement:
      // replay must not depend on the external file still existing.
      DMX_ASSIGN_OR_RETURN(pmml, SerializeModel(*model));
    }
    DMX_RETURN_IF_ERROR(provider_->models_.AdoptModel(std::move(model)));
    if (journal) {
      DMX_RETURN_IF_ERROR(provider_->store_->JournalModelBlob(name, pmml));
    }
    return Rowset();
  }
  return Internal() << "unhandled DMX statement";
}

Status Connection::JournalLocked(const std::string& command) {
  if (internal_) return Status::OK();
  return provider_->JournalStatementLocked(command);
}

Result<Rowset> Connection::GetSchemaRowset(SchemaRowsetKind kind,
                                           const std::string& model_filter)
    const {
  ReaderMutexLock lock(&provider_->catalog_mu_);
  return dmx::GetSchemaRowset(kind, provider_->services_, provider_->models_,
                              model_filter);
}

}  // namespace dmx
