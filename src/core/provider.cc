#include "core/provider.h"

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

#include "algorithms/builtin_services.h"
#include "core/caseset_source.h"
#include "core/dmx_parser.h"
#include "core/prediction_join.h"
#include "pmml/pmml.h"
#include "relational/sql_executor.h"
#include "relational/sql_parser.h"
#include "store/log_format.h"

namespace dmx {

namespace {

// Snapshot schema encoding: u32 column count, then per column the type name
// and column name, each length-prefixed (names may contain any byte).
std::string EncodeSchema(const Schema& schema) {
  std::string out;
  store::PutFixed32(&out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    store::PutLengthPrefixed(&out, DataTypeToString(col.type));
    store::PutLengthPrefixed(&out, col.name);
  }
  return out;
}

Result<std::shared_ptr<const Schema>> DecodeSchema(const std::string& meta) {
  std::string_view src(meta);
  uint32_t num_columns = 0;
  if (!store::GetFixed32(&src, &num_columns)) {
    return Corruption() << "table snapshot schema is truncated";
  }
  std::vector<ColumnDef> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    std::string_view type_name;
    std::string_view col_name;
    if (!store::GetLengthPrefixed(&src, &type_name) ||
        !store::GetLengthPrefixed(&src, &col_name)) {
      return Corruption() << "table snapshot schema is truncated";
    }
    DMX_ASSIGN_OR_RETURN(DataType type,
                         DataTypeFromString(std::string(type_name)));
    columns.emplace_back(std::string(col_name), type);
  }
  return Schema::Make(std::move(columns));
}

}  // namespace

/// Bridges the durable store to the provider's catalogs: replays journaled
/// statements / model blobs on recovery and serializes the whole catalog
/// (tables as CSV, models as PMML) for snapshots.
class Provider::CatalogStoreClient : public store::StoreClient {
 public:
  explicit CatalogStoreClient(Provider* provider) : provider_(provider) {}

  Status ApplyStatement(const std::string& text) override {
    // Recovery runs before the store is attached to the provider, so this
    // Execute cannot re-journal the statement.
    Connection conn(provider_);
    return conn.Execute(text).status();
  }

  Status ApplyModelBlob(const std::string& name,
                        const std::string& pmml) override {
    DMX_ASSIGN_OR_RETURN(std::unique_ptr<MiningModel> model,
                         DeserializeModel(pmml, *provider_->services()));
    // The store is authoritative: replace any same-named in-memory model.
    if (provider_->models()->HasModel(name)) {
      DMX_RETURN_IF_ERROR(provider_->models()->DropModel(name));
    }
    return provider_->models()->AdoptModel(std::move(model));
  }

  Status ApplyTableSnapshot(const store::StoreRecord& record) override {
    DMX_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                         DecodeSchema(record.meta));
    DMX_ASSIGN_OR_RETURN(Rowset rowset,
                         rel::ParseCsvString(record.data, schema));
    rel::Database* db = provider_->database();
    if (db->HasTable(record.name)) {
      DMX_RETURN_IF_ERROR(db->DropTable(record.name));
    }
    DMX_ASSIGN_OR_RETURN(rel::Table * table,
                         db->CreateTable(record.name, std::move(schema)));
    return table->InsertAll(std::move(rowset.mutable_rows()));
  }

  Result<std::vector<store::StoreRecord>> CaptureSnapshot() override {
    std::vector<store::StoreRecord> out;
    for (const std::string& name : provider_->database()->ListTables()) {
      DMX_ASSIGN_OR_RETURN(rel::Table * table,
                           provider_->database()->GetTable(name));
      store::StoreRecord record;
      record.kind = 'T';
      record.name = table->name();
      record.meta = EncodeSchema(*table->schema());
      record.data = rel::ToCsvString(*table->schema(), table->rows());
      out.push_back(std::move(record));
    }
    for (const std::string& name : provider_->models()->ListModels()) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models()->GetModel(name));
      store::StoreRecord record;
      record.kind = 'M';
      record.name = model->definition().model_name;
      DMX_ASSIGN_OR_RETURN(record.data, SerializeModel(*model));
      out.push_back(std::move(record));
    }
    return out;
  }

 private:
  Provider* provider_;
};

Provider::Provider() {
  Status status = RegisterBuiltinServices(&services_);
  assert(status.ok());
  (void)status;
}

Provider::~Provider() = default;

std::unique_ptr<Connection> Provider::Connect() {
  return std::make_unique<Connection>(this);
}

Status Provider::OpenStore(const std::string& store_dir,
                           store::StoreOptions options) {
  if (store_ != nullptr) {
    return InvalidState() << "a store is already attached (at '"
                          << store_->dir() << "')";
  }
  store_client_ = std::make_unique<CatalogStoreClient>(this);
  Result<std::unique_ptr<store::DurableStore>> store =
      store::DurableStore::Open(store_dir, store_client_.get(), options);
  if (!store.ok()) {
    store_client_.reset();
    return store.status();
  }
  store_ = std::move(store).value();
  return Status::OK();
}

Status Provider::Checkpoint() {
  if (store_ == nullptr) {
    return InvalidState() << "no durable store attached";
  }
  return store_->Checkpoint();
}

namespace {

/// Journals one successfully executed statement; no-op without a store. A
/// journal failure means the in-memory effect is NOT durable — it is
/// surfaced to the caller, who sees the pre-statement state after a reopen.
Status JournalStatement(Provider* provider, const std::string& text) {
  if (provider->store() == nullptr) return Status::OK();
  return provider->store()->JournalStatement(text);
}

/// True when a successfully executed SQL statement mutated the catalog
/// (everything except SELECT) and must therefore be journaled.
bool IsMutatingSql(const std::string& command) {
  Result<rel::SqlStatement> parsed = rel::ParseSql(command);
  return parsed.ok() &&
         !std::holds_alternative<rel::SelectStatement>(*parsed);
}

}  // namespace

Result<Rowset> Connection::Execute(const std::string& command) {
  DMX_ASSIGN_OR_RETURN(DmxParseResult parsed, ParseDmx(command));
  if (parsed.is_sql) {
    DMX_ASSIGN_OR_RETURN(Rowset rowset,
                         rel::ExecuteSql(provider_->database(), command));
    if (provider_->store() != nullptr && IsMutatingSql(command)) {
      DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    }
    return rowset;
  }
  DmxStatement& statement = *parsed.statement;

  if (auto* create = std::get_if<CreateModelStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(provider_->models()
                            ->CreateModel(std::move(create->definition),
                                          *provider_->services())
                            .status());
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* insert = std::get_if<InsertIntoStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(MiningModel * model,
                         provider_->models()->GetModel(insert->model_name));
    DMX_ASSIGN_OR_RETURN(
        std::unique_ptr<RowsetReader> reader,
        OpenCasesetSource(*provider_->database(), insert->source));
    DMX_RETURN_IF_ERROR(model->InsertCases(
        reader.get(), insert->columns.empty() ? nullptr : &insert->columns));
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* join = std::get_if<PredictionJoinStatement>(&statement)) {
    return ExecutePredictionJoin(*provider_->database(), provider_->models(),
                                 *join);
  }
  if (auto* content = std::get_if<SelectContentStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(const MiningModel* model,
                         provider_->models()->GetModel(content->model_name));
    DMX_ASSIGN_OR_RETURN(Rowset rowset, GetContentRowset(*model));
    if (content->where == nullptr) return rowset;
    // Filter in place over the content rowset's own columns.
    rel::Scope scope;
    scope.AddRange("CONTENT", *rowset.schema(), 0);
    DMX_RETURN_IF_ERROR(rel::BindExpr(content->where.get(), scope));
    Rowset filtered(rowset.schema());
    for (Row& row : rowset.mutable_rows()) {
      DMX_ASSIGN_OR_RETURN(bool keep,
                           rel::EvalPredicate(*content->where, row));
      if (keep) DMX_RETURN_IF_ERROR(filtered.Append(std::move(row)));
    }
    return filtered;
  }
  if (auto* del = std::get_if<DeleteFromModelStatement>(&statement)) {
    // DELETE FROM is shared syntax: models win, tables fall through.
    if (provider_->models()->HasModel(del->model_name)) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models()->GetModel(del->model_name));
      DMX_RETURN_IF_ERROR(model->Reset());
    } else {
      DMX_RETURN_IF_ERROR(
          rel::ExecuteSql(provider_->database(), command).status());
    }
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* drop = std::get_if<DropModelStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(provider_->models()->DropModel(drop->model_name));
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* export_stmt = std::get_if<ExportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        const MiningModel* model,
        provider_->models()->GetModel(export_stmt->model_name));
    // Reads catalog state only — nothing to journal.
    DMX_RETURN_IF_ERROR(SaveModelToFile(*model, export_stmt->path));
    return Rowset();
  }
  if (auto* import_stmt = std::get_if<ImportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        std::unique_ptr<MiningModel> model,
        LoadModelFromFile(import_stmt->path, *provider_->services()));
    std::string name = model->definition().model_name;
    std::string pmml;
    if (provider_->store() != nullptr) {
      // Journal the serialized model itself, not the IMPORT statement:
      // replay must not depend on the external file still existing.
      DMX_ASSIGN_OR_RETURN(pmml, SerializeModel(*model));
    }
    DMX_RETURN_IF_ERROR(provider_->models()->AdoptModel(std::move(model)));
    if (provider_->store() != nullptr) {
      DMX_RETURN_IF_ERROR(provider_->store()->JournalModelBlob(name, pmml));
    }
    return Rowset();
  }
  return Internal() << "unhandled DMX statement";
}

Result<Rowset> Connection::GetSchemaRowset(SchemaRowsetKind kind,
                                           const std::string& model_filter)
    const {
  return dmx::GetSchemaRowset(kind, *provider_->services(),
                              *provider_->models(), model_filter);
}

}  // namespace dmx
