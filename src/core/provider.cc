#include "core/provider.h"

#include <cassert>
#include <chrono>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>

#include "algorithms/builtin_services.h"
#include "core/caseset_source.h"
#include "core/prediction_join.h"
#include "pmml/pmml.h"
#include "relational/sql_executor.h"
#include "relational/sql_parser.h"
#include "store/log_format.h"

namespace dmx {

namespace {

// Snapshot schema encoding: u32 column count, then per column the type name
// and column name, each length-prefixed (names may contain any byte).
std::string EncodeSchema(const Schema& schema) {
  std::string out;
  store::PutFixed32(&out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    store::PutLengthPrefixed(&out, DataTypeToString(col.type));
    store::PutLengthPrefixed(&out, col.name);
  }
  return out;
}

Result<std::shared_ptr<const Schema>> DecodeSchema(const std::string& meta) {
  std::string_view src(meta);
  uint32_t num_columns = 0;
  if (!store::GetFixed32(&src, &num_columns)) {
    return Corruption() << "table snapshot schema is truncated";
  }
  std::vector<ColumnDef> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    std::string_view type_name;
    std::string_view col_name;
    if (!store::GetLengthPrefixed(&src, &type_name) ||
        !store::GetLengthPrefixed(&src, &col_name)) {
      return Corruption() << "table snapshot schema is truncated";
    }
    DMX_ASSIGN_OR_RETURN(DataType type,
                         DataTypeFromString(std::string(type_name)));
    columns.emplace_back(std::string(col_name), type);
  }
  return Schema::Make(std::move(columns));
}

/// Acquires `lock` (shared or unique over the catalog mutex) while honouring
/// the statement's guard: a waiter whose deadline lapses or whose token is
/// cancelled gives up instead of queueing on the mutex forever.
template <typename Lock>
Status LockCatalogWithGuard(Lock* lock, ExecGuard* guard) {
  if (!guard->has_deadline() && guard->cancel_token() == nullptr) {
    lock->lock();
    return Status::OK();
  }
  while (!lock->try_lock_for(std::chrono::milliseconds(5))) {
    Status trip = guard->Check();
    if (!trip.ok()) return trip.WithContext("waiting for the catalog lock");
  }
  return Status::OK();
}

}  // namespace

/// Bridges the durable store to the provider's catalogs: replays journaled
/// statements / model blobs on recovery and serializes the whole catalog
/// (tables as CSV, models as PMML) for snapshots.
class Provider::CatalogStoreClient : public store::StoreClient {
 public:
  explicit CatalogStoreClient(Provider* provider) : provider_(provider) {}

  Status ApplyStatement(const std::string& text) override {
    // Recovery runs before the store is attached to the provider, so this
    // Execute cannot re-journal the statement. The internal connection also
    // skips locks and guards: OpenStore already owns the catalogs.
    std::unique_ptr<Connection> conn = provider_->ConnectInternal();
    return conn->Execute(text).status();
  }

  Status ApplyModelBlob(const std::string& name,
                        const std::string& pmml) override {
    DMX_ASSIGN_OR_RETURN(std::unique_ptr<MiningModel> model,
                         DeserializeModel(pmml, *provider_->services()));
    // The store is authoritative: replace any same-named in-memory model.
    if (provider_->models()->HasModel(name)) {
      DMX_RETURN_IF_ERROR(provider_->models()->DropModel(name));
    }
    return provider_->models()->AdoptModel(std::move(model));
  }

  Status ApplyTableSnapshot(const store::StoreRecord& record) override {
    DMX_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                         DecodeSchema(record.meta));
    DMX_ASSIGN_OR_RETURN(Rowset rowset,
                         rel::ParseCsvString(record.data, schema));
    rel::Database* db = provider_->database();
    if (db->HasTable(record.name)) {
      DMX_RETURN_IF_ERROR(db->DropTable(record.name));
    }
    DMX_ASSIGN_OR_RETURN(rel::Table * table,
                         db->CreateTable(record.name, std::move(schema)));
    return table->InsertAll(std::move(rowset.mutable_rows()));
  }

  Result<std::vector<store::StoreRecord>> CaptureSnapshot() override {
    std::vector<store::StoreRecord> out;
    for (const std::string& name : provider_->database()->ListTables()) {
      DMX_ASSIGN_OR_RETURN(rel::Table * table,
                           provider_->database()->GetTable(name));
      store::StoreRecord record;
      record.kind = 'T';
      record.name = table->name();
      record.meta = EncodeSchema(*table->schema());
      record.data = rel::ToCsvString(*table->schema(), table->rows());
      out.push_back(std::move(record));
    }
    for (const std::string& name : provider_->models()->ListModels()) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models()->GetModel(name));
      store::StoreRecord record;
      record.kind = 'M';
      record.name = model->definition().model_name;
      DMX_ASSIGN_OR_RETURN(record.data, SerializeModel(*model));
      out.push_back(std::move(record));
    }
    return out;
  }

 private:
  Provider* provider_;
};

Provider::Provider() {
  Status status = RegisterBuiltinServices(&services_);
  assert(status.ok());
  (void)status;
}

Provider::~Provider() = default;

std::unique_ptr<Connection> Provider::Connect() {
  return std::make_unique<Connection>(this);
}

std::unique_ptr<Connection> Provider::ConnectInternal() {
  return std::unique_ptr<Connection>(
      new Connection(this, /*internal=*/true));
}

void Provider::SetAdmissionLimits(uint32_t max_active, uint32_t max_queued) {
  admission_.SetLimits(max_active, max_queued);
}

Status Provider::OpenStore(const std::string& store_dir,
                           store::StoreOptions options) {
  // Exclusive: recovery rewrites the catalogs, and the one-shot check below
  // must not race with a concurrent OpenStore or statement.
  std::unique_lock<std::shared_timed_mutex> lock(catalog_mu_);
  if (store_client_ != nullptr) {
    return InvalidState()
           << "OpenStore may be called at most once per provider"
           << (store_ != nullptr ? " (a store is already attached at '" +
                                       store_->dir() + "')"
                                 : "");
  }
  store_client_ = std::make_unique<CatalogStoreClient>(this);
  Result<std::unique_ptr<store::DurableStore>> store =
      store::DurableStore::Open(store_dir, store_client_.get(), options);
  if (!store.ok()) {
    return store.status();
  }
  store_ = std::move(store).value();
  return Status::OK();
}

Status Provider::Checkpoint() {
  // Exclusive: a snapshot must capture a statement-consistent catalog image
  // and must never interleave with WAL appends.
  std::unique_lock<std::shared_timed_mutex> lock(catalog_mu_);
  if (store_ == nullptr) {
    return InvalidState() << "no durable store attached";
  }
  return store_->Checkpoint();
}

namespace {

/// Journals one successfully executed statement; no-op without a store. A
/// journal failure means the in-memory effect is NOT durable — it is
/// surfaced to the caller, who sees the pre-statement state after a reopen.
/// Callers hold the catalog lock exclusively (all mutating statements do),
/// which serializes WAL appends across sessions.
Status JournalStatement(Provider* provider, const std::string& text) {
  if (provider->store() == nullptr) return Status::OK();
  return provider->store()->JournalStatement(text);
}

}  // namespace

Result<Rowset> Connection::Execute(const std::string& command) {
  Result<DmxParseResult> parsed = ParseDmx(command);
  if (!parsed.ok()) {
    return parsed.status().WithContext("parsing statement");
  }

  // SQL text is parsed once here; the parse both classifies the lock mode
  // and feeds execution in Dispatch.
  std::optional<rel::SqlStatement> sql;
  if (parsed->is_sql) {
    Result<rel::SqlStatement> sql_parsed = rel::ParseSql(command);
    if (!sql_parsed.ok()) {
      return sql_parsed.status().WithContext("parsing statement");
    }
    sql = std::move(*sql_parsed);
  }

  if (internal_) {
    // Recovery replay: OpenStore holds the catalogs exclusively already.
    return Dispatch(*parsed, sql, command, nullptr);
  }

  ExecGuard guard(limits_);
  // Admission before locks: a saturated provider rejects (or queues) the
  // statement without touching the catalog mutex.
  DMX_RETURN_IF_ERROR(provider_->admission_.Admit(&guard));
  AdmissionSlot slot(&provider_->admission_);
  ExecGuardScope scope(&guard);

  // Lock regime: reads share the catalogs, everything that can mutate them
  // is exclusive. DELETE FROM is ambiguous (model or table) and mutates
  // either way; EXPORT only reads catalog state.
  bool read_only;
  if (parsed->is_sql) {
    read_only = std::holds_alternative<rel::SelectStatement>(*sql);
  } else {
    const DmxStatement& statement = *parsed->statement;
    read_only = std::holds_alternative<PredictionJoinStatement>(statement) ||
                std::holds_alternative<SelectContentStatement>(statement) ||
                std::holds_alternative<ExportModelStatement>(statement);
  }

  if (read_only) {
    std::shared_lock<std::shared_timed_mutex> lock(provider_->catalog_mu_,
                                                   std::defer_lock);
    DMX_RETURN_IF_ERROR(LockCatalogWithGuard(&lock, &guard));
    return Dispatch(*parsed, sql, command, &guard);
  }
  std::unique_lock<std::shared_timed_mutex> lock(provider_->catalog_mu_,
                                                 std::defer_lock);
  DMX_RETURN_IF_ERROR(LockCatalogWithGuard(&lock, &guard));
  return Dispatch(*parsed, sql, command, &guard);
}

Result<Rowset> Connection::Dispatch(DmxParseResult& parsed,
                                    std::optional<rel::SqlStatement>& sql,
                                    const std::string& command,
                                    const ExecGuard* guard) {
  if (parsed.is_sql) {
    DMX_ASSIGN_OR_RETURN(Rowset rowset,
                         rel::Execute(provider_->database(), *sql));
    if (!std::holds_alternative<rel::SelectStatement>(*sql)) {
      DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    }
    return rowset;
  }
  DmxStatement& statement = *parsed.statement;

  if (auto* create = std::get_if<CreateModelStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(provider_->models()
                            ->CreateModel(std::move(create->definition),
                                          *provider_->services())
                            .status());
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* insert = std::get_if<InsertIntoStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(MiningModel * model,
                         provider_->models()->GetModel(insert->model_name));
    // A tripping guard can abort training mid-stream, so snapshot enough
    // state to leave the catalog looking untouched. Unguarded statements
    // skip the snapshot cost entirely.
    const bool guarded = guard != nullptr && guard->armed();
    const bool was_trained = model->is_trained();
    std::string backup;
    if (guarded && was_trained) {
      DMX_ASSIGN_OR_RETURN(backup, SerializeModel(*model));
    }
    Status trained = [&]() -> Status {
      DMX_ASSIGN_OR_RETURN(
          std::unique_ptr<RowsetReader> reader,
          OpenCasesetSource(*provider_->database(), insert->source));
      return model->InsertCases(
          reader.get(), insert->columns.empty() ? nullptr : &insert->columns);
    }();
    if (!trained.ok()) {
      if (guarded) {
        // Unwind: restore the pre-statement model (trained state from the
        // serialized backup, untrained back to its pristine definition).
        if (was_trained) {
          Result<std::unique_ptr<MiningModel>> restored =
              DeserializeModel(backup, *provider_->services());
          if (restored.ok()) {
            (void)provider_->models()->DropModel(insert->model_name);
            (void)provider_->models()->AdoptModel(std::move(*restored));
          }
        } else {
          (void)model->Reset();
        }
      }
      return trained.WithContext("training model '" + insert->model_name +
                                 "'");
    }
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* join = std::get_if<PredictionJoinStatement>(&statement)) {
    Result<Rowset> rowset = ExecutePredictionJoin(*provider_->database(),
                                                  provider_->models(), *join);
    if (!rowset.ok()) {
      return rowset.status().WithContext("predicting with model '" +
                                         join->model_name + "'");
    }
    return rowset;
  }
  if (auto* content = std::get_if<SelectContentStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(const MiningModel* model,
                         provider_->models()->GetModel(content->model_name));
    DMX_ASSIGN_OR_RETURN(Rowset rowset, GetContentRowset(*model));
    if (content->where == nullptr) return rowset;
    // Filter in place over the content rowset's own columns.
    rel::Scope scope;
    scope.AddRange("CONTENT", *rowset.schema(), 0);
    DMX_RETURN_IF_ERROR(rel::BindExpr(content->where.get(), scope));
    Rowset filtered(rowset.schema());
    for (Row& row : rowset.mutable_rows()) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(bool keep,
                           rel::EvalPredicate(*content->where, row));
      if (keep) DMX_RETURN_IF_ERROR(filtered.Append(std::move(row)));
    }
    return filtered;
  }
  if (auto* del = std::get_if<DeleteFromModelStatement>(&statement)) {
    // DELETE FROM is shared syntax: models win, tables fall through.
    if (provider_->models()->HasModel(del->model_name)) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models()->GetModel(del->model_name));
      DMX_RETURN_IF_ERROR(model->Reset());
    } else {
      DMX_RETURN_IF_ERROR(
          rel::ExecuteSql(provider_->database(), command).status());
    }
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* drop = std::get_if<DropModelStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(provider_->models()->DropModel(drop->model_name));
    DMX_RETURN_IF_ERROR(JournalStatement(provider_, command));
    return Rowset();
  }
  if (auto* export_stmt = std::get_if<ExportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        const MiningModel* model,
        provider_->models()->GetModel(export_stmt->model_name));
    // Reads catalog state only — nothing to journal.
    DMX_RETURN_IF_ERROR(SaveModelToFile(*model, export_stmt->path));
    return Rowset();
  }
  if (auto* import_stmt = std::get_if<ImportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        std::unique_ptr<MiningModel> model,
        LoadModelFromFile(import_stmt->path, *provider_->services()));
    std::string name = model->definition().model_name;
    std::string pmml;
    if (provider_->store() != nullptr) {
      // Journal the serialized model itself, not the IMPORT statement:
      // replay must not depend on the external file still existing.
      DMX_ASSIGN_OR_RETURN(pmml, SerializeModel(*model));
    }
    DMX_RETURN_IF_ERROR(provider_->models()->AdoptModel(std::move(model)));
    if (provider_->store() != nullptr) {
      DMX_RETURN_IF_ERROR(provider_->store()->JournalModelBlob(name, pmml));
    }
    return Rowset();
  }
  return Internal() << "unhandled DMX statement";
}

Result<Rowset> Connection::GetSchemaRowset(SchemaRowsetKind kind,
                                           const std::string& model_filter)
    const {
  std::shared_lock<std::shared_timed_mutex> lock(provider_->catalog_mu_);
  return dmx::GetSchemaRowset(kind, *provider_->services(),
                              *provider_->models(), model_filter);
}

}  // namespace dmx
