#include "core/provider.h"

#include <cassert>

#include "algorithms/builtin_services.h"
#include "core/caseset_source.h"
#include "core/dmx_parser.h"
#include "core/prediction_join.h"
#include "pmml/pmml.h"
#include "relational/sql_executor.h"
#include "relational/sql_parser.h"

namespace dmx {

Provider::Provider() {
  Status status = RegisterBuiltinServices(&services_);
  assert(status.ok());
  (void)status;
}

std::unique_ptr<Connection> Provider::Connect() {
  return std::make_unique<Connection>(this);
}

Result<Rowset> Connection::Execute(const std::string& command) {
  DMX_ASSIGN_OR_RETURN(DmxParseResult parsed, ParseDmx(command));
  if (parsed.is_sql) {
    return rel::ExecuteSql(provider_->database(), command);
  }
  DmxStatement& statement = *parsed.statement;

  if (auto* create = std::get_if<CreateModelStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(provider_->models()
                            ->CreateModel(std::move(create->definition),
                                          *provider_->services())
                            .status());
    return Rowset();
  }
  if (auto* insert = std::get_if<InsertIntoStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(MiningModel * model,
                         provider_->models()->GetModel(insert->model_name));
    DMX_ASSIGN_OR_RETURN(
        std::unique_ptr<RowsetReader> reader,
        OpenCasesetSource(*provider_->database(), insert->source));
    DMX_RETURN_IF_ERROR(model->InsertCases(
        reader.get(), insert->columns.empty() ? nullptr : &insert->columns));
    return Rowset();
  }
  if (auto* join = std::get_if<PredictionJoinStatement>(&statement)) {
    return ExecutePredictionJoin(*provider_->database(), provider_->models(),
                                 *join);
  }
  if (auto* content = std::get_if<SelectContentStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(const MiningModel* model,
                         provider_->models()->GetModel(content->model_name));
    DMX_ASSIGN_OR_RETURN(Rowset rowset, GetContentRowset(*model));
    if (content->where == nullptr) return rowset;
    // Filter in place over the content rowset's own columns.
    rel::Scope scope;
    scope.AddRange("CONTENT", *rowset.schema(), 0);
    DMX_RETURN_IF_ERROR(rel::BindExpr(content->where.get(), scope));
    Rowset filtered(rowset.schema());
    for (Row& row : rowset.mutable_rows()) {
      DMX_ASSIGN_OR_RETURN(bool keep,
                           rel::EvalPredicate(*content->where, row));
      if (keep) DMX_RETURN_IF_ERROR(filtered.Append(std::move(row)));
    }
    return filtered;
  }
  if (auto* del = std::get_if<DeleteFromModelStatement>(&statement)) {
    // DELETE FROM is shared syntax: models win, tables fall through.
    if (provider_->models()->HasModel(del->model_name)) {
      DMX_ASSIGN_OR_RETURN(MiningModel * model,
                           provider_->models()->GetModel(del->model_name));
      DMX_RETURN_IF_ERROR(model->Reset());
      return Rowset();
    }
    return rel::ExecuteSql(provider_->database(), command);
  }
  if (auto* drop = std::get_if<DropModelStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(provider_->models()->DropModel(drop->model_name));
    return Rowset();
  }
  if (auto* export_stmt = std::get_if<ExportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        const MiningModel* model,
        provider_->models()->GetModel(export_stmt->model_name));
    DMX_RETURN_IF_ERROR(SaveModelToFile(*model, export_stmt->path));
    return Rowset();
  }
  if (auto* import_stmt = std::get_if<ImportModelStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(
        std::unique_ptr<MiningModel> model,
        LoadModelFromFile(import_stmt->path, *provider_->services()));
    DMX_RETURN_IF_ERROR(provider_->models()->AdoptModel(std::move(model)));
    return Rowset();
  }
  return Internal() << "unhandled DMX statement";
}

Result<Rowset> Connection::GetSchemaRowset(SchemaRowsetKind kind,
                                           const std::string& model_filter)
    const {
  return dmx::GetSchemaRowset(kind, *provider_->services(),
                              *provider_->models(), model_filter);
}

}  // namespace dmx
