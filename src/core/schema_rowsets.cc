#include "core/schema_rowsets.h"

namespace dmx {

namespace {

Result<Rowset> MiningServicesRowset(const ServiceRegistry& services) {
  auto schema = Schema::Make({{"SERVICE_NAME", DataType::kText},
                              {"SERVICE_DISPLAY_NAME", DataType::kText},
                              {"SERVICE_DESCRIPTION", DataType::kText},
                              {"PREDICTION_SUPPORTED", DataType::kBool},
                              {"SEGMENTATION_SUPPORTED", DataType::kBool},
                              {"ASSOCIATION_SUPPORTED", DataType::kBool},
                              {"INCREMENTAL_MAINTENANCE", DataType::kBool},
                              {"CONTINUOUS_TARGETS", DataType::kBool},
                              {"DISCRETE_TARGETS", DataType::kBool},
                              {"TABLE_PREDICTION", DataType::kBool},
                              {"SEQUENCE_SUPPORTED", DataType::kBool}});
  Rowset out(schema);
  for (const std::string& name : services.ListServices()) {
    const ServiceCapabilities& caps = services.Find(name).value()->capabilities();
    DMX_RETURN_IF_ERROR(
        out.Append({Value::Text(caps.name), Value::Text(caps.display_name),
                    Value::Text(caps.description),
                    Value::Bool(caps.supports_prediction),
                    Value::Bool(caps.is_segmentation),
                    Value::Bool(caps.supports_association),
                    Value::Bool(caps.supports_incremental),
                    Value::Bool(caps.supports_continuous_targets),
                    Value::Bool(caps.supports_discrete_targets),
                    Value::Bool(caps.supports_table_prediction),
                    Value::Bool(caps.supports_sequence_analysis)}));
  }
  return out;
}

Result<Rowset> ServiceParametersRowset(const ServiceRegistry& services) {
  auto schema = Schema::Make({{"SERVICE_NAME", DataType::kText},
                              {"PARAMETER_NAME", DataType::kText},
                              {"PARAMETER_DESCRIPTION", DataType::kText},
                              {"DEFAULT_VALUE", DataType::kText}});
  Rowset out(schema);
  for (const std::string& name : services.ListServices()) {
    const ServiceCapabilities& caps = services.Find(name).value()->capabilities();
    for (const ServiceParameter& param : caps.parameters) {
      DMX_RETURN_IF_ERROR(
          out.Append({Value::Text(caps.name), Value::Text(param.name),
                      Value::Text(param.description),
                      Value::Text(param.default_value.ToString())}));
    }
  }
  return out;
}

Result<Rowset> MiningModelsRowset(const ModelCatalog& models) {
  auto schema = Schema::Make({{"MODEL_NAME", DataType::kText},
                              {"SERVICE_NAME", DataType::kText},
                              {"IS_POPULATED", DataType::kBool},
                              {"CASE_COUNT", DataType::kDouble},
                              {"PREDICTION_COLUMNS", DataType::kText},
                              {"CREATION_STATEMENT", DataType::kText}});
  Rowset out(schema);
  for (const std::string& name : models.ListModels()) {
    const MiningModel& model = *models.GetModel(name).value();
    std::string outputs;
    for (const ModelColumn& col : model.definition().columns) {
      if (!col.is_output()) continue;
      if (!outputs.empty()) outputs += ", ";
      outputs += col.name;
    }
    DMX_RETURN_IF_ERROR(
        out.Append({Value::Text(model.definition().model_name),
                    Value::Text(model.definition().service_name),
                    Value::Bool(model.is_trained()),
                    Value::Double(model.case_count()), Value::Text(outputs),
                    Value::Text(model.definition().ToDmx())}));
  }
  return out;
}

const char* UsageString(const ModelColumn& col) {
  switch (col.usage) {
    case PredictUsage::kInput:
      return "INPUT";
    case PredictUsage::kPredict:
      return "PREDICT";
    case PredictUsage::kPredictOnly:
      return "PREDICT_ONLY";
  }
  return "?";
}

std::string ContentTypeString(const ModelColumn& col) {
  switch (col.role) {
    case ContentRole::kKey:
      return "KEY";
    case ContentRole::kTable:
      return "TABLE";
    case ContentRole::kRelation:
      return "RELATION";
    case ContentRole::kQualifier:
      return QualifierKindToString(col.qualifier);
    case ContentRole::kAttribute:
      return AttributeTypeToString(col.attr_type);
  }
  return "?";
}

Status AppendColumnRows(const std::string& model_name, const ModelColumn& col,
                        const std::string& parent, Rowset* out) {
  DMX_RETURN_IF_ERROR(out->Append(
      {Value::Text(model_name), Value::Text(col.name), Value::Text(parent),
       Value::Text(DataTypeToString(col.data_type)),
       Value::Text(ContentTypeString(col)), Value::Text(UsageString(col)),
       Value::Text(col.related_to),
       Value::Text(DistributionHintToString(col.distribution))}));
  for (const ModelColumn& nested : col.nested) {
    DMX_RETURN_IF_ERROR(AppendColumnRows(model_name, nested, col.name, out));
  }
  return Status::OK();
}

Result<Rowset> MiningColumnsRowset(const ModelCatalog& models,
                                   const std::string& filter) {
  auto schema = Schema::Make({{"MODEL_NAME", DataType::kText},
                              {"COLUMN_NAME", DataType::kText},
                              {"NESTED_TABLE", DataType::kText},
                              {"DATA_TYPE", DataType::kText},
                              {"CONTENT_TYPE", DataType::kText},
                              {"USAGE", DataType::kText},
                              {"RELATED_ATTRIBUTE", DataType::kText},
                              {"DISTRIBUTION_HINT", DataType::kText}});
  Rowset out(schema);
  for (const std::string& name : models.ListModels()) {
    if (!filter.empty() && !EqualsCi(filter, name)) continue;
    DMX_ASSIGN_OR_RETURN(const MiningModel* model, models.GetModel(name));
    for (const ModelColumn& col : model->definition().columns) {
      DMX_RETURN_IF_ERROR(
          AppendColumnRows(model->definition().model_name, col, "", &out));
    }
  }
  return out;
}

std::shared_ptr<const Schema> ContentSchema() {
  static const auto kSchema =
      Schema::Make({{"MODEL_NAME", DataType::kText},
                    {"NODE_UNIQUE_NAME", DataType::kText},
                    {"PARENT_UNIQUE_NAME", DataType::kText},
                    {"NODE_TYPE", DataType::kText},
                    {"NODE_CAPTION", DataType::kText},
                    {"NODE_RULE", DataType::kText},
                    {"NODE_DESCRIPTION", DataType::kText},
                    {"NODE_SUPPORT", DataType::kDouble},
                    {"NODE_PROBABILITY", DataType::kDouble},
                    {"MARGINAL_PROBABILITY", DataType::kDouble},
                    {"NODE_SCORE", DataType::kDouble},
                    {"CHILDREN_CARDINALITY", DataType::kLong},
                    {"NODE_DISTRIBUTION", DataType::kTable}});
  return kSchema;
}

Status AppendContentRows(const MiningModel& model, Rowset* out) {
  DMX_ASSIGN_OR_RETURN(ContentNodePtr root, model.BuildContent());
  std::vector<std::pair<const ContentNode*, std::string>> flat;
  root->Flatten("", &flat);
  for (const auto& [node, parent] : flat) {
    DMX_RETURN_IF_ERROR(out->Append(
        {Value::Text(model.definition().model_name),
         Value::Text(node->unique_name), Value::Text(parent),
         Value::Text(NodeTypeToString(node->type)), Value::Text(node->caption),
         Value::Text(node->rule), Value::Text(node->description),
         Value::Double(node->support), Value::Double(node->probability),
         Value::Double(node->marginal_probability), Value::Double(node->score),
         Value::Long(static_cast<int64_t>(node->children.size())),
         Value::Table(node->DistributionTable())}));
  }
  return Status::OK();
}

Result<Rowset> MiningFunctionsRowset() {
  auto schema = Schema::Make({{"FUNCTION_NAME", DataType::kText},
                              {"RETURNS", DataType::kText},
                              {"SYNTAX", DataType::kText},
                              {"DESCRIPTION", DataType::kText}});
  struct FunctionRow {
    const char* name;
    const char* returns;
    const char* syntax;
    const char* description;
  };
  // Must stay in sync with core/udf.cc.
  static const FunctionRow kFunctions[] = {
      {"Predict", "scalar or TABLE", "Predict(<column> [, n])",
       "Best estimate; on a TABLE column, the top-n recommended items"},
      {"PredictAssociation", "TABLE", "PredictAssociation(<table> [, n])",
       "Alias of Predict for set-valued targets"},
      {"PredictProbability", "DOUBLE",
       "PredictProbability(<column> [, value])",
       "Probability of the prediction (or of an explicit value)"},
      {"PredictSupport", "DOUBLE", "PredictSupport(<column> [, value])",
       "Training cases behind the prediction"},
      {"PredictVariance", "DOUBLE", "PredictVariance(<column>)",
       "Predictive variance (continuous targets)"},
      {"PredictStdev", "DOUBLE", "PredictStdev(<column>)",
       "Standard deviation of the prediction"},
      {"PredictHistogram", "TABLE", "PredictHistogram(<column>)",
       "All candidate values with $SUPPORT/$PROBABILITY/$VARIANCE/$STDEV"},
      {"TopCount", "TABLE", "TopCount(<table expr>, <rank column>, n)",
       "Top n rows of a table expression by the rank column"},
      {"RangeMin", "DOUBLE", "RangeMin(<discretized column>)",
       "Lower bound of the predicted bucket"},
      {"RangeMid", "DOUBLE", "RangeMid(<discretized column>)",
       "Midpoint of the predicted bucket"},
      {"RangeMax", "DOUBLE", "RangeMax(<discretized column>)",
       "Upper bound of the predicted bucket"},
      {"Cluster", "TEXT", "Cluster()",
       "Winning cluster caption (segmentation models)"},
      {"ClusterProbability", "DOUBLE", "ClusterProbability()",
       "Probability of the winning cluster"},
  };
  Rowset out(schema);
  for (const FunctionRow& f : kFunctions) {
    DMX_RETURN_IF_ERROR(
        out.Append({Value::Text(f.name), Value::Text(f.returns),
                    Value::Text(f.syntax), Value::Text(f.description)}));
  }
  return out;
}

}  // namespace

Result<Rowset> GetContentRowset(const MiningModel& model) {
  Rowset out(ContentSchema());
  DMX_RETURN_IF_ERROR(AppendContentRows(model, &out));
  return out;
}

Result<Rowset> GetSchemaRowset(SchemaRowsetKind kind,
                               const ServiceRegistry& services,
                               const ModelCatalog& models,
                               const std::string& model_filter) {
  switch (kind) {
    case SchemaRowsetKind::kMiningServices:
      return MiningServicesRowset(services);
    case SchemaRowsetKind::kServiceParameters:
      return ServiceParametersRowset(services);
    case SchemaRowsetKind::kMiningModels:
      return MiningModelsRowset(models);
    case SchemaRowsetKind::kMiningColumns:
      return MiningColumnsRowset(models, model_filter);
    case SchemaRowsetKind::kMiningFunctions:
      return MiningFunctionsRowset();
    case SchemaRowsetKind::kMiningModelContent: {
      Rowset out(ContentSchema());
      for (const std::string& name : models.ListModels()) {
        if (!model_filter.empty() && !EqualsCi(model_filter, name)) continue;
        DMX_ASSIGN_OR_RETURN(const MiningModel* model, models.GetModel(name));
        if (!model->is_trained()) continue;
        DMX_RETURN_IF_ERROR(AppendContentRows(*model, &out));
      }
      return out;
    }
  }
  return Internal() << "unreachable schema rowset kind";
}

}  // namespace dmx
