// MiningModel: the provider-side first-class model object (paper §2: "we
// have decided to represent a data mining model as analogous to a table in
// SQL"). It owns the definition, the bound attribute space, the algorithm
// parameters and — once populated — the trained state, and implements the
// paper's model operations:
//
//   INSERT INTO   -> InsertCases()  (population / refresh)
//   PREDICTION JOIN -> Predict()    (driven by core/prediction_join)
//   SELECT ... .CONTENT -> BuildContent()
//   DELETE FROM   -> Reset()
//
// Population strategy mirrors the "incremental model maintenance" capability
// flag: incremental services consume cases one at a time (after a small
// bootstrap that fixes DISCRETIZED bucket bounds); non-incremental services
// keep a training cache inside the model, so repeated INSERT INTO retrains
// on the union — the model, not the caller, owns refresh.

#ifndef DMX_CORE_MINING_MODEL_H_
#define DMX_CORE_MINING_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rowset.h"
#include "core/case_binder.h"
#include "core/dmx_ast.h"
#include "model/mining_service.h"

namespace dmx {

/// \brief One named mining model in the provider catalog.
class MiningModel {
 public:
  /// Cases buffered before an incremental service starts streaming (the
  /// bootstrap pins discretization bounds and initial dictionaries).
  static constexpr size_t kBootstrapCases = 1024;

  MiningModel(ModelDefinition definition,
              std::shared_ptr<MiningService> service, ParamMap params);

  const ModelDefinition& definition() const { return definition_; }
  const AttributeSet& attributes() const { return attrs_; }
  const MiningService& service() const { return *service_; }
  const ParamMap& params() const { return params_; }
  bool is_trained() const { return trained_ != nullptr; }
  double case_count() const {
    return trained_ != nullptr ? trained_->case_count() : 0;
  }
  /// Cases resident in the training cache (0 for incremental services) —
  /// what the streaming experiment (E3) measures.
  size_t cached_cases() const { return case_cache_.size(); }

  /// Populates / refreshes the model from a caseset stream (INSERT INTO).
  /// `mapping` is the statement's column list (nullptr: bind all by name).
  Status InsertCases(RowsetReader* reader,
                     const std::vector<InsertColumn>* mapping);

  /// Prediction entry point for bound cases (see prediction_join.cc).
  Result<CasePrediction> Predict(const DataCase& input,
                                 const PredictOptions& options) const;

  /// Content graph of the trained state (SELECT * FROM <model>.CONTENT).
  Result<ContentNodePtr> BuildContent() const;

  /// DELETE FROM <model>: back to the untrained state (definition kept).
  Status Reset();

  // --- persistence hooks (pmml library) ---
  const TrainedModel* trained() const { return trained_.get(); }
  AttributeSet* mutable_attributes() { return &attrs_; }
  void AdoptTrainedState(std::unique_ptr<TrainedModel> trained) {
    trained_ = std::move(trained);
  }

 private:
  ModelDefinition definition_;
  std::shared_ptr<MiningService> service_;
  ParamMap params_;
  AttributeSet attrs_;
  std::unique_ptr<TrainedModel> trained_;
  /// Bound cases kept for retraining (non-incremental services only).
  std::vector<DataCase> case_cache_;
};

}  // namespace dmx

#endif  // DMX_CORE_MINING_MODEL_H_
