#include "core/admission.h"

#include <chrono>

namespace dmx {

namespace {

/// Queued waiters poll their guard at this cadence so cancellation and
/// deadlines trip promptly even though nothing notifies the condvar.
constexpr std::chrono::milliseconds kQueuePollInterval{5};

}  // namespace

void AdmissionController::SetLimits(uint32_t max_active, uint32_t max_queued) {
  {
    MutexLock lock(&mu_);
    max_active_ = max_active;
    max_queued_ = max_queued;
  }
  // A raised cap may free waiters immediately.
  slot_freed_.NotifyAll();
}

void AdmissionController::SetTenantLimits(uint32_t max_active,
                                          uint32_t max_queued) {
  {
    MutexLock lock(&mu_);
    tenant_max_active_ = max_active;
    tenant_max_queued_ = max_queued;
  }
  slot_freed_.NotifyAll();
}

Status AdmissionController::Admit(ExecGuard* guard,
                                  const std::string& tenant) {
  MutexLock lock(&mu_);
  const bool tenant_scoped = !tenant.empty() && tenant_max_active_ > 0;

  bool global_full = max_active_ != 0 && active_ >= max_active_;
  bool tenant_full = false;
  if (tenant_scoped) {
    auto it = tenants_.find(tenant);
    tenant_full = it != tenants_.end() &&
                  it->second.active >= tenant_max_active_;
  }

  if (!global_full && !tenant_full) {
    ++active_;
    if (tenant_scoped) ++tenants_[tenant].active;
    return Status::OK();
  }

  // Fail fast when the relevant queue is already full. The messages carry
  // the live occupancy and the configured limits so an over-quota client's
  // log is diagnosable on its own (asserted verbatim in
  // condvar_admission_test.cc).
  if (tenant_scoped) {
    const TenantCounts& counts = tenants_[tenant];
    if (counts.queued >= tenant_max_queued_) {
      return ResourceExhausted()
             << "tenant \"" << tenant << "\" over quota (" << counts.active
             << " executing, " << counts.queued << " queued; quota "
             << tenant_max_active_ << " active, " << tenant_max_queued_
             << " queued); retry later";
    }
  }
  if (max_active_ != 0 && queued_ >= max_queued_) {
    return ResourceExhausted()
           << "too many concurrent statements (" << active_ << " executing, "
           << queued_ << " queued; limits " << max_active_ << " active, "
           << max_queued_ << " queued); retry later";
  }

  ++queued_;
  if (tenant_scoped) ++tenants_[tenant].queued;
  while (true) {
    global_full = max_active_ != 0 && active_ >= max_active_;
    tenant_full = false;
    if (tenant_scoped) {
      auto it = tenants_.find(tenant);
      tenant_full = it != tenants_.end() &&
                    it->second.active >= tenant_max_active_;
    }
    if (!global_full && !tenant_full) break;
    slot_freed_.WaitFor(&mu_, kQueuePollInterval);
    if (guard != nullptr) {
      Status trip = guard->Check();
      if (!trip.ok()) {
        --queued_;
        if (tenant_scoped) {
          auto it = tenants_.find(tenant);
          if (it != tenants_.end()) {
            if (it->second.queued > 0) --it->second.queued;
            if (it->second.active == 0 && it->second.queued == 0) {
              tenants_.erase(it);
            }
          }
        }
        return trip.WithContext("waiting for statement admission");
      }
    }
  }
  --queued_;
  ++active_;
  if (tenant_scoped) {
    TenantCounts& counts = tenants_[tenant];
    if (counts.queued > 0) --counts.queued;
    ++counts.active;
  }
  return Status::OK();
}

void AdmissionController::Release(const std::string& tenant) {
  {
    MutexLock lock(&mu_);
    if (active_ > 0) --active_;
    if (!tenant.empty()) {
      auto it = tenants_.find(tenant);
      if (it != tenants_.end()) {
        if (it->second.active > 0) --it->second.active;
        if (it->second.active == 0 && it->second.queued == 0) {
          tenants_.erase(it);
        }
      }
    }
  }
  // NotifyAll, not NotifyOne: with tenant quotas, the freed slot may only
  // be usable by waiters of one tenant — waking all lets the right one in.
  slot_freed_.NotifyAll();
}

uint32_t AdmissionController::active() const {
  MutexLock lock(&mu_);
  return active_;
}

uint32_t AdmissionController::tenant_active(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.active : 0;
}

uint32_t AdmissionController::SuggestedRetryMs() const {
  MutexLock lock(&mu_);
  if (max_active_ == 0 && tenant_max_active_ == 0) return 0;
  // Scale with total queue depth: each queued statement drains in roughly
  // one statement-time; 10 ms per depth step, clamped to [10 ms, 1 s].
  uint32_t hint = 10 * (queued_ + 1);
  return hint > 1'000 ? 1'000 : hint;
}

}  // namespace dmx
