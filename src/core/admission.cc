#include "core/admission.h"

#include <chrono>

namespace dmx {

namespace {

/// Queued waiters poll their guard at this cadence so cancellation and
/// deadlines trip promptly even though nothing notifies the condvar.
constexpr std::chrono::milliseconds kQueuePollInterval{5};

}  // namespace

void AdmissionController::SetLimits(uint32_t max_active, uint32_t max_queued) {
  {
    MutexLock lock(&mu_);
    max_active_ = max_active;
    max_queued_ = max_queued;
  }
  // A raised cap may free waiters immediately.
  slot_freed_.NotifyAll();
}

Status AdmissionController::Admit(ExecGuard* guard) {
  MutexLock lock(&mu_);
  if (max_active_ == 0 || active_ < max_active_) {
    ++active_;
    return Status::OK();
  }
  if (queued_ >= max_queued_) {
    return ResourceExhausted()
           << "too many concurrent statements (" << active_ << " executing, "
           << queued_ << " queued); retry later";
  }
  ++queued_;
  while (max_active_ != 0 && active_ >= max_active_) {
    slot_freed_.WaitFor(&mu_, kQueuePollInterval);
    if (guard != nullptr) {
      Status trip = guard->Check();
      if (!trip.ok()) {
        --queued_;
        return trip.WithContext("waiting for statement admission");
      }
    }
  }
  --queued_;
  ++active_;
  return Status::OK();
}

void AdmissionController::Release() {
  {
    MutexLock lock(&mu_);
    if (active_ > 0) --active_;
  }
  slot_freed_.NotifyOne();
}

uint32_t AdmissionController::active() const {
  MutexLock lock(&mu_);
  return active_;
}

}  // namespace dmx
