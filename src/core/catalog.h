// ModelCatalog: the named-model namespace of the provider. Mining models are
// first-class server objects (paper §2), so they live in a catalog exactly
// like tables do, with CREATE/DROP lifecycle.

#ifndef DMX_CORE_CATALOG_H_
#define DMX_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/mining_model.h"
#include "model/service_registry.h"

namespace dmx {

/// \brief Case-insensitive name -> MiningModel map.
///
/// Not internally synchronized: the catalog is a plain container. The
/// provider declares its instance GUARDED_BY(catalog_mu_), so every access
/// from statement execution is compiler-checked to hold the catalog lock
/// (shared for lookups, exclusive for CREATE/DROP/ADOPT); standalone use in
/// tests is single-threaded.
class ModelCatalog {
 public:
  /// CREATE MINING MODEL: validates the definition, resolves the service
  /// through `registry` and instantiates the model object.
  Result<MiningModel*> CreateModel(ModelDefinition definition,
                                   const ServiceRegistry& registry);

  Result<MiningModel*> GetModel(const std::string& name);
  Result<const MiningModel*> GetModel(const std::string& name) const;

  bool HasModel(const std::string& name) const {
    return models_.count(name) > 0;
  }

  Status DropModel(const std::string& name);

  /// Adds an externally constructed model (PMML import path).
  Status AdoptModel(std::unique_ptr<MiningModel> model);

  std::vector<std::string> ListModels() const;

 private:
  std::map<std::string, std::unique_ptr<MiningModel>, LessCi> models_;
};

}  // namespace dmx

#endif  // DMX_CORE_CATALOG_H_
